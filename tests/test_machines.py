"""Tests of the seven machine descriptors (§IV experimental setup)."""

import pytest

from repro.vec.machine import MACHINES, Machine, get_machine


class TestRegistry:
    def test_seven_systems_registered(self):
        # The paper evaluates "the total of seven different systems".
        assert len(MACHINES) == 7

    def test_expected_names(self):
        assert set(MACHINES) == {
            "dora", "knl", "tesla-k80", "tesla-k20x",
            "trivium-haswell", "gtx670", "greina-xeon",
        }

    def test_get_machine_roundtrip(self):
        for name in MACHINES:
            assert get_machine(name).name == name

    def test_get_machine_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown machine"):
            get_machine("cray-1")


class TestArchitecturalInvariants:
    def test_simd_widths_match_paper(self):
        # 32-bit ids: AVX2 CPUs C=8, KNL C=16, GPU warp C=32 (§IV-A).
        assert get_machine("dora").simd_width == 8
        assert get_machine("trivium-haswell").simd_width == 8
        assert get_machine("greina-xeon").simd_width == 8
        assert get_machine("knl").simd_width == 16
        for gpu in ("tesla-k80", "tesla-k20x", "gtx670"):
            assert get_machine(gpu).simd_width == 32

    def test_kinds(self):
        kinds = {m.kind for m in MACHINES.values()}
        assert kinds == {"cpu", "manycore", "gpu"}

    def test_gpus_pay_scalar_penalty(self):
        # Fine-grained scalar BFS underutilizes warps; CPUs do not.
        for m in MACHINES.values():
            if m.kind == "gpu":
                assert m.scalar_penalty > 2
            if m.kind == "cpu":
                assert m.scalar_penalty == 1.0

    def test_knl_has_highest_bandwidth(self):
        # MCDRAM: the KNL is the bandwidth king of the testbed.
        knl = get_machine("knl")
        assert all(knl.bandwidth_gbs >= m.bandwidth_gbs for m in MACHINES.values())

    def test_throughput_properties(self):
        m = Machine("toy", "cpu", simd_width=4, units=2, ghz=1.0, bandwidth_gbs=10)
        assert m.vector_throughput == 2e9
        assert m.lane_throughput == 8e9

    def test_descriptors_are_frozen(self):
        with pytest.raises(AttributeError):
            get_machine("knl").simd_width = 64
