"""Correctness matrix: every BFS-SpMV configuration vs the SciPy oracle."""

import pytest

from repro.bfs.spmv import BFSSpMV, bfs_spmv
from repro.bfs.validate import (
    check_distances_equal,
    check_parents_valid,
    reference_distances,
)
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.graph import Graph

from conftest import (
    SEMIRING_NAMES,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    two_components,
)


@pytest.mark.parametrize("semiring", SEMIRING_NAMES)
@pytest.mark.parametrize("slim", [True, False], ids=["slimsell", "sell"])
@pytest.mark.parametrize("engine", ["layer", "chunk"])
class TestFullMatrix:
    """4 semirings × 2 representations × 2 engines on canonical graphs."""

    def run_and_check(self, g, root, semiring, slim, engine, **kw):
        ref = reference_distances(g, root)
        res = bfs_spmv(g, root, semiring, C=4, slim=slim, engine=engine, **kw)
        check_distances_equal(res, ref)
        check_parents_valid(g, res)
        return res

    def test_path(self, semiring, slim, engine):
        self.run_and_check(path_graph(9), 0, semiring, slim, engine)

    def test_cycle_middle_root(self, semiring, slim, engine):
        self.run_and_check(cycle_graph(10), 4, semiring, slim, engine)

    def test_star_leaf_root(self, semiring, slim, engine):
        self.run_and_check(star_graph(11), 7, semiring, slim, engine)

    def test_complete(self, semiring, slim, engine):
        self.run_and_check(complete_graph(6), 3, semiring, slim, engine)

    def test_disconnected(self, semiring, slim, engine):
        res = self.run_and_check(two_components(), 0, semiring, slim, engine)
        assert res.reached == 4

    def test_with_slimwork(self, semiring, slim, engine):
        self.run_and_check(path_graph(9), 0, semiring, slim, engine,
                           slimwork=True)

    def test_kronecker(self, semiring, slim, engine, kron_small):
        self.run_and_check(kron_small, 3, semiring, slim, engine,
                           slimwork=True)


class TestWiderScenarios:
    @pytest.mark.parametrize("C", [1, 2, 4, 8, 16, 32])
    def test_all_chunk_heights(self, C, kron_small):
        ref = reference_distances(kron_small, 0)
        res = bfs_spmv(kron_small, 0, "tropical", C=C)
        check_distances_equal(res, ref)

    @pytest.mark.parametrize("sigma", [1, 4, 32, 256, 512])
    def test_all_sigmas(self, sigma, kron_small):
        ref = reference_distances(kron_small, 9)
        res = bfs_spmv(kron_small, 9, "boolean", C=8, sigma=sigma)
        check_distances_equal(res, ref)

    @pytest.mark.parametrize("root", [0, 1, 255, 511])
    def test_various_roots(self, root, kron_small):
        ref = reference_distances(kron_small, root)
        res = bfs_spmv(kron_small, root, "sel-max", C=8, slimwork=True)
        check_distances_equal(res, ref)
        check_parents_valid(kron_small, res)

    def test_erdos_renyi(self, er_small):
        ref = reference_distances(er_small, 17)
        for sem in SEMIRING_NAMES:
            res = bfs_spmv(er_small, 17, sem, C=8)
            check_distances_equal(res, ref)

    def test_n_not_multiple_of_c(self):
        # 9 vertices with C=4 -> one partial chunk with virtual rows.
        g = two_components()
        assert g.n % 4 != 0
        for sem in SEMIRING_NAMES:
            res = bfs_spmv(g, 0, sem, C=4, slimwork=True)
            check_distances_equal(res, reference_distances(g, 0))

    def test_single_vertex_graph(self):
        g = Graph.empty(1)
        res = bfs_spmv(g, 0, "tropical", C=4)
        assert res.dist.tolist() == [0.0]

    def test_isolated_root_in_larger_graph(self):
        g = Graph.from_edges(5, [(1, 2), (2, 3)])
        res = bfs_spmv(g, 0, "boolean", C=4)
        assert res.reached == 1

    def test_two_vertex_edge(self):
        g = Graph.from_edges(2, [(0, 1)])
        for sem in SEMIRING_NAMES:
            res = bfs_spmv(g, 1, sem, C=8)
            assert res.dist.tolist() == [1.0, 0.0]
            assert res.parent.tolist() == [1, 1]

    def test_root_out_of_range(self, kron_small):
        rep = SlimSell(kron_small, 8)
        with pytest.raises(ValueError, match="out of range"):
            BFSSpMV(rep, "tropical").run(kron_small.n)

    def test_bad_engine_rejected(self, kron_small):
        rep = SlimSell(kron_small, 8)
        with pytest.raises(ValueError, match="engine"):
            BFSSpMV(rep, "tropical", engine="gpu")

    def test_compute_parents_false(self, kron_small):
        res = bfs_spmv(kron_small, 0, "tropical", C=8, compute_parents=False)
        assert res.parent is None

    def test_rep_reuse_across_runs(self, kron_small):
        rep = SellCSigma(kron_small, 8, kron_small.n)
        runner = BFSSpMV(rep, "tropical")
        for root in (0, 100, 200):
            ref = reference_distances(kron_small, root)
            check_distances_equal(runner.run(root), ref)


class TestMetadata:
    def test_method_labels(self, kron_small):
        rep = SlimSell(kron_small, 8)
        r = BFSSpMV(rep, "tropical", slimwork=True, slimchunk=4,
                    engine="chunk").run(0)
        assert r.method == "spmv-chunk+slimwork+slimchunk"
        assert r.representation == "slimsell"
        assert r.semiring == "tropical"

    def test_preprocess_time_attached(self, kron_small):
        res = bfs_spmv(kron_small, 0, "tropical", C=8)
        assert res.preprocess_time_s > 0

    def test_iteration_times_array(self, kron_small):
        res = bfs_spmv(kron_small, 0, "tropical", C=8)
        t = res.iteration_times()
        assert t.shape == (res.n_iterations,)
        assert (t >= 0).all()
