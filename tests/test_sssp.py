"""Tests of weighted SSSP (the boundary where SlimSell's trick stops)."""

import numpy as np
import pytest

from repro.apps.sssp import expand_edge_weights, sssp_dijkstra, sssp_spmv
from repro.graphs.graph import Graph
from repro.graphs.kronecker import kronecker

from conftest import cycle_graph, path_graph, two_components


def scipy_reference(g: Graph, weights: np.ndarray, root: int) -> np.ndarray:
    import scipy.sparse as sp
    from scipy.sparse.csgraph import dijkstra

    w = expand_edge_weights(g, weights)
    mat = sp.csr_matrix((w, g.indices, g.indptr), shape=(g.n, g.n))
    return dijkstra(mat, directed=False, indices=root)


class TestExpandWeights:
    def test_symmetric_expansion(self):
        g = path_graph(3)  # edges (0,1), (1,2)
        w = np.array([2.0, 5.0])
        wd = expand_edge_weights(g, w)
        # indices: [1 | 0, 2 | 1] -> weights [2 | 2, 5 | 5]
        assert wd.tolist() == [2.0, 2.0, 5.0, 5.0]

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            expand_edge_weights(path_graph(3), np.ones(5))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            expand_edge_weights(path_graph(3), np.array([1.0, -0.5]))


class TestAgainstReferences:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_spmv_matches_scipy_on_kronecker(self, seed):
        g = kronecker(8, 6, seed=seed)
        rng = np.random.default_rng(seed)
        w = rng.uniform(0.1, 10.0, size=g.m)
        root = int(np.argmax(g.degrees))
        got = sssp_spmv(g, w, root).dist
        want = scipy_reference(g, w, root)
        fin = np.isfinite(want)
        np.testing.assert_allclose(got[fin], want[fin])
        assert np.isinf(got[~fin]).all()

    def test_dijkstra_matches_spmv(self, kron_small):
        g = kron_small
        rng = np.random.default_rng(7)
        w = rng.uniform(0.5, 3.0, size=g.m)
        a = sssp_spmv(g, w, 0)
        b = sssp_dijkstra(g, w, 0)
        fin = np.isfinite(a.dist)
        np.testing.assert_allclose(a.dist[fin], b.dist[fin])

    def test_unit_weights_reduce_to_bfs(self):
        from repro.bfs.traditional import bfs_serial

        g = cycle_graph(9)
        res = sssp_spmv(g, np.ones(g.m), 0)
        np.testing.assert_array_equal(res.dist, bfs_serial(g, 0).dist)

    def test_shortcut_taken_over_fewer_hops(self):
        # Triangle with a heavy direct edge: the 2-hop route wins.
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        w_by_edge = {(0, 1): 1.0, (0, 2): 10.0, (1, 2): 1.0}
        w = np.array([w_by_edge[tuple(e)] for e in g.edges().tolist()])
        res = sssp_spmv(g, w, 0)
        assert res.dist[2] == 2.0
        assert res.parent[2] == 1


class TestSemantics:
    def test_parents_form_shortest_path_tree(self, kron_small):
        g = kron_small
        rng = np.random.default_rng(3)
        w = rng.uniform(0.1, 2.0, size=g.m)
        res = sssp_spmv(g, w, 5)
        wd = expand_edge_weights(g, w)
        for v in np.flatnonzero(np.isfinite(res.dist))[:50]:
            p = int(res.parent[v])
            if v == 5:
                assert p == 5
            else:
                assert g.has_edge(int(v), p)
                # Tree edge lies on a shortest path: dist[p] + w(p,v) = dist[v].
                slot = g.indptr[v] + np.searchsorted(g.neighbors(int(v)), p)
                assert res.dist[p] + wd[slot] == pytest.approx(res.dist[v])

    def test_disconnected(self):
        g = two_components()
        res = sssp_spmv(g, np.ones(g.m), 0)
        assert np.isinf(res.dist[4:]).all()

    def test_iteration_count_bounded_by_weighted_depth(self):
        g = path_graph(12)
        res = sssp_spmv(g, np.ones(11), 0)
        # Converges in depth + 1 sweeps (the no-change detection sweep).
        assert res.n_iterations == 12

    def test_root_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            sssp_spmv(path_graph(3), np.ones(2), 5)
        with pytest.raises(ValueError, match="out of range"):
            sssp_dijkstra(path_graph(3), np.ones(2), -1)
