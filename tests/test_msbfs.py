"""Bit-identity and batching semantics of the multi-source BFS engine.

The batched SpMM sweep must be indistinguishable — distances, parents,
iteration profiles, synthesized instruction counters — from running the
single-source layer and chunk engines once per root.  Distance/parent
equivalence runs through the shared cross-engine oracle (:mod:`engines`);
the iteration-profile and counter comparisons stay engine-specific.
"""

import numpy as np
import pytest

from repro.bfs.msbfs import MultiSourceBFS, bfs_msbfs
from repro.bfs.operator import SlimSpMV
from repro.bfs.spmv import BFSSpMV, synthesize_counters
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.erdos_renyi import erdos_renyi_nm
from repro.graphs.kronecker import kronecker
from repro.semirings.base import get_semiring

from conftest import SEMIRING_NAMES, two_components
from engines import assert_bfs_equivalent


def _graph(name):
    if name == "kron":
        return kronecker(8, 8, seed=7)
    if name == "er":
        return erdos_renyi_nm(200, 800, seed=13)
    return two_components()


def _roots(g):
    # A spread of roots, including the highest-degree vertex and vertex 0.
    cand = [0, int(np.argmax(g.degrees)), g.n // 2, g.n - 1]
    return np.unique(cand)


class TestBitIdentity:
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    @pytest.mark.parametrize("C", [4, 8, 16])
    @pytest.mark.parametrize("graph_name", ["kron", "er", "disconnected"])
    def test_matches_layer_engine(self, semiring, C, graph_name):
        g = _graph(graph_name)
        roots = _roots(g)
        results = assert_bfs_equivalent(
            g, roots, semiring=semiring, C=C,
            engines=["traditional", "spmv-layer", "msbfs"])
        # Beyond the oracle: per-iteration profiles must match exactly.
        for res, ref in zip(results["msbfs"], results["spmv-layer"]):
            np.testing.assert_array_equal(res.dist, ref.dist)
            np.testing.assert_array_equal(res.parent, ref.parent)
            assert len(res.iterations) == len(ref.iterations)
            for a, b in zip(res.iterations, ref.iterations):
                assert a.newly == b.newly
                assert a.chunks_processed == b.chunks_processed
                assert a.chunks_skipped == b.chunks_skipped
                assert a.work_lanes == b.work_lanes

    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    @pytest.mark.parametrize("slimwork", [False, True])
    def test_matches_chunk_engine(self, kron_small, semiring, slimwork):
        roots = _roots(kron_small)
        results = assert_bfs_equivalent(
            kron_small, roots, semiring=semiring, slimwork=slimwork,
            engines=["spmv-chunk", "msbfs"])
        for res, ref in zip(results["msbfs"], results["spmv-chunk"]):
            np.testing.assert_array_equal(res.dist, ref.dist)
            np.testing.assert_array_equal(res.parent, ref.parent)

    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_sell_rep_matches_too(self, kron_small, semiring):
        rep = SellCSigma(kron_small, 8, kron_small.n)
        roots = _roots(kron_small)
        assert_bfs_equivalent(kron_small, roots, semiring=semiring, rep=rep,
                              slimwork=False,
                              engines=["traditional", "spmv-layer", "msbfs"])


class TestCounterSynthesis:
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    @pytest.mark.parametrize("slimwork", [False, True])
    def test_per_source_counters_match_chunk_engine(self, kron_small,
                                                    semiring, slimwork):
        """Each column's synthesized counters equal the instruction-counted
        single-source chunk engine's — batching is free of modeling drift."""
        rep = SlimSell(kron_small, 8, kron_small.n)
        roots = np.array([3, 10])
        batched = MultiSourceBFS(rep, semiring, slimwork=slimwork,
                                 counting=True).run(roots)
        for r, res in zip(roots, batched):
            ref = BFSSpMV(rep, semiring, engine="chunk", counting=True,
                          slimwork=slimwork).run(int(r))
            for a, b in zip(res.iterations, ref.iterations):
                assert a.counters.instructions == b.counters.instructions
                assert a.counters.words_loaded == b.counters.words_loaded
                assert a.counters.words_stored == b.counters.words_stored
                assert a.counters.gather_words == b.counters.gather_words

    def test_batch_dimension_amortizes_operand_streams(self):
        """synthesize_counters(batch=B) must charge the col stream once:
        strictly cheaper than B independent single-source iterations."""
        sr = get_semiring("tropical")
        single = synthesize_counters(sr, 8, True, 4, 0, 20, False)
        batched = synthesize_counters(sr, 8, True, 4, 0, 20, False, batch=8)
        assert batched.instructions["LOAD"] < 8 * single.instructions["LOAD"]
        # Gathers and compute lanes still scale with B.
        assert batched.instructions["GATHER"] == 8 * single.instructions["GATHER"]
        assert batched.instructions["MIN"] == 8 * single.instructions["MIN"]

    def test_batch_one_is_exact_single_source_model(self):
        sr = get_semiring("sel-max")
        a = synthesize_counters(sr, 16, True, 3, 2, 11, True)
        b = synthesize_counters(sr, 16, True, 3, 2, 11, True, batch=1)
        assert a.instructions == b.instructions
        assert a.words_loaded == b.words_loaded

    def test_batch_validation(self):
        with pytest.raises(ValueError, match="batch"):
            synthesize_counters(get_semiring("tropical"), 8, True, 1, 0, 1,
                                False, batch=0)


class TestEdgeCases:
    def test_duplicate_roots(self, kron_small):
        rep = SlimSell(kron_small, 8, kron_small.n)
        res = MultiSourceBFS(rep, "sel-max", slimwork=True).run([5, 5, 5])
        ref = BFSSpMV(rep, "sel-max", slimwork=True).run(5)
        for r in res:
            np.testing.assert_array_equal(r.dist, ref.dist)
            np.testing.assert_array_equal(r.parent, ref.parent)

    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_isolated_root_terminates_immediately(self, disconnected,
                                                  semiring):
        g = disconnected  # vertex 8 is isolated
        rep = SlimSell(g, 4, g.n)
        res = MultiSourceBFS(rep, semiring, slimwork=True).run([8, 0])
        iso = res[0]
        assert iso.reached == 1
        assert iso.dist[8] == 0
        ref = BFSSpMV(rep, semiring, slimwork=True).run(8)
        assert len(iso.iterations) == len(ref.iterations)
        np.testing.assert_array_equal(iso.dist, ref.dist)

    def test_batch_wider_than_graph(self, disconnected):
        g = disconnected
        rep = SlimSell(g, 4, g.n)
        roots = np.arange(g.n).repeat(2)  # B = 2n > n
        res = MultiSourceBFS(rep, "tropical").run(roots)
        assert len(res) == 2 * g.n
        single = BFSSpMV(rep, "tropical")
        for r, got in zip(roots, res):
            np.testing.assert_array_equal(got.dist, single.run(int(r)).dist)

    def test_root_validation(self, kron_small):
        rep = SlimSell(kron_small, 8)
        with pytest.raises(ValueError, match="out of range"):
            MultiSourceBFS(rep, "tropical").run([0, kron_small.n])
        with pytest.raises(ValueError, match="non-empty"):
            MultiSourceBFS(rep, "tropical").run([])

    def test_results_ordered_like_roots(self, kron_small):
        rep = SlimSell(kron_small, 8)
        roots = [9, 2, 40]
        res = MultiSourceBFS(rep, "tropical").run(roots)
        assert [r.root for r in res] == roots

    def test_method_label(self, kron_small):
        rep = SlimSell(kron_small, 8)
        res = MultiSourceBFS(rep, "tropical", slimwork=True).run([0])
        assert res[0].method == "spmv-msbfs+slimwork"


class TestBFSSpMVBatchAPI:
    def test_run_many_sequential_vs_batched(self, kron_small):
        rep = SlimSell(kron_small, 8, kron_small.n)
        roots = _roots(kron_small)
        seq = BFSSpMV(rep, "sel-max", slimwork=True).run_many(roots)
        bat = BFSSpMV(rep, "sel-max", slimwork=True,
                      batch=2).run_many(roots)
        for a, b in zip(seq, bat):
            np.testing.assert_array_equal(a.dist, b.dist)
            np.testing.assert_array_equal(a.parent, b.parent)

    def test_chunk_engine_falls_back_to_sequential(self, kron_small):
        rep = SlimSell(kron_small, 8)
        eng = BFSSpMV(rep, "tropical", engine="chunk", batch=4)
        res = eng.run_many([0, 1])
        assert all(r.method.startswith("spmv-chunk") for r in res)

    def test_batch_validation(self, kron_small):
        rep = SlimSell(kron_small, 8)
        with pytest.raises(ValueError, match="batch"):
            BFSSpMV(rep, "tropical", batch=0)

    def test_bfs_msbfs_convenience_chops_batches(self, kron_small):
        res = bfs_msbfs(kron_small, [0, 1, 2, 3, 4], "tropical", C=8,
                        batch=2)
        assert len(res) == 5
        ref = bfs_msbfs(kron_small, [0, 1, 2, 3, 4], "tropical", C=8)
        for a, b in zip(res, ref):
            np.testing.assert_array_equal(a.dist, b.dist)


class TestOperatorMatmat:
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_matmat_columns_equal_matvec(self, kron_small, semiring):
        rep = SlimSell(kron_small, 8, 64)
        op = SlimSpMV(rep, semiring)
        rng = np.random.default_rng(3)
        X = rng.random((kron_small.n, 6)) * 4
        if semiring == "boolean":
            X = (X > 2).astype(float)
        Y = op.matmat(X)
        for b in range(X.shape[1]):
            np.testing.assert_array_equal(Y[:, b], op(X[:, b]))

    def test_matmat_shape_validation(self, kron_small):
        op = SlimSpMV(SlimSell(kron_small, 8), "real")
        with pytest.raises(ValueError, match="shape"):
            op.matmat(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="shape"):
            op.matmat(np.zeros(kron_small.n))


class TestBatchCounters:
    def test_aggregate_cheaper_than_sum_of_sources(self, kron_small):
        rep = SlimSell(kron_small, 8, kron_small.n)
        eng = MultiSourceBFS(rep, "tropical", counting=True)
        results = eng.run([0, 1, 2, 3])
        agg = eng.batch_counters()
        per_src = sum(
            sum(it.counters.instructions["LOAD"] for it in r.iterations)
            for r in results)
        assert agg.instructions["LOAD"] < per_src

    def test_slimwork_union_stream_covers_every_source(self, disconnected):
        """Under SlimWork with sources in different components, the
        aggregate model must charge the union of the active chunk sets,
        not any single source's footprint."""
        rep = SlimSell(disconnected, 4, disconnected.n)
        eng = MultiSourceBFS(rep, "tropical", slimwork=True, counting=True)
        results = eng.run([0, 4])  # K4 component and path component
        agg = eng.batch_counters()
        _, union_stats = eng._last_sweep
        for (proc, _, _), stats in zip(
                union_stats, zip(*[r.iterations for r in results])):
            assert proc >= max(s.chunks_processed for s in stats)
        assert agg.total_instructions > 0

    def test_requires_prior_run(self, kron_small):
        eng = MultiSourceBFS(SlimSell(kron_small, 8), "tropical")
        with pytest.raises(RuntimeError, match="run"):
            eng.batch_counters()
