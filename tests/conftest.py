"""Shared fixtures: canonical small graphs and generated workloads."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as _hyp_settings

# "chaos" widens the fault-injection property tests (CI runs the chaos job
# with HYPOTHESIS_PROFILE=chaos); the default profile keeps local runs fast.
_hyp_settings.register_profile("chaos", max_examples=300, deadline=None)
_hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

from repro.graphs.graph import Graph
from repro.graphs.kronecker import kronecker
from repro.graphs.erdos_renyi import erdos_renyi_nm

SEMIRING_NAMES = ["tropical", "real", "boolean", "sel-max"]


def path_graph(n: int) -> Graph:
    e = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    return Graph.from_edges(n, e)


def cycle_graph(n: int) -> Graph:
    e = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    return Graph.from_edges(n, e)


def star_graph(n: int) -> Graph:
    e = np.stack([np.zeros(n - 1, dtype=np.int64), np.arange(1, n)], axis=1)
    return Graph.from_edges(n, e)


def complete_graph(n: int) -> Graph:
    u, v = np.triu_indices(n, k=1)
    return Graph.from_edges(n, np.stack([u, v], axis=1))


def two_components() -> Graph:
    # K4 on {0..3} and a path on {4..7}; vertex 8 isolated.
    u, v = np.triu_indices(4, k=1)
    k4 = np.stack([u, v], axis=1)
    pth = np.array([[4, 5], [5, 6], [6, 7]])
    return Graph.from_edges(9, np.concatenate([k4, pth]))


@pytest.fixture
def path10() -> Graph:
    return path_graph(10)


@pytest.fixture
def cycle12() -> Graph:
    return cycle_graph(12)


@pytest.fixture
def star16() -> Graph:
    return star_graph(16)


@pytest.fixture
def complete8() -> Graph:
    return complete_graph(8)


@pytest.fixture
def disconnected() -> Graph:
    return two_components()


@pytest.fixture(scope="session")
def kron_small() -> Graph:
    """A 512-vertex Kronecker graph (power-law, possibly disconnected)."""
    return kronecker(9, 8, seed=7)


@pytest.fixture(scope="session")
def kron_medium() -> Graph:
    """A 2048-vertex Kronecker graph for engine-level tests."""
    return kronecker(11, 8, seed=11)


@pytest.fixture(scope="session")
def er_small() -> Graph:
    """A 512-vertex Erdős–Rényi graph with ρ̄ ≈ 8."""
    return erdos_renyi_nm(512, 512 * 4, seed=13)


@pytest.fixture(params=SEMIRING_NAMES)
def semiring_name(request) -> str:
    return request.param
