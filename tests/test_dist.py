"""Tests of the distributed-memory BFS simulation (§VI)."""

import numpy as np
import pytest

from repro.bfs.validate import reference_distances
from repro.dist.bfs1d import bfs_dist_1d
from repro.dist.network import CRAY_ARIES, ETHERNET_10G, Network, model_allgather
from repro.dist.partition import Partition1D
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker
from repro.vec.machine import get_machine

KNL = get_machine("knl")


class TestPartition:
    def test_blocks_cover_all_chunks(self):
        p = Partition1D.blocks(10, 3)
        owned = np.concatenate([p.chunks_of(r) for r in range(3)])
        assert np.array_equal(np.sort(owned), np.arange(10))

    def test_owner_of_roundtrip(self):
        p = Partition1D.blocks(12, 4)
        for r in range(4):
            for c in p.chunks_of(r):
                assert p.owner_of(int(c)) == r

    def test_balanced_equalizes_skewed_work(self):
        cl = np.array([100, 90, 80, 1, 1, 1, 1, 1, 1, 1, 1, 1], dtype=np.int64)
        blocks = Partition1D.blocks(cl.size, 4).work_per_rank(cl)
        balanced = Partition1D.balanced(cl, 4).work_per_rank(cl)
        assert balanced.max() < blocks.max()

    def test_single_rank(self):
        p = Partition1D.blocks(7, 1)
        assert p.ranks == 1
        assert p.chunks_of(0).size == 7

    def test_more_ranks_than_chunks(self):
        p = Partition1D.blocks(2, 5)
        owned = np.concatenate([p.chunks_of(r) for r in range(5)])
        assert np.array_equal(np.sort(owned), np.arange(2))

    def test_invalid_ranks(self):
        with pytest.raises(ValueError, match="ranks"):
            Partition1D.blocks(4, 0)
        with pytest.raises(ValueError, match="ranks"):
            Partition1D.balanced(np.ones(4, dtype=np.int64), 0)


class TestNetworkModel:
    def test_single_rank_free(self):
        assert model_allgather(CRAY_ARIES, 1, 10**6) == 0.0

    def test_latency_and_bandwidth_terms(self):
        net = Network("toy", latency_s=1e-6, bandwidth_gbs=1.0)
        t = model_allgather(net, 4, 8 * 10**6)
        assert t == pytest.approx(2e-6 + 8e6 * 0.75 / 1e9)

    def test_aries_faster_than_ethernet(self):
        assert model_allgather(CRAY_ARIES, 8, 10**6) < model_allgather(
            ETHERNET_10G, 8, 10**6)

    def test_invalid_ranks(self):
        with pytest.raises(ValueError, match="ranks"):
            model_allgather(CRAY_ARIES, 0, 100)


class TestDistributedBFS:
    @pytest.fixture(scope="class")
    def setup(self):
        g = kronecker(9, 8, seed=21)
        rep = SlimSell(g, 8, g.n)
        root = int(np.argmax(g.degrees))
        return g, rep, root, reference_distances(g, root)

    @pytest.mark.parametrize("ranks", [1, 2, 3, 8])
    def test_exact_distances_any_rank_count(self, setup, ranks):
        g, rep, root, ref = setup
        for part in (Partition1D.blocks(rep.nc, ranks),
                     Partition1D.balanced(rep.cl, ranks)):
            res = bfs_dist_1d(rep, root, part, KNL, CRAY_ARIES)
            same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
            assert same.all()

    def test_balanced_partition_lowers_imbalance(self, setup):
        g, rep, root, _ = setup
        blocks = bfs_dist_1d(rep, root, Partition1D.blocks(rep.nc, 8),
                             KNL, CRAY_ARIES)
        balanced = bfs_dist_1d(rep, root, Partition1D.balanced(rep.cl, 8),
                               KNL, CRAY_ARIES)
        assert balanced.iterations[0].imbalance < blocks.iterations[0].imbalance

    def test_comm_volume_is_frontier_allgather(self, setup):
        g, rep, root, _ = setup
        res = bfs_dist_1d(rep, root, Partition1D.blocks(rep.nc, 4),
                          KNL, CRAY_ARIES)
        assert all(it.comm_bytes == 4 * rep.N for it in res.iterations)

    def test_single_rank_has_no_comm(self, setup):
        g, rep, root, _ = setup
        res = bfs_dist_1d(rep, root, Partition1D.blocks(rep.nc, 1),
                          KNL, CRAY_ARIES)
        assert res.total_comm_bytes == 0
        assert all(it.t_comm_s == 0.0 for it in res.iterations)

    def test_slimwork_reduces_rank_lanes(self, setup):
        g, rep, root, _ = setup
        on = bfs_dist_1d(rep, root, Partition1D.blocks(rep.nc, 4),
                         KNL, CRAY_ARIES, slimwork=True)
        off = bfs_dist_1d(rep, root, Partition1D.blocks(rep.nc, 4),
                          KNL, CRAY_ARIES, slimwork=False)
        assert (sum(it.rank_lanes.sum() for it in on.iterations)
                < sum(it.rank_lanes.sum() for it in off.iterations))

    def test_partition_must_cover_chunks(self, setup):
        g, rep, root, _ = setup
        bad = Partition1D(np.array([0, rep.nc - 1]))
        with pytest.raises(ValueError, match="cover"):
            bfs_dist_1d(rep, root, bad, KNL, CRAY_ARIES)

    def test_root_out_of_range(self, setup):
        g, rep, _, _ = setup
        with pytest.raises(ValueError, match="out of range"):
            bfs_dist_1d(rep, g.n + 1, Partition1D.blocks(rep.nc, 2),
                        KNL, CRAY_ARIES)

    def test_modeled_totals_positive(self, setup):
        g, rep, root, _ = setup
        res = bfs_dist_1d(rep, root, Partition1D.blocks(rep.nc, 4),
                          KNL, CRAY_ARIES)
        assert res.modeled_total_s > 0
        assert res.wall_time_s > 0
