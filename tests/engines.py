"""Cross-engine differential-testing oracle for every BFS in the library.

The repository has grown a zoo of BFS engines — traditional queue BFS,
Beamer direction optimization, SpMSpV, the chunked SpMV chunk/layer
engines, the single-source push/pull hybrid, the batched all-pull and
direction-optimizing SpMM engines, and the serving layer that answers
single-root queries through them.  Instead of each test file hand-rolling
its own pairwise comparisons, this module provides:

* :func:`all_bfs_engines` — a registry mapping engine names to uniform
  multi-root runners (``spec.run(graph, rep, roots) -> [BFSResult]``),
  each tagged with the semirings it supports and its parent-derivation
  class;
* :func:`assert_bfs_equivalent` — the oracle: runs every requested engine
  over every root, checks distances bit-equal against the traditional-BFS
  reference (itself cross-checked against SciPy), validates each parent
  vector as a BFS tree, and asserts parent vectors are **bit-identical**
  within each parent-derivation class (``dp`` = DP transformation of the
  distance vector, ``native`` = sel-max's algebraic parents, search
  engines each pick their own legal tie-breaks and form singleton
  classes).

Every present and future engine gets differential-tested from this one
place: add a registry entry and every oracle-based test covers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bfs.direction_opt import bfs_direction_optimizing
from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.msbfs import MultiSourceBFS
from repro.bfs.mshybrid import MultiSourceHybridBFS
from repro.bfs.result import BFSResult
from repro.bfs.spmspv import bfs_spmspv
from repro.bfs.spmv import BFSSpMV
from repro.bfs.traditional import bfs_top_down
from repro.bfs.validate import check_parents_valid, reference_distances
from repro.exec import bfs_exec
from repro.formats.slimsell import SlimSell
from repro.graphs.graph import Graph

SEMIRINGS = ("tropical", "real", "boolean", "sel-max")


@dataclass(frozen=True)
class EngineSpec:
    """One registered BFS engine, normalized to a multi-root runner."""

    name: str
    #: ``run(graph, rep, roots) -> list[BFSResult]`` in root order.
    run: Callable[[Graph, SlimSell, np.ndarray], list[BFSResult]]
    #: Semirings the engine supports (traversal-only engines accept all).
    semirings: tuple[str, ...]
    #: Engines in the same class must produce bit-identical parents.
    parent_class: str


def _per_root(fn):
    """Lift a single-source callable to the multi-root runner signature."""
    return lambda graph, rep, roots: [fn(graph, rep, int(r)) for r in roots]


def all_bfs_engines(semiring: str = "tropical", *, slimwork: bool = True,
                    alpha: float = 14.0, exec_workers: int = 2,
                    exec_backend: str = "serial") -> dict[str, EngineSpec]:
    """Registry of every BFS engine, keyed by name.

    ``semiring``/``slimwork``/``alpha`` configure the algebraic engines;
    traversal engines (traditional, direction-opt) ignore them.  The
    algebraic engines' parent class is ``"native"`` under sel-max (parents
    come out of the algebra) and ``"dp"`` otherwise — except SpMSpV, which
    always derives parents via DP.  ``exec_workers``/``exec_backend``
    configure the executed parallel engine ("exec"), whose results must
    not depend on either.
    """
    algebraic_parents = "native" if semiring == "sel-max" else "dp"

    def spmv(engine):
        return _per_root(lambda g, rep, r: BFSSpMV(
            rep, semiring, engine=engine, slimwork=slimwork).run(r))

    specs = [
        EngineSpec("traditional",
                   _per_root(lambda g, rep, r: bfs_top_down(g, r)),
                   SEMIRINGS, "search-queue"),
        EngineSpec("direction-opt",
                   _per_root(lambda g, rep, r: bfs_direction_optimizing(g, r)),
                   SEMIRINGS, "search-beamer"),
        EngineSpec("spmspv",
                   _per_root(lambda g, rep, r: bfs_spmspv(g, r, semiring)),
                   SEMIRINGS, "dp"),
        EngineSpec("spmv-layer", spmv("layer"), SEMIRINGS, algebraic_parents),
        EngineSpec("spmv-chunk", spmv("chunk"), SEMIRINGS, algebraic_parents),
        EngineSpec("hybrid",
                   _per_root(lambda g, rep, r: bfs_hybrid(rep, r, alpha=alpha)),
                   ("tropical",), "dp"),
        EngineSpec("msbfs",
                   lambda g, rep, roots: MultiSourceBFS(
                       rep, semiring, slimwork=slimwork).run(roots),
                   SEMIRINGS, algebraic_parents),
        EngineSpec("exec",
                   lambda g, rep, roots: bfs_exec(
                       rep, roots, semiring, workers=exec_workers,
                       backend=exec_backend, slimwork=slimwork),
                   SEMIRINGS, algebraic_parents),
        EngineSpec("mshybrid",
                   lambda g, rep, roots: MultiSourceHybridBFS(
                       rep, semiring, alpha=alpha,
                       slimwork=slimwork).run(roots),
                   SEMIRINGS, algebraic_parents),
        EngineSpec("serve",
                   lambda g, rep, roots: _serve_run(
                       rep, semiring, roots, alpha=alpha, slimwork=slimwork),
                   SEMIRINGS, algebraic_parents),
    ]
    return {s.name: s for s in specs}


def _serve_run(rep, semiring: str, roots: np.ndarray, *, alpha: float,
               slimwork: bool) -> list[BFSResult]:
    """Answer ``roots`` through the serving layer, one query per root.

    Deliberately adversarial configuration for an equivalence check: a
    small ``max_batch`` forces several width-triggered dispatches plus a
    partial drain, the cache stays on so repeated roots exercise the hit
    path, and duplicate roots within one pending window coalesce — the
    oracle then proves none of that machinery changes a single bit.
    """
    from repro.serve.server import Server

    server = Server(rep, max_batch=4, max_wait=60.0, cache_size=64,
                    alpha=alpha, slimwork=slimwork)
    tickets = [server.submit(int(r), semiring=semiring, now=0.0)
               for r in roots]
    server.drain(now=0.0)
    return [t.result().bfs for t in tickets]


def assert_bfs_equivalent(
    graph: Graph,
    roots,
    *,
    semiring: str = "tropical",
    C: int = 8,
    slimwork: bool = True,
    alpha: float = 14.0,
    exec_workers: int = 2,
    exec_backend: str = "serial",
    engines: list[str] | None = None,
    rep: SlimSell | None = None,
) -> dict[str, list[BFSResult]]:
    """Differential-test BFS engines against the traditional-BFS reference.

    Runs every engine in ``engines`` (default: all that support
    ``semiring``) from every root in ``roots`` and asserts, per root:

    * the result's ``root`` field and output order match the input;
    * distances are bit-equal to :func:`bfs_top_down`'s (which is itself
      cross-checked against SciPy's BFS once per root);
    * the parent vector encodes a valid BFS tree for those distances;
    * parent vectors are bit-identical across engines of the same
      parent-derivation class.

    Returns ``{engine_name: [BFSResult, ...]}`` so callers can pile on
    engine-specific assertions (iteration profiles, direction labels, …)
    without re-running anything.
    """
    roots = np.asarray(roots, dtype=np.int64)
    specs = all_bfs_engines(semiring, slimwork=slimwork, alpha=alpha,
                            exec_workers=exec_workers,
                            exec_backend=exec_backend)
    if engines is not None:
        unknown = set(engines) - set(specs)
        if unknown:
            raise KeyError(f"unknown engines {sorted(unknown)}; "
                           f"available: {sorted(specs)}")
        # An explicitly requested engine must actually run: silently
        # skipping it would let a test pass while covering nothing.
        unsupported = [n for n in engines
                       if semiring not in specs[n].semirings]
        if unsupported:
            raise ValueError(f"engines {unsupported} do not support "
                             f"semiring {semiring!r}")
        specs = {name: specs[name] for name in engines}
    if rep is None:
        rep = SlimSell(graph, C, graph.n)

    # The oracle: the repo's traditional BFS, pinned to SciPy.  Reused as
    # the "traditional" engine's output so it runs once per unique root.
    ref_res: dict[int, BFSResult] = {}
    for r in np.unique(roots):
        res = bfs_top_down(graph, int(r))
        scipy_ref = reference_distances(graph, int(r))
        same = (res.dist == scipy_ref) | (np.isinf(res.dist) & np.isinf(scipy_ref))
        assert same.all(), f"traditional BFS diverges from SciPy at root {r}"
        ref_res[int(r)] = res
    ref = {r: res.dist for r, res in ref_res.items()}

    results: dict[str, list[BFSResult]] = {}
    for name, spec in specs.items():
        if semiring not in spec.semirings:
            continue  # default-all selection: engine opts out
        if name == "traditional":
            out = [ref_res[int(r)] for r in roots]
        else:
            out = spec.run(graph, rep, roots)
        assert len(out) == roots.size, \
            f"{name}: {len(out)} results for {roots.size} roots"
        for r, res in zip(roots, out):
            assert res.root == int(r), \
                f"{name}: result root {res.root} != requested {int(r)}"
            exp = ref[int(r)]
            same = (res.dist == exp) | (np.isinf(res.dist) & np.isinf(exp))
            assert same.all(), (
                f"{name}: root {int(r)} distances diverge from the "
                f"traditional reference at vertices "
                f"{np.flatnonzero(~same)[:10].tolist()}")
            if res.parent is not None:
                check_parents_valid(graph, res)
        results[name] = out

    # Bit-identity of parents within each parent-derivation class.
    by_class: dict[str, list[str]] = {}
    for name in results:
        by_class.setdefault(specs[name].parent_class, []).append(name)
    for names in by_class.values():
        base = names[0]
        for other in names[1:]:
            for a, b in zip(results[base], results[other]):
                if a.parent is None or b.parent is None:
                    continue
                np.testing.assert_array_equal(
                    a.parent, b.parent,
                    err_msg=f"{base} vs {other}: parents diverge "
                            f"(root {a.root}, semiring {semiring})")
    return results
