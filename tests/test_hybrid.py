"""Tests of the push/pull hybrid algebraic BFS (Fig 1's direction-opt curve).

Correctness is differential-tested through the shared cross-engine oracle
(:mod:`engines`); this file keeps only the hybrid-specific behavior —
direction switching and the push/pull iteration-stats contract.
"""

import numpy as np
import pytest

from repro.bfs.hybrid import bfs_hybrid
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker

from conftest import cycle_graph, path_graph, star_graph, two_components
from engines import assert_bfs_equivalent


class TestCorrectness:
    @pytest.mark.parametrize("root", [0, 7, 300])
    def test_oracle_equivalence_on_kronecker(self, kron_small, root):
        assert_bfs_equivalent(kron_small, [root],
                              engines=["traditional", "hybrid",
                                       "spmv-layer"])

    def test_canonical_graphs(self):
        for g, root in ((path_graph(11), 0), (cycle_graph(9), 4),
                        (star_graph(8), 3), (two_components(), 0)):
            assert_bfs_equivalent(g, [root], C=4,
                                  engines=["traditional", "hybrid"])

    def test_works_on_sell_c_sigma_too(self, kron_small):
        rep = SellCSigma(kron_small, 8, kron_small.n)
        assert_bfs_equivalent(kron_small, [2], rep=rep,
                              engines=["traditional", "hybrid"])

    def test_root_out_of_range(self, kron_small):
        rep = SlimSell(kron_small, 8)
        with pytest.raises(ValueError, match="out of range"):
            bfs_hybrid(rep, kron_small.n)


class TestDirectionSwitching:
    def test_dense_graph_pulls_mid_traversal(self):
        g = kronecker(10, 16, seed=1)
        rep = SlimSell(g, 8, g.n)
        res = bfs_hybrid(rep, int(np.argmax(g.degrees)))
        dirs = [it.direction for it in res.iterations]
        assert "pull" in dirs
        assert dirs[0] == "push"  # the root's frontier is tiny

    def test_tiny_alpha_stays_push(self):
        g = kronecker(9, 8, seed=2)
        rep = SlimSell(g, 8, g.n)
        res = bfs_hybrid(rep, 0, alpha=1e-9)
        assert all(it.direction == "push" for it in res.iterations)

    def test_push_iterations_report_edges_pull_report_chunks(self):
        g = kronecker(10, 16, seed=3)
        rep = SlimSell(g, 8, g.n)
        res = bfs_hybrid(rep, int(np.argmax(g.degrees)))
        for it in res.iterations:
            if it.direction == "push":
                assert it.chunks_processed == 0
                # Contract: work_lanes mirrors the sparse work on push.
                assert it.work_lanes == it.edges_examined
            else:
                assert it.chunks_processed > 0
                assert it.edges_examined == 0
                assert it.work_lanes % rep.C == 0

    def test_pull_uses_slimwork_pruning(self):
        g = kronecker(10, 16, seed=4)
        rep = SlimSell(g, 8, g.n)
        res = bfs_hybrid(rep, int(np.argmax(g.degrees)))
        pulls = [it for it in res.iterations if it.direction == "pull"]
        assert pulls and any(it.chunks_skipped > 0 for it in pulls)

    def test_method_label(self, kron_small):
        rep = SlimSell(kron_small, 8)
        assert bfs_hybrid(rep, 0).method == "spmv-hybrid"
