"""Tests of the push/pull hybrid algebraic BFS (Fig 1's direction-opt curve)."""

import numpy as np
import pytest

from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.validate import check_parents_valid, reference_distances
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker

from conftest import cycle_graph, path_graph, star_graph, two_components


class TestCorrectness:
    @pytest.mark.parametrize("root", [0, 7, 300])
    def test_matches_reference_on_kronecker(self, kron_small, root):
        rep = SlimSell(kron_small, 8, kron_small.n)
        ref = reference_distances(kron_small, root)
        res = bfs_hybrid(rep, root)
        same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
        assert same.all()
        check_parents_valid(kron_small, res)

    def test_canonical_graphs(self):
        for g, root in ((path_graph(11), 0), (cycle_graph(9), 4),
                        (star_graph(8), 3), (two_components(), 0)):
            rep = SlimSell(g, 4, g.n)
            ref = reference_distances(g, root)
            res = bfs_hybrid(rep, root)
            same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
            assert same.all()

    def test_works_on_sell_c_sigma_too(self, kron_small):
        rep = SellCSigma(kron_small, 8, kron_small.n)
        ref = reference_distances(kron_small, 2)
        res = bfs_hybrid(rep, 2)
        same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
        assert same.all()

    def test_root_out_of_range(self, kron_small):
        rep = SlimSell(kron_small, 8)
        with pytest.raises(ValueError, match="out of range"):
            bfs_hybrid(rep, kron_small.n)


class TestDirectionSwitching:
    def test_dense_graph_pulls_mid_traversal(self):
        g = kronecker(10, 16, seed=1)
        rep = SlimSell(g, 8, g.n)
        res = bfs_hybrid(rep, int(np.argmax(g.degrees)))
        dirs = [it.direction for it in res.iterations]
        assert "pull" in dirs
        assert dirs[0] == "push"  # the root's frontier is tiny

    def test_tiny_alpha_stays_push(self):
        g = kronecker(9, 8, seed=2)
        rep = SlimSell(g, 8, g.n)
        res = bfs_hybrid(rep, 0, alpha=1e-9)
        assert all(it.direction == "push" for it in res.iterations)

    def test_push_iterations_report_edges_pull_report_chunks(self):
        g = kronecker(10, 16, seed=3)
        rep = SlimSell(g, 8, g.n)
        res = bfs_hybrid(rep, int(np.argmax(g.degrees)))
        for it in res.iterations:
            if it.direction == "push":
                assert it.chunks_processed == 0
            else:
                assert it.chunks_processed > 0
                assert it.edges_examined == 0

    def test_pull_uses_slimwork_pruning(self):
        g = kronecker(10, 16, seed=4)
        rep = SlimSell(g, 8, g.n)
        res = bfs_hybrid(rep, int(np.argmax(g.degrees)))
        pulls = [it for it in res.iterations if it.direction == "pull"]
        assert pulls and any(it.chunks_skipped > 0 for it in pulls)

    def test_method_label(self, kron_small):
        rep = SlimSell(kron_small, 8)
        assert bfs_hybrid(rep, 0).method == "spmv-hybrid"
