"""Tests of the application layer (betweenness, PageRank, connectivity)."""

import numpy as np
import pytest

from repro.apps.betweenness import betweenness_centrality
from repro.apps.connectivity import Reachability, components_via_bfs
from repro.apps.pagerank import pagerank
from repro.formats.slimsell import SlimSell
from repro.graphs.graph import Graph
from repro.graphs.kronecker import kronecker
from repro.graphs.utils import connected_components

from conftest import complete_graph, cycle_graph, path_graph, star_graph, two_components


def _nx_graph(g: Graph):
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    G.add_edges_from(map(tuple, g.edges()))
    return G


class TestBetweenness:
    def test_path_graph_closed_form(self):
        # On a path, BC of interior vertex i (normalized) is known exactly.
        g = path_graph(7)
        bc = betweenness_centrality(g, C=4)
        import networkx as nx

        want = nx.betweenness_centrality(_nx_graph(g))
        np.testing.assert_allclose(bc, [want[v] for v in range(7)], atol=1e-12)

    def test_star_center_dominates(self):
        bc = betweenness_centrality(star_graph(9), C=4)
        assert bc[0] == pytest.approx(1.0)
        np.testing.assert_allclose(bc[1:], 0.0)

    def test_cycle_uniform(self):
        bc = betweenness_centrality(cycle_graph(8), C=4)
        np.testing.assert_allclose(bc, bc[0])

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_networkx_on_kronecker(self, seed):
        import networkx as nx

        g = kronecker(6, 4, seed=seed)
        bc = betweenness_centrality(g, C=8)
        want = nx.betweenness_centrality(_nx_graph(g))
        np.testing.assert_allclose(bc, [want[v] for v in range(g.n)],
                                   atol=1e-10)

    def test_disconnected(self):
        import networkx as nx

        g = two_components()
        bc = betweenness_centrality(g, C=4)
        want = nx.betweenness_centrality(_nx_graph(g))
        np.testing.assert_allclose(bc, [want[v] for v in range(g.n)],
                                   atol=1e-12)

    def test_sampled_sources_approximate(self):
        g = kronecker(7, 8, seed=3)
        exact = betweenness_centrality(g, C=8)
        approx = betweenness_centrality(
            g, C=8, sources=np.arange(0, g.n, 2))
        # Sampled estimator correlates strongly with the exact ranking.
        corr = np.corrcoef(exact, approx)[0, 1]
        assert corr > 0.9

    def test_accepts_prebuilt_rep(self):
        g = path_graph(5)
        rep = SlimSell(g, 4, g.n)
        np.testing.assert_allclose(
            betweenness_centrality(rep), betweenness_centrality(g, C=4))

    def test_unnormalized(self):
        g = path_graph(4)  # pairs through vertex 1: (0,2), (0,3) -> 2
        bc = betweenness_centrality(g, C=4, normalized=False)
        assert bc[1] == pytest.approx(2.0)

    @pytest.mark.parametrize("batch", [2, 8, 1024])
    def test_batched_matches_sequential(self, batch):
        g = kronecker(7, 6, seed=9)
        seq = betweenness_centrality(g, C=8, batch=1)
        bat = betweenness_centrality(g, C=8, batch=batch)
        np.testing.assert_allclose(bat, seq, atol=1e-12)

    def test_batched_sampled_sources(self):
        g = kronecker(7, 6, seed=9)
        srcs = np.arange(0, g.n, 3)
        seq = betweenness_centrality(g, C=8, sources=srcs, batch=1)
        bat = betweenness_centrality(g, C=8, sources=srcs, batch=16)
        np.testing.assert_allclose(bat, seq, atol=1e-12)

    def test_batch_validation(self):
        with pytest.raises(ValueError, match="batch"):
            betweenness_centrality(path_graph(4), C=4, batch=0)


class TestPageRank:
    def test_sums_to_one(self, kron_small):
        pr = pagerank(kron_small, C=8)
        assert pr.sum() == pytest.approx(1.0, abs=1e-9)

    def test_matches_networkx(self):
        import networkx as nx

        g = kronecker(7, 4, seed=5)
        pr = pagerank(g, C=8, alpha=0.85, tol=1e-12)
        want = nx.pagerank(_nx_graph(g), alpha=0.85, tol=1e-12, max_iter=500)
        np.testing.assert_allclose(pr, [want[v] for v in range(g.n)],
                                   atol=1e-8)

    def test_cycle_uniform(self):
        pr = pagerank(cycle_graph(10), C=4)
        np.testing.assert_allclose(pr, 0.1, atol=1e-9)

    def test_hub_ranks_highest(self):
        pr = pagerank(star_graph(12), C=4)
        assert pr.argmax() == 0

    def test_dangling_vertices_handled(self):
        g = Graph.from_edges(4, [(0, 1)])  # vertices 2, 3 isolated
        pr = pagerank(g, C=4)
        assert pr.sum() == pytest.approx(1.0, abs=1e-9)
        assert pr[2] == pytest.approx(pr[3])

    def test_alpha_validation(self, kron_small):
        with pytest.raises(ValueError, match="alpha"):
            pagerank(kron_small, alpha=1.5)

    def test_nonconvergence_raises(self, kron_small):
        with pytest.raises(RuntimeError, match="converge"):
            pagerank(kron_small, C=8, tol=0.0, max_iters=2)

    def test_empty_graph(self):
        assert pagerank(Graph.empty(0)).size == 0


class TestConnectivity:
    def test_components_match_reference(self, kron_small):
        ours = components_via_bfs(kron_small, C=8)
        ref = connected_components(kron_small)
        # Same partition (labels may differ): bijection between label sets.
        pairs = set(zip(ours.tolist(), ref.tolist()))
        assert len(pairs) == len(set(ours.tolist())) == len(set(ref.tolist()))

    def test_two_components_plus_isolate(self):
        lab = components_via_bfs(two_components(), C=4)
        assert len(set(lab.tolist())) == 3

    def test_complete_graph_single_component(self):
        lab = components_via_bfs(complete_graph(6), C=4)
        assert np.all(lab == lab[0])

    @pytest.mark.parametrize("batch", [2, 4, 64])
    def test_batched_labels_identical_to_sequential(self, batch):
        g = kronecker(8, 2, seed=1)  # sparse: many components + isolates
        seq = components_via_bfs(g, C=8, batch=1)
        bat = components_via_bfs(g, C=8, batch=batch)
        np.testing.assert_array_equal(seq, bat)

    def test_batched_two_components_plus_isolate(self):
        lab = components_via_bfs(two_components(), C=4, batch=8)
        np.testing.assert_array_equal(
            lab, components_via_bfs(two_components(), C=4, batch=1))

    def test_connectivity_batch_validation(self):
        with pytest.raises(ValueError, match="batch"):
            components_via_bfs(path_graph(4), C=4, batch=0)

    def test_reachability_oracle(self):
        g = two_components()
        r = Reachability(g, C=4)
        assert r.reachable(0, 3)
        assert not r.reachable(0, 5)
        assert r.hops(4, 7) == 3
        assert r.hops(0, 8) is None
        assert r.cached_sources == 2  # sources 0 and 4

    def test_reachability_cache_reused(self):
        g = path_graph(6)
        r = Reachability(g, C=4)
        d1 = r.distances_from(0)
        d2 = r.distances_from(0)
        assert d1 is d2
