"""Tests of the terminal plotting utilities."""

import numpy as np
import pytest

from repro.plot import ascii_bars, ascii_plot


class TestAsciiPlot:
    def test_renders_markers_and_legend(self):
        out = ascii_plot({"a": [1, 2, 3], "b": [3, 2, 1]}, width=20, height=6)
        assert "*" in out and "o" in out
        assert "* a" in out and "o b" in out

    def test_title_and_xlabel(self):
        out = ascii_plot({"s": [1, 2]}, title="T", xlabel="iteration")
        assert out.splitlines()[0] == "T"
        assert "iteration" in out

    def test_empty(self):
        assert ascii_plot({}) == "(empty plot)"
        assert ascii_plot({"a": []}) == "(empty plot)"

    def test_infinite_values_skipped(self):
        out = ascii_plot({"a": [1.0, np.inf, 3.0]}, width=12, height=4)
        assert "*" in out

    def test_all_infinite(self):
        assert ascii_plot({"a": [np.inf]}) == "(no finite data)"

    def test_constant_series(self):
        out = ascii_plot({"a": [5, 5, 5]}, width=10, height=4)
        assert "*" in out  # no division by zero

    def test_logy(self):
        out = ascii_plot({"a": [1e-6, 1e-3, 1.0]}, logy=True, height=5)
        assert "1e0.0" in out

    def test_logy_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_plot({"a": [0.0, 1.0]}, logy=True)

    def test_dimensions_respected(self):
        out = ascii_plot({"a": list(range(50))}, width=30, height=8)
        body = [ln for ln in out.splitlines() if "|" in ln]
        assert len(body) == 8
        assert all(len(ln.split("|", 1)[1]) <= 30 for ln in body)


class TestAsciiBars:
    def test_proportional_bars(self):
        out = ascii_bars({"x": 1.0, "y": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_values(self):
        out = ascii_bars({"x": 0.0})
        assert "#" not in out

    def test_empty(self):
        assert ascii_bars({}) == "(empty chart)"

    def test_title(self):
        assert ascii_bars({"x": 1.0}, title="sizes").startswith("sizes")
