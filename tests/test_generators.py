"""Tests for the Kronecker and Erdős–Rényi generators."""

import numpy as np
import pytest

from repro.graphs.erdos_renyi import _pairs_from_ranks, erdos_renyi, erdos_renyi_nm
from repro.graphs.kronecker import GRAPH500_INITIATOR, kronecker, kronecker_edges


class TestKronecker:
    def test_vertex_count(self):
        g = kronecker(8, 4, seed=0)
        assert g.n == 256

    def test_edge_count_near_edgefactor(self):
        # Dedup and self-loop removal shave a bit off edgefactor * n.
        g = kronecker(10, 8, seed=1)
        assert 0.5 * 8 * 1024 < g.m <= 8 * 1024

    def test_determinism(self):
        assert kronecker(8, 4, seed=42) == kronecker(8, 4, seed=42)

    def test_seed_changes_graph(self):
        assert kronecker(8, 4, seed=1) != kronecker(8, 4, seed=2)

    def test_power_law_skew(self):
        # R-MAT graphs are skewed: max degree far above the average.
        g = kronecker(11, 8, seed=3)
        assert g.max_degree > 5 * g.avg_degree

    def test_raw_edges_shape_and_range(self):
        e = kronecker_edges(6, 4, seed=0)
        assert e.shape == (4 * 64, 2)
        assert e.min() >= 0 and e.max() < 64

    def test_initiator_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            kronecker_edges(4, 2, initiator=(0.5, 0.5, 0.5, 0.5))

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            kronecker_edges(-1, 2)

    def test_scale_zero(self):
        g = kronecker(0, 4, seed=0)
        assert g.n == 1 and g.m == 0

    def test_default_initiator_is_graph500(self):
        assert GRAPH500_INITIATOR == (0.57, 0.19, 0.19, 0.05)


class TestPairUnranking:
    def test_all_ranks_bijective(self):
        n = 13
        total = n * (n - 1) // 2
        pairs = _pairs_from_ranks(np.arange(total), n)
        assert (pairs[:, 0] < pairs[:, 1]).all()
        assert pairs.min() >= 0 and pairs.max() < n
        keys = pairs[:, 0] * n + pairs[:, 1]
        assert np.unique(keys).size == total

    def test_first_and_last_rank(self):
        n = 10
        assert _pairs_from_ranks(np.array([0]), n).tolist() == [[0, 1]]
        last = n * (n - 1) // 2 - 1
        assert _pairs_from_ranks(np.array([last]), n).tolist() == [[n - 2, n - 1]]

    def test_large_n_no_float_drift(self):
        n = 1 << 20
        total = n * (n - 1) // 2
        ranks = np.array([0, 1, n - 2, n - 1, total - 1, total // 2], dtype=np.int64)
        pairs = _pairs_from_ranks(ranks, n)
        assert (pairs[:, 0] < pairs[:, 1]).all()
        # Verify the unranking is self-consistent: re-rank and compare.
        u, v = pairs[:, 0], pairs[:, 1]
        rerank = u * (2 * n - u - 1) // 2 + (v - u - 1)
        assert np.array_equal(rerank, ranks)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi_nm(100, 250, seed=0)
        assert g.n == 100 and g.m == 250

    def test_zero_edges(self):
        g = erdos_renyi_nm(10, 0, seed=0)
        assert g.m == 0

    def test_complete(self):
        g = erdos_renyi_nm(8, 28, seed=0)
        assert g.m == 28
        assert g.max_degree == 7

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            erdos_renyi_nm(4, 10, seed=0)

    def test_gnp_edge_count_near_expectation(self):
        n, p = 400, 0.05
        g = erdos_renyi(n, p, seed=1)
        expect = p * n * (n - 1) / 2
        assert abs(g.m - expect) < 5 * np.sqrt(expect)

    def test_gnp_bad_probability(self):
        with pytest.raises(ValueError, match=r"p must be in \[0, 1\]"):
            erdos_renyi(10, 1.5)

    def test_gnp_degrees_near_uniform(self):
        # ER degrees concentrate: max degree close to the mean (vs power law).
        g = erdos_renyi_nm(1024, 1024 * 8, seed=2)
        assert g.max_degree < 3.5 * g.avg_degree

    def test_determinism(self):
        assert erdos_renyi_nm(64, 128, seed=9) == erdos_renyi_nm(64, 128, seed=9)
