"""Tests of the Graph500 benchmark kernel and its tree validation."""

import numpy as np
import pytest

from repro.bfs.spmv import bfs_spmv
from repro.bfs.traditional import bfs_top_down
from repro.graph500 import (
    Graph500Report,
    Graph500Run,
    ValidationError,
    run_graph500,
    sample_roots,
    validate_bfs_tree,
)
from repro.graphs.kronecker import kronecker

from conftest import path_graph, star_graph


class TestValidation:
    def test_valid_tree_passes(self, kron_small):
        res = bfs_top_down(kron_small, int(np.argmax(kron_small.degrees)))
        validate_bfs_tree(kron_small, res)

    def test_spmv_trees_pass(self, kron_small):
        for sem in ("tropical", "sel-max"):
            res = bfs_spmv(kron_small, 5, sem, C=8, slimwork=True)
            validate_bfs_tree(kron_small, res)

    def test_missing_parent_rejected(self, kron_small):
        res = bfs_spmv(kron_small, 0, "tropical", C=8, compute_parents=False)
        with pytest.raises(ValidationError, match="no parent"):
            validate_bfs_tree(kron_small, res)

    def test_corrupted_level_rejected(self):
        g = path_graph(6)
        res = bfs_top_down(g, 0)
        res.dist[3] = 7.0  # break the level structure
        with pytest.raises(ValidationError):
            validate_bfs_tree(g, res)

    def test_corrupted_parent_rejected(self):
        g = star_graph(6)
        res = bfs_top_down(g, 0)
        res.parent[2] = 3  # leaf parenting a leaf: not one level apart
        with pytest.raises(ValidationError):
            validate_bfs_tree(g, res)

    def test_wrong_root_rejected(self):
        g = path_graph(4)
        res = bfs_top_down(g, 0)
        res.parent[0] = 1
        with pytest.raises(ValidationError, match="rooted"):
            validate_bfs_tree(g, res)

    def test_nonexistent_tree_edge_rejected(self):
        g = path_graph(5)
        res = bfs_top_down(g, 0)
        res.dist[:] = [0, 1, 1, 2, 2]  # plausible levels
        res.parent[:] = [0, 0, 0, 1, 1]  # but (2,0) and (4,1) aren't edges
        with pytest.raises(ValidationError):
            validate_bfs_tree(g, res)


class TestKernel:
    def test_report_statistics(self):
        rpt = run_graph500(8, 8, nroots=6, seed=2)
        assert rpt.n == 256
        assert len(rpt.runs) == 6
        assert rpt.harmonic_mean_teps > 0
        assert rpt.min_teps <= rpt.harmonic_mean_teps <= rpt.max_teps
        assert rpt.median_time_s > 0
        assert rpt.construction_time_s > 0

    def test_harmonic_mean_formula(self):
        rpt = Graph500Report(1, 1, 2, 1, 0.0, runs=[
            Graph500Run(0, 1.0, 100), Graph500Run(1, 1.0, 300)])
        # TEPS 100 and 300 -> harmonic mean 150.
        assert rpt.harmonic_mean_teps == pytest.approx(150.0)

    def test_custom_engine(self):
        calls = []

        def engine(g, r):
            calls.append(r)
            return bfs_top_down(g, r)

        rpt = run_graph500(7, 4, bfs=engine, nroots=4, seed=0)
        assert len(calls) == 4
        assert all(run.root in calls for run in rpt.runs)

    def test_roots_have_positive_degree(self):
        rpt = run_graph500(8, 2, nroots=10, seed=1)  # sparse: isolates exist
        g = kronecker(8, 2, seed=1)
        for run in rpt.runs:
            assert g.degrees[run.root] > 0

    def test_validation_can_be_disabled(self):
        def broken(g, r):
            res = bfs_top_down(g, r)
            res.parent[:] = -1
            res.parent[r] = r
            return res

        with pytest.raises(ValidationError):
            run_graph500(7, 4, bfs=broken, nroots=1, seed=0)
        rpt = run_graph500(7, 4, bfs=broken, nroots=1, seed=0, validate=False)
        assert len(rpt.runs) == 1

    def test_empty_report(self):
        rpt = Graph500Report(1, 1, 2, 1, 0.0)
        assert rpt.harmonic_mean_teps == 0.0
        assert rpt.min_teps == 0.0
        assert rpt.median_time_s == 0.0


class TestSampleRoots:
    """The documented root-sampling guarantees the batched engines and the
    serving batcher rely on."""

    def test_roots_are_distinct(self):
        g = kronecker(9, 4, seed=3)
        roots = sample_roots(g, 64, seed=3)
        assert np.unique(roots).size == roots.size

    def test_no_isolated_roots(self):
        g = kronecker(8, 2, seed=1)  # sparse: isolated vertices exist
        assert (g.degrees == 0).any()
        roots = sample_roots(g, 50, seed=1)
        assert (g.degrees[roots] > 0).all()

    def test_oversubscription_returns_every_candidate(self):
        g = star_graph(8)  # 8 non-isolated vertices
        roots = sample_roots(g, 1000, seed=1)
        assert roots.size == 8
        np.testing.assert_array_equal(np.sort(roots), np.arange(8))

    def test_deterministic_in_seed(self):
        g = kronecker(9, 4, seed=3)
        np.testing.assert_array_equal(sample_roots(g, 16, seed=5),
                                      sample_roots(g, 16, seed=5))
        assert not np.array_equal(sample_roots(g, 16, seed=5),
                                  sample_roots(g, 16, seed=6))

    def test_nroots_below_one_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="nroots"):
            sample_roots(g, 0)
        with pytest.raises(ValueError, match="nroots"):
            sample_roots(g, -3)

    def test_edgeless_graph_rejected(self):
        from repro.graphs.graph import Graph

        with pytest.raises(ValueError, match="no edges"):
            sample_roots(Graph.empty(5), 1)


class TestBatchedKernel:
    @pytest.mark.parametrize("batch", [4, 64])
    def test_batched_runs_identical_to_sequential(self, batch):
        """The headline protocol: batched traversal must visit the same
        roots, traverse the same edge counts, and pass the same five-check
        validation as the sequential default engine."""
        seq = run_graph500(8, 8, nroots=8, seed=2)
        bat = run_graph500(8, 8, nroots=8, seed=2, batch=batch)
        assert [r.root for r in seq.runs] == [r.root for r in bat.runs]
        assert ([r.edges_traversed for r in seq.runs]
                == [r.edges_traversed for r in bat.runs])
        assert bat.harmonic_mean_teps > 0

    def test_batch_one_is_sequential(self):
        rpt = run_graph500(7, 4, nroots=3, seed=0, batch=1)
        assert len(rpt.runs) == 3

    def test_batch_with_custom_engine_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            run_graph500(7, 4, bfs=bfs_top_down, nroots=2, batch=4)

    def test_batch_validation(self):
        with pytest.raises(ValueError, match="batch"):
            run_graph500(7, 4, nroots=2, batch=0)


class TestHybridKernel:
    @pytest.mark.parametrize("batch", [None, 4])
    def test_hybrid_identical_to_all_pull(self, batch):
        """Direction optimization changes the work, not the trees: same
        roots, same traversed edge counts, same five-check validation."""
        seq = run_graph500(8, 8, nroots=8, seed=2)
        hyb = run_graph500(8, 8, nroots=8, seed=2, batch=batch, hybrid=True)
        assert [r.root for r in seq.runs] == [r.root for r in hyb.runs]
        assert ([r.edges_traversed for r in seq.runs]
                == [r.edges_traversed for r in hyb.runs])
        assert hyb.harmonic_mean_teps > 0

    def test_hybrid_alpha_forwarded(self):
        # α→∞ keeps every root's traversal valid (all-pull) as well.
        rpt = run_graph500(7, 8, nroots=4, seed=1, batch=4, hybrid=True,
                           alpha=1e12)
        assert len(rpt.runs) == 4

    def test_hybrid_with_custom_engine_rejected(self):
        with pytest.raises(ValueError, match="hybrid"):
            run_graph500(7, 4, bfs=bfs_top_down, nroots=2, hybrid=True)
