"""Tests of the Table IV registry and the real-world proxy generators."""

import numpy as np
import pytest

from repro.graphs.realworld import (
    REALWORLD_REGISTRY,
    chung_lu,
    community_path,
    grid_road,
    realworld_proxy,
)
from repro.graphs.utils import pseudo_diameter


class TestRegistry:
    def test_all_ten_table_iv_graphs(self):
        assert set(REALWORLD_REGISTRY) == {
            "orc", "pok", "epi", "ljn", "brk", "gog", "sta", "ndm", "amz", "rca",
        }

    def test_published_stats_recorded(self):
        orc = REALWORLD_REGISTRY["orc"]
        assert orc.n == 3_070_000 and orc.rho == 39.0 and orc.diameter == 9
        rca = REALWORLD_REGISTRY["rca"]
        assert rca.kind == "road" and rca.rho == 1.4 and rca.diameter == 849

    def test_rho_consistent_with_n_m(self):
        # The paper's rho is m/n; published numbers agree within rounding.
        for spec in REALWORLD_REGISTRY.values():
            assert spec.m / spec.n == pytest.approx(spec.rho, rel=0.12)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown real-world graph"):
            realworld_proxy("snap")


class TestChungLu:
    def test_edge_count_close_to_target(self):
        g = chung_lu(1000, 5000, beta=2.3, seed=0)
        assert 0.9 * 5000 <= g.m <= 5000

    def test_heavy_tail(self):
        g = chung_lu(2000, 10000, beta=2.1, seed=1)
        assert g.max_degree > 8 * g.avg_degree

    def test_tiny_inputs(self):
        assert chung_lu(1, 0, 2.3).n == 1
        assert chung_lu(0, 0, 2.3).n == 0

    def test_determinism(self):
        assert chung_lu(200, 800, 2.3, seed=5) == chung_lu(200, 800, 2.3, seed=5)


class TestGridRoad:
    def test_low_uniform_degree(self):
        g = grid_road(1024, rho=1.4, seed=0)
        assert g.max_degree <= 4
        assert g.m / g.n == pytest.approx(1.4, rel=0.15)

    def test_high_diameter(self):
        g = grid_road(900, rho=1.9, seed=0)  # near-full grid
        assert pseudo_diameter(g) > np.sqrt(g.n)


class TestCommunityPath:
    def test_diameter_scales_with_communities(self):
        few = community_path(800, 3200, 2.3, communities=2, seed=0)
        many = community_path(800, 3200, 2.3, communities=32, seed=0)
        assert pseudo_diameter(many) > 2 * pseudo_diameter(few)

    def test_single_community_is_chung_lu(self):
        g = community_path(500, 2000, 2.3, communities=1, seed=4)
        assert g == chung_lu(500, 2000, 2.3, seed=4)


class TestProxies:
    @pytest.mark.parametrize("gid", sorted(REALWORLD_REGISTRY))
    def test_proxy_matches_density(self, gid):
        spec = REALWORLD_REGISTRY[gid]
        g = realworld_proxy(gid, downscale=256, seed=0)
        assert g.n >= 16
        # m/n ratio within a factor ~2 of the published value (dedup losses).
        assert g.m / g.n == pytest.approx(spec.rho, rel=0.6)

    def test_social_proxy_low_diameter_web_proxy_high(self):
        soc = realworld_proxy("pok", downscale=256, seed=0)
        web = realworld_proxy("ndm", downscale=256, seed=0)
        assert pseudo_diameter(web) > 4 * pseudo_diameter(soc)

    def test_road_proxy_regime(self):
        g = realworld_proxy("rca", downscale=1024, seed=0)
        assert g.max_degree <= 4
        assert pseudo_diameter(g) > 20
