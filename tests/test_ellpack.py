"""Tests of the ELLPACK format and its Slim variant (§V comparison)."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.formats.ellpack import Ellpack
from repro.formats.sell import PAD
from repro.formats.slimsell import SlimSell
from repro.graphs.graph import Graph
from repro.graphs.kronecker import kronecker
from repro.semirings.base import get_semiring

from conftest import SEMIRING_NAMES, path_graph, star_graph


class TestLayout:
    def test_block_shape(self):
        g = star_graph(6)
        e = Ellpack(g)
        assert e.col.shape == (6, 5)  # width = hub degree

    def test_rows_contain_neighbors(self):
        g = path_graph(4)
        e = Ellpack(g)
        for v in range(4):
            stored = set(e.col[v][e.col[v] != PAD].tolist())
            assert stored == set(g.neighbors(v).tolist())

    def test_padding_count(self):
        g = star_graph(6)  # degrees 5,1,1,1,1,1 -> width 5
        e = Ellpack(g)
        assert e.padding_slots == 6 * 5 - 2 * 5

    def test_empty_graph(self):
        e = Ellpack(Graph.empty(3))
        assert e.col.shape == (3, 0)
        assert e.storage_cells() == 0


class TestStorage:
    def test_slim_halves_cells(self):
        g = kronecker(8, 4, seed=0)
        assert Ellpack(g, slim=True).storage_cells() == \
            Ellpack(g).storage_cells() // 2

    def test_powerlaw_padding_catastrophe(self):
        # §V: ELLPACK pads every row to the hub degree; Sell-C-sigma's
        # chunk-local padding is orders of magnitude smaller.
        g = kronecker(10, 8, seed=1)
        ell = Ellpack(g, slim=True)
        slim = SlimSell(g, 8, g.n)
        assert ell.storage_cells() > 5 * slim.storage_cells()

    def test_name_property(self):
        g = path_graph(3)
        assert Ellpack(g).name == "ellpack"
        assert Ellpack(g, slim=True).name == "slim-ellpack"


class TestSpMV:
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    @pytest.mark.parametrize("slim", [False, True])
    def test_matches_csr(self, kron_small, semiring, slim):
        g = kron_small
        sr = get_semiring(semiring)
        rng = np.random.default_rng(2)
        if semiring == "tropical":
            x = rng.choice([0.0, 1.0, np.inf], size=g.n)
        else:
            x = rng.integers(0, 3, size=g.n).astype(float)
        got = Ellpack(g, slim=slim).spmv(sr, x)
        want = CSRMatrix(g).spmv(sr, x)
        np.testing.assert_allclose(got, want)

    def test_edgeless_rows_get_zero(self):
        g = Graph.from_edges(3, [(0, 1)])
        sr = get_semiring("tropical")
        out = Ellpack(g).spmv(sr, np.zeros(3))
        assert out[2] == np.inf

    def test_short_x_rejected(self):
        with pytest.raises(ValueError, match="shorter"):
            Ellpack(path_graph(3)).spmv(get_semiring("real"), np.zeros(2))
