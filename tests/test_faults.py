"""Fault injection, deadlines, and graceful degradation of the serving tier.

Scripted-injector tests pin each resilience mechanism (batch-level retry,
permanent failure, straggler timing, deadlines, breaker shedding, stale
serving, cache flakes) deterministically; the chaos property at the end
drives a random workload through a random fault plan and checks the
resolve-exactly-once contract — every accepted ticket resolves exactly
once, to exactly one of served / rejected / timeout / failed, with no
waiter stranded in the MSHR and nothing wrong ever published to the
cache.  CI re-runs it wider under ``HYPOTHESIS_PROFILE=chaos``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import path_graph, star_graph

from repro.bfs.validate import reference_distances
from repro.serve.faults import (
    BREAKER_STATES,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    KernelFault,
    PermanentKernelFault,
    TransientKernelFault,
)
from repro.serve.query import Failed, Query, Rejected, Ticket, TimedOut
from repro.serve.server import Server

SETTINGS = dict(deadline=None, max_examples=25,
                suppress_health_check=[HealthCheck.too_slow])

#: Deterministic virtual kernel time: 10 ms per batch, width-independent.
TEN_MS = 0.010


def _model(width: int) -> float:
    return TEN_MS


class ScriptedInjector(FaultInjector):
    """Replays exact fault scripts instead of sampling the rng.

    ``kernel`` is a sequence of exception *classes* (or None = clean
    attempt), consumed one per batch attempt; ``stragglers`` a sequence
    of multipliers per successful attempt; ``flaky`` a sequence of bools
    per cache read.  Exhausted scripts behave fault-free.
    """

    def __init__(self, kernel=(), stragglers=(), flaky=()):
        super().__init__(FaultPlan())
        self._kernel = list(kernel)
        self._stragglers = list(stragglers)
        self._flaky = list(flaky)

    def kernel_fault(self) -> None:
        if self._kernel:
            exc = self._kernel.pop(0)
            if exc is not None:
                raise exc("scripted kernel fault")

    def straggler(self) -> float:
        return self._stragglers.pop(0) if self._stragglers else 1.0

    def cache_flaky(self) -> bool:
        return self._flaky.pop(0) if self._flaky else False


def make_server(g=None, **kw):
    """A virtual-clock server with deterministic 10 ms service."""
    kw.setdefault("C", 4)
    kw.setdefault("max_batch", 1)
    kw.setdefault("max_wait", 0.05)
    kw.setdefault("service_model", _model)
    return Server(g if g is not None else path_graph(12), **kw)


# ----------------------------------------------------------------------
class TestFaultPlan:
    @pytest.mark.parametrize("name", ["transient_rate", "permanent_rate",
                                      "straggler_rate", "cache_flake_rate"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_bounded(self, name, bad):
        with pytest.raises(ValueError, match="must be in \\[0, 1\\]"):
            FaultPlan(**{name: bad})

    def test_kernel_rates_must_sum_below_one(self):
        with pytest.raises(ValueError, match="must be <= 1"):
            FaultPlan(transient_rate=0.6, permanent_rate=0.6)

    def test_straggler_factor_bounded(self):
        with pytest.raises(ValueError, match="straggler_factor"):
            FaultPlan(straggler_factor=0.5)

    def test_fault_hierarchy(self):
        assert issubclass(TransientKernelFault, KernelFault)
        assert issubclass(PermanentKernelFault, KernelFault)


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown_s"):
            CircuitBreaker(cooldown_s=-1.0)

    def test_lifecycle(self):
        b = CircuitBreaker(failure_threshold=2, cooldown_s=1.0)
        assert b.state == "closed" and b.state in BREAKER_STATES
        assert not b.record_failure(0.0)
        assert b.record_failure(0.1)  # threshold reached: trips open
        assert b.state == "open" and b.opens == 1
        assert not b.allow(0.5)  # cooling down
        assert b.allow(1.2)  # cooldown elapsed: half-open trial
        assert b.state == "half-open"
        assert b.record_success()
        assert b.state == "closed" and b.closes == 1

    def test_half_open_failure_reopens_immediately(self):
        b = CircuitBreaker(failure_threshold=4, cooldown_s=1.0)
        for t in range(4):
            b.record_failure(float(t))
        assert b.state == "open"
        assert b.allow(10.0)
        assert b.state == "half-open"
        # One failure suffices in half-open, regardless of the threshold.
        assert b.record_failure(10.5)
        assert b.state == "open" and b.opens == 2

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure(0.0)
        b.record_success()
        assert not b.record_failure(1.0)  # streak restarted
        assert b.state == "closed"


class TestFaultInjector:
    def _kernel_outcomes(self, inj, n=60):
        out = []
        for _ in range(n):
            try:
                inj.kernel_fault()
                out.append("ok")
            except TransientKernelFault:
                out.append("transient")
            except PermanentKernelFault:
                out.append("permanent")
        return out

    def test_seed_determinism(self):
        plan = FaultPlan(transient_rate=0.3, permanent_rate=0.2, seed=42)
        a = self._kernel_outcomes(FaultInjector(plan))
        b = self._kernel_outcomes(FaultInjector(plan))
        assert a == b
        assert {"transient", "permanent"} <= set(a)

    def test_zero_rate_seams_consume_no_draws(self):
        # A kernel-fault-only plan must keep its draw sequence no matter
        # how many (disabled) straggler / cache-flake probes interleave.
        plan = FaultPlan(transient_rate=0.4, seed=7)
        a = self._kernel_outcomes(FaultInjector(plan))
        inj = FaultInjector(plan)
        b = []
        for _ in range(60):
            assert inj.straggler() == 1.0
            assert not inj.cache_flaky()
            try:
                inj.kernel_fault()
                b.append("ok")
            except TransientKernelFault:
                b.append("transient")
        assert a == b

    def test_certain_rates(self):
        inj = FaultInjector(FaultPlan(permanent_rate=1.0))
        with pytest.raises(PermanentKernelFault):
            inj.kernel_fault()
        inj = FaultInjector(FaultPlan(transient_rate=1.0))
        with pytest.raises(TransientKernelFault):
            inj.kernel_fault()
        inj = FaultInjector(FaultPlan(straggler_rate=1.0,
                                      straggler_factor=8.0,
                                      cache_flake_rate=1.0))
        assert inj.straggler() == 8.0
        assert inj.cache_flaky()
        assert inj.stats.stragglers == 1 and inj.stats.cache_flakes == 1


# ----------------------------------------------------------------------
class TestServerResilience:
    def test_fault_free_server_has_no_rng(self):
        assert make_server().faults is None

    def test_transient_fault_retries_and_serves(self):
        srv = make_server(faults=ScriptedInjector(
            kernel=[TransientKernelFault, None]))
        t = srv.submit(0, now=0.0)
        assert t.result().status == "served"
        assert srv.stats.retries == 1
        assert srv.stats.failed == 0 and srv.stats.failed_batches == 0
        # Attempt 0's backoff (retry_backoff * 2**0) precedes the kernel.
        assert srv.busy_until == pytest.approx(srv.retry_backoff + TEN_MS)

    def test_retry_is_batch_level_not_per_waiter(self):
        srv = make_server(max_batch=4, faults=ScriptedInjector(
            kernel=[TransientKernelFault, None]))
        tickets = [srv.submit(5, now=0.0) for _ in range(3)]
        out = srv.drain(now=0.0)
        assert len(out) == 3
        assert all(t.result().status == "served" for t in tickets)
        assert srv.stats.retries == 1  # one retry carried all 3 waiters
        assert srv.stats.mshr_hits == 2

    def test_exhausted_retries_fail_the_batch(self):
        srv = make_server(max_retries=1, faults=ScriptedInjector(
            kernel=[TransientKernelFault, TransientKernelFault]))
        t = srv.submit(0, now=0.0)
        res = t.result()
        assert isinstance(res, Failed) and res.status == "failed"
        assert srv.stats.retries == 1
        assert srv.stats.failed == 1 and srv.stats.failed_batches == 1
        assert len(srv.mshr) == 0  # aborted, not stranded

    def test_permanent_fault_fails_without_retry(self):
        srv = make_server(faults=ScriptedInjector(
            kernel=[PermanentKernelFault]))
        t = srv.submit(3, now=0.0)
        res = t.result()
        assert isinstance(res, Failed)
        assert "scripted kernel fault" in res.error
        assert srv.stats.retries == 0
        assert len(srv.mshr) == 0

    def test_failed_batch_is_never_cached_and_root_recovers(self):
        srv = make_server(faults=ScriptedInjector(
            kernel=[PermanentKernelFault]))
        assert srv.submit(3, now=0.0).result().status == "failed"
        srv.poll(now=1.0)
        assert len(srv.cache) == 0
        # The injector script is exhausted: the same root now recomputes
        # cleanly on a fresh MSHR entry.
        t = srv.submit(3, now=1.0)
        assert t.result().status == "served"
        assert not t.result().cache_hit

    def test_straggler_scales_modeled_kernel_time(self):
        srv = make_server(faults=ScriptedInjector(stragglers=[4.0]))
        srv.submit(0, now=0.0)
        assert srv.busy_until == pytest.approx(4.0 * TEN_MS)
        srv.submit(1, now=srv.busy_until)
        assert srv.busy_until == pytest.approx(5.0 * TEN_MS)

    def test_deadline_met_serves(self):
        srv = make_server()
        t = srv.submit(0, now=0.0, deadline=0.05)
        assert t.result().status == "served"

    def test_deadline_missed_times_out_but_caches(self):
        srv = make_server()
        t = srv.submit(0, now=0.0, deadline=0.005)  # < 10 ms kernel
        res = t.result()
        assert isinstance(res, TimedOut) and res.status == "timeout"
        assert res.latency_s == pytest.approx(TEN_MS)
        assert srv.stats.timeouts == 1 and srv.stats.served == 0
        # The traversal still completed and is cache-visible afterwards.
        t2 = srv.submit(0, now=0.02)
        assert t2.result().cache_hit

    def test_deadline_checked_on_inflight_attach(self):
        srv = make_server()
        srv.submit(0, now=0.0)  # dispatches (max_batch=1); completes at 10 ms
        late = srv.submit(0, now=0.002, deadline=0.001)
        assert isinstance(late.result(), TimedOut)
        ok = srv.submit(0, now=0.002, deadline=0.05)
        assert ok.result().status == "served"
        assert srv.stats.mshr_hits == 2

    def test_timeouts_excluded_from_latency_population(self):
        srv = make_server()
        srv.submit(0, now=0.0, deadline=0.001)
        assert srv.stats.latencies == []

    def test_engine_exception_restores_invariants(self):
        # Satellite regression: a real engine exception must resolve every
        # waiter Failed, abort the MSHR entries, and leave the server
        # usable — not strand waiters forever.
        srv = make_server(max_batch=2)
        t1 = srv.submit(0, now=0.0)
        t2 = srv.submit(0, now=0.0)  # coalesced waiter

        class Boom:
            def run(self, roots):
                raise RuntimeError("engine exploded")

        orig = srv.pool.engine_for
        srv.pool.engine_for = lambda s, w: ("boom", Boom())
        with pytest.raises(RuntimeError, match="engine exploded"):
            srv.drain(now=0.0)
        srv.pool.engine_for = orig
        for t in (t1, t2):
            assert isinstance(t.result(), Failed)
            assert "engine exploded" in t.result().error
        assert len(srv.mshr) == 0
        assert srv.stats.failed_batches == 1 and srv.stats.failed == 2
        t3 = srv.submit(0, now=1.0)
        srv.drain(now=1.0)
        assert t3.result().status == "served"

    def test_breaker_opens_sheds_and_recovers(self):
        srv = make_server(
            faults=ScriptedInjector(kernel=[PermanentKernelFault] * 2),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=1.0))
        assert srv.submit(0, now=0.0).result().status == "failed"
        assert srv.submit(1, now=0.0).result().status == "failed"
        assert srv.breaker.state == "open"
        assert srv.stats.breaker_opens == 1
        shed = srv.submit(2, now=0.1)
        assert isinstance(shed.result(), Rejected)
        assert shed.result().reason == "shed"
        assert srv.stats.sheds == 1
        # After the cooldown the half-open trial (script exhausted: clean)
        # closes the breaker again.
        trial = srv.submit(2, now=2.0)
        assert trial.result().status == "served"
        assert srv.breaker.state == "closed"
        assert srv.stats.breaker_closes == 1

    def test_breaker_halves_and_restores_max_batch(self):
        srv = make_server(
            max_batch=4,
            faults=ScriptedInjector(kernel=[PermanentKernelFault] * 2),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=0.5))
        for i, now in ((0, 0.0), (1, 0.1)):
            srv.submit(i, now=now)
            srv.drain(now=now)
        assert srv.breaker.state == "open"
        assert srv.batcher.max_batch == 2  # degraded on open
        srv.submit(3, now=2.0)
        srv.drain(now=2.0)
        assert srv.breaker.state == "closed"
        assert srv.batcher.max_batch == 4  # restored on close

    def test_stale_serve_while_open(self):
        srv = make_server(
            g=star_graph(16), serve_stale=True,
            faults=ScriptedInjector(kernel=[None, PermanentKernelFault]),
            breaker=CircuitBreaker(failure_threshold=1, cooldown_s=100.0))
        srv.submit(5, now=0.0)
        srv.poll(now=0.5)  # commit: root 5 is cache-visible in epoch 0
        assert len(srv.cache) == 1
        srv.invalidate()  # epoch 1; stale entries kept for degradation
        assert srv.submit(7, now=0.5).result().status == "failed"  # trips
        assert srv.breaker.state == "open"
        stale = srv.submit(5, now=0.6)
        res = stale.result()
        assert res.status == "served" and res.stale and res.cache_hit
        assert srv.stats.stale_serves == 1
        # No prior-epoch entry for root 9: shed instead.
        assert srv.submit(9, now=0.6).result().reason == "shed"

    def test_without_serve_stale_invalidate_drops_everything(self):
        srv = make_server()
        srv.submit(0, now=0.0)
        srv.poll(now=0.5)
        assert len(srv.cache) == 1
        srv.invalidate()
        assert len(srv.cache) == 0

    def test_cache_flake_recomputes(self):
        srv = make_server(faults=ScriptedInjector(flaky=[True]))
        srv.submit(0, now=0.0)
        srv.poll(now=0.5)
        flaked = srv.submit(0, now=0.5)  # hit forced to miss: kernel path
        assert flaked.result().status == "served"
        assert not flaked.result().cache_hit
        assert srv.stats.cache_flakes == 1
        hit = srv.submit(0, now=1.0)  # script exhausted: normal hit again
        assert hit.result().cache_hit

    def test_constructor_validation(self):
        g = path_graph(6)
        with pytest.raises(ValueError, match="max_retries"):
            Server(g, max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            Server(g, retry_backoff=-1e-3)
        with pytest.raises(ValueError, match="alpha"):
            Server(g, alpha=0.0)
        with pytest.raises(ValueError, match="hybrid_max_width"):
            Server(g, hybrid_max_width=0)
        with pytest.raises(ValueError, match="max_pending"):
            Server(g, max_pending=0)

    def test_submit_rejects_nonpositive_deadline(self):
        srv = make_server()
        with pytest.raises(ValueError, match="deadline"):
            srv.submit(0, now=0.0, deadline=0.0)
        with pytest.raises(ValueError, match="deadline"):
            srv.submit(0, now=0.0, deadline=-1.0)

    def test_pending_ticket_message_names_the_clock(self):
        srv = make_server(max_batch=8)  # stays pending: batch never fills
        t = srv.submit(0, now=0.0)
        with pytest.raises(RuntimeError,
                           match="advance the clock past the batch deadline"):
            t.result()

    def test_ticket_resolves_at_most_once(self):
        t = Ticket(query=Query(root=0))
        t._resolve(Rejected(t.query))
        with pytest.raises(RuntimeError, match="resolved twice"):
            t._resolve(Rejected(t.query))


# ----------------------------------------------------------------------
class TestChaosProperty:
    """The resolve-exactly-once contract under random faults and load."""

    @given(seed=st.integers(0, 2**31 - 1),
           transient=st.sampled_from([0.0, 0.2, 0.5]),
           permanent=st.sampled_from([0.0, 0.1, 0.3]),
           straggler=st.sampled_from([0.0, 0.3]),
           flake=st.sampled_from([0.0, 0.3]),
           serve_stale=st.booleans(),
           invalidate_mid=st.booleans(),
           deadlines=st.booleans())
    # No max_examples here: the loaded hypothesis profile controls it, so
    # CI's HYPOTHESIS_PROFILE=chaos job widens this test specifically.
    @settings(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_ticket_resolves_exactly_once(
            self, seed, transient, permanent, straggler, flake,
            serve_stale, invalidate_mid, deadlines):
        g = star_graph(16)
        ref = {r: reference_distances(g, r) for r in range(g.n)}
        srv = Server(
            g, C=4, max_batch=4, max_wait=5e-3, cache_size=8,
            max_pending=4, serve_stale=serve_stale,
            service_model=lambda w: 2e-3,
            faults=FaultPlan(transient_rate=transient,
                             permanent_rate=permanent,
                             straggler_rate=straggler,
                             cache_flake_rate=flake, seed=seed),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=0.02))
        rng = np.random.default_rng(seed)
        nq = int(rng.integers(8, 40))
        now = 0.0
        tickets = []
        for i in range(nq):
            now += float(rng.exponential(2e-3))
            if invalidate_mid and i == nq // 2:
                srv.invalidate()
            deadline = (float(rng.uniform(1e-3, 2e-2))
                        if deadlines and rng.random() < 0.5 else None)
            tickets.append(srv.submit(int(rng.integers(0, g.n)), now=now,
                                      deadline=deadline))
        srv.drain(now=now)
        srv.poll(now=now + 10.0)

        # Exactly once, to exactly one terminal status.  (The "at most
        # once" half is enforced by Ticket._resolve raising — this run
        # completing without that RuntimeError is the evidence.)
        assert all(t.done for t in tickets)
        statuses = [t.result().status for t in tickets]
        assert set(statuses) <= {"served", "rejected", "timeout", "failed"}
        st_ = srv.stats
        assert st_.submitted == nq
        assert st_.served == statuses.count("served")
        assert st_.rejected == statuses.count("rejected")
        assert st_.timeouts == statuses.count("timeout")
        assert st_.failed == statuses.count("failed")
        assert st_.served + st_.rejected + st_.timeouts + st_.failed == nq

        # No waiter stranded: the MSHR fully drained.
        assert len(srv.mshr) == 0

        # Nothing wrong was ever published: every cached traversal (any
        # epoch — stale entries included) is the exact answer for its
        # root, and failed batches never surface here at all.
        for (epoch, _sr, root), res in srv.cache._entries.items():
            assert epoch <= srv.epoch
            assert np.array_equal(res.dist, ref[root])
        # Served tickets carry correct answers too, stale or not.
        for t in tickets:
            r = t.result()
            if r.status == "served" and r.bfs is not None:
                assert np.array_equal(r.bfs.dist, ref[r.query.root])
