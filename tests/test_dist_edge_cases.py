"""Edge-case coverage of the distributed subsystem beyond the seed specs."""

import numpy as np
import pytest

from conftest import path_graph, two_components

from repro.bfs.validate import reference_distances
from repro.dist.bfs1d import bfs_dist_1d
from repro.dist.bfs2d import bfs_dist_2d, column_split_lengths
from repro.dist.network import CRAY_ARIES, ETHERNET_10G, Network, model_allgather
from repro.dist.partition import Partition1D
from repro.formats.slimsell import SlimSell
from repro.vec.machine import get_machine

KNL = get_machine("knl")


class TestUnreachable:
    """Disconnected graphs: unreached vertices keep inf on every layout."""

    @pytest.fixture(scope="class")
    def setup(self):
        g = two_components()  # K4 + path + one isolated vertex
        return g, SlimSell(g, 4, g.n), reference_distances(g, 0)

    def test_1d_keeps_inf(self, setup):
        g, rep, ref = setup
        res = bfs_dist_1d(rep, 0, Partition1D.blocks(rep.nc, 2),
                          KNL, CRAY_ARIES)
        assert np.isinf(res.dist[4:]).all()
        same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
        assert same.all()
        assert res.reached == 4

    def test_2d_keeps_inf(self, setup):
        g, rep, ref = setup
        res = bfs_dist_2d(rep, 0, (2, 2), KNL, CRAY_ARIES)
        assert np.isinf(res.dist[4:]).all()
        same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
        assert same.all()

    def test_unsettled_chunks_stay_active_under_slimwork(self, setup):
        # Chunks holding unreachable vertices can never fully settle, so
        # SlimWork must keep processing them through the final iteration.
        g, rep, ref = setup
        res = bfs_dist_1d(rep, 0, Partition1D.blocks(rep.nc, 2),
                          KNL, CRAY_ARIES, slimwork=True)
        assert res.iterations[-1].chunks_active >= 1


class TestOversizedGrids:
    """(R, C) grids with more cells than chunks: surplus ranks idle."""

    def test_exact_with_more_cells_than_chunks(self):
        g = path_graph(10)
        rep = SlimSell(g, 4, g.n)  # nc = 3 chunks
        assert rep.nc == 3
        res = bfs_dist_2d(rep, 0, (4, 3), KNL, CRAY_ARIES)
        assert res.ranks == 12
        ref = reference_distances(g, 0)
        same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
        assert same.all()
        assert all(it.rank_lanes.size == 12 for it in res.iterations)

    def test_more_1d_ranks_than_chunks(self):
        g = path_graph(10)
        rep = SlimSell(g, 4, g.n)
        res = bfs_dist_1d(rep, 0, Partition1D.blocks(rep.nc, 7),
                          KNL, CRAY_ARIES)
        ref = reference_distances(g, 0)
        assert (res.dist == ref).all()
        # Idle ranks carry zero lanes but still appear in the profile.
        assert all(it.rank_lanes.size == 7 for it in res.iterations)


class TestTermination:
    """The empty-frontier iteration after the last level ends the run."""

    def test_one_trailing_empty_iteration(self):
        g = path_graph(9)  # eccentricity 8 from vertex 0
        rep = SlimSell(g, 4, g.n)
        res = bfs_dist_1d(rep, 0, Partition1D.blocks(rep.nc, 2),
                          KNL, CRAY_ARIES)
        assert res.n_iterations == 9  # 8 discovering levels + 1 empty
        assert res.iterations[-1].newly == 0
        assert all(it.newly > 0 for it in res.iterations[:-1])

    def test_matches_2d(self):
        g = path_graph(9)
        rep = SlimSell(g, 4, g.n)
        res = bfs_dist_2d(rep, 0, (2, 2), KNL, CRAY_ARIES)
        assert res.n_iterations == 9
        assert res.iterations[-1].newly == 0


class TestAllgatherMonotonicity:
    def test_monotone_in_ranks(self):
        for net in (CRAY_ARIES, ETHERNET_10G):
            times = [model_allgather(net, p, 10**6) for p in range(1, 65)]
            assert all(a <= b for a, b in zip(times, times[1:]))
            assert times[0] == 0.0 and times[1] > 0.0

    def test_monotone_in_bytes(self):
        for net in (CRAY_ARIES, ETHERNET_10G):
            times = [model_allgather(net, 8, b)
                     for b in (0, 10, 10**3, 10**6, 10**9)]
            assert all(a < b for a, b in zip(times, times[1:]))

    def test_zero_bytes_costs_only_latency(self):
        net = Network("toy", latency_s=1e-6, bandwidth_gbs=1.0)
        assert model_allgather(net, 8, 0) == pytest.approx(3e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="nbytes"):
            model_allgather(CRAY_ARIES, 4, -1)


class TestPartitionValidation:
    def test_work_per_rank_conserves_total(self):
        cl = np.array([5, 0, 3, 7, 1, 2, 9, 4], dtype=np.int64)
        for ranks in (1, 3, 8, 11):
            for p in (Partition1D.blocks(cl.size, ranks),
                      Partition1D.balanced(cl, ranks)):
                w = p.work_per_rank(cl)
                assert w.size == ranks
                assert w.sum() == cl.sum()

    def test_balanced_zero_work_falls_back_to_blocks(self):
        p = Partition1D.balanced(np.zeros(6, dtype=np.int64), 3)
        assert p.ranks == 3
        assert np.concatenate([p.chunks_of(r) for r in range(3)]).size == 6

    def test_owner_out_of_declared_ranks(self):
        with pytest.raises(ValueError, match="rank"):
            Partition1D(np.array([0, 5]), ranks=2)

    def test_negative_owner_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Partition1D(np.array([0, -1]))

    def test_mismatched_cl_length(self):
        p = Partition1D.blocks(4, 2)
        with pytest.raises(ValueError, match="chunks"):
            p.work_per_rank(np.ones(5, dtype=np.int64))


class TestWeightedBalanced:
    """Heterogeneous ranks: ``Partition1D.balanced(weights=...)``."""

    CLS = (
        np.array([5, 0, 3, 7, 1, 2, 9, 4], dtype=np.int64),
        np.arange(1, 40, dtype=np.int64),
        np.ones(16, dtype=np.int64),
        np.array([1000, 1, 1, 1, 1, 1], dtype=np.int64),
    )

    def test_uniform_weights_reproduce_unweighted_splits(self):
        # The heterogeneity hook must be a strict generalization: any
        # uniform weight vector yields the unweighted owner array
        # bit-for-bit, for every workload shape and rank count.
        for cl in self.CLS:
            for ranks in (1, 2, 3, 5, 8):
                base = Partition1D.balanced(cl, ranks)
                for w in (1.0, 3.0, 0.25):
                    p = Partition1D.balanced(
                        cl, ranks, weights=np.full(ranks, w))
                    np.testing.assert_array_equal(p.owner, base.owner)

    def test_fast_rank_carries_proportional_work(self):
        cl = np.ones(400, dtype=np.int64)
        p = Partition1D.balanced(cl, 3, weights=np.array([2.0, 1.0, 1.0]))
        work = p.work_per_rank(cl)
        # Rank 0 is twice as fast: ~half the work; others ~a quarter each.
        assert abs(work[0] - 200) <= 2
        assert abs(work[1] - 100) <= 2 and abs(work[2] - 100) <= 2

    def test_weighted_bands_stay_contiguous_and_total(self):
        cl = np.array([5, 0, 3, 7, 1, 2, 9, 4], dtype=np.int64)
        p = Partition1D.balanced(cl, 3, weights=np.array([1.0, 4.0, 2.0]))
        assert p.work_per_rank(cl).sum() == cl.sum()
        assert np.all(np.diff(p.owner) >= 0)  # contiguous bands

    def test_weight_validation(self):
        cl = np.ones(8, dtype=np.int64)
        with pytest.raises(ValueError, match="one entry per rank"):
            Partition1D.balanced(cl, 3, weights=np.ones(2))
        with pytest.raises(ValueError, match="positive"):
            Partition1D.balanced(cl, 2, weights=np.array([1.0, 0.0]))
        with pytest.raises(ValueError, match="positive"):
            Partition1D.balanced(cl, 2, weights=np.array([1.0, np.inf]))

    def test_zero_work_ignores_weights(self):
        p = Partition1D.balanced(np.zeros(6, dtype=np.int64), 3,
                                 weights=np.array([5.0, 1.0, 1.0]))
        assert p.ranks == 3 and p.nchunks == 6  # blocks fallback


class TestColumnSplit:
    """The 2D per-block chunk lengths partition the local work sensibly."""

    def test_single_block_recovers_cl(self):
        g = path_graph(16)
        rep = SlimSell(g, 4, g.n)
        cl2d = column_split_lengths(rep, 1)
        assert np.array_equal(cl2d[:, 0], rep.cl)

    def test_blocks_bound_cl(self):
        g = two_components()
        rep = SlimSell(g, 4, g.n)
        for nblocks in (2, 3, 5):
            cl2d = column_split_lengths(rep, nblocks)
            assert cl2d.shape == (rep.nc, nblocks)
            # Per-block lengths never exceed, and jointly cover, cl.
            assert (cl2d.max(axis=1) <= rep.cl).all()
            assert (cl2d.sum(axis=1) >= rep.cl).all()
