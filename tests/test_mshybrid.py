"""Batched direction-optimizing multi-source BFS: bit-identity & semantics.

The engine must be indistinguishable (distances, parents, roots) from every
other engine in the library — verified through the shared differential
oracle in :mod:`engines` — while its per-column push/pull decisions must
reproduce :func:`repro.bfs.hybrid.bfs_hybrid` exactly at B=1 and stay
invariant under root reordering and batch chopping.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.msbfs import MultiSourceBFS
from repro.bfs.mshybrid import MultiSourceHybridBFS, bfs_mshybrid
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.erdos_renyi import erdos_renyi_nm
from repro.graphs.graph import Graph
from repro.graphs.kronecker import kronecker

from conftest import SEMIRING_NAMES, two_components
from engines import assert_bfs_equivalent

SETTINGS = dict(deadline=None, max_examples=25,
                suppress_health_check=[HealthCheck.too_slow])


def _graph(name):
    if name == "kron":
        return kronecker(8, 8, seed=7)
    if name == "er":
        return erdos_renyi_nm(200, 800, seed=13)
    return two_components()


def _roots(g):
    cand = [0, int(np.argmax(g.degrees)), g.n // 2, g.n - 1]
    return np.unique(cand)


@st.composite
def random_graph_and_roots(draw, max_n=32, max_m=90, max_b=6):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    g = Graph.from_edges(n, rng.integers(0, n, size=(m, 2)))
    b = draw(st.integers(min_value=1, max_value=max_b))
    roots = draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                          min_size=b, max_size=b))
    return g, np.asarray(roots, dtype=np.int64)


class TestBitIdentity:
    """The acceptance criterion: oracle equality across the engine zoo."""

    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    @pytest.mark.parametrize("graph_name", ["kron", "er", "disconnected"])
    def test_matches_every_engine(self, semiring, graph_name):
        g = _graph(graph_name)
        engines = ["traditional", "spmv-layer", "msbfs", "mshybrid"]
        if semiring == "tropical":
            engines.append("hybrid")
        results = assert_bfs_equivalent(g, _roots(g), semiring=semiring,
                                        engines=engines)
        # The oracle already pins distances to the reference and parents
        # within the derivation class; assert the batched engines' results
        # are bit-identical to the single-source layer engine, pairwise.
        for name in ("msbfs", "mshybrid"):
            for a, b in zip(results["spmv-layer"], results[name]):
                np.testing.assert_array_equal(a.dist, b.dist)
                np.testing.assert_array_equal(a.parent, b.parent)
                assert a.root == b.root

    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_sell_rep_matches_too(self, kron_small, semiring):
        rep = SellCSigma(kron_small, 8, kron_small.n)
        roots = _roots(kron_small)
        assert_bfs_equivalent(kron_small, roots, semiring=semiring, rep=rep,
                              engines=["traditional", "spmv-layer",
                                       "mshybrid"])

    @pytest.mark.parametrize("C", [4, 16])
    def test_chunk_heights(self, kron_small, C):
        assert_bfs_equivalent(kron_small, _roots(kron_small), C=C,
                              engines=["traditional", "msbfs", "mshybrid"])


class TestDirectionSemantics:
    def test_b1_reproduces_bfs_hybrid_exactly(self, kron_small):
        rep = SlimSell(kron_small, 8, kron_small.n)
        for root in _roots(kron_small):
            got = MultiSourceHybridBFS(rep, "tropical").run([int(root)])[0]
            ref = bfs_hybrid(rep, int(root))
            np.testing.assert_array_equal(got.dist, ref.dist)
            np.testing.assert_array_equal(got.parent, ref.parent)
            assert len(got.iterations) == len(ref.iterations)
            for a, b in zip(got.iterations, ref.iterations):
                assert a.direction == b.direction
                assert a.newly == b.newly
                assert a.chunks_processed == b.chunks_processed
                assert a.chunks_skipped == b.chunks_skipped
                assert a.work_lanes == b.work_lanes
                assert a.edges_examined == b.edges_examined

    def test_columns_switch_direction_independently(self):
        # A hub root floods the graph (pulls early); a degree-1 root on the
        # same graph keeps pushing longer — in the same batch.
        g = kronecker(10, 16, seed=1)
        rep = SlimSell(g, 8, g.n)
        hub = int(np.argmax(g.degrees))
        leaf = int(np.flatnonzero(g.degrees == g.degrees[g.degrees > 0].min())[0])
        res = MultiSourceHybridBFS(rep, "tropical").run([hub, leaf])
        dirs = [[it.direction for it in r.iterations] for r in res]
        assert dirs[0] != dirs[1]  # per-column, not per-batch, decisions
        assert "pull" in dirs[0] and dirs[0][0] == "push"

    def test_direction_labels_match_single_source(self, kron_small):
        rep = SlimSell(kron_small, 8, kron_small.n)
        roots = _roots(kron_small)
        batched = MultiSourceHybridBFS(rep, "tropical").run(roots)
        for r, res in zip(roots, batched):
            ref = bfs_hybrid(rep, int(r))
            assert ([it.direction for it in res.iterations]
                    == [it.direction for it in ref.iterations])

    def test_method_label(self, kron_small):
        rep = SlimSell(kron_small, 8)
        assert MultiSourceHybridBFS(rep).run([0])[0].method == \
            "spmv-mshybrid+slimwork"
        assert MultiSourceHybridBFS(rep, slimwork=False).run([0])[0].method \
            == "spmv-mshybrid"


class TestProperties:
    """Hypothesis: invariance to root order and batch width."""

    @given(gr=random_graph_and_roots())
    @settings(**SETTINGS)
    def test_invariant_to_root_order(self, gr):
        g, roots = gr
        rep = SlimSell(g, 4, g.n)
        eng = MultiSourceHybridBFS(rep, "tropical")
        fwd = eng.run(roots)
        rev = eng.run(roots[::-1])
        for a, b in zip(fwd, rev[::-1]):
            assert a.root == b.root
            np.testing.assert_array_equal(a.dist, b.dist)
            np.testing.assert_array_equal(a.parent, b.parent)
            assert ([it.direction for it in a.iterations]
                    == [it.direction for it in b.iterations])
            assert ([it.newly for it in a.iterations]
                    == [it.newly for it in b.iterations])

    @given(gr=random_graph_and_roots(), batch=st.integers(1, 7),
           semiring=st.sampled_from(SEMIRING_NAMES))
    @settings(**SETTINGS)
    def test_invariant_to_batch_width(self, gr, batch, semiring):
        g, roots = gr
        full = bfs_mshybrid(g, roots, semiring, C=4)
        chopped = bfs_mshybrid(g, roots, semiring, C=4, batch=batch)
        for a, b in zip(full, chopped):
            np.testing.assert_array_equal(a.dist, b.dist)
            np.testing.assert_array_equal(a.parent, b.parent)
            assert ([it.direction for it in a.iterations]
                    == [it.direction for it in b.iterations])

    @given(gr=random_graph_and_roots(max_b=1))
    @settings(**SETTINGS)
    def test_b1_column_equals_bfs_hybrid(self, gr):
        g, roots = gr
        rep = SlimSell(g, 4, g.n)
        got = MultiSourceHybridBFS(rep, "tropical").run(roots)[0]
        ref = bfs_hybrid(rep, int(roots[0]))
        np.testing.assert_array_equal(got.dist, ref.dist)
        np.testing.assert_array_equal(got.parent, ref.parent)
        assert ([(it.direction, it.newly) for it in got.iterations]
                == [(it.direction, it.newly) for it in ref.iterations])


class TestEdgeCases:
    def test_duplicate_roots(self, kron_small):
        rep = SlimSell(kron_small, 8, kron_small.n)
        res = MultiSourceHybridBFS(rep, "sel-max").run([5, 5, 5])
        ref = MultiSourceBFS(rep, "sel-max", slimwork=True).run([5])[0]
        for r in res:
            assert r.root == 5
            np.testing.assert_array_equal(r.dist, ref.dist)
            np.testing.assert_array_equal(r.parent, ref.parent)

    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_isolated_root_terminates_immediately(self, disconnected,
                                                  semiring):
        g = disconnected  # vertex 8 is isolated
        rep = SlimSell(g, 4, g.n)
        res = MultiSourceHybridBFS(rep, semiring).run([8, 0])
        iso = res[0]
        assert iso.reached == 1 and iso.dist[8] == 0
        assert len(iso.iterations) == 1 and iso.iterations[0].newly == 0

    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_disconnected_graph_oracle_equal(self, disconnected, semiring):
        assert_bfs_equivalent(disconnected, [0, 4, 8], C=4,
                              semiring=semiring,
                              engines=["traditional", "spmv-layer",
                                       "msbfs", "mshybrid"])

    def test_batch_wider_than_roots(self, disconnected):
        g = disconnected
        res = bfs_mshybrid(g, [0, 4], "tropical", C=4, batch=64)
        ref = bfs_mshybrid(g, [0, 4], "tropical", C=4)
        assert len(res) == 2
        for a, b in zip(res, ref):
            np.testing.assert_array_equal(a.dist, b.dist)

    def test_batch_chops_like_msbfs_convenience(self, kron_small):
        roots = [0, 1, 2, 3, 4]
        res = bfs_mshybrid(kron_small, roots, "tropical", C=8, batch=2)
        assert len(res) == 5
        ref = bfs_mshybrid(kron_small, roots, "tropical", C=8)
        for a, b in zip(res, ref):
            np.testing.assert_array_equal(a.dist, b.dist)

    def test_tiny_alpha_forces_all_push(self, disconnected):
        # Root 4's component never explores the K4's edges, so unexplored
        # mass stays positive and α→0 keeps every iteration in push.
        rep = SlimSell(disconnected, 4, disconnected.n)
        res = MultiSourceHybridBFS(rep, "tropical", alpha=1e-12).run([4, 0])
        assert all(it.direction == "push"
                   for r in res for it in r.iterations)
        assert_bfs_equivalent(disconnected, [4, 0], C=4, alpha=1e-12,
                              engines=["traditional", "mshybrid"])

    def test_huge_alpha_forces_all_pull(self, disconnected):
        rep = SlimSell(disconnected, 4, disconnected.n)
        res = MultiSourceHybridBFS(rep, "tropical", alpha=1e12).run([4, 0])
        assert all(it.direction == "pull"
                   for r in res for it in r.iterations)
        assert_bfs_equivalent(disconnected, [4, 0], C=4, alpha=1e12,
                              engines=["traditional", "mshybrid"])

    def test_exhausted_component_pulls_regardless_of_alpha(self, kron_small):
        # Once a column has explored every edge (m_u = 0), Beamer's rule
        # pulls even with tiny α — exactly like bfs_hybrid.
        rep = SlimSell(kron_small, 8, kron_small.n)
        root = int(np.argmax(kron_small.degrees))
        got = MultiSourceHybridBFS(rep, "tropical", alpha=1e-12).run([root])[0]
        ref = bfs_hybrid(rep, root, alpha=1e-12)
        assert ([it.direction for it in got.iterations]
                == [it.direction for it in ref.iterations])

    def test_alpha_validation(self, kron_small):
        rep = SlimSell(kron_small, 8)
        with pytest.raises(ValueError, match="alpha"):
            MultiSourceHybridBFS(rep, alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            MultiSourceHybridBFS(rep, alpha=-3.0)

    def test_root_validation(self, kron_small):
        rep = SlimSell(kron_small, 8)
        eng = MultiSourceHybridBFS(rep)
        with pytest.raises(ValueError, match="out of range"):
            eng.run([0, kron_small.n])
        with pytest.raises(ValueError, match="non-empty"):
            eng.run([])
        with pytest.raises(ValueError, match="batch"):
            bfs_mshybrid(kron_small, [0], batch=0)

    def test_results_ordered_like_roots(self, kron_small):
        rep = SlimSell(kron_small, 8)
        roots = [9, 2, 40]
        res = MultiSourceHybridBFS(rep).run(roots)
        assert [r.root for r in res] == roots


class TestIterationStatsContract:
    """The explicit push/pull counter contract (shared with bfs_hybrid)."""

    @staticmethod
    def _check(res, nc, C):
        for it in res.iterations:
            assert it.direction in ("push", "pull")
            if it.direction == "push":
                assert it.chunks_processed == 0 and it.chunks_skipped == 0
                assert it.work_lanes == it.edges_examined
            else:
                assert it.edges_examined == 0
                assert it.chunks_processed + it.chunks_skipped == nc
                assert it.work_lanes % C == 0

    def test_bfs_hybrid_contract(self):
        g = kronecker(10, 16, seed=3)
        rep = SlimSell(g, 8, g.n)
        res = bfs_hybrid(rep, int(np.argmax(g.degrees)))
        dirs = {it.direction for it in res.iterations}
        assert dirs == {"push", "pull"}  # both branches exercised
        self._check(res, rep.nc, rep.C)
        # Push work is real: a non-final push iteration examined edges.
        pushes = [it for it in res.iterations if it.direction == "push"]
        assert any(it.edges_examined > 0 for it in pushes)

    def test_mshybrid_contract(self):
        g = kronecker(10, 16, seed=3)
        rep = SlimSell(g, 8, g.n)
        for res in MultiSourceHybridBFS(rep, "tropical").run(
                [int(np.argmax(g.degrees)), 0]):
            self._check(res, rep.nc, rep.C)

    def test_pull_uses_slimwork_pruning(self):
        g = kronecker(10, 16, seed=4)
        rep = SlimSell(g, 8, g.n)
        res = MultiSourceHybridBFS(rep, "tropical").run(
            [int(np.argmax(g.degrees))])[0]
        pulls = [it for it in res.iterations if it.direction == "pull"]
        assert pulls and any(it.chunks_skipped > 0 for it in pulls)
