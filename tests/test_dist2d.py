"""Tests of the 2D-decomposed distributed BFS simulation."""

import numpy as np
import pytest

from repro.bfs.validate import reference_distances
from repro.dist.bfs1d import bfs_dist_1d
from repro.dist.bfs2d import bfs_dist_2d
from repro.dist.network import CRAY_ARIES
from repro.dist.partition import Partition1D
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker
from repro.vec.machine import get_machine

KNL = get_machine("knl")


@pytest.fixture(scope="module")
def setup():
    g = kronecker(9, 8, seed=33)
    rep = SlimSell(g, 8, g.n)
    root = int(np.argmax(g.degrees))
    return g, rep, root, reference_distances(g, root)


class TestCorrectness:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (4, 2), (1, 4), (3, 3)])
    def test_exact_distances(self, setup, grid):
        g, rep, root, ref = setup
        res = bfs_dist_2d(rep, root, grid, KNL, CRAY_ARIES)
        same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
        assert same.all()
        assert res.ranks == grid[0] * grid[1]

    def test_matches_1d_iteration_profile(self, setup):
        g, rep, root, _ = setup
        r1 = bfs_dist_1d(rep, root, Partition1D.blocks(rep.nc, 4),
                         KNL, CRAY_ARIES)
        r2 = bfs_dist_2d(rep, root, (4, 1), KNL, CRAY_ARIES)
        assert len(r1.iterations) == len(r2.iterations)
        for a, b in zip(r1.iterations, r2.iterations):
            assert a.newly == b.newly

    def test_invalid_grid(self, setup):
        g, rep, root, _ = setup
        with pytest.raises(ValueError, match="grid"):
            bfs_dist_2d(rep, root, (0, 2), KNL, CRAY_ARIES)

    def test_root_out_of_range(self, setup):
        g, rep, _, _ = setup
        with pytest.raises(ValueError, match="out of range"):
            bfs_dist_2d(rep, g.n, (2, 2), KNL, CRAY_ARIES)


class TestScalability:
    def test_2d_moves_less_data_than_1d_at_scale(self, setup):
        """[9]'s argument: per-iteration words O(n/R + n/C) vs O(n)."""
        g, rep, root, _ = setup
        r1 = bfs_dist_1d(rep, root, Partition1D.blocks(rep.nc, 16),
                         KNL, CRAY_ARIES)
        r2 = bfs_dist_2d(rep, root, (4, 4), KNL, CRAY_ARIES)
        per_iter_1d = r1.iterations[0].comm_bytes
        per_iter_2d = r2.iterations[0].comm_bytes
        assert per_iter_2d < per_iter_1d

    def test_single_rank_no_comm(self, setup):
        g, rep, root, _ = setup
        res = bfs_dist_2d(rep, root, (1, 1), KNL, CRAY_ARIES)
        assert res.total_comm_bytes == 0

    def test_comm_shrinks_with_grid_dims(self, setup):
        g, rep, root, _ = setup
        small = bfs_dist_2d(rep, root, (2, 2), KNL, CRAY_ARIES)
        large = bfs_dist_2d(rep, root, (4, 4), KNL, CRAY_ARIES)
        assert large.iterations[0].comm_bytes < small.iterations[0].comm_bytes

    def test_slimwork_active_in_2d(self, setup):
        g, rep, root, _ = setup
        on = bfs_dist_2d(rep, root, (2, 2), KNL, CRAY_ARIES, slimwork=True)
        off = bfs_dist_2d(rep, root, (2, 2), KNL, CRAY_ARIES, slimwork=False)
        assert (sum(it.rank_lanes.sum() for it in on.iterations)
                < sum(it.rank_lanes.sum() for it in off.iterations))
