"""Smoke tests of the public package API."""

import importlib

import pytest

import repro


class TestAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", [
        "repro.vec", "repro.vec.ops", "repro.vec.machine", "repro.vec.counters",
        "repro.graphs", "repro.graphs.graph", "repro.graphs.kronecker",
        "repro.graphs.erdos_renyi", "repro.graphs.realworld", "repro.graphs.utils",
        "repro.formats", "repro.formats.csr", "repro.formats.adjacency_list",
        "repro.formats.sell", "repro.formats.slimsell", "repro.formats.storage",
        "repro.semirings", "repro.semirings.tropical", "repro.semirings.real",
        "repro.semirings.boolean", "repro.semirings.selmax",
        "repro.bfs", "repro.bfs.spmv", "repro.bfs.spmspv", "repro.bfs.msbfs",
        "repro.bfs.operator", "repro.bfs.traditional",
        "repro.bfs.direction_opt", "repro.bfs.dp", "repro.bfs.slimchunk",
        "repro.bfs.result", "repro.bfs.validate",
        "repro.formats.ellpack", "repro.graphs.io",
        "repro.apps", "repro.apps.betweenness", "repro.apps.pagerank",
        "repro.apps.connectivity", "repro.apps.sssp", "repro.cli",
        "repro.bfs.hybrid", "repro.graph500", "repro.plot",
        "repro.formats.weighted", "repro.semirings.axioms",
        "repro.dist", "repro.dist.partition", "repro.dist.network",
        "repro.dist.bfs1d", "repro.dist.bfs2d",
        "repro.sched", "repro.sched.scheduling",
        "repro.perf", "repro.perf.costmodel", "repro.perf.harness",
        "repro.analysis", "repro.analysis.complexity",
    ])
    def test_submodules_import(self, module):
        importlib.import_module(module)

    def test_quickstart_flow(self):
        g = repro.kronecker(8, 6, seed=0)
        res = repro.bfs_spmv(g, 0, "sel-max", C=8, slimwork=True)
        assert res.reached > 1
        baseline = repro.bfs_top_down(g, 0)
        assert baseline.reached == res.reached

    def test_docstrings_present_on_public_entry_points(self):
        for name in ("bfs_spmv", "BFSSpMV", "SellCSigma", "SlimSell",
                     "kronecker", "erdos_renyi", "storage_report"):
            obj = getattr(repro, name)
            assert obj.__doc__ and len(obj.__doc__) > 40, name
