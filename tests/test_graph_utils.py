"""Tests of graph utilities: components, pseudo-diameter, degree stats."""

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.utils import (
    connected_components,
    degree_stats,
    largest_component,
    pseudo_diameter,
)

from conftest import complete_graph, cycle_graph, path_graph, star_graph, two_components


class TestConnectedComponents:
    def test_single_component(self):
        lab = connected_components(cycle_graph(6))
        assert np.all(lab == lab[0])

    def test_two_components_plus_isolate(self):
        lab = connected_components(two_components())
        assert len(np.unique(lab)) == 3
        assert lab[0] == lab[3]       # K4
        assert lab[4] == lab[7]       # path
        assert lab[0] != lab[4] != lab[8]

    def test_edgeless(self):
        lab = connected_components(Graph.empty(4))
        assert len(np.unique(lab)) == 4


class TestLargestComponent:
    def test_extracts_k4(self):
        g = largest_component(two_components())
        assert g.n == 4 and g.m == 6

    def test_connected_graph_unchanged_in_size(self):
        g = largest_component(cycle_graph(8))
        assert g.n == 8 and g.m == 8


class TestPseudoDiameter:
    def test_path(self):
        assert pseudo_diameter(path_graph(17)) == 16

    def test_cycle(self):
        assert pseudo_diameter(cycle_graph(12)) == 6

    def test_star(self):
        assert pseudo_diameter(star_graph(20)) == 2

    def test_complete(self):
        assert pseudo_diameter(complete_graph(5)) == 1

    def test_empty(self):
        assert pseudo_diameter(Graph.empty(3)) == 0
        assert pseudo_diameter(Graph.empty(0)) == 0


class TestDegreeStats:
    def test_star(self):
        s = degree_stats(star_graph(10))
        assert s.n == 10 and s.m == 9
        assert s.max == 9
        assert s.median == 1.0

    def test_empty(self):
        s = degree_stats(Graph.empty(0))
        assert s.n == 0 and s.avg == 0.0
