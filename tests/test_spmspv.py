"""Tests of the SpMSpV BFS baseline (Table II's work-optimal rows)."""

import numpy as np
import pytest

from repro.bfs.spmspv import bfs_spmspv
from repro.bfs.validate import check_parents_valid, reference_distances

from conftest import SEMIRING_NAMES, complete_graph, path_graph, star_graph, two_components

MERGES = ["nosort", "sort", "radix"]


class TestCorrectness:
    @pytest.mark.parametrize("merge", MERGES)
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_matches_reference_on_kronecker(self, kron_small, merge, semiring):
        ref = reference_distances(kron_small, 3)
        res = bfs_spmspv(kron_small, 3, semiring, merge=merge)
        same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
        assert same.all()
        check_parents_valid(kron_small, res)

    @pytest.mark.parametrize("merge", MERGES)
    def test_canonical_graphs(self, merge):
        for g, root in ((path_graph(9), 0), (star_graph(7), 2),
                        (complete_graph(5), 4), (two_components(), 0)):
            ref = reference_distances(g, root)
            res = bfs_spmspv(g, root, "tropical", merge=merge)
            same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
            assert same.all()

    def test_merges_agree_exactly(self, er_small):
        runs = [bfs_spmspv(er_small, 5, "boolean", merge=m) for m in MERGES]
        for r in runs[1:]:
            np.testing.assert_array_equal(runs[0].dist, r.dist)


class TestWorkOptimality:
    def test_total_edges_examined_is_reachable_adjacency(self, kron_small):
        # SpMSpV is work optimal: touches each reached vertex's list once.
        g = kron_small
        res = bfs_spmspv(g, 1, "tropical")
        reached = np.flatnonzero(np.isfinite(res.dist))
        expect = int(g.degrees[reached].sum())
        assert sum(it.edges_examined for it in res.iterations) == expect

    def test_method_label(self, kron_small):
        assert bfs_spmspv(kron_small, 0, merge="sort").method == "spmspv-sort"


class TestValidation:
    def test_bad_merge_rejected(self, kron_small):
        with pytest.raises(ValueError, match="merge"):
            bfs_spmspv(kron_small, 0, merge="quicksort")

    def test_root_out_of_range(self, kron_small):
        with pytest.raises(ValueError, match="out of range"):
            bfs_spmspv(kron_small, -1)

    def test_max_iters_truncates(self):
        res = bfs_spmspv(path_graph(10), 0, max_iters=2)
        assert res.reached == 3
