"""Tests of the weighted Sell-C-σ layout and chunked SSSP."""

import numpy as np
import pytest

from repro.apps.sssp import sssp_dijkstra
from repro.formats.sell import SellCSigma
from repro.formats.weighted import WeightedSellCSigma, sssp_chunked
from repro.graphs.kronecker import kronecker
from repro.semirings.base import get_semiring

from conftest import path_graph, star_graph


class TestLayout:
    def test_weights_land_in_correct_slots(self):
        g = path_graph(4)  # edges (0,1),(1,2),(2,3); edge i is (i, i+1)
        w = np.array([10.0, 20.0, 30.0])
        rep = WeightedSellCSigma(g, w, C=4, sigma=1)
        val = rep.val_for(get_semiring("tropical"))
        lay = rep._layout
        # Every stored entry carries the weight of its undirected edge.
        for slot in np.flatnonzero(lay.col != -1):
            chunk = int(np.searchsorted(rep.cs, slot, side="right") - 1)
            row_p = chunk * rep.C + (slot - rep.cs[chunk]) % rep.C
            u = int(rep.iperm[row_p])
            v = int(rep.iperm[lay.col[slot]])
            assert val[slot] == w[min(u, v)]

    def test_padding_is_inf(self):
        g = star_graph(5)
        rep = WeightedSellCSigma(g, np.ones(4), C=8, sigma=5)
        val = rep.val_for(get_semiring("tropical"))
        assert np.isinf(val[rep._layout.col == -1]).all()

    def test_storage_matches_sell(self):
        g = kronecker(8, 4, seed=0)
        w = np.ones(g.m)
        weighted = WeightedSellCSigma(g, w, C=8, sigma=g.n)
        plain = SellCSigma(g, C=8, sigma=g.n)
        # No SlimSell saving available: full Sell-C-σ footprint.
        assert weighted.storage_cells() == plain.storage_cells()

    def test_wrong_weight_shape_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="shape"):
            WeightedSellCSigma(g, np.ones(5), C=4)

    def test_negative_weights_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="negative"):
            WeightedSellCSigma(g, np.array([1.0, -1.0, 1.0]), C=4)

    def test_non_tropical_semiring_rejected(self):
        g = path_graph(3)
        rep = WeightedSellCSigma(g, np.ones(2), C=4)
        with pytest.raises(ValueError, match="tropical"):
            rep.val_for(get_semiring("boolean"))


class TestChunkedSSSP:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("C", [4, 8, 16])
    def test_matches_dijkstra(self, seed, C):
        g = kronecker(8, 6, seed=seed)
        rng = np.random.default_rng(seed)
        w = rng.uniform(0.1, 5.0, size=g.m)
        rep = WeightedSellCSigma(g, w, C=C, sigma=g.n)
        root = int(np.argmax(g.degrees))
        a = sssp_chunked(rep, root)
        b = sssp_dijkstra(g, w, root)
        fin = np.isfinite(a.dist)
        assert np.array_equal(fin, np.isfinite(b.dist))
        np.testing.assert_allclose(a.dist[fin], b.dist[fin])

    def test_unit_weights_reduce_to_bfs(self, kron_small):
        from repro.bfs.validate import reference_distances

        g = kron_small
        rep = WeightedSellCSigma(g, np.ones(g.m), C=8, sigma=g.n)
        res = sssp_chunked(rep, 7)
        ref = reference_distances(g, 7)
        same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
        assert same.all()

    def test_sigma_invariance(self):
        g = kronecker(7, 4, seed=4)
        w = np.random.default_rng(4).uniform(0.5, 2.0, size=g.m)
        a = sssp_chunked(WeightedSellCSigma(g, w, C=4, sigma=1), 0)
        b = sssp_chunked(WeightedSellCSigma(g, w, C=4, sigma=g.n), 0)
        fin = np.isfinite(a.dist)
        np.testing.assert_allclose(a.dist[fin], b.dist[fin])

    def test_root_out_of_range(self):
        g = path_graph(3)
        rep = WeightedSellCSigma(g, np.ones(2), C=4)
        with pytest.raises(ValueError, match="out of range"):
            sssp_chunked(rep, 9)
