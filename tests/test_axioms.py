"""Tests of the semiring axiom verifier."""

import numpy as np
import pytest

from repro.semirings import SEMIRINGS
from repro.semirings.axioms import MUL_IDENTITY, SAMPLE_DOMAINS, verify_semiring
from repro.semirings.base import SemiringBFS, get_semiring


class TestShippedSemirings:
    @pytest.mark.parametrize("name", sorted(SEMIRINGS))
    def test_all_axioms_hold(self, name):
        assert verify_semiring(get_semiring(name)) == []

    def test_domains_cover_all_semirings(self):
        assert set(SAMPLE_DOMAINS) == set(SEMIRINGS)
        assert set(MUL_IDENTITY) == set(SEMIRINGS)

    def test_tropical_mul_identity_is_zero(self):
        # Tropical ⊗ is +, so el2 = 0 — a classic pitfall the table encodes.
        assert MUL_IDENTITY["tropical"] == 0.0


class _BrokenSemiring(SemiringBFS):
    """Subtraction is not commutative: the verifier must flag it."""

    name = "broken"
    add = np.subtract
    mul = np.multiply
    zero = 0.0
    edge_value = 1.0
    pad_value = 0.0

    def init_state(self, n, N, root):  # pragma: no cover - unused
        raise NotImplementedError

    def newly_mask(self, st, x_raw):  # pragma: no cover - unused
        raise NotImplementedError

    def postprocess(self, st, x_raw):  # pragma: no cover - unused
        raise NotImplementedError

    def chunk_post(self, vu, st, f_next, addr, x):  # pragma: no cover
        raise NotImplementedError

    def kernel_step(self, vu, x, rhs, vals):  # pragma: no cover - unused
        raise NotImplementedError

    def settled_lanes(self, st):  # pragma: no cover - unused
        raise NotImplementedError

    def finalize_distances(self, st):  # pragma: no cover - unused
        raise NotImplementedError


class TestDetection:
    def test_broken_semiring_flagged(self):
        v = verify_semiring(_BrokenSemiring(),
                            domain=np.array([0.0, 1.0, 2.0]))
        assert "add-commutative" in v

    def test_unknown_semiring_needs_domain(self):
        with pytest.raises(ValueError, match="no default domain"):
            verify_semiring(_BrokenSemiring())

    def test_selmax_annihilation_fails_on_negative_domain(self):
        # The documented caveat: 0 is only an annihilator for x >= 0.
        sr = get_semiring("sel-max")
        v = verify_semiring(sr, domain=np.array([-5.0, 0.0, 1.0]))
        assert "pad-annihilation" in v

    def test_annihilation_check_can_be_skipped(self):
        sr = get_semiring("sel-max")
        v = verify_semiring(sr, domain=np.array([0.0, 1.0]),
                            check_annihilation=False)
        assert "pad-annihilation" not in v
