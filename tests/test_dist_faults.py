"""Rank failures, stragglers, and checkpoint/recovery in the dist model.

Hand-built iteration profiles pin the exact overhead arithmetic of
``apply_dist_faults`` against a scripted injector; the end-to-end tests
check seed determinism, the ``faults=None`` bit-identity guarantee, and
the checkpoint-interval vs recompute-from-root cost tradeoff the model
exists to expose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import (
    DistFaultInjector,
    DistFaultModel,
    apply_dist_faults,
    bfs_dist_1d,
    bfs_dist_2d,
    get_network,
    model_checkpoint,
)
from repro.dist.partition import Partition1D
from repro.dist.result import DistIterationStats
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker
from repro.vec.machine import get_machine

NET = get_network("cray-aries")
KNL = get_machine("knl")


def _rep():
    g = kronecker(8, 8, seed=3)
    return SlimSell(g, 8, g.n)


def _iters(times):
    """Fault-free profiles with the given local times (no comm term)."""
    return [DistIterationStats(k=i + 1, newly=1, t_local_s=t, t_comm_s=0.0,
                               comm_bytes=0, imbalance=1.0,
                               rank_lanes=np.ones(4, dtype=np.int64))
            for i, t in enumerate(times)]


class ScriptedDistInjector(DistFaultInjector):
    """Replays exact straggler factors / failure booleans per iteration."""

    def __init__(self, model, stragglers=(), failures=()):
        super().__init__(model)
        self._stragglers = list(stragglers)
        self._failures = list(failures)

    def straggler(self):
        return self._stragglers.pop(0) if self._stragglers else 1.0

    def rank_failed(self, ranks):
        if self._failures and self._failures.pop(0):
            self.stats.failures += 1
            return True
        return False


# ----------------------------------------------------------------------
class TestDistFaultModel:
    @pytest.mark.parametrize("name", ["rank_failure_prob", "straggler_prob"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probabilities_bounded(self, name, bad):
        with pytest.raises(ValueError, match="must be in \\[0, 1\\]"):
            DistFaultModel(**{name: bad})

    def test_straggler_factor_bounded(self):
        with pytest.raises(ValueError, match="straggler_factor"):
            DistFaultModel(straggler_factor=0.9)

    def test_checkpoint_interval_bounded(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            DistFaultModel(checkpoint_interval=0)
        assert DistFaultModel(checkpoint_interval=None).checkpoint_interval \
            is None


class TestModelCheckpoint:
    def test_zero_bytes_free(self):
        assert model_checkpoint(NET, 0) == 0.0

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="nbytes"):
            model_checkpoint(NET, -1)

    def test_alpha_beta_form(self):
        nbytes = 1 << 20
        expect = NET.latency_s + nbytes / (NET.bandwidth_gbs * 1e9)
        assert model_checkpoint(NET, nbytes) == pytest.approx(expect)


class TestDistFaultInjector:
    def test_seed_determinism(self):
        model = DistFaultModel(rank_failure_prob=0.05, straggler_prob=0.3,
                               seed=9)
        a = DistFaultInjector(model)
        b = DistFaultInjector(model)
        seq_a = [(a.straggler(), a.rank_failed(16)) for _ in range(50)]
        seq_b = [(b.straggler(), b.rank_failed(16)) for _ in range(50)]
        assert seq_a == seq_b
        assert a.stats.failures == b.stats.failures > 0

    def test_zero_rates_draw_nothing(self):
        inj = DistFaultInjector(DistFaultModel())
        state = inj.rng.bit_generator.state
        assert inj.straggler() == 1.0
        assert not inj.rank_failed(64)
        assert inj.rng.bit_generator.state == state

    def test_failure_prob_compounds_with_ranks(self):
        # p per rank, P ranks: the iteration is hit w.p. 1-(1-p)^P, so
        # with many ranks even a small p almost always hits.
        inj = DistFaultInjector(DistFaultModel(rank_failure_prob=0.05))
        hits = sum(inj.rank_failed(200) for _ in range(100))
        assert hits > 90


class TestApplyDistFaults:
    def test_straggler_charge(self):
        its = _iters([1.0, 2.0])
        inj = ScriptedDistInjector(DistFaultModel(straggler_factor=4.0),
                                   stragglers=[4.0, 1.0])
        apply_dist_faults(its, inj, ranks=4, network=NET, state_bytes=0)
        assert its[0].t_fault_s == pytest.approx(3.0)  # 1.0 * (4 - 1)
        assert its[1].t_fault_s == 0.0
        assert its[0].t_total_s == pytest.approx(4.0)

    def test_recompute_from_root_replays_everything(self):
        its = _iters([1.0, 2.0, 4.0])
        inj = ScriptedDistInjector(DistFaultModel(),
                                   failures=[False, False, True])
        apply_dist_faults(its, inj, ranks=4, network=NET, state_bytes=0)
        # No checkpointing: the failure at iter 3 replays iters 1 and 2.
        assert its[2].t_fault_s == pytest.approx(1.0 + 2.0)
        assert inj.stats.replayed_layers == 2

    def test_checkpoint_bounds_replay_depth(self):
        ckpt = model_checkpoint(NET, 1 << 20)
        its = _iters([1.0, 2.0, 4.0])
        inj = ScriptedDistInjector(DistFaultModel(checkpoint_interval=2),
                                   failures=[False, False, True])
        apply_dist_faults(its, inj, ranks=4, network=NET,
                          state_bytes=1 << 20)
        # Checkpoint written after iter 2; the failure at iter 3 reads it
        # back and replays nothing (no completed layer since).
        assert its[1].t_fault_s == pytest.approx(ckpt)  # the write
        assert its[2].t_fault_s == pytest.approx(ckpt)  # the read-back
        assert inj.stats.checkpoints == 1
        assert inj.stats.replayed_layers == 0

    def test_failure_before_first_checkpoint_replays_from_root(self):
        ckpt = model_checkpoint(NET, 1 << 20)
        its = _iters([1.0, 2.0, 4.0])
        inj = ScriptedDistInjector(DistFaultModel(checkpoint_interval=3),
                                   failures=[False, True, False])
        apply_dist_faults(its, inj, ranks=4, network=NET,
                          state_bytes=1 << 20)
        # No checkpoint exists yet at iter 2: no read-back, replay iter 1.
        assert its[1].t_fault_s == pytest.approx(1.0)
        assert its[2].t_fault_s == pytest.approx(ckpt)  # interval write


# ----------------------------------------------------------------------
class TestDistFaultsEndToEnd:
    def test_faults_none_is_bit_identical(self):
        rep = _rep()
        part = Partition1D.balanced(rep.cl, 8)
        base = bfs_dist_1d(rep, 0, part, KNL, NET)
        none = bfs_dist_1d(rep, 0, part, KNL, NET, faults=None)
        assert none.modeled_total_s == base.modeled_total_s
        assert all(it.t_fault_s == 0.0 for it in none.iterations)

    def test_zero_rate_model_without_checkpoints_charges_nothing(self):
        rep = _rep()
        part = Partition1D.balanced(rep.cl, 8)
        res = bfs_dist_1d(rep, 0, part, KNL, NET, faults=DistFaultModel())
        assert res.fault_overhead_s == 0.0

    def test_seed_determinism_and_distances_unchanged(self):
        rep = _rep()
        part = Partition1D.balanced(rep.cl, 8)
        model = DistFaultModel(rank_failure_prob=0.1, straggler_prob=0.2,
                               checkpoint_interval=2, seed=5)
        base = bfs_dist_1d(rep, 0, part, KNL, NET)
        a = bfs_dist_1d(rep, 0, part, KNL, NET, faults=model)
        b = bfs_dist_1d(rep, 0, part, KNL, NET, faults=model)
        assert a.fault_overhead_s == b.fault_overhead_s > 0.0
        assert [it.t_fault_s for it in a.iterations] == \
               [it.t_fault_s for it in b.iterations]
        # Faults are charged to modeled time only — never to the answer,
        # and never to the fault-free base terms.
        assert np.array_equal(a.dist, base.dist)
        assert [it.t_base_s for it in a.iterations] == \
               [it.t_base_s for it in base.iterations]
        assert a.modeled_total_s == pytest.approx(
            base.modeled_total_s + a.fault_overhead_s)

    def test_checkpointing_beats_recompute_under_heavy_failures(self):
        rep = _rep()
        part = Partition1D.balanced(rep.cl, 8)
        model = dict(rank_failure_prob=0.05, seed=11)
        never = bfs_dist_1d(rep, 0, part, KNL, NET,
                            faults=DistFaultModel(**model))
        every = bfs_dist_1d(rep, 0, part, KNL, NET,
                            faults=DistFaultModel(checkpoint_interval=1,
                                                  **model))
        # Same seed, same draw sequence: identical failure pattern, so the
        # comparison isolates recovery depth vs checkpoint premium.
        assert 0.0 < every.fault_overhead_s < never.fault_overhead_s

    def test_batched_2d_with_faults(self):
        rep = _rep()
        model = DistFaultModel(rank_failure_prob=0.1, straggler_prob=0.2,
                               checkpoint_interval=2, seed=1)
        base = bfs_dist_2d(rep, [0, 1, 2, 3], (2, 2), KNL, NET, batch=2)
        res = bfs_dist_2d(rep, [0, 1, 2, 3], (2, 2), KNL, NET, batch=2,
                          faults=model)
        assert res.fault_overhead_s > 0.0
        assert np.array_equal(res.dists, base.dists)
        assert res.modeled_total_s == pytest.approx(
            base.modeled_total_s + res.fault_overhead_s)

    def test_prebuilt_injector_exposes_stats(self):
        rep = _rep()
        part = Partition1D.balanced(rep.cl, 8)
        inj = DistFaultInjector(DistFaultModel(rank_failure_prob=0.3,
                                               checkpoint_interval=1,
                                               seed=2))
        bfs_dist_1d(rep, [0, 1, 2, 3], part, KNL, NET, batch=2, faults=inj)
        assert inj.stats.checkpoints > 0
        assert inj.stats.failures > 0
