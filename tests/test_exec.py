"""Executed parallel backend: bit-identity, sharding edges, calibration.

The exec engine's one obligation is that *who* sweeps a chunk never
changes *what* the sweep computes: every worker count, backend, and
partition must be bit-identical — distances, parents, per-source
iteration profiles, synthesized counters — to the plain batched engine.
Equivalence against every other engine runs through the shared
cross-engine oracle (:mod:`engines`); the sharding boundary cases, the
persistent process pool, and the measured-vs-modeled calibration loop
are covered here.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfs.msbfs import bfs_msbfs
from repro.dist.bfs1d import bfs_dist_1d
from repro.dist.calibrate import calibrate
from repro.dist.partition import Partition1D
from repro.exec import BACKENDS, ExecMultiSourceBFS, bfs_exec
from repro.formats.slimsell import SlimSell
from repro.graphs.erdos_renyi import erdos_renyi_nm
from repro.graphs.kronecker import kronecker

from conftest import SEMIRING_NAMES, two_components
from engines import assert_bfs_equivalent

WORKER_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def kron():
    return kronecker(8, 8, seed=7)


@pytest.fixture(scope="module")
def kron_rep(kron):
    return SlimSell(kron, 8, kron.n)


def _roots(g):
    cand = [0, int(np.argmax(g.degrees)), g.n // 2, g.n - 1]
    return np.unique(cand)


def _assert_results_equal(got, exp, *, check_stats=True):
    assert len(got) == len(exp)
    for a, b in zip(got, exp):
        np.testing.assert_array_equal(a.dist, b.dist)
        if a.parent is not None or b.parent is not None:
            np.testing.assert_array_equal(a.parent, b.parent)
        if not check_stats:
            continue
        assert len(a.iterations) == len(b.iterations)
        for ia, ib in zip(a.iterations, b.iterations):
            assert ia.k == ib.k
            assert ia.newly == ib.newly
            assert ia.chunks_processed == ib.chunks_processed
            assert ia.chunks_skipped == ib.chunks_skipped
            assert ia.work_lanes == ib.work_lanes
            assert (ia.counters is None) == (ib.counters is None)
            if ia.counters is not None:
                assert ia.counters == ib.counters


class TestOracle:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_full_oracle_all_semirings(self, kron, semiring, workers):
        """Engine "exec" vs the whole registry, at every worker count."""
        assert_bfs_equivalent(kron, _roots(kron), semiring=semiring,
                              exec_workers=workers)

    @pytest.mark.parametrize("graph_name", ["er", "disconnected"])
    def test_other_graph_shapes(self, graph_name):
        g = (erdos_renyi_nm(200, 800, seed=13) if graph_name == "er"
             else two_components())
        assert_bfs_equivalent(g, _roots(g), engines=["traditional", "msbfs",
                                                     "exec"])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_through_oracle(self, kron, backend):
        assert_bfs_equivalent(kron, _roots(kron), exec_backend=backend,
                              engines=["traditional", "msbfs", "exec"])


class TestWorkersOneExact:
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    @pytest.mark.parametrize("slimwork", [False, True])
    def test_reproduces_msbfs_including_stats(self, kron, kron_rep, semiring,
                                              slimwork):
        """workers=1 is bfs_msbfs bit for bit, iteration stats included."""
        roots = _roots(kron)
        exp = bfs_msbfs(kron_rep, roots, semiring, slimwork=slimwork,
                        counting=True)
        got = bfs_exec(kron_rep, roots, semiring, workers=1,
                       slimwork=slimwork, counting=True)
        _assert_results_equal(got, exp)

    def test_batched_grouping_matches(self, kron, kron_rep):
        roots = np.arange(10, dtype=np.int64)
        exp = bfs_msbfs(kron_rep, roots, slimwork=True, batch=4)
        got = bfs_exec(kron_rep, roots, workers=1, slimwork=True, batch=4)
        _assert_results_equal(got, exp)

    def test_method_label(self, kron_rep):
        res = bfs_exec(kron_rep, [0], workers=3, backend="serial",
                       slimwork=True)
        assert res[0].method == "exec-serial-w3+slimwork"


class TestWorkerInvariance:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16), nroots=st.integers(1, 6),
           slimwork=st.booleans())
    def test_results_independent_of_worker_count(self, seed, nroots,
                                                 slimwork):
        rng = np.random.default_rng(seed)
        g = erdos_renyi_nm(60, 180, seed=seed)
        rep = SlimSell(g, 8, g.n)
        roots = rng.integers(0, g.n, size=nroots)
        base = None
        for workers in WORKER_COUNTS:
            got = bfs_exec(rep, roots, workers=workers, slimwork=slimwork,
                           counting=True)
            if base is None:
                base = got
            else:
                _assert_results_equal(got, base)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree(self, kron_rep, backend):
        roots = np.array([0, 3, 9], dtype=np.int64)
        exp = bfs_msbfs(kron_rep, roots, slimwork=True)
        got = bfs_exec(kron_rep, roots, workers=3, backend=backend,
                       slimwork=True)
        _assert_results_equal(got, exp)


class TestShardBoundaries:
    def test_more_workers_than_chunks(self):
        g = two_components()  # 9 vertices -> 2 chunks at C=8
        rep = SlimSell(g, 8, g.n)
        assert rep.nc < 6
        exp = bfs_msbfs(rep, [0, 4, 8], slimwork=True)
        got = bfs_exec(rep, [0, 4, 8], workers=6, slimwork=True)
        _assert_results_equal(got, exp)

    def test_empty_middle_shard(self, kron_rep):
        """A custom partition with a rank owning zero chunks."""
        owner = np.zeros(kron_rep.nc, dtype=np.int64)
        owner[kron_rep.nc // 2:] = 2  # rank 1 owns nothing
        part = Partition1D(owner, ranks=3)
        exp = bfs_msbfs(kron_rep, [0, 5], slimwork=True)
        got = bfs_exec(kron_rep, [0, 5], workers=3, partition=part,
                       slimwork=True)
        _assert_results_equal(got, exp)

    def test_profile_accounts_every_active_chunk(self, kron_rep):
        engine = ExecMultiSourceBFS(kron_rep, workers=3, slimwork=True)
        with engine:
            engine.run([0, 5, 9])
            assert engine.layer_profile, "no layers profiled"
            for layer in engine.layer_profile:
                assert len(layer.t_workers) == 3
                assert len(layer.chunks_per_worker) == 3
                assert sum(layer.chunks_per_worker) <= kron_rep.nc
                assert layer.t_local_s == max(layer.t_workers)
                assert layer.exchanged_bytes > 0

    def test_validation_errors(self, kron_rep):
        with pytest.raises(ValueError, match="workers"):
            ExecMultiSourceBFS(kron_rep, workers=0)
        with pytest.raises(ValueError, match="backend"):
            ExecMultiSourceBFS(kron_rep, backend="mpi")
        with pytest.raises(ValueError, match="ranks"):
            ExecMultiSourceBFS(
                kron_rep, workers=3,
                partition=Partition1D.balanced(kron_rep.cl, 2))
        small = Partition1D.balanced(np.ones(3), 2)
        with pytest.raises(ValueError, match="chunks"):
            ExecMultiSourceBFS(kron_rep, workers=2, partition=small)


class TestProcessBackend:
    def test_persistent_pool_reuse(self, kron_rep):
        """Two runs on one engine reuse the forked pool; both bit-exact."""
        exp = bfs_msbfs(kron_rep, [0, 5], slimwork=True)
        with ExecMultiSourceBFS(kron_rep, workers=2, backend="process",
                                slimwork=True) as engine:
            _assert_results_equal(engine.run([0, 5]), exp)
            pool = engine._pool
            _assert_results_equal(engine.run([0, 5]), exp)
            assert engine._pool is pool  # same workers, no respawn

    def test_pool_grows_for_wider_frontier(self, kron_rep):
        with ExecMultiSourceBFS(kron_rep, workers=2,
                                backend="process") as engine:
            engine.run([0])
            first = engine._pool
            got = engine.run(np.arange(8))  # wider than the w=1 capacity
            assert engine._pool is not first
        exp = bfs_msbfs(kron_rep, np.arange(8))
        _assert_results_equal(got, exp)

    def test_close_is_idempotent(self, kron_rep):
        engine = ExecMultiSourceBFS(kron_rep, workers=2, backend="process")
        engine.run([0])
        engine.close()
        engine.close()


class TestCalibrate:
    def test_calibrated_descriptors_reproduce_measured_totals(self, kron_rep):
        roots = np.arange(6, dtype=np.int64)
        rpt = calibrate(kron_rep, roots, workers=2, machine="knl",
                        network="cray-aries", slimwork=True)
        assert rpt.compute_scale > 0
        assert rpt.comm_scale is not None and rpt.comm_scale > 0
        # The whole point: under the calibrated descriptors the model's
        # totals equal the measured totals (the scaling is exact because
        # both cost formulas are homogeneous in their descriptors).
        part = Partition1D.balanced(kron_rep.cl, 2)
        remodeled = bfs_dist_1d(kron_rep, roots, part,
                                rpt.machine_calibrated,
                                rpt.network_calibrated, slimwork=True)
        local = sum(it.t_local_s for it in remodeled.iterations)
        comm = sum(it.t_comm_s for it in remodeled.iterations)
        assert local == pytest.approx(rpt.measured_local_s, rel=1e-9)
        assert comm == pytest.approx(rpt.measured_exchange_s, rel=1e-9)
        # The diffs name exactly the fields the calibration touched.
        assert set(rpt.machine_diff()) == {"name", "ghz", "bandwidth_gbs"}
        assert set(rpt.network_diff()) == {"name", "latency_s",
                                           "bandwidth_gbs"}
        assert "compute_scale" in rpt.describe()

    def test_single_worker_leaves_network_alone(self, kron_rep):
        rpt = calibrate(kron_rep, [0, 1, 2], workers=1)
        assert rpt.comm_scale is None
        assert rpt.network_calibrated == rpt.network
        assert rpt.machine_diff()  # compute is still calibrated

    def test_iteration_table_aligns_widths(self, kron_rep):
        roots = np.arange(5, dtype=np.int64)
        rpt = calibrate(kron_rep, roots, workers=2, slimwork=True, batch=2)
        assert rpt.iterations
        assert all(it.width <= 2 for it in rpt.iterations)
        assert rpt.iterations[0].width == 2
