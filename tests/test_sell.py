"""Tests of the Sell-C-σ layout (§II-D2): geometry, sorting, storage."""

import numpy as np
import pytest

from repro.analysis.complexity import sell_storage_upper_bound
from repro.formats.sell import PAD, SellCSigma, sigma_sort_permutation
from repro.graphs.kronecker import kronecker
from repro.semirings.base import get_semiring

from conftest import path_graph, star_graph


def reconstruct_adjacency(sell: SellCSigma) -> set[tuple[int, int]]:
    """Recover directed edges (new-id space) from the chunked layout."""
    edges = set()
    lay = sell._layout
    for i in range(sell.nc):
        for j in range(int(sell.cl[i])):
            for r in range(sell.C):
                row = i * sell.C + r
                slot = int(sell.cs[i]) + j * sell.C + r
                c = int(lay.col[slot])
                if c != PAD:
                    edges.add((row, c))
    return edges


class TestSigmaSort:
    def test_sigma_one_is_identity(self):
        deg = np.array([3, 1, 4, 1, 5])
        assert np.array_equal(sigma_sort_permutation(deg, 1), np.arange(5))

    def test_full_sort_descending(self):
        deg = np.array([3, 1, 4, 1, 5])
        perm = sigma_sort_permutation(deg, 5)
        inv = np.empty(5, dtype=np.int64)
        inv[perm] = np.arange(5)
        sorted_deg = deg[inv]
        assert np.array_equal(sorted_deg, np.sort(deg)[::-1])

    def test_windowed_sort_stays_in_window(self):
        deg = np.array([1, 9, 2, 8, 3, 7])
        perm = sigma_sort_permutation(deg, 2)
        # Each window of 2 is sorted internally; ids never cross windows.
        for v, newid in enumerate(perm):
            assert v // 2 == newid // 2

    def test_stable_on_ties(self):
        deg = np.array([2, 2, 2])
        assert np.array_equal(sigma_sort_permutation(deg, 3), np.arange(3))

    def test_result_is_permutation(self):
        rng = np.random.default_rng(0)
        deg = rng.integers(0, 50, size=97)
        perm = sigma_sort_permutation(deg, 16)
        assert np.array_equal(np.sort(perm), np.arange(97))


class TestLayoutGeometry:
    def test_chunk_count_and_padding_rows(self):
        g = path_graph(10)
        s = SellCSigma(g, C=4)
        assert s.nc == 3
        assert s.N == 12  # two virtual rows in the last chunk

    def test_cl_is_max_degree_in_chunk(self):
        g = star_graph(8)  # degrees: [7, 1, 1, ...]
        s = SellCSigma(g, C=4, sigma=8)
        # After full sort the hub is in chunk 0.
        assert s.cl[0] == 7
        assert s.cl[1] == 1

    def test_cs_offsets_consistent(self):
        g = kronecker(8, 4, seed=0)
        s = SellCSigma(g, C=8)
        sizes = s.cl * s.C
        assert np.array_equal(np.diff(s.cs), sizes[:-1])
        assert s.total_slots == int(sizes.sum())

    def test_adjacency_reconstruction(self):
        g = kronecker(7, 4, seed=2)
        s = SellCSigma(g, C=4, sigma=64)
        got = reconstruct_adjacency(s)
        want = set()
        for u, v in s.graph.edges():
            want.add((int(u), int(v)))
            want.add((int(v), int(u)))
        assert got == want

    def test_column_major_within_chunk(self):
        # Row r's j-th neighbor sits at cs[i] + j*C + r (Fig 2 layout).
        g = star_graph(4)  # hub degree 3
        s = SellCSigma(g, C=4, sigma=1)  # no sorting: hub is row 0
        lay = s._layout
        hub_cols = [int(lay.col[int(s.cs[0]) + j * 4 + 0]) for j in range(3)]
        assert sorted(hub_cols) == [1, 2, 3]

    def test_padding_slots_counted(self):
        g = star_graph(5)  # degrees 4,1,1,1,1 -> one chunk C=8? n=5 -> nc=1
        s = SellCSigma(g, C=8, sigma=5)
        # chunk length 4; slots = 4*8 = 32; edges stored = 2m = 8.
        assert s.total_slots == 32
        assert s.padding_slots == 24

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError, match="C must be >= 1"):
            SellCSigma(path_graph(4), C=0)


class TestSortingReducesPadding:
    def test_full_sort_no_worse_than_none(self):
        g = kronecker(9, 8, seed=1)
        unsorted = SellCSigma(g, C=8, sigma=1)
        full = SellCSigma(g, C=8, sigma=g.n)
        assert full.padding_slots <= unsorted.padding_slots

    def test_monotone_trend_over_sigma(self):
        g = kronecker(9, 8, seed=4)
        pads = [SellCSigma(g, C=8, sigma=s).padding_slots
                for s in (1, 8, 64, 512)]
        assert pads[-1] <= pads[0]
        assert pads[-1] < 0.5 * pads[0]  # power law: sorting helps a lot

    def test_storage_bound_respected(self):
        # Fig 3 bound: total slots <= 2m + rho_max * C under full sorting.
        for seed in range(3):
            g = kronecker(8, 6, seed=seed)
            s = SellCSigma(g, C=8, sigma=g.n)
            assert s.total_slots <= sell_storage_upper_bound(
                2 * g.m, g.max_degree, 8)


class TestValues:
    def test_val_for_tropical(self):
        g = star_graph(5)
        s = SellCSigma(g, C=8)
        v = s.val_for(get_semiring("tropical"))
        mask = s._layout.edge_mask()
        assert np.all(v[mask] == 1.0)
        assert np.all(np.isinf(v[~mask]))

    def test_val_for_boolean_padding_zero(self):
        g = star_graph(5)
        s = SellCSigma(g, C=8)
        v = s.val_for(get_semiring("boolean"))
        mask = s._layout.edge_mask()
        assert np.all(v[mask] == 1.0)
        assert np.all(v[~mask] == 0.0)

    def test_val_cache_reused(self):
        g = path_graph(6)
        s = SellCSigma(g, C=4)
        sr = get_semiring("tropical")
        assert s.val_for(sr) is s.val_for(sr)

    def test_gather_safe_col_has_no_markers(self):
        g = kronecker(7, 4, seed=1)
        s = SellCSigma(g, C=8)
        assert s.col.min() >= 0


class TestStorageAccounting:
    def test_table_iii_formula(self):
        g = kronecker(8, 4, seed=0)
        s = SellCSigma(g, C=8, sigma=g.n)
        nc2 = 2 * s.nc
        assert s.storage_cells() == 4 * g.m + nc2 + s.padding_cells
        assert s.padding_cells == 2 * s.padding_slots

    def test_preprocess_times_recorded(self):
        g = kronecker(8, 4, seed=0)
        s = SellCSigma(g, C=8)
        assert s.build_time_s > 0
        assert 0 <= s.sort_time_s <= s.build_time_s
