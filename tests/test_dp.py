"""Tests of the DP transformation d → p (§II-C)."""

import numpy as np
import pytest

from repro.bfs.dp import dp_transform
from repro.bfs.traditional import bfs_serial
from repro.graphs.graph import Graph

from conftest import complete_graph, cycle_graph, path_graph, star_graph, two_components


class TestKnownGraphs:
    def test_path_parents_chain(self):
        g = path_graph(5)
        d = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        p = dp_transform(g, d)
        assert p.tolist() == [0, 0, 1, 2, 3]

    def test_star_all_point_to_hub(self):
        g = star_graph(6)
        d = np.array([0.0] + [1.0] * 5)
        p = dp_transform(g, d)
        assert p.tolist() == [0, 0, 0, 0, 0, 0]

    def test_cycle_ties_pick_max_id(self):
        g = cycle_graph(4)
        d = np.array([0.0, 1.0, 2.0, 1.0])
        p = dp_transform(g, d)
        assert p[2] == 3  # both 1 and 3 valid; max id wins
        assert p[1] == 0 and p[3] == 0

    def test_unreachable_stay_minus_one(self):
        g = two_components()
        d = np.full(9, np.inf)
        d[0] = 0.0
        d[1] = d[2] = d[3] = 1.0
        p = dp_transform(g, d)
        assert p[0] == 0
        assert (p[4:] == -1).all()

    def test_isolated_root(self):
        g = Graph.empty(3)
        d = np.array([np.inf, 0.0, np.inf])
        p = dp_transform(g, d)
        assert p.tolist() == [-1, 1, -1]

    def test_empty_graph(self):
        p = dp_transform(Graph.empty(0), np.empty(0))
        assert p.size == 0


class TestAgainstBFS:
    @pytest.mark.parametrize("builder,n", [
        (path_graph, 13), (cycle_graph, 10), (star_graph, 9), (complete_graph, 7),
    ])
    def test_parents_valid_for_bfs_distances(self, builder, n):
        g = builder(n)
        res = bfs_serial(g, 0)
        p = dp_transform(g, res.dist)
        reached = np.isfinite(res.dist)
        for v in np.flatnonzero(reached):
            if v == 0:
                assert p[v] == 0
            else:
                assert g.has_edge(int(v), int(p[v]))
                assert res.dist[p[v]] == res.dist[v] - 1

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            dp_transform(path_graph(4), np.zeros(3))
