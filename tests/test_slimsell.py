"""Tests of SlimSell (§III-B): markers, derived values, storage halving."""

import numpy as np
import pytest

from repro.formats.sell import PAD, SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker
from repro.semirings.base import get_semiring

from conftest import path_graph, star_graph


class TestMarkers:
    def test_col_keeps_pad_markers(self):
        g = star_graph(5)
        slim = SlimSell(g, C=8, sigma=5)
        assert (slim.col == PAD).sum() == slim.padding_slots

    def test_edge_entries_are_column_indices(self):
        g = path_graph(6)
        slim = SlimSell(g, C=4, sigma=1)
        real = slim.col[slim.col != PAD]
        assert real.min() >= 0 and real.max() < g.n

    def test_derived_values_match_sell(self):
        g = kronecker(7, 4, seed=5)
        sell = SellCSigma(g, C=8, sigma=g.n)
        slim = SlimSell.from_sell(sell)
        for name in ("tropical", "boolean", "real", "sel-max"):
            sr = get_semiring(name)
            np.testing.assert_array_equal(slim.val_for(sr), sell.val_for(sr))


class TestSharedLayout:
    def test_from_sell_shares_geometry(self):
        g = kronecker(7, 4, seed=1)
        sell = SellCSigma(g, C=8, sigma=64)
        slim = SlimSell.from_sell(sell)
        assert slim._layout is sell._layout
        assert np.array_equal(slim.cs, sell.cs)
        assert np.array_equal(slim.cl, sell.cl)
        assert np.array_equal(slim.perm, sell.perm)

    def test_direct_construction_equivalent(self):
        g = kronecker(7, 4, seed=1)
        a = SlimSell(g, C=8, sigma=64)
        b = SlimSell.from_sell(SellCSigma(g, C=8, sigma=64))
        assert np.array_equal(a.col, b.col)
        assert np.array_equal(a.cs, b.cs)

    def test_has_val_flags(self):
        g = path_graph(4)
        assert SellCSigma(g, C=4).has_val is True
        assert SlimSell(g, C=4).has_val is False


class TestStorage:
    def test_table_iii_formula(self):
        g = kronecker(8, 4, seed=0)
        slim = SlimSell(g, C=8, sigma=g.n)
        nc2 = 2 * slim.nc
        assert slim.storage_cells() == 2 * g.m + nc2 + slim.padding_slots
        assert slim.padding_cells == slim.padding_slots

    def test_half_of_sell_for_small_padding(self):
        # §III-B: reduction factor up to (m+n)/(2m+n), i.e. ~50% for m >> n.
        g = kronecker(10, 16, seed=3)
        sell = SellCSigma(g, C=8, sigma=g.n)
        slim = SlimSell.from_sell(sell)
        ratio = slim.storage_cells() / sell.storage_cells()
        assert 0.5 <= ratio < 0.56

    def test_inequality_3_dense_graph_beats_al(self):
        # P < n(1 - 2/C) => SlimSell smaller than AL (2m + n cells).
        g = kronecker(10, 16, seed=3)
        slim = SlimSell(g, C=8, sigma=g.n)
        al_cells = 2 * g.m + g.n
        if slim.padding_slots < g.n * (1 - 2 / 8):
            assert slim.storage_cells() < al_cells

    def test_unsorted_padding_can_lose_to_al(self):
        # With sigma=1 on a skewed graph, padding blows past inequality (3).
        g = kronecker(9, 2, seed=8)
        slim = SlimSell(g, C=8, sigma=1)
        al_cells = 2 * g.m + g.n
        assert slim.padding_slots > g.n * (1 - 2 / 8)
        assert slim.storage_cells() > al_cells

    @pytest.mark.parametrize("C", [4, 8, 16, 32])
    def test_always_smaller_than_sell(self, C):
        g = kronecker(8, 8, seed=2)
        sell = SellCSigma(g, C=C, sigma=g.n)
        slim = SlimSell.from_sell(sell)
        assert slim.storage_cells() < sell.storage_cells()
