"""Edge cases of the batched distributed-BFS model (1D/2D multi-source)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import path_graph

from repro.bfs.validate import reference_distances
from repro.dist.bfs1d import bfs_dist_1d
from repro.dist.bfs2d import bfs_dist_2d
from repro.dist.network import (
    CRAY_ARIES,
    ETHERNET_10G,
    Network,
    batched_frontier_bytes,
    model_allgather,
    model_reduce_scatter,
    model_transpose,
)
from repro.dist.partition import Partition1D
from repro.dist.result import DistBatchResult
from repro.formats.slimsell import SlimSell
from repro.graph500 import sample_roots
from repro.graphs.kronecker import kronecker
from repro.vec.machine import get_machine

KNL = get_machine("knl")


@pytest.fixture(scope="module")
def setup():
    g = kronecker(9, 8, seed=77)
    rep = SlimSell(g, 8, g.n)
    roots = sample_roots(g, 8, seed=3)
    return g, rep, roots


@pytest.fixture(scope="module")
def part(setup):
    _, rep, _ = setup
    return Partition1D.balanced(rep.cl, 4)


def assert_same_profile(single, batched):
    """The batched container at width 1 must match single-source exactly."""
    assert len(single.iterations) == len(batched.iterations)
    for a, b in zip(single.iterations, batched.iterations):
        assert a.k == b.k
        assert a.newly == b.newly
        assert a.t_local_s == b.t_local_s
        assert a.t_comm_s == b.t_comm_s
        assert a.comm_bytes == b.comm_bytes
        assert a.chunks_active == b.chunks_active
        assert b.width == 1
        assert np.array_equal(a.rank_lanes, b.rank_lanes)


class TestBatchOfOne:
    """batch=1 reproduces the single-source model cost term for cost term."""

    def test_1d_bit_identical(self, setup, part):
        _, rep, roots = setup
        for root in roots[:4]:
            single = bfs_dist_1d(rep, int(root), part, KNL, CRAY_ARIES)
            batched = bfs_dist_1d(rep, [int(root)], part, KNL, CRAY_ARIES)
            assert isinstance(batched, DistBatchResult)
            assert_same_profile(single, batched)
            assert np.array_equal(single.dist, batched.dists[0])
            assert single.modeled_total_s == batched.modeled_total_s

    def test_2d_bit_identical(self, setup):
        _, rep, roots = setup
        for root in roots[:4]:
            single = bfs_dist_2d(rep, int(root), (2, 2), KNL, CRAY_ARIES)
            batched = bfs_dist_2d(rep, [int(root)], (2, 2), KNL, CRAY_ARIES)
            assert_same_profile(single, batched)
            assert np.array_equal(single.dist, batched.dists[0])

    def test_batch_1_groups_of_one(self, setup, part):
        _, rep, roots = setup
        res = bfs_dist_1d(rep, roots, part, KNL, CRAY_ARIES, batch=1)
        singles = [bfs_dist_1d(rep, int(r), part, KNL, CRAY_ARIES) for r in roots]
        assert res.groups == roots.size
        assert res.n_iterations == sum(s.n_iterations for s in singles)
        assert res.total_comm_bytes == sum(s.total_comm_bytes for s in singles)
        # Same addends, different summation tree: equal up to fp rounding.
        total = sum(s.modeled_total_s for s in singles)
        assert res.modeled_total_s == pytest.approx(total, rel=1e-12)


class TestBatchedCorrectness:
    def test_distances_match_reference(self, setup, part):
        g, rep, roots = setup
        res = bfs_dist_1d(rep, roots, part, KNL, CRAY_ARIES)
        for j, root in enumerate(roots):
            ref = reference_distances(g, int(root))
            d = res.dists[j]
            assert ((d == ref) | (np.isinf(d) & np.isinf(ref))).all()

    def test_2d_distances_match_reference(self, setup):
        g, rep, roots = setup
        res = bfs_dist_2d(rep, roots, (2, 3), KNL, ETHERNET_10G, batch=3)
        for j, root in enumerate(roots):
            ref = reference_distances(g, int(root))
            d = res.dists[j]
            assert ((d == ref) | (np.isinf(d) & np.isinf(ref))).all()

    def test_batch_wider_than_roots(self, setup, part):
        _, rep, roots = setup
        res = bfs_dist_1d(rep, roots, part, KNL, CRAY_ARIES, batch=999)
        assert res.groups == 1
        assert res.batch == roots.size
        assert res.n_sources == roots.size

    def test_duplicate_roots(self, setup, part):
        g, rep, roots = setup
        r = int(roots[0])
        res = bfs_dist_1d(rep, [r, r, r], part, KNL, CRAY_ARIES)
        assert np.array_equal(res.dists[0], res.dists[1])
        assert np.array_equal(res.dists[0], res.dists[2])

    def test_disconnected_roots_keep_inf(self, part):
        g = path_graph(12)
        rep = SlimSell(g, 4, g.n)
        p = Partition1D.blocks(rep.nc, 2)
        res = bfs_dist_1d(rep, [0, 11], p, KNL, CRAY_ARIES)
        assert res.dists[0][0] == 0 and res.dists[1][11] == 0
        assert np.isfinite(res.dists).all()  # a path is connected

    def test_scalar_root_with_batch_rejected(self, setup, part):
        _, rep, roots = setup
        with pytest.raises(ValueError, match="sequence of roots"):
            bfs_dist_1d(rep, int(roots[0]), part, KNL, CRAY_ARIES, batch=4)
        with pytest.raises(ValueError, match="sequence of roots"):
            bfs_dist_2d(rep, int(roots[0]), (2, 2), KNL, CRAY_ARIES, batch=4)

    def test_invalid_batch_rejected(self, setup, part):
        _, rep, roots = setup
        with pytest.raises(ValueError, match="batch"):
            bfs_dist_1d(rep, roots, part, KNL, CRAY_ARIES, batch=0)


class TestAmortization:
    """The §VI story: a B-wide sweep pays collectives once per layer."""

    def test_comm_volume_amortizes(self, setup, part):
        _, rep, roots = setup
        seq = bfs_dist_1d(rep, roots, part, KNL, ETHERNET_10G, batch=1)
        bat = bfs_dist_1d(rep, roots, part, KNL, ETHERNET_10G)
        assert bat.total_comm_bytes < seq.total_comm_bytes
        assert bat.total_comm_latency_s < seq.total_comm_latency_s
        assert bat.modeled_total_s < seq.modeled_total_s

    def test_union_iterations_shrink(self, setup, part):
        _, rep, roots = setup
        seq = bfs_dist_1d(rep, roots, part, KNL, CRAY_ARIES, batch=1)
        bat = bfs_dist_1d(rep, roots, part, KNL, CRAY_ARIES)
        assert bat.n_iterations < seq.n_iterations
        assert bat.n_iterations == max(
            bfs_dist_1d(rep, int(r), part, KNL, CRAY_ARIES).n_iterations
            for r in roots
        )

    def test_newly_totals_conserved(self, setup, part):
        _, rep, roots = setup
        seq = bfs_dist_1d(rep, roots, part, KNL, CRAY_ARIES, batch=1)
        bat = bfs_dist_1d(rep, roots, part, KNL, CRAY_ARIES)
        assert sum(it.newly for it in seq.iterations) == sum(
            it.newly for it in bat.iterations
        )


class TestOverlap:
    def test_zero_overlap_is_bulk_synchronous(self, setup, part):
        _, rep, roots = setup
        res = bfs_dist_1d(rep, int(roots[0]), part, KNL, ETHERNET_10G)
        for it in res.iterations:
            assert it.t_total_s == it.t_local_s + it.t_comm_s

    def test_full_overlap_hides_min(self, setup, part):
        _, rep, roots = setup
        res = bfs_dist_1d(rep, int(roots[0]), part, KNL, ETHERNET_10G, overlap=1.0)
        for it in res.iterations:
            assert it.t_total_s == pytest.approx(max(it.t_local_s, it.t_comm_s))

    def test_monotone_in_overlap(self, setup, part):
        _, rep, roots = setup

        def total(ov):
            return bfs_dist_1d(
                rep, roots, part, KNL, ETHERNET_10G, overlap=ov
            ).modeled_total_s

        totals = [total(ov) for ov in (0.0, 0.25, 0.5, 1.0)]
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_overlap_applies_to_2d(self, setup):
        _, rep, roots = setup
        r0 = bfs_dist_2d(rep, roots, (2, 2), KNL, ETHERNET_10G)
        r1 = bfs_dist_2d(rep, roots, (2, 2), KNL, ETHERNET_10G, overlap=1.0)
        assert r1.modeled_total_s <= r0.modeled_total_s
        assert r1.total_comm_bytes == r0.total_comm_bytes  # volume unchanged

    def test_out_of_range_rejected(self, setup, part):
        _, rep, roots = setup
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError, match="overlap"):
                bfs_dist_1d(rep, roots, part, KNL, CRAY_ARIES, overlap=bad)
            with pytest.raises(ValueError, match="overlap"):
                bfs_dist_2d(rep, roots, (2, 2), KNL, CRAY_ARIES, overlap=bad)


class TestCollectiveModels:
    def test_reduce_scatter_monotone_in_ranks(self):
        for net in (CRAY_ARIES, ETHERNET_10G):
            times = [model_reduce_scatter(net, p, 10**6) for p in range(1, 65)]
            assert all(a <= b for a, b in zip(times, times[1:]))
            assert times[0] == 0.0 and times[1] > 0.0

    def test_reduce_scatter_monotone_in_bytes(self):
        for net in (CRAY_ARIES, ETHERNET_10G):
            times = [model_reduce_scatter(net, 8, b) for b in (0, 10, 10**3, 10**6)]
            assert all(a < b for a, b in zip(times, times[1:]))

    def test_reduce_scatter_matches_seed_row_merge(self):
        # The seed modeled the row merge as an allgather-shaped collective;
        # the proper reduce-scatter moves the same volume over the same
        # hops, which is what keeps single-source 2D totals unchanged.
        net = Network("toy", latency_s=1e-6, bandwidth_gbs=1.0)
        assert model_reduce_scatter(net, 4, 8000) == model_allgather(net, 4, 8000)

    def test_reduce_scatter_term_monotone_in_grid_shape(self, setup):
        # Growing R shrinks the merged row segment, so the row term (and
        # with it the per-iteration bytes) falls at fixed grid columns.
        _, rep, roots = setup
        bytes_by_r = [
            bfs_dist_2d(rep, roots, (R, 2), KNL, CRAY_ARIES).iterations[0].comm_bytes
            for R in (2, 4, 8)
        ]
        assert all(a > b for a, b in zip(bytes_by_r, bytes_by_r[1:]))

    def test_transpose_adds_cost(self, setup):
        _, rep, roots = setup
        plain = bfs_dist_2d(rep, roots, (2, 2), KNL, CRAY_ARIES)
        trans = bfs_dist_2d(rep, roots, (2, 2), KNL, CRAY_ARIES, transpose=True)
        assert trans.total_comm_bytes > plain.total_comm_bytes
        assert trans.modeled_total_s > plain.modeled_total_s
        assert trans.total_comm_latency_s > plain.total_comm_latency_s

    def test_transpose_model_basics(self):
        net = Network("toy", latency_s=1e-6, bandwidth_gbs=1.0)
        assert model_transpose(net, 0) == 0.0
        assert model_transpose(net, 10**9) == pytest.approx(1.0 + 1e-6)
        with pytest.raises(ValueError, match="nbytes"):
            model_transpose(net, -1)

    def test_batched_frontier_bytes(self):
        n = 1000
        assert batched_frontier_bytes(n, 1) == 4 * n
        two = batched_frontier_bytes(n, 2)
        assert two == 4 * n + (2 * n + 7) // 8
        # Marginal column cost is an N-bit bitmap, 32x below a dense vector.
        for w in (2, 8, 64):
            total = batched_frontier_bytes(n, w)
            assert total < w * 4 * n
            assert total / w < batched_frontier_bytes(n, 1)
        with pytest.raises(ValueError, match="width"):
            batched_frontier_bytes(n, 0)
        with pytest.raises(ValueError, match="nwords"):
            batched_frontier_bytes(-1, 1)


class TestRootOrderInvariance:
    @settings(
        deadline=None,
        max_examples=12,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(perm=st.permutations(list(range(6))))
    def test_modeled_totals_invariant(self, setup, part, perm):
        _, rep, roots = setup
        base = bfs_dist_1d(rep, roots[:6], part, KNL, ETHERNET_10G)
        shuf = bfs_dist_1d(rep, roots[:6][list(perm)], part, KNL, ETHERNET_10G)
        assert shuf.modeled_total_s == base.modeled_total_s
        assert shuf.total_comm_bytes == base.total_comm_bytes
        assert shuf.n_iterations == base.n_iterations
        assert np.array_equal(shuf.dists, base.dists[list(perm)])

    @settings(
        deadline=None,
        max_examples=8,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(perm=st.permutations(list(range(5))))
    def test_2d_invariant(self, setup, perm):
        _, rep, roots = setup
        base = bfs_dist_2d(rep, roots[:5], (2, 2), KNL, CRAY_ARIES)
        shuf = bfs_dist_2d(rep, roots[:5][list(perm)], (2, 2), KNL, CRAY_ARIES)
        assert shuf.modeled_total_s == base.modeled_total_s
        assert np.array_equal(shuf.dists, base.dists[list(perm)])
