"""Unit tests of the CI benchmark-regression gate's comparison logic.

The gate script lives in ``benchmarks/`` (not a package), so it is loaded
by file path; its ``BENCHES`` registry is stubbed with a canned payload so
these tests exercise the baseline/point machinery — tolerance bounds,
direction handling, best-of-N damping, the --inject self-test, exit codes —
without re-running any real sweep.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture()
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO / "benchmarks" / "check_regression.py")
    mod = importlib.util.module_from_spec(spec)
    # dataclasses resolves cls.__module__ through sys.modules at class
    # creation, so the file-loaded module must be registered while exec'd.
    sys.modules["check_regression"] = mod
    try:
        spec.loader.exec_module(mod)
        yield mod
    finally:
        sys.modules.pop("check_regression", None)


def make_bench(gate, payload):
    """A stub bench: runs return ``payload``, points read two metrics."""

    def run():
        return json.loads(json.dumps(payload))  # fresh copy per sweep

    def extract(p):
        return [
            gate.Point("speedup", p["speedup"], "higher", True),
            gate.Point("bytes", p["bytes"], "lower", False),
        ]

    return run, extract


def write_baseline(tmp_path, payload, gated=None):
    doc = {"workload": {}, "quick_baseline": dict(payload)}
    if gated is not None:
        doc["quick_baseline"]["gated_points"] = gated
    path = tmp_path / "BENCH_stub.json"
    path.write_text(json.dumps(doc))
    return path


def run_gate(gate, tmp_path, fresh, baseline, tolerance=0.25, inject=1.0):
    run, extract = make_bench(gate, fresh)
    gate.BENCHES = {"stub": ("BENCH_stub.json", run, extract, False)}
    write_baseline(tmp_path, baseline)
    return gate.check(tmp_path, tolerance, inject, repeats=2)


class TestGate:
    def test_identical_passes(self, gate, tmp_path):
        p = {"speedup": 4.0, "bytes": 1000}
        assert run_gate(gate, tmp_path, p, p) == 0

    def test_within_tolerance_passes(self, gate, tmp_path):
        fresh = {"speedup": 3.2, "bytes": 1200}
        base = {"speedup": 4.0, "bytes": 1000}
        assert run_gate(gate, tmp_path, fresh, base) == 0

    def test_speedup_regression_fails(self, gate, tmp_path):
        fresh = {"speedup": 2.9, "bytes": 1000}
        base = {"speedup": 4.0, "bytes": 1000}
        assert run_gate(gate, tmp_path, fresh, base) == 1

    def test_bytes_regression_fails(self, gate, tmp_path):
        fresh = {"speedup": 4.0, "bytes": 1300}
        base = {"speedup": 4.0, "bytes": 1000}
        assert run_gate(gate, tmp_path, fresh, base) == 1

    def test_improvements_pass(self, gate, tmp_path):
        fresh = {"speedup": 9.0, "bytes": 10}
        base = {"speedup": 4.0, "bytes": 1000}
        assert run_gate(gate, tmp_path, fresh, base) == 0

    def test_injected_slowdown_trips_gate(self, gate, tmp_path):
        # The self-test knob: identical numbers must fail once a simulated
        # slowdown beyond the tolerance is injected into timing metrics.
        p = {"speedup": 4.0, "bytes": 1000}
        assert run_gate(gate, tmp_path, p, p, inject=1.5) == 1
        assert run_gate(gate, tmp_path, p, p, inject=1.1) == 0

    def test_inject_spares_non_timing_metrics(self, gate, tmp_path):
        # bytes is not a timing metric: a huge injected slowdown alone
        # must not flag it, so failures come from the speedup point only.
        fresh = {"speedup": 4.0, "bytes": 1000}
        run, extract = make_bench(gate, fresh)
        gate.BENCHES = {"stub": ("BENCH_stub.json", run, extract, False)}
        write_baseline(tmp_path, fresh)
        assert gate.check(tmp_path, 0.25, 10.0, repeats=1) == 1

    def test_missing_baseline_errors(self, gate, tmp_path):
        run, extract = make_bench(gate, {"speedup": 1.0, "bytes": 1})
        gate.BENCHES = {"stub": ("BENCH_stub.json", run, extract, False)}
        assert gate.check(tmp_path, 0.25, 1.0, repeats=1) == 2

    def test_missing_quick_section_errors(self, gate, tmp_path):
        run, extract = make_bench(gate, {"speedup": 1.0, "bytes": 1})
        gate.BENCHES = {"stub": ("BENCH_stub.json", run, extract, False)}
        (tmp_path / "BENCH_stub.json").write_text(json.dumps({"workload": {}}))
        assert gate.check(tmp_path, 0.25, 1.0, repeats=1) == 2

    def test_gated_points_override_payload(self, gate, tmp_path):
        # The stamped best-of-N envelope, not the raw payload value, is
        # what the gate holds fresh runs against.
        fresh = {"speedup": 4.0, "bytes": 1000}
        run, extract = make_bench(gate, fresh)
        gate.BENCHES = {"stub": ("BENCH_stub.json", run, extract, False)}
        write_baseline(
            tmp_path,
            {"speedup": 1.0, "bytes": 1000},
            gated={"speedup": 8.0},
        )
        assert gate.check(tmp_path, 0.25, 1.0, repeats=1) == 1

    def test_new_point_is_not_a_failure(self, gate, tmp_path):
        fresh = {"speedup": 4.0, "bytes": 1000}
        run, _ = make_bench(gate, fresh)

        def extract_more(p):
            return [
                gate.Point("speedup", p["speedup"], "higher", True),
                gate.Point("brand-new", 1.0, "higher", True),
            ]

        gate.BENCHES = {"stub": ("BENCH_stub.json", run, extract_more, False)}
        doc = {
            "quick_baseline": {
                "speedup": 4.0,
                "bytes": 1000,
                "gated_points": {"speedup": 4.0},
            }
        }
        (tmp_path / "BENCH_stub.json").write_text(json.dumps(doc))
        assert gate.check(tmp_path, 0.25, 1.0, repeats=1) == 0


class TestOnlySelection:
    def test_only_restricts_benches(self, gate, tmp_path):
        # Two stub benches, one of them failing; --only the healthy one
        # must pass, --only the broken one (or no selection) must fail.
        good = {"speedup": 4.0, "bytes": 1000}
        bad = {"speedup": 1.0, "bytes": 1000}
        run_good, extract = make_bench(gate, good)
        run_bad, _ = make_bench(gate, bad)
        gate.BENCHES = {
            "good": ("BENCH_good.json", run_good, extract, False),
            "bad": ("BENCH_bad.json", run_bad, extract, False),
        }
        for name in ("good", "bad"):
            doc = {"workload": {}, "quick_baseline": dict(good)}
            (tmp_path / f"BENCH_{name}.json").write_text(json.dumps(doc))
        assert gate.check(tmp_path, 0.25, 1.0, repeats=1, only=["good"]) == 0
        assert gate.check(tmp_path, 0.25, 1.0, repeats=1, only=["bad"]) == 1
        assert gate.check(tmp_path, 0.25, 1.0, repeats=1) == 1

    def test_only_restricts_update(self, gate, tmp_path):
        payload = {"speedup": 4.0, "bytes": 1000}
        run, extract = make_bench(gate, payload)
        gate.BENCHES = {
            "a": ("BENCH_a.json", run, extract, True),
            "b": ("BENCH_b.json", run, extract, True),
        }
        for name in ("a", "b"):
            (tmp_path / f"BENCH_{name}.json").write_text(
                json.dumps({"workload": {}}))
        assert gate.update_baselines(tmp_path, repeats=1, only=["a"]) == 0
        assert "quick_baseline" in json.loads(
            (tmp_path / "BENCH_a.json").read_text())
        assert "quick_baseline" not in json.loads(
            (tmp_path / "BENCH_b.json").read_text())


class TestBestPoints:
    def test_envelope_takes_best_per_direction(self, gate):
        seq = iter([3.0, 5.0, 4.0])

        def run():
            return {"v": next(seq)}

        def extract(p):
            return [
                gate.Point("hi", p["v"], "higher", True),
                gate.Point("lo", p["v"], "lower", True),
            ]

        best = gate._best_points(run, extract, 3)
        assert best["hi"].value == 5.0
        assert best["lo"].value == 3.0


class TestListFlag:
    def test_list_prints_registered_gates(self, gate, capsys):
        # --list shows every registered gate without running any sweep.
        rc = gate.main(["--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name, (fname, _run, _extract, _det) in gate.BENCHES.items():
            assert name in out
            assert fname in out

    def test_list_marks_determinism(self, gate, capsys):
        run, extract = make_bench(gate, {"speedup": 4.0, "bytes": 1000})
        gate.BENCHES = {
            "det": ("BENCH_det.json", run, extract, True),
            "timed": ("BENCH_timed.json", run, extract, False),
        }
        assert gate.main(["--list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        kinds = {ln.split()[0]: ln.split()[-1] for ln in lines if ln}
        assert kinds["det"] == "deterministic"
        assert kinds["timed"] == "timing"

    def test_list_skips_the_gate_run(self, gate, capsys, tmp_path):
        # No baseline files exist, which would make check() exit 2 — but
        # --list must short-circuit before any sweep or baseline read.
        gate.BENCHES = {"ghost": ("BENCH_ghost.json", None, None, True)}
        assert gate.main(["--list"]) == 0
        assert "ghost" in capsys.readouterr().out
