"""Tests of graph I/O (edge lists and binary containers)."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.io import load_edgelist, load_npz, save_edgelist, save_npz
from repro.graphs.kronecker import kronecker

from conftest import path_graph, two_components


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = kronecker(7, 4, seed=0)
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        assert load_edgelist(path, n=g.n) == g

    def test_header_comments_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n# another\n0\t1\n1\t2\n")
        g = load_edgelist(path)
        assert g.n == 3 and g.m == 2

    def test_isolated_tail_vertices_need_explicit_n(self, tmp_path):
        g = two_components()  # vertex 8 isolated
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        assert load_edgelist(path).n == 8  # inferred: isolate lost
        assert load_edgelist(path, n=9) == g

    def test_n_too_small_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        save_edgelist(path_graph(5), path)
        with pytest.raises(ValueError, match="smaller than max vertex id"):
            load_edgelist(path, n=3)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = load_edgelist(path, n=4)
        assert g.n == 4 and g.m == 0

    def test_bad_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="two columns"):
            load_edgelist(path)

    def test_no_header_mode(self, tmp_path):
        path = tmp_path / "g.txt"
        save_edgelist(path_graph(3), path, header=False)
        assert not path.read_text().startswith("#")


class TestNpz:
    def test_roundtrip(self, tmp_path):
        g = kronecker(8, 8, seed=1)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert h == g

    def test_preserves_isolates(self, tmp_path):
        g = two_components()
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path).n == 9

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "e.npz"
        save_npz(Graph.empty(5), path)
        h = load_npz(path)
        assert h.n == 5 and h.m == 0
        assert np.isfinite(h.indptr).all()
