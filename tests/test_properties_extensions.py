"""Property-based tests for the extension subsystems."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.sssp import sssp_dijkstra, sssp_spmv
from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.spmspv import bfs_spmspv
from repro.bfs.validate import reference_distances
from repro.dist.bfs1d import bfs_dist_1d
from repro.dist.bfs2d import bfs_dist_2d
from repro.dist.network import CRAY_ARIES
from repro.dist.partition import Partition1D
from repro.formats.slimsell import SlimSell
from repro.graphs.graph import Graph
from repro.vec.machine import get_machine

SETTINGS = dict(deadline=None, max_examples=20,
                suppress_health_check=[HealthCheck.too_slow])
KNL = get_machine("knl")


@st.composite
def random_graph(draw, max_n=30, max_m=90):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return Graph.from_edges(n, rng.integers(0, n, size=(m, 2)))


def _same(dist, ref):
    return ((dist == ref) | (np.isinf(dist) & np.isinf(ref))).all()


class TestHybridProperty:
    @given(g=random_graph(), root_frac=st.floats(0, 0.999),
           alpha=st.floats(0.1, 100.0))
    @settings(**SETTINGS)
    def test_any_alpha_is_exact(self, g, root_frac, alpha):
        root = int(root_frac * g.n)
        rep = SlimSell(g, 4, g.n)
        res = bfs_hybrid(rep, root, alpha=alpha)
        assert _same(res.dist, reference_distances(g, root))


class TestSpMSpVProperty:
    @given(g=random_graph(), root_frac=st.floats(0, 0.999),
           merge=st.sampled_from(["nosort", "sort", "radix"]),
           semiring=st.sampled_from(["tropical", "boolean", "sel-max"]))
    @settings(**SETTINGS)
    def test_exact(self, g, root_frac, merge, semiring):
        root = int(root_frac * g.n)
        res = bfs_spmspv(g, root, semiring, merge=merge)
        assert _same(res.dist, reference_distances(g, root))


class TestDistributedProperty:
    @given(g=random_graph(), root_frac=st.floats(0, 0.999),
           ranks=st.integers(1, 6), balanced=st.booleans())
    @settings(**SETTINGS)
    def test_1d_exact_for_any_partition(self, g, root_frac, ranks, balanced):
        root = int(root_frac * g.n)
        rep = SlimSell(g, 4, g.n)
        part = (Partition1D.balanced(rep.cl, ranks) if balanced
                else Partition1D.blocks(rep.nc, ranks))
        res = bfs_dist_1d(rep, root, part, KNL, CRAY_ARIES)
        assert _same(res.dist, reference_distances(g, root))

    @given(g=random_graph(max_n=20, max_m=50), root_frac=st.floats(0, 0.999),
           r=st.integers(1, 3), c=st.integers(1, 3))
    @settings(**SETTINGS)
    def test_2d_exact_for_any_grid(self, g, root_frac, r, c):
        root = int(root_frac * g.n)
        rep = SlimSell(g, 4, g.n)
        res = bfs_dist_2d(rep, root, (r, c), KNL, CRAY_ARIES)
        assert _same(res.dist, reference_distances(g, root))


class TestSSSPProperty:
    @given(g=random_graph(), root_frac=st.floats(0, 0.999),
           wseed=st.integers(0, 2**31 - 1))
    @settings(**SETTINGS)
    def test_spmv_equals_dijkstra(self, g, root_frac, wseed):
        root = int(root_frac * g.n)
        rng = np.random.default_rng(wseed)
        w = rng.uniform(0.01, 10.0, size=g.m)
        a = sssp_spmv(g, w, root)
        b = sssp_dijkstra(g, w, root)
        fin = np.isfinite(a.dist)
        assert np.array_equal(fin, np.isfinite(b.dist))
        np.testing.assert_allclose(a.dist[fin], b.dist[fin])

    @given(g=random_graph(), root_frac=st.floats(0, 0.999),
           wseed=st.integers(0, 2**31 - 1))
    @settings(**SETTINGS)
    def test_triangle_inequality_on_edges(self, g, root_frac, wseed):
        # dist is a shortest-path metric: no edge can shortcut it.
        root = int(root_frac * g.n)
        rng = np.random.default_rng(wseed)
        w = rng.uniform(0.01, 10.0, size=g.m)
        dist = sssp_spmv(g, w, root).dist
        from repro.apps.sssp import expand_edge_weights

        wd = expand_edge_weights(g, w)
        src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees)
        nbr = g.indices.astype(np.int64)
        fin = np.isfinite(dist[src]) & np.isfinite(dist[nbr])
        assert np.all(dist[nbr][fin] <= dist[src][fin] + wd[fin] + 1e-9)
