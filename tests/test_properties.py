"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfs.dp import dp_transform
from repro.bfs.spmv import bfs_spmv
from repro.bfs.traditional import bfs_serial, bfs_top_down
from repro.bfs.validate import check_parents_valid, reference_distances
from repro.formats.sell import SellCSigma, sigma_sort_permutation
from repro.formats.storage import formula_cells, storage_report
from repro.graphs.erdos_renyi import _pairs_from_ranks
from repro.graphs.graph import Graph

SETTINGS = dict(deadline=None, max_examples=25,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def random_graph(draw, max_n=40, max_m=120):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    return Graph.from_edges(n, edges)


class TestBFSEquivalence:
    @given(g=random_graph(), root_frac=st.floats(0, 0.999),
           c=st.sampled_from([1, 2, 4, 8]),
           semiring=st.sampled_from(["tropical", "real", "boolean", "sel-max"]),
           slim=st.booleans(), slimwork=st.booleans())
    @settings(**SETTINGS)
    def test_spmv_matches_reference(self, g, root_frac, c, semiring, slim, slimwork):
        root = int(root_frac * g.n)
        ref = reference_distances(g, root)
        res = bfs_spmv(g, root, semiring, C=c, slim=slim, slimwork=slimwork)
        assert ((res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))).all()
        check_parents_valid(g, res)

    @given(g=random_graph(), root_frac=st.floats(0, 0.999))
    @settings(**SETTINGS)
    def test_traditional_matches_serial(self, g, root_frac):
        root = int(root_frac * g.n)
        a = bfs_serial(g, root)
        b = bfs_top_down(g, root)
        np.testing.assert_array_equal(a.dist, b.dist)

    @given(g=random_graph(max_n=24, max_m=60), root_frac=st.floats(0, 0.999),
           semiring=st.sampled_from(["tropical", "real", "boolean", "sel-max"]))
    @settings(**SETTINGS)
    def test_chunk_engine_equals_layer_engine(self, g, root_frac, semiring):
        root = int(root_frac * g.n)
        a = bfs_spmv(g, root, semiring, C=4, engine="chunk")
        b = bfs_spmv(g, root, semiring, C=4, engine="layer")
        np.testing.assert_array_equal(a.dist, b.dist)
        np.testing.assert_array_equal(a.parent, b.parent)


class TestStructuralInvariants:
    @given(g=random_graph(), c=st.sampled_from([1, 2, 4, 8]),
           sigma_frac=st.floats(0, 1))
    @settings(**SETTINGS)
    def test_sell_layout_conserves_edges(self, g, c, sigma_frac):
        sigma = max(1, int(sigma_frac * g.n))
        s = SellCSigma(g, c, sigma)
        # Edge slots = 2m; padding is everything else; cs/cl consistent.
        assert s.total_slots - s.padding_slots == 2 * g.m
        assert int((s.cl * s.C).sum()) == s.total_slots
        assert s.N >= g.n

    @given(g=random_graph(), c=st.sampled_from([2, 4, 8]))
    @settings(**SETTINGS)
    def test_storage_formulas_exact(self, g, c):
        rep = storage_report(g, c, sigma=g.n)
        f = formula_cells(g.n, g.m, c, rep.padding_slots)
        assert (rep.csr_cells, rep.al_cells, rep.sell_cells, rep.slimsell_cells) == (
            f["csr"], f["al"], f["sell"], f["slimsell"])

    @given(degrees=st.lists(st.integers(0, 50), min_size=1, max_size=60),
           sigma=st.integers(1, 70))
    @settings(**SETTINGS)
    def test_sigma_sort_is_permutation_and_window_local(self, degrees, sigma):
        deg = np.array(degrees, dtype=np.int64)
        perm = sigma_sort_permutation(deg, sigma)
        assert np.array_equal(np.sort(perm), np.arange(deg.size))
        s = min(max(sigma, 1), deg.size)
        for v, newid in enumerate(perm):
            assert v // s == newid // s  # never leaves its window

    @given(degrees=st.lists(st.integers(0, 4), min_size=0, max_size=80),
           sigma=st.integers(1, 90))
    @settings(**SETTINGS)
    def test_sigma_sort_vectorized_matches_loop_reference(self, degrees,
                                                          sigma):
        """The padded-reshape argsort must reproduce the per-window loop
        exactly, including stable-descending tie-breaks (the tiny degree
        range forces many ties) and partial trailing windows."""
        from repro.formats.sell import _sigma_sort_permutation_loop

        deg = np.array(degrees, dtype=np.int64)
        assert np.array_equal(sigma_sort_permutation(deg, sigma),
                              _sigma_sort_permutation_loop(deg, sigma))

    @given(g=random_graph(), seed=st.integers(0, 2**31 - 1))
    @settings(**SETTINGS)
    def test_permute_preserves_isomorphism(self, g, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(g.n)
        h = g.permute(perm)
        assert h.m == g.m
        e = g.edges()
        if e.size:
            sub = e[rng.integers(0, e.shape[0], size=min(10, e.shape[0]))]
            for u, v in sub:
                assert h.has_edge(int(perm[u]), int(perm[v]))


class TestDPProperty:
    @given(g=random_graph(), root_frac=st.floats(0, 0.999))
    @settings(**SETTINGS)
    def test_dp_yields_valid_tree(self, g, root_frac):
        root = int(root_frac * g.n)
        dist = reference_distances(g, root)
        parent = dp_transform(g, dist)
        for v in range(g.n):
            if not np.isfinite(dist[v]):
                assert parent[v] == -1
            elif v == root:
                assert parent[v] == root
            else:
                assert dist[parent[v]] == dist[v] - 1
                assert g.has_edge(v, int(parent[v]))


class TestUnranking:
    @given(n=st.integers(2, 2000), seed=st.integers(0, 2**31 - 1))
    @settings(**SETTINGS)
    def test_pairs_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        total = n * (n - 1) // 2
        ranks = rng.integers(0, total, size=min(total, 50), dtype=np.int64)
        pairs = _pairs_from_ranks(ranks, n)
        u, v = pairs[:, 0], pairs[:, 1]
        assert (u < v).all() and (u >= 0).all() and (v < n).all()
        rerank = u * (2 * n - u - 1) // 2 + (v - u - 1)
        assert np.array_equal(rerank, ranks)
