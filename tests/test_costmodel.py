"""Tests of the analytic cost model."""

import numpy as np
import pytest

from repro.bfs.spmv import BFSSpMV
from repro.bfs.traditional import bfs_top_down
from repro.formats.slimsell import SlimSell
from repro.perf.costmodel import (
    ModeledTime,
    model_bfs_result,
    model_scalar_iteration,
    model_traditional_result,
    model_vector_iteration,
)
from repro.vec.counters import OpCounters
from repro.vec.machine import get_machine


def counters(instr=100, loaded=1000, gathered=200, stored=100) -> OpCounters:
    c = OpCounters()
    c.count("ADD", instr)
    c.load(loaded - gathered)
    c.load(gathered, gather=True)
    c.store(stored)
    return c


class TestModeledTime:
    def test_total_is_roofline_max(self):
        t = ModeledTime(2.0, 3.0)
        assert t.t_total == 3.0
        assert t.bound == "compute"
        assert ModeledTime(5.0, 1.0).bound == "memory"

    def test_addition_per_resource(self):
        t = ModeledTime(1.0, 2.0) + ModeledTime(3.0, 1.0)
        assert t.t_memory == 4.0 and t.t_compute == 3.0


class TestVectorModel:
    def test_positive_and_scales_linearly(self):
        m = get_machine("dora")
        t1 = model_vector_iteration(m, counters(instr=100, loaded=1000))
        t2 = model_vector_iteration(m, counters(instr=200, loaded=2000,
                                                gathered=400, stored=200))
        assert t1.t_total > 0
        assert t2.t_memory == pytest.approx(2 * t1.t_memory)
        assert t2.t_compute == pytest.approx(2 * t1.t_compute)

    def test_gather_penalty_applied(self):
        m = get_machine("tesla-k80")
        no_gather = counters(loaded=1000, gathered=0, stored=0)
        all_gather = counters(loaded=1000, gathered=1000, stored=0)
        a = model_vector_iteration(m, no_gather)
        b = model_vector_iteration(m, all_gather)
        assert b.t_memory == pytest.approx(a.t_memory * m.gather_penalty, rel=0.05)

    def test_balance_scales_compute_only(self):
        m = get_machine("knl")
        good = model_vector_iteration(m, counters(), balance=1.0)
        bad = model_vector_iteration(m, counters(), balance=4.0)
        assert bad.t_compute == pytest.approx(4 * good.t_compute)
        assert bad.t_memory == good.t_memory

    def test_fewer_threads_slower_compute(self):
        m = get_machine("dora")
        all_units = model_vector_iteration(m, counters())
        one = model_vector_iteration(m, counters(), threads=1)
        assert one.t_compute == pytest.approx(m.units * all_units.t_compute)


class TestScalarModel:
    def test_gpu_penalizes_scalar_bfs(self):
        # The same traditional BFS work must model slower on a GPU than on a
        # comparable-bandwidth CPU: fine-grained scalar work wastes the warp.
        cpu, gpu = get_machine("dora"), get_machine("tesla-k80")
        t_cpu = model_scalar_iteration(cpu, edges_examined=10**6)
        t_gpu = model_scalar_iteration(gpu, edges_examined=10**6)
        assert t_gpu.t_compute > t_cpu.t_compute

    def test_scales_with_edges(self):
        m = get_machine("dora")
        a = model_scalar_iteration(m, 1000)
        b = model_scalar_iteration(m, 2000)
        assert b.t_compute == pytest.approx(2 * a.t_compute)


class TestResultModeling:
    def test_model_bfs_result_per_iteration(self, kron_small):
        rep = SlimSell(kron_small, 8)
        res = BFSSpMV(rep, "tropical", counting=True).run(0)
        times = model_bfs_result(get_machine("knl"), res)
        assert len(times) == res.n_iterations
        assert all(t.t_total > 0 for t in times)

    def test_model_requires_counters(self, kron_small):
        rep = SlimSell(kron_small, 8)
        res = BFSSpMV(rep, "tropical", counting=False).run(0)
        with pytest.raises(ValueError, match="no counters"):
            model_bfs_result(get_machine("knl"), res)

    def test_model_traditional_result(self, kron_small):
        res = bfs_top_down(kron_small, 0)
        times = model_traditional_result(get_machine("dora"), res)
        assert len(times) == res.n_iterations
        # Iteration cost tracks edges examined.
        edges = np.array([it.edges_examined for it in res.iterations])
        totals = np.array([t.t_total for t in times])
        assert totals[np.argmax(edges)] == totals.max()

    def test_wide_simd_wins_on_vector_work(self, kron_medium):
        # Fig 9/10 mechanism: with identical counted work, the GPU and KNL
        # (wide SIMD + bandwidth) model faster than a narrow low-BW CPU.
        rep = SlimSell(kron_medium, 32, kron_medium.n)
        res = BFSSpMV(rep, "tropical", counting=True, slimwork=True).run(0)
        t_cpu = sum(t.t_total for t in model_bfs_result(
            get_machine("trivium-haswell"), res))
        t_gpu = sum(t.t_total for t in model_bfs_result(
            get_machine("tesla-k80"), res))
        assert t_gpu < t_cpu
