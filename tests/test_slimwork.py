"""Tests of SlimWork chunk skipping (§III-C, Listing 7, Fig 5d)."""

import numpy as np
import pytest

from repro.bfs.spmv import BFSSpMV
from repro.bfs.validate import check_distances_equal, reference_distances
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker

from conftest import SEMIRING_NAMES, path_graph


class TestSkippingDynamics:
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_skipped_chunks_grow_monotonically(self, kron_medium, semiring):
        # As vertices settle, more chunks qualify for skipping each iteration.
        rep = SlimSell(kron_medium, 8, kron_medium.n)
        root = int(np.argmax(kron_medium.degrees))
        res = BFSSpMV(rep, semiring, slimwork=True).run(root)
        skipped = [it.chunks_skipped for it in res.iterations]
        assert all(b >= a for a, b in zip(skipped, skipped[1:]))

    def test_late_iterations_do_little_work(self, kron_medium):
        # Fig 5d: "the last few iterations entail only little work".
        rep = SlimSell(kron_medium, 8, kron_medium.n)
        root = int(np.argmax(kron_medium.degrees))
        res = BFSSpMV(rep, "sel-max", slimwork=True).run(root)
        lanes = [it.work_lanes for it in res.iterations]
        assert lanes[-1] < 0.15 * max(lanes)

    def test_no_slimwork_processes_all_chunks_every_iteration(self, kron_medium):
        # "in 'No SlimWork' there is no performance improvement after the
        # first iteration" — every chunk is processed every time.
        rep = SlimSell(kron_medium, 8, kron_medium.n)
        root = int(np.argmax(kron_medium.degrees))
        res = BFSSpMV(rep, "tropical", slimwork=False).run(root)
        assert all(it.chunks_skipped == 0 for it in res.iterations)
        assert len({it.chunks_processed for it in res.iterations}) == 1

    def test_slimwork_reduces_total_work(self, kron_medium):
        rep = SlimSell(kron_medium, 8, kron_medium.n)
        root = int(np.argmax(kron_medium.degrees))
        off = BFSSpMV(rep, "boolean", slimwork=False).run(root)
        on = BFSSpMV(rep, "boolean", slimwork=True).run(root)
        total_off = sum(it.work_lanes for it in off.iterations)
        total_on = sum(it.work_lanes for it in on.iterations)
        assert total_on < total_off

    def test_larger_sigma_skips_faster(self):
        # §IV-A4: larger sigma packs high-degree chunks early, so the work
        # amount decays faster across iterations.
        g = kronecker(11, 16, seed=2)
        lanes = {}
        root = int(np.argmax(g.degrees))
        for sigma in (1, g.n):
            rep = SlimSell(g, 8, sigma)
            res = BFSSpMV(rep, "tropical", slimwork=True).run(root)
            series = np.array([it.work_lanes for it in res.iterations],
                              dtype=float)
            lanes[sigma] = series / series.max()
        k = min(len(lanes[1]), len(lanes[g.n])) - 1
        assert lanes[g.n][k] <= lanes[1][k]


class TestSkippingSafety:
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    @pytest.mark.parametrize("engine", ["layer", "chunk"])
    def test_results_unaffected(self, kron_small, semiring, engine):
        ref = reference_distances(kron_small, 11)
        rep = SlimSell(kron_small, 8, kron_small.n)
        res = BFSSpMV(rep, semiring, slimwork=True, engine=engine).run(11)
        check_distances_equal(res, ref)

    def test_unreachable_chunks_never_settle_tropical(self):
        # Disconnected vertices keep infinite distance, so their chunks are
        # processed every iteration (the paper's zero-degree Kronecker rows).
        g = kronecker(8, 2, seed=0)  # sparse: guaranteed isolated vertices
        assert (g.degrees == 0).any()
        rep = SlimSell(g, 8, g.n)
        res = BFSSpMV(rep, "tropical", slimwork=True).run(int(np.argmax(g.degrees)))
        assert res.iterations[-1].chunks_processed > 0

    def test_selmax_and_boolean_skip_empty_chunks_eventually(self):
        # Unlike tropical, filter/parent-based criteria settle virtual and
        # unreachable rows too... unreachable rows keep g=1, so only fully
        # visited chunks skip; a connected path graph reaches everything.
        g = path_graph(32)
        rep = SlimSell(g, 4, g.n)
        res = BFSSpMV(rep, "boolean", slimwork=True).run(0)
        # The terminating iteration runs with every vertex settled: all
        # chunks skip, nothing changes, and the engine stops.
        assert res.iterations[-1].chunks_skipped == rep.nc
        assert res.iterations[-1].newly == 0
