"""Engine equivalence and instruction accounting of the BFS-SpMV engines.

Chunk/layer equivalence runs through the shared cross-engine oracle
(:mod:`engines`); counter fidelity stays engine-specific.
"""

import numpy as np
import pytest

from repro.bfs.spmv import BFSSpMV, synthesize_counters
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.semirings.base import get_semiring

from conftest import SEMIRING_NAMES
from engines import assert_bfs_equivalent


@pytest.fixture(scope="module", params=[True, False], ids=["slimsell", "sell"])
def rep(request, kron_small):
    cls = SlimSell if request.param else SellCSigma
    return cls(kron_small, 8, kron_small.n)


class TestEngineEquivalence:
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    @pytest.mark.parametrize("slimwork", [False, True])
    def test_identical_iteration_profiles(self, rep, kron_small, semiring,
                                          slimwork):
        results = assert_bfs_equivalent(
            kron_small, [0], semiring=semiring, slimwork=slimwork, rep=rep,
            engines=["traditional", "spmv-chunk", "spmv-layer"])
        chunk = results["spmv-chunk"][0]
        layer = results["spmv-layer"][0]
        assert len(chunk.iterations) == len(layer.iterations)
        for a, b in zip(chunk.iterations, layer.iterations):
            assert a.newly == b.newly
            assert a.chunks_processed == b.chunks_processed
            assert a.chunks_skipped == b.chunks_skipped
            assert a.work_lanes == b.work_lanes

    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_identical_parents(self, rep, kron_small, semiring):
        results = assert_bfs_equivalent(
            kron_small, [7], semiring=semiring, slimwork=False, rep=rep,
            engines=["spmv-chunk", "spmv-layer"])
        np.testing.assert_array_equal(results["spmv-chunk"][0].parent,
                                      results["spmv-layer"][0].parent)


class TestCounterFidelity:
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    @pytest.mark.parametrize("slimwork", [False, True])
    def test_synthesized_matches_counted(self, rep, semiring, slimwork):
        """The layer engine's analytic counters must equal the chunk engine's
        instruction-by-instruction counts — this pins the cost-model input."""
        chunk = BFSSpMV(rep, semiring, engine="chunk", counting=True,
                        slimwork=slimwork).run(3)
        layer = BFSSpMV(rep, semiring, engine="layer", counting=True,
                        slimwork=slimwork).run(3)
        for a, b in zip(chunk.iterations, layer.iterations):
            assert a.counters.instructions == b.counters.instructions
            assert a.counters.words_loaded == b.counters.words_loaded
            assert a.counters.words_stored == b.counters.words_stored
            assert a.counters.gather_words == b.counters.gather_words

    def test_counting_off_means_no_counters(self, rep):
        res = BFSSpMV(rep, "tropical", engine="chunk", counting=False).run(0)
        assert all(it.counters is None for it in res.iterations)
        assert res.total_counters() is None

    def test_total_counters_sums_iterations(self, rep):
        res = BFSSpMV(rep, "tropical", engine="chunk", counting=True).run(0)
        tot = res.total_counters()
        assert tot.total_instructions == sum(
            it.counters.total_instructions for it in res.iterations)

    def test_slimsell_halves_streamed_inner_loads(self, kron_small):
        """SlimSell's core claim: no val loads → ~half the streamed traffic."""
        sigma = kron_small.n
        sell = SellCSigma(kron_small, 8, sigma)
        slim = SlimSell.from_sell(sell)
        r_sell = BFSSpMV(sell, "tropical", engine="layer", counting=True).run(0)
        r_slim = BFSSpMV(slim, "tropical", engine="layer", counting=True).run(0)
        w_sell = sum(it.counters.words_loaded - it.counters.gather_words
                     for it in r_sell.iterations)
        w_slim = sum(it.counters.words_loaded - it.counters.gather_words
                     for it in r_slim.iterations)
        assert w_slim < 0.62 * w_sell

    def test_slimsell_pays_cmp_blend(self, kron_small):
        slim = SlimSell(kron_small, 8)
        res = BFSSpMV(slim, "tropical", engine="chunk", counting=True).run(0)
        tot = res.total_counters()
        layers = sum(it.work_lanes for it in res.iterations) // 8
        assert tot.instructions["CMP"] >= layers
        assert tot.instructions["BLEND"] >= layers


class TestSynthesizeCountersUnit:
    def test_zero_work(self):
        c = synthesize_counters(get_semiring("tropical"), 8, True, 0, 0, 0, False)
        assert c.total_instructions == 0
        assert c.total_words == 0

    def test_skip_checks_counted_for_all_chunks(self):
        c = synthesize_counters(get_semiring("tropical"), 8, True, 3, 5, 10, True)
        assert c.instructions["SKIPCHK"] == 8

    def test_sell_loads_twice_per_layer(self):
        sr = get_semiring("tropical")
        slim = synthesize_counters(sr, 8, True, 1, 0, 10, False)
        sell = synthesize_counters(sr, 8, False, 1, 0, 10, False)
        assert sell.instructions["LOAD"] - slim.instructions["LOAD"] == 10
