"""End-to-end integration scenarios spanning the whole library."""

import numpy as np
import pytest

import repro
from repro.bfs.validate import check_parents_valid, reference_distances
from repro.graphs.io import load_npz, save_npz
from repro.perf.costmodel import model_bfs_result
from repro.sched.scheduling import imbalance, schedule_dynamic
from repro.bfs.slimchunk import make_work_units, unit_costs


class TestFullPipeline:
    def test_generate_persist_traverse_validate(self, tmp_path):
        """The complete user journey: generate → save → load → build →
        traverse with every engine → validate → account storage → model."""
        g = repro.kronecker(9, 8, seed=101)
        path = tmp_path / "workload.npz"
        save_npz(g, path)
        g2 = load_npz(path)
        assert g2 == g

        root = int(np.argmax(g2.degrees))
        ref = reference_distances(g2, root)
        rep = repro.SlimSell(g2, C=16, sigma=g2.n)

        results = {
            "spmv": repro.BFSSpMV(rep, "sel-max", slimwork=True).run(root),
            "hybrid": repro.bfs_hybrid(rep, root),
            "spmspv": repro.bfs_spmspv(g2, root, "tropical"),
            "trad": repro.bfs_top_down(g2, root),
            "diropt": repro.bfs_direction_optimizing(g2, root),
        }
        for name, res in results.items():
            same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
            assert same.all(), name
            check_parents_valid(g2, res)

        report = repro.storage_report(g2, C=16, sigma=g2.n)
        assert report.slimsell_cells < report.sell_cells

        counted = repro.BFSSpMV(rep, "tropical", counting=True).run(root)
        for machine in repro.MACHINES.values():
            times = model_bfs_result(machine, counted)
            assert all(t.t_total > 0 for t in times)

    def test_analysis_pipeline(self):
        """Centrality + connectivity + PageRank over one shared rep."""
        g = repro.realworld_proxy("epi", downscale=64, seed=3)
        rep = repro.SlimSell(g, C=8, sigma=g.n)
        labels = repro.components_via_bfs(rep)
        pr = repro.pagerank(rep)
        bc = repro.betweenness_centrality(
            rep, sources=np.arange(0, g.n, max(1, g.n // 16)))
        assert labels.shape == pr.shape == bc.shape == (g.n,)
        assert pr.sum() == pytest.approx(1.0, abs=1e-8)
        # The largest component's hub dominates both centralities' tails.
        hub = int(np.argmax(g.degrees))
        assert pr[hub] > np.median(pr)

    def test_scheduling_feeds_cost_model(self):
        """SlimChunk units → dynamic schedule → balance factor → model."""
        g = repro.kronecker(10, 16, seed=7)
        rep = repro.SlimSell(g, 32, g.n)
        units = make_work_units(rep.cl, 4)
        costs = unit_costs(units, 32)
        sched = schedule_dynamic(costs, 13)
        bal = imbalance(sched)
        assert 1.0 <= bal < 1.5  # split units balance well

        root = int(np.argmax(g.degrees))
        res = repro.BFSSpMV(rep, "tropical", counting=True,
                            slimchunk=4).run(root)
        gpu = repro.get_machine("tesla-k80")
        times = model_bfs_result(gpu, res, balance=bal)
        assert sum(t.t_total for t in times) > 0

    def test_weighted_and_unweighted_agree_on_unit_weights(self):
        from repro.apps.sssp import sssp_spmv
        from repro.formats.weighted import WeightedSellCSigma, sssp_chunked

        g = repro.kronecker(8, 6, seed=5)
        w = np.ones(g.m)
        root = int(np.argmax(g.degrees))
        bfs = repro.bfs_spmv(g, root, "tropical", C=8)
        sp1 = sssp_spmv(g, w, root)
        sp2 = sssp_chunked(WeightedSellCSigma(g, w, C=8), root)
        for other in (sp1.dist, sp2.dist):
            same = (bfs.dist == other) | (np.isinf(bfs.dist) & np.isinf(other))
            assert same.all()

    def test_graph500_with_hybrid_engine(self):
        from repro.graph500 import run_graph500

        g_holder = {}

        def engine(g, r):
            rep = g_holder.get("rep")
            if rep is None or rep.graph_original is not g:
                rep = repro.SlimSell(g, 8, g.n)
                g_holder["rep"] = rep
            return repro.bfs_hybrid(rep, r)

        rpt = run_graph500(8, 8, bfs=engine, nroots=4, seed=11)
        assert rpt.harmonic_mean_teps > 0
        assert len(rpt.runs) == 4
