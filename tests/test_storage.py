"""Tests of the Table III storage accounting across representations."""

import pytest

from repro.formats.sell import SellCSigma
from repro.formats.storage import (
    BYTES_PER_CELL,
    formula_cells,
    storage_report,
    storage_table,
)
from repro.graphs.erdos_renyi import erdos_renyi_nm
from repro.graphs.kronecker import kronecker

from conftest import star_graph


class TestFormulaVsMeasured:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("C", [4, 8, 16])
    def test_kronecker(self, seed, C):
        g = kronecker(8, 6, seed=seed)
        rep = storage_report(g, C, sigma=g.n)
        f = formula_cells(g.n, g.m, C, rep.padding_slots)
        assert rep.csr_cells == f["csr"]
        assert rep.al_cells == f["al"]
        assert rep.sell_cells == f["sell"]
        assert rep.slimsell_cells == f["slimsell"]

    def test_erdos_renyi(self):
        g = erdos_renyi_nm(256, 1024, seed=0)
        rep = storage_report(g, 8, sigma=g.n)
        f = formula_cells(g.n, g.m, 8, rep.padding_slots)
        assert rep.sell_cells == f["sell"]
        assert rep.slimsell_cells == f["slimsell"]


class TestReportProperties:
    def test_ratios(self):
        g = kronecker(9, 8, seed=1)
        rep = storage_report(g, 8, sigma=g.n)
        assert 0.4 < rep.slim_vs_sell < 0.7
        assert rep.slim_vs_al == rep.slimsell_cells / rep.al_cells

    def test_inequality_3_flag_matches_sizes(self):
        for sigma in (1, 64, None):
            g = kronecker(9, 8, seed=2)
            rep = storage_report(g, 8, sigma=sigma if sigma else g.n)
            # Flag P < n(1-2/C) must agree with the actual size comparison.
            assert rep.slim_beats_al == (rep.slimsell_cells < rep.al_cells)

    def test_gib_conversion(self):
        g = star_graph(10)
        rep = storage_report(g, 4, sigma=10)
        assert rep.gib("al") == pytest.approx(
            rep.al_cells * BYTES_PER_CELL / 2**30)

    def test_reuses_existing_sell(self):
        g = kronecker(8, 4, seed=0)
        sell = SellCSigma(g, 8, 64)
        rep = storage_report(g, 8, sell=sell)
        assert rep.sigma == 64
        assert rep.sell_cells == sell.storage_cells()


class TestSigmaSweep:
    def test_table_ordered_and_padding_shrinks(self):
        g = kronecker(9, 8, seed=3)
        reports = storage_table(g, 8, [1, 8, 64, 512])
        assert [r.sigma for r in reports] == [1, 8, 64, 512]
        assert reports[-1].padding_slots <= reports[0].padding_slots

    def test_csr_al_independent_of_sigma(self):
        g = kronecker(8, 4, seed=4)
        reports = storage_table(g, 8, [1, 256])
        assert reports[0].csr_cells == reports[1].csr_cells
        assert reports[0].al_cells == reports[1].al_cells
