"""Unit tests of the semiring algebra and BFS state semantics (§III-A)."""

import numpy as np
import pytest

from repro.semirings import SEMIRINGS
from repro.semirings.base import get_semiring
from repro.semirings.real import PATH_COUNT_CLIP


class TestRegistry:
    def test_four_semirings(self):
        assert set(SEMIRINGS) == {"tropical", "real", "boolean", "sel-max"}

    @pytest.mark.parametrize("alias", ["sel-max", "selmax", "sel_max", "SEL-MAX"])
    def test_selmax_aliases(self, alias):
        assert get_semiring(alias).name == "sel-max"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown semiring"):
            get_semiring("minplusmax")


class TestAlgebraicIdentities:
    """⊕ identity, ⊗ annihilation of padding — on representative values."""

    samples = {
        "tropical": np.array([0.0, 1.0, 5.0, np.inf]),
        "real": np.array([0.0, 1.0, 2.0, 117.0]),
        "boolean": np.array([0.0, 1.0]),
        "sel-max": np.array([0.0, 1.0, 7.0, 64.0]),
    }

    @pytest.mark.parametrize("name", sorted(SEMIRINGS))
    def test_add_identity(self, name):
        sr = get_semiring(name)
        x = self.samples[name]
        np.testing.assert_array_equal(sr.add(x, np.full_like(x, sr.zero)), x)

    @pytest.mark.parametrize("name", sorted(SEMIRINGS))
    def test_pad_annihilates(self, name):
        # pad_value ⊗ x must be absorbed by ⊕ accumulation for all x in range.
        sr = get_semiring(name)
        x = self.samples[name]
        contrib = sr.mul(np.full_like(x, sr.pad_value), x)
        np.testing.assert_array_equal(sr.add(x, contrib), x)

    @pytest.mark.parametrize("name", sorted(SEMIRINGS))
    def test_add_commutative_associative(self, name):
        sr = get_semiring(name)
        rng = np.random.default_rng(1)
        a, b, c = (rng.choice(self.samples[name], size=16) for _ in range(3))
        np.testing.assert_array_equal(sr.add(a, b), sr.add(b, a))
        np.testing.assert_array_equal(sr.add(sr.add(a, b), c), sr.add(a, sr.add(b, c)))

    @pytest.mark.parametrize("name", sorted(SEMIRINGS))
    def test_values_from_edge_mask(self, name):
        sr = get_semiring(name)
        v = sr.values_from_edge_mask(np.array([True, False, True]))
        assert v[0] == sr.edge_value and v[2] == sr.edge_value
        assert v[1] == sr.pad_value or (np.isinf(v[1]) and np.isinf(sr.pad_value))


class TestInitStates:
    def test_tropical_init(self):
        st = get_semiring("tropical").init_state(5, 8, root=2)
        assert st.f[2] == 0.0
        assert np.isinf(st.f[[0, 1, 3, 4]]).all()
        assert np.isinf(st.f[5:]).all()  # virtual rows

    def test_boolean_init(self):
        st = get_semiring("boolean").init_state(5, 8, root=2)
        assert st.f[2] == 1.0 and st.f.sum() == 1.0
        assert st.g[2] == 0.0
        assert st.g[:5].sum() == 4.0
        assert np.all(st.g[5:] == 0.0)  # virtual rows never block skipping
        assert st.d[2] == 0.0

    def test_selmax_init_one_based(self):
        st = get_semiring("sel-max").init_state(5, 8, root=3)
        assert st.f[3] == 4.0  # 1-based id
        assert st.p[3] == 4.0  # root parents itself
        assert np.all(st.p[5:] == -1.0)  # virtual rows pre-settled

    def test_real_init(self):
        st = get_semiring("real").init_state(4, 4, root=0)
        assert st.f[0] == 1.0
        assert st.g[0] == 0.0


class TestPostprocessSemantics:
    def test_boolean_settles_new_vertices_once(self):
        sr = get_semiring("boolean")
        st = sr.init_state(4, 4, root=0)
        st.depth = 1
        x = np.array([1.0, 1.0, 0.0, 1.0])  # MV says 0,1,3 reachable
        newly = sr.postprocess(st, x)
        assert newly == 2  # root already visited
        assert st.d.tolist() == [0.0, 1.0, np.inf, 1.0]
        st.depth = 2
        newly2 = sr.postprocess(st, np.array([1.0, 1.0, 1.0, 1.0]))
        assert newly2 == 1  # only vertex 2 is new
        assert st.d[2] == 2.0

    def test_tropical_newly_counts_changes(self):
        sr = get_semiring("tropical")
        st = sr.init_state(3, 4, root=0)
        st.depth = 1
        x = st.f.copy()
        x[1] = 1.0
        assert sr.postprocess(st, x) == 1
        assert sr.postprocess(st, st.f.copy()) == 0

    def test_selmax_parent_is_max_visited_neighbor(self):
        sr = get_semiring("sel-max")
        st = sr.init_state(4, 4, root=1)
        st.depth = 1
        # MV result: vertex 0 and 3 see visited neighbor with id 2 (1-based).
        x = np.array([2.0, 2.0, 0.0, 2.0])
        newly = sr.postprocess(st, x)
        assert newly == 2
        assert st.p.tolist() == [2.0, 2.0, 0.0, 2.0]
        # x normalized to own (1-based) ids where nonzero.
        assert st.f.tolist() == [1.0, 2.0, 0.0, 4.0]

    def test_real_counts_clipped(self):
        sr = get_semiring("real")
        st = sr.init_state(2, 2, root=0)
        st.depth = 1
        x = np.array([0.0, 1e300])
        sr.postprocess(st, x)
        assert st.f[1] == PATH_COUNT_CLIP


class TestSettledLanes:
    def test_tropical_settled_iff_finite(self):
        sr = get_semiring("tropical")
        st = sr.init_state(3, 4, root=0)
        lanes = sr.settled_lanes(st)
        assert lanes.tolist() == [True, False, False, False]

    def test_boolean_settled_iff_visited(self):
        sr = get_semiring("boolean")
        st = sr.init_state(3, 4, root=1)
        assert sr.settled_lanes(st).tolist() == [False, True, False, True]

    def test_selmax_settled_iff_parent_assigned(self):
        sr = get_semiring("sel-max")
        st = sr.init_state(3, 4, root=0)
        assert sr.settled_lanes(st).tolist() == [True, False, False, True]


class TestFinalize:
    def test_selmax_finalize_parents_zero_based(self):
        sr = get_semiring("sel-max")
        st = sr.init_state(3, 4, root=0)
        st.p = np.array([1.0, 1.0, 0.0, -1.0])
        p = sr.finalize_parents(st)
        assert p.tolist() == [0, 0, -1, -1]

    def test_others_have_no_native_parents(self):
        for name in ("tropical", "real", "boolean"):
            sr = get_semiring(name)
            st = sr.init_state(3, 4, root=0)
            assert sr.finalize_parents(st) is None
            assert sr.needs_dp

    def test_distances_are_copies(self):
        sr = get_semiring("tropical")
        st = sr.init_state(3, 4, root=0)
        d = sr.finalize_distances(st)
        d[0] = 99.0
        assert st.f[0] == 0.0
