"""Observability: tracer, metrics registry, exporters, span-tree invariants.

The load-bearing properties:

* :func:`repro.obs.metrics.percentile` is *exactly* ``numpy.percentile``
  (the serve stats / workload report / planner expressions it replaced
  must stay bit-identical);
* span trees built by a tracing :class:`~repro.serve.server.Server` are
  well-formed under any interleaving — one ``serve.query`` root per
  submitted ticket, children nested within parent bounds, coalesced
  waiters linked to the primary's kernel span (hypothesis);
* both exporters round-trip: JSONL losslessly, Chrome trace-event up to
  the documented re-basing of absolute timestamps.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import path_graph, star_graph

from repro.obs.export import (
    chrome_trace_events,
    load_trace,
    read_chrome_trace,
    read_jsonl,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _P2Quantile,
    percentile,
)
from repro.obs.trace import Span, Tracer
from repro.serve.server import Server

SETTINGS = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

EPS = 1e-9


# ----------------------------------------------------------------------
class TestPercentile:
    @pytest.mark.parametrize("p", [0, 25, 50, 90, 95, 99, 100])
    def test_exact_against_numpy(self, p):
        rng = np.random.default_rng(7)
        for size in (1, 2, 5, 100, 1001):
            x = rng.exponential(3.0, size=size)
            assert percentile(x, p) == float(np.percentile(x, p))

    def test_accepts_lists_and_ints(self):
        vals = [5, 1, 4, 1, 3]
        assert percentile(vals, 50) == float(np.percentile(vals, 50))
        assert isinstance(percentile(vals, 50), float)

    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0
        assert percentile(np.array([]), 50) == 0.0


# ----------------------------------------------------------------------
class TestTracer:
    def test_begin_end_record(self):
        tr = Tracer()
        root = tr.begin("a", t=1.0, k=7)
        child = tr.begin("b", parent=root, t=2.0)
        tr.end(child, t=3.0)
        tr.end(root, t=4.0, status="done")
        rec = tr.record("c", 1.5, 1.75, parent=root)
        assert root.is_root and not child.is_root
        assert child.trace_id == root.trace_id == rec.trace_id
        assert root.attrs == {"k": 7, "status": "done"}
        assert root.duration_s == 3.0
        assert tr.roots() == [root]
        assert tr.children(root) == [child, rec]
        assert tr.by_id(child.span_id) is child
        assert tr.by_id(10**9) is None

    def test_double_end_raises(self):
        tr = Tracer()
        s = tr.begin("a", t=0.0)
        tr.end(s, t=1.0)
        with pytest.raises(ValueError, match="already ended"):
            tr.end(s, t=2.0)

    def test_distinct_roots_get_distinct_traces(self):
        tr = Tracer()
        a, b = tr.begin("a", t=0.0), tr.begin("b", t=0.0)
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_injectable_clock(self):
        ticks = iter([10.0, 11.5])
        tr = Tracer(clock=lambda: next(ticks))
        with tr.span("work") as s:
            pass
        assert (s.t_start, s.t_end) == (10.0, 11.5)

    def test_explicit_t_never_reads_clock(self):
        def boom():
            raise AssertionError("clock consulted")

        tr = Tracer(clock=boom)
        s = tr.begin("a", t=0.0)
        tr.end(s, t=1.0)
        tr.record("b", 0.0, 0.5)

    def test_open_span_duration_zero(self):
        tr = Tracer()
        s = tr.begin("a", t=3.0)
        assert s.duration_s == 0.0

    def test_clear_keeps_id_counters(self):
        tr = Tracer()
        a = tr.begin("a", t=0.0)
        tr.clear()
        b = tr.begin("b", t=0.0)
        assert tr.spans == [b]
        assert b.span_id > a.span_id

    def test_span_dict_roundtrip(self):
        s = Span(
            name="x",
            span_id=3,
            trace_id=2,
            parent_id=1,
            t_start=0.5,
            t_end=1.5,
            attrs={"w": 4},
        )
        assert Span.from_dict(s.to_dict()) == s
        o = Span(name="y", span_id=4, trace_id=2, parent_id=None, t_start=2.0)
        assert Span.from_dict(o.to_dict()) == o


# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_stays_int(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5 and isinstance(c.value, int)

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(2)
        g.set(7.5)
        assert g.value == 7.5

    def test_p2_exact_below_six_samples(self):
        est = _P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            est.observe(x)
        assert est.value == float(np.percentile([5.0, 1.0, 3.0], 50))

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_p2_tracks_uniform_quantiles(self, q):
        rng = np.random.default_rng(11)
        x = rng.uniform(0.0, 1.0, size=5000)
        est = _P2Quantile(q)
        for v in x:
            est.observe(float(v))
        exact = float(np.percentile(x, 100 * q))
        assert est.value == pytest.approx(exact, abs=0.03)

    def test_histogram_moments_and_snapshot(self):
        h = Histogram("lat", quantiles=(0.5,))
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3.0
        assert snap["sum"] == 6.0
        assert snap["mean"] == 2.0
        assert (snap["min"], snap["max"]) == (1.0, 3.0)
        assert snap["p50"] == 2.0
        assert Histogram("e").snapshot()["min"] == 0.0

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        reg.counter("a").inc(3)
        assert reg.value("a") == 3
        assert "a" in reg and "b" not in reg

    def test_registry_kind_mismatch(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("a")

    def test_view_shadowing_rejected_both_ways(self):
        reg = MetricsRegistry()
        reg.register_view("v", lambda: 1)
        with pytest.raises(TypeError, match="view"):
            reg.counter("v")
        reg.counter("c")
        with pytest.raises(TypeError, match="concrete"):
            reg.register_view("c", lambda: 2)

    def test_view_reregister_replaces(self):
        reg = MetricsRegistry()
        reg.register_view("v", lambda: 1)
        reg.register_view("v", lambda: 2)
        assert reg.value("v") == 2

    def test_snapshot_evaluates_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(0.5)
        reg.histogram("h").observe(1.0)
        reg.register_view("v", lambda: "ok")
        snap = reg.snapshot()
        assert snap["a"] == 1 and snap["b"] == 0.5 and snap["v"] == "ok"
        assert snap["h"]["count"] == 1.0
        assert reg.names() == ["a", "b", "h", "v"]
        assert len(reg) == 4
        with pytest.raises(KeyError):
            reg.value("missing")


# ----------------------------------------------------------------------
def _sample_trace() -> Tracer:
    tr = Tracer()
    root = tr.begin("serve.query", t=0.0, root=3)
    k = tr.record("serve.kernel", 0.5, 2.0, parent=root, track="server")
    tr.record("bfs.layer", 0.5, 1.0, parent=k, k=0, width=np.int64(2))
    tr.end(root, t=2.0, status="served")
    tr.begin("open.span", t=1.0)  # deliberately left open
    return tr


def _plain_attrs(span: Span) -> dict:
    d = span.to_dict()
    d["attrs"] = {
        k: int(v) if isinstance(v, np.integer) else v
        for k, v in d["attrs"].items()
    }
    return d


class TestExport:
    def test_jsonl_roundtrip_lossless(self, tmp_path):
        tr = _sample_trace()
        path = str(tmp_path / "t.jsonl")
        assert write_jsonl(tr.spans, path) == len(tr.spans)
        back = read_jsonl(path)
        # numpy attrs come back as plain Python scalars.
        assert [s.to_dict() for s in back] == [_plain_attrs(s) for s in tr.spans]

    def test_chrome_roundtrip_preserves_structure(self, tmp_path):
        tr = _sample_trace()
        path = str(tmp_path / "t.json")
        n = write_chrome_trace(tr.spans, path)
        assert n == len(tr.spans)
        back = read_chrome_trace(path)
        assert [s.name for s in back] == [s.name for s in tr.spans]
        assert [s.span_id for s in back] == [s.span_id for s in tr.spans]
        assert [s.parent_id for s in back] == [s.parent_id for s in tr.spans]
        for orig, got in zip(tr.spans, back):
            if orig.t_end is None:
                assert got.t_end is None
            else:
                assert got.duration_s == pytest.approx(orig.duration_s, abs=1e-9)

    def test_chrome_events_tracks_and_open_flag(self):
        events = chrome_trace_events(_sample_trace().spans)
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} >= {"server"}
        open_ev = [e for e in events if e["ph"] == "X" and e["args"].get("open")]
        assert len(open_ev) == 1 and open_ev[0]["dur"] == 0.0
        assert chrome_trace_events([]) == []

    def test_load_trace_sniffs_both_formats(self, tmp_path):
        tr = _sample_trace()
        jsonl, chrome = str(tmp_path / "a.jsonl"), str(tmp_path / "b.json")
        write_jsonl(tr.spans, jsonl)
        write_chrome_trace(tr.spans, chrome)
        names = [s.name for s in tr.spans]
        assert [s.name for s in load_trace(jsonl)] == names
        assert [s.name for s in load_trace(chrome)] == names

    def test_summarize(self):
        s = summarize(_sample_trace().spans)
        assert s["spans"] == 4 and s["open"] == 1
        assert s["roots"] == 2 and s["traces"] == 2
        assert s["names"]["serve.kernel"]["count"] == 1
        assert s["names"]["serve.kernel"]["total_s"] == pytest.approx(1.5)
        assert "open.span" not in s["names"]


# ----------------------------------------------------------------------
def _traced_server(max_batch: int = 4, cache_size: int = 64) -> Server:
    return Server(
        path_graph(16),
        max_batch=max_batch,
        max_wait=2e-3,
        cache_size=cache_size,
        service_model=lambda w: 1e-3 + 1e-4 * w,
        tracer=Tracer(),
    )


def _drive(server: Server, roots, gap: float = 5e-4) -> list:
    now, tickets = 0.0, []
    for r in roots:
        tickets.append(server.submit(int(r), now=now))
        now += gap
    server.drain(now=now)
    return tickets


class TestSpanTreeInvariants:
    @given(
        roots=st.lists(st.integers(0, 15), min_size=1, max_size=30),
        max_batch=st.integers(1, 8),
        cache_size=st.sampled_from([0, 64]),
    )
    @settings(**SETTINGS)
    def test_wellformed_under_any_interleaving(self, roots, max_batch, cache_size):
        srv = _traced_server(max_batch=max_batch, cache_size=cache_size)
        tickets = _drive(srv, roots)
        spans = srv.tracer.spans
        byid = {s.span_id: s for s in spans}

        # One serve.query root span per submitted ticket, all closed.
        qspans = [s for s in spans if s.name == "serve.query"]
        assert len(qspans) == len(tickets) == srv.stats.submitted
        assert all(s.parent_id is None for s in qspans)
        assert all(s.t_end is not None for s in spans)

        # Children nest within their parent's bounds.
        for s in spans:
            if s.parent_id is None:
                continue
            parent = byid[s.parent_id]
            assert s.t_start >= parent.t_start - EPS
            assert s.t_end <= parent.t_end + EPS

        # Root spans start at submit time and span exactly the reported
        # latency (both clocks are virtual here).
        for ticket, span in zip(tickets, qspans):
            qr = ticket.result()
            assert qr.span is span
            assert span.t_start == ticket.submitted_at
            if qr.status == "served":
                assert span.duration_s == qr.latency_s

    @given(roots=st.lists(st.integers(0, 15), min_size=2, max_size=24))
    @settings(**SETTINGS)
    def test_coalesced_waiters_share_kernel_span(self, roots):
        srv = _traced_server(max_batch=4, cache_size=0)
        _drive(srv, roots)
        spans = srv.tracer.spans
        byid = {s.span_id: s for s in spans}
        served = [
            s
            for s in spans
            if s.name == "serve.query" and "kernel_span" in s.attrs
        ]
        # Every kernel-path answer links to a real serve.kernel span.
        for s in served:
            ks = s.attrs["kernel_span"]
            if ks is not None:
                assert byid[ks].name == "serve.kernel"
        # Queries for one root resolved at one completion shared one
        # traversal: primary and MSHR waiters cite the same kernel span.
        groups: dict[tuple, set] = {}
        for s in served:
            key = (s.attrs["root"], s.t_end)
            groups.setdefault(key, set()).add(s.attrs["kernel_span"])
        assert all(len(ks) == 1 for ks in groups.values())
        # And mshr_hit waiters exist iff a duplicate was in flight.
        waiters = [s for s in served if s.attrs.get("mshr_hit")]
        assert len(waiters) == srv.stats.mshr_hits

    def test_mshr_waiter_links_to_primary_kernel(self):
        srv = _traced_server(max_batch=4)
        t1 = srv.submit(3, now=0.0)
        t2 = srv.submit(3, now=1e-4)  # duplicate: attaches to the miss
        srv.drain(now=1e-3)
        s1, s2 = t1.result().span, t2.result().span
        assert srv.stats.mshr_hits == 1
        assert s2.attrs["mshr_hit"] is True
        assert s2.attrs["kernel_span"] == s1.attrs["kernel_span"]
        attach = [s for s in srv.tracer.spans if s.name == "serve.mshr.attach"]
        assert len(attach) == 1 and attach[0].parent_id == s2.span_id

    def test_cache_hit_span_closes_at_submit(self):
        srv = _traced_server()
        _drive(srv, [5])
        t = srv.submit(5, now=1.0)
        span = t.result().span
        assert span.attrs.get("cache_hit") is True
        assert span.duration_s == 0.0
        names = {s.name for s in srv.tracer.children(span)}
        assert names == {"serve.cache.hit"}

    def test_engine_layer_spans_nest_in_kernel_window(self):
        srv = _traced_server()
        _drive(srv, [0, 7, 13])
        spans = srv.tracer.spans
        byid = {s.span_id: s for s in spans}
        layers = [s for s in spans if s.name == "bfs.layer"]
        assert layers, "traced serve run produced no engine layer spans"
        for s in layers:
            k = byid[s.parent_id]
            assert k.name == "serve.kernel"
            assert s.t_start >= k.t_start - 1e-6
            assert s.t_end <= k.t_end + 1e-6
            assert s.trace_id == k.trace_id

    def test_disabled_tracer_is_bit_identical(self):
        runs = []
        for tracer in (None, Tracer()):
            srv = Server(
                star_graph(32),
                max_batch=4,
                cache_size=64,
                service_model=lambda w: 1e-3 + 1e-4 * w,
                tracer=tracer,
            )
            tickets = _drive(srv, [0, 5, 5, 9, 0, 21, 5])
            statuses = [t.result().status for t in tickets]
            latencies = [t.result().latency_s for t in tickets]
            runs.append((srv.stats.summary(), statuses, latencies))
        assert runs[0] == runs[1]
