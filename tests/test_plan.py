"""Tests of the offline capacity planner (``repro.serve.plan``).

The planner's contract has three load-bearing identities, each pinned
here exactly (``==``, not ``approx``):

* a :class:`DistServiceModel` charge equals what ``bfs_dist_1d`` models
  for the same roots in one sweep — the cached-schedule reconstruction
  is the real dist model, not an approximation of it;
* ``machine_weights`` over identical descriptors is a uniform vector,
  and any uniform vector leaves ``Partition1D.balanced`` bit-identical
  to the unweighted bounds;
* a zero-rate fault model without checkpoints charges exactly nothing,
  so fault-rate-0 plans match the fault-free model number for number.

Plus the acceptance criterion of the heterogeneous-placement path:
weighted placement strictly beats uniform on a skewed cluster, end to
end through the dist models and the served p99.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfs.msbfs import MultiSourceBFS, build_rep
from repro.cli import main
from repro.dist import Partition1D, bfs_dist_1d, get_network, machine_weights
from repro.dist.faults import DistFaultModel
from repro.graph500 import sample_roots
from repro.serve.plan import (
    DistServiceModel,
    ReplayEnginePool,
    SweepCache,
    best_configuration,
    compare_placement,
    plan_capacity,
)
from repro.vec.machine import get_machine, get_machines

KNL = get_machine("knl")
ARIES = get_network("cray-aries")
ETH = get_network("ethernet-10g")


@pytest.fixture(scope="module")
def rep(kron_small_module):
    return build_rep(kron_small_module, 16, None, slim=True)


@pytest.fixture(scope="module")
def kron_small_module():
    from repro.graphs.kronecker import kronecker

    return kronecker(9, 8, seed=7)


@pytest.fixture(scope="module")
def pool(kron_small_module):
    return sample_roots(kron_small_module, 12, 3)


class TestDistServiceModel:
    def test_charge_equals_bfs_dist_1d_sweep(self, rep, pool):
        """The planner's seam: cached-schedule profiling == the dist model."""
        part = Partition1D.balanced(rep.cl, 4)
        model = DistServiceModel(rep, part, KNL, ARIES)
        ref = bfs_dist_1d(rep, pool, part, KNL, ARIES, batch=None)
        assert model.service_seconds(pool) == ref.modeled_total_s

    def test_charge_equals_dist_model_per_subset(self, rep, pool):
        part = Partition1D.balanced(rep.cl, 2)
        model = DistServiceModel(rep, part, KNL, ETH)
        model.cache.ensure(pool)  # warm on the full pool, charge subsets
        for sub in (pool[:1], pool[3:7], pool[::2]):
            ref = bfs_dist_1d(rep, sub, part, KNL, ETH, batch=None)
            assert model.service_seconds(sub) == ref.modeled_total_s

    def test_heterogeneous_charge_matches(self, rep, pool):
        machines = get_machines("knl*3,knl@0.5")
        part = Partition1D.balanced(rep.cl, 4)
        model = DistServiceModel(rep, part, machines, ARIES)
        ref = bfs_dist_1d(rep, pool, part, machines, ARIES, batch=None)
        assert model.service_seconds(pool) == ref.modeled_total_s

    def test_zero_rate_faults_match_fault_free_exactly(self, rep, pool):
        part = Partition1D.balanced(rep.cl, 4)
        free = DistServiceModel(rep, part, KNL, ARIES)
        zero = DistServiceModel(
            rep,
            part,
            KNL,
            ARIES,
            faults=DistFaultModel(rank_failure_prob=0.0, straggler_prob=0.0),
        )
        assert zero.service_seconds(pool) == free.service_seconds(pool)

    def test_overlap_reduces_charge(self, rep, pool):
        part = Partition1D.balanced(rep.cl, 4)
        t0 = DistServiceModel(rep, part, KNL, ETH).service_seconds(pool)
        t5 = DistServiceModel(rep, part, KNL, ETH, overlap=0.5).service_seconds(pool)
        assert t5 < t0

    def test_charge_accumulates(self, rep, pool):
        part = Partition1D.balanced(rep.cl, 2)
        model = DistServiceModel(rep, part, KNL, ARIES)
        a = model.service_seconds(pool[:4])
        b = model.service_seconds(pool[4:8])
        assert model.batches == 2
        assert model.charged_s == a + b

    def test_shared_cache_must_match_rep(self, rep, pool):
        cache = SweepCache(rep, slimwork=False)
        with pytest.raises(ValueError, match="same rep and"):
            DistServiceModel(
                rep,
                Partition1D.balanced(rep.cl, 2),
                KNL,
                ARIES,
                slimwork=True,
                cache=cache,
            )

    def test_empty_batch_rejected(self, rep):
        cache = SweepCache(rep)
        with pytest.raises(ValueError, match="empty batch"):
            cache.schedule_for(np.empty(0, dtype=np.int64))


class TestReplayEnginePool:
    def test_replayed_results_bit_identical_to_live_engine(self, rep, pool):
        cache = SweepCache(rep)
        cache.ensure(pool)
        name, engine = ReplayEnginePool(cache).engine_for("tropical", 4)
        assert name == "replay"
        live = MultiSourceBFS(rep, "tropical").run(pool)
        for got, want in zip(engine.run(pool), live):
            np.testing.assert_array_equal(got.dist, want.dist)

    def test_non_tropical_semiring_rejected(self, rep):
        replay = ReplayEnginePool(SweepCache(rep))
        with pytest.raises(ValueError, match="tropical"):
            replay.engine_for("sel-max", 4)


class TestMachineWeights:
    def test_identical_machines_give_uniform_weights(self, rep):
        w = machine_weights([KNL, KNL, KNL], rep)
        assert np.all(w == 1.0)

    def test_uniform_weights_bit_identical_placement(self, rep):
        """The bit-for-bit guarantee the planner's homogeneous path rests
        on: weights from identical descriptors change nothing at all."""
        w = machine_weights([KNL] * 4, rep)
        weighted = Partition1D.balanced(rep.cl, 4, weights=w)
        plain = Partition1D.balanced(rep.cl, 4)
        np.testing.assert_array_equal(weighted.owner, plain.owner)

    def test_slow_machine_gets_less_work(self, rep):
        machines = get_machines("knl,knl,knl@0.25")
        w = machine_weights(machines, rep)
        assert w[2] < w[0] == w[1] == 1.0
        part = Partition1D.balanced(rep.cl, 3, weights=w)
        work = part.work_per_rank(rep.cl)
        assert work[2] < work[0]

    def test_empty_machine_list_rejected(self, rep):
        with pytest.raises(ValueError, match="non-empty"):
            machine_weights([], rep)


class TestPlanCapacity:
    def test_plan_is_deterministic(self, kron_small_module):
        kwargs = dict(
            ranks=(1, 2),
            max_batches=(1, 4),
            nqueries=48,
            root_pool=12,
            seed=5,
        )
        a = plan_capacity(kron_small_module, [(2000.0, 0.01)], **kwargs)
        b = plan_capacity(kron_small_module, [(2000.0, 0.01)], **kwargs)
        assert a == b

    def test_infeasible_target_reports_cleanly(self, kron_small_module):
        """An impossible p99 yields best=None and zero feasible configs —
        a clean report, not an exception."""
        plan = plan_capacity(
            kron_small_module,
            [(2000.0, 1e-12)],
            ranks=(2,),
            max_batches=(4,),
            nqueries=48,
            root_pool=12,
        )
        (t,) = plan["targets"]
        assert t["best"] is None
        assert t["feasible_configs"] == 0
        assert all(not r["per_target"][0]["feasible"] for r in plan["grid"])

    def test_single_rank_plan_is_network_independent(self, kron_small_module):
        """ranks=1 moves no bytes, so the local serve numbers reproduce
        identically on every network preset."""
        plan = plan_capacity(
            kron_small_module,
            [(2000.0, 0.01)],
            ranks=(1,),
            networks=("cray-aries", "ethernet-10g"),
            max_batches=(1, 8),
            nqueries=64,
            root_pool=12,
        )
        by_net = {}
        for row in plan["grid"]:
            by_net.setdefault(row["network"], []).append(
                (row["max_batch"], row["per_target"])
            )
        assert by_net["cray-aries"] == by_net["ethernet-10g"]

    def test_fault_rate_zero_matches_fault_free(self, kron_small_module):
        """Explicit zero-rate faults are charged through the injector path
        yet match the fault-free plan exactly (nothing drawn, nothing
        charged)."""
        base = dict(
            ranks=(2,),
            networks=("cray-aries",),
            max_batches=(4,),
            nqueries=48,
            root_pool=12,
        )
        free = plan_capacity(kron_small_module, [(2000.0, 0.01)], **base)
        zero = plan_capacity(
            kron_small_module,
            [(2000.0, 0.01)],
            rank_failure_prob=0.0,
            checkpoint_intervals=(None,),
            **base,
        )
        assert free["grid"] == zero["grid"]

    def test_faulty_plan_sweeps_checkpoint_intervals(self, kron_small_module):
        plan = plan_capacity(
            kron_small_module,
            [(1000.0, 0.05)],
            ranks=(4,),
            networks=("cray-aries",),
            max_batches=(8,),
            rank_failure_prob=0.08,
            checkpoint_intervals=(None, 1, 4),
            nqueries=48,
            root_pool=12,
        )
        cell = plan["grid"][0]["per_target"][0]
        assert set(cell["interval_p99_s"]) == {"never", "1", "4"}
        best_p99 = min(cell["interval_p99_s"].values())
        assert cell["latency_p99_s"] == best_p99

    def test_cheapest_prefers_fewer_ranks_then_ethernet(self):
        rows = []
        configs = ((4, "cray-aries"), (2, "cray-aries"), (2, "ethernet-10g"))
        for ranks, net in configs:
            rows.append(
                {
                    "ranks": ranks,
                    "network": net,
                    "max_batch": 8,
                    "machine": "knl",
                    "per_target": [
                        {
                            "feasible": True,
                            "latency_p99_s": 1e-3,
                            "checkpoint_interval": None,
                            "virtual_throughput_qps": 1000.0,
                        }
                    ],
                }
            )
        best = best_configuration(rows, 0)
        assert (best["ranks"], best["network"]) == (2, "ethernet-10g")

    def test_heterogeneous_plan_fixes_rank_count(self, kron_small_module):
        plan = plan_capacity(
            kron_small_module,
            [(2000.0, 0.05)],
            machines="knl*3,knl@0.5",
            max_batches=(4,),
            networks=("cray-aries",),
            nqueries=48,
            root_pool=12,
        )
        assert all(r["ranks"] == 4 for r in plan["grid"])
        assert all(r["machine"] == "knl+knl+knl+knl@0.5" for r in plan["grid"])
        assert all(r["placement"] == "weighted" for r in plan["grid"])

    def test_target_validation(self, kron_small_module):
        with pytest.raises(ValueError, match="at least one"):
            plan_capacity(kron_small_module, [])
        with pytest.raises(ValueError, match="positive finite"):
            plan_capacity(kron_small_module, [(float("inf"), 0.01)])
        with pytest.raises(ValueError, match="p99 must be positive"):
            plan_capacity(kron_small_module, [(100.0, 0.0)])
        with pytest.raises(ValueError, match="placement"):
            plan_capacity(kron_small_module, [(100.0, 0.01)], placement="magic")


class TestComparePlacement:
    def test_weighted_strictly_beats_uniform_on_skewed_cluster(
        self, kron_small_module
    ):
        """The acceptance criterion: on a mixed cluster the weighted bands
        shift rows off the weak rank, and both the modeled pool sweep and
        the served p99 come out strictly better than uniform bands."""
        out = compare_placement(
            kron_small_module,
            "knl*3,knl@0.4",
            max_batch=8,
            nqueries=96,
            root_pool=24,
            max_wait=1e-5,
            target=(20000.0, 0.005),
        )
        assert out["weighted"]["pool_sweep_s"] < out["uniform"]["pool_sweep_s"]
        assert out["weighted"]["latency_p99_s"] < out["uniform"]["latency_p99_s"]
        assert out["sweep_improvement"] > 1.0
        # The weak rank (last) carries strictly fewer rows under weights.
        assert (
            out["weighted"]["work_per_rank"][-1] < out["uniform"]["work_per_rank"][-1]
        )


class TestPlanCLI:
    def test_plan_command_runs(self, capsys):
        rc = main(
            [
                "plan",
                "kronecker:8,8,3",
                "--target",
                "2000:5",
                "--ranks",
                "1,2",
                "--max-batches",
                "1,4",
                "-n",
                "48",
                "--root-pool",
                "12",
                "-v",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "capacity plan" in out
        assert "cheapest:" in out or "infeasible:" in out

    def test_plan_writes_json(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        rc = main(
            [
                "plan",
                "kronecker:8,8,3",
                "--target",
                "2000:5",
                "--ranks",
                "1",
                "--max-batches",
                "2",
                "-n",
                "32",
                "--root-pool",
                "8",
                "--json",
                str(path),
            ]
        )
        assert rc == 0
        import json

        plan = json.loads(path.read_text())
        assert plan["deterministic"] is True
        assert plan["targets"][0]["qps"] == 2000.0

    def test_plan_ablation_command(self, capsys):
        rc = main(
            [
                "plan",
                "kronecker:8,8,3",
                "--target",
                "2000:5",
                "--machines",
                "knl,knl@0.5",
                "--ablate-placement",
                "-n",
                "32",
                "--root-pool",
                "8",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "placement ablation" in out

    def test_plan_target_validation(self):
        for bad in ("nope", "100", "0:1", "100:-1"):
            with pytest.raises(SystemExit):
                main(["plan", "kronecker:7,4", "--target", bad])

    def test_plan_checkpoint_validation(self):
        with pytest.raises(SystemExit, match="checkpoints"):
            main(
                [
                    "plan",
                    "kronecker:7,4",
                    "--target",
                    "100:5",
                    "--checkpoints",
                    "sometimes",
                ]
            )

    def test_plan_ablation_requires_machines(self):
        with pytest.raises(SystemExit, match="requires --machines"):
            main(["plan", "kronecker:7,4", "--target", "100:5", "--ablate-placement"])


class TestServerHook:
    def test_service_models_mutually_exclusive(self, kron_small_module):
        from repro.serve.server import Server

        with pytest.raises(ValueError, match="mutually exclusive"):
            Server(
                kron_small_module,
                service_model=lambda width: 1.0,
                batch_service_model=lambda roots: 1.0,
            )

    def test_batch_service_model_prices_dispatches(self, kron_small_module):
        """Every dispatched batch is charged exactly what the callable
        returns for its root array (virtual time, not wall time)."""
        from repro.serve.server import Server
        from repro.serve.workload import run_open_loop

        charged = []

        def price(roots):
            charged.append(roots.size)
            return 1e-3 * roots.size

        server = Server(
            kron_small_module,
            max_batch=4,
            cache_size=0,
            batch_service_model=price,
        )
        roots = sample_roots(kron_small_module, 8, 3)
        report = run_open_loop(
            server,
            roots,
            np.zeros(roots.size),
            semiring="tropical",
        )
        assert report["served"] == roots.size
        assert sum(charged) == roots.size
        assert report["kernel_s"] == pytest.approx(1e-3 * roots.size)


class TestMachineSpecs:
    def test_scaled_machine(self):
        half = KNL.scaled(0.5)
        assert half.name == "knl@0.5"
        assert half.ghz == KNL.ghz * 0.5
        assert half.bandwidth_gbs == KNL.bandwidth_gbs * 0.5
        assert KNL.scaled(1.0) is KNL

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="> 0"):
            KNL.scaled(0.0)

    def test_get_machine_factor_suffix(self):
        assert get_machine("knl@0.5") == KNL.scaled(0.5)
        with pytest.raises(KeyError):
            get_machine("knl@zero")
        with pytest.raises(KeyError):
            get_machine("nope@0.5")

    def test_get_machines_spec(self):
        ms = get_machines("knl*3,dora")
        assert [m.name for m in ms] == ["knl", "knl", "knl", "dora"]
        with pytest.raises(KeyError):
            get_machines("knl*0")
        with pytest.raises(KeyError):
            get_machines("")
