"""Tests of the CSR representation and the reference semiring SpMV."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix, segment_reduce
from repro.semirings import SEMIRINGS
from repro.semirings.base import get_semiring

from conftest import path_graph, star_graph, two_components


class TestSegmentReduce:
    def test_basic_sum(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        indptr = np.array([0, 2, 4])
        assert np.array_equal(segment_reduce(np.add, data, indptr, 0.0), [3, 7])

    def test_empty_rows_get_identity(self):
        data = np.array([5.0, 6.0])
        indptr = np.array([0, 0, 2, 2])
        out = segment_reduce(np.minimum, data, indptr, np.inf)
        assert out[0] == np.inf and out[2] == np.inf
        assert out[1] == 5.0

    def test_all_empty(self):
        out = segment_reduce(np.add, np.empty(0), np.array([0, 0, 0]), -1.0)
        assert np.array_equal(out, [-1, -1])

    def test_single_row(self):
        out = segment_reduce(np.maximum, np.array([3.0, 9.0, 1.0]),
                             np.array([0, 3]), 0.0)
        assert out.tolist() == [9.0]


class TestCSRStructure:
    def test_storage_cells_formula(self):
        g = star_graph(10)  # m=9, n=10
        assert CSRMatrix(g).storage_cells() == 4 * 9 + 10

    def test_val_for_all_ones(self):
        g = path_graph(4)
        csr = CSRMatrix(g)
        for name in SEMIRINGS:
            v = csr.val_for(get_semiring(name))
            assert v.shape == (2 * g.m,)
            assert np.all(v == 1.0)


class TestSpMVAgainstScipy:
    @pytest.mark.parametrize("semiring", ["real"])
    def test_real_matches_scipy_matvec(self, semiring):
        rng = np.random.default_rng(0)
        g = two_components()
        x = rng.random(g.n)
        got = CSRMatrix(g).spmv(get_semiring(semiring), x)
        want = g.to_scipy() @ x
        np.testing.assert_allclose(got, want)

    def test_tropical_one_step_relaxation(self):
        g = path_graph(4)
        x = np.array([0.0, np.inf, np.inf, np.inf])
        out = CSRMatrix(g).spmv(get_semiring("tropical"), x)
        # vertex 1 sees the root at distance 0 + 1 hop; others see inf.
        assert out.tolist() == [np.inf, 1.0, np.inf, np.inf]

    def test_boolean_frontier_expansion(self):
        g = star_graph(5)
        x = np.zeros(5)
        x[0] = 1.0
        out = CSRMatrix(g).spmv(get_semiring("boolean"), x)
        assert out.tolist() == [0.0, 1.0, 1.0, 1.0, 1.0]

    def test_selmax_takes_max_neighbor_value(self):
        g = path_graph(3)
        x = np.array([5.0, 0.0, 9.0])
        out = CSRMatrix(g).spmv(get_semiring("sel-max"), x)
        assert out.tolist() == [0.0, 9.0, 0.0]

    def test_empty_row_yields_semiring_zero(self):
        g = two_components()  # vertex 8 isolated
        for name in SEMIRINGS:
            sr = get_semiring(name)
            out = CSRMatrix(g).spmv(sr, np.ones(g.n))
            assert out[8] == sr.zero

    def test_short_x_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="shorter"):
            CSRMatrix(g).spmv(get_semiring("real"), np.zeros(2))
