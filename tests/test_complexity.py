"""Tests of the work-complexity analysis (Table II, Eqs. (1)-(2), Fig 3)."""

import math

import pytest

from repro.analysis.complexity import (
    TABLE_II,
    er_max_degree_bound,
    powerlaw_max_degree_bound,
    sell_storage_upper_bound,
    work_bound_er,
    work_bound_general,
    work_bound_powerlaw,
    work_table,
)
from repro.bfs.spmv import BFSSpMV
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.erdos_renyi import erdos_renyi
from repro.graphs.kronecker import kronecker


class TestTableII:
    def test_nine_schemes(self):
        assert len(TABLE_II) == 9
        assert {wb.scheme for wb in TABLE_II} >= {
            "traditional-textbook", "spmv-textbook", "this-work"}

    def test_work_table_evaluates_all(self):
        wt = work_table(n=1000, m=8000, D=6, C=8, rho_max=120)
        assert set(wt) == {wb.scheme for wb in TABLE_II}
        assert all(v > 0 for v in wt.values())

    def test_ordering_textbook_spmv_is_worst(self):
        wt = work_table(n=1000, m=8000, D=6, C=8, rho_max=120)
        assert wt["spmv-textbook"] == max(wt.values())
        assert wt["traditional-textbook"] == min(wt.values())

    def test_this_work_between_traditional_and_dense(self):
        wt = work_table(n=4096, m=32768, D=8, C=16, rho_max=500)
        assert wt["traditional-textbook"] < wt["this-work"] < wt["spmv-textbook"]

    def test_missing_parameter_raises(self):
        with pytest.raises(TypeError, match="missing"):
            TABLE_II[0]()  # traditional-textbook needs n, m


class TestStorageBound:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("C", [4, 8, 16])
    def test_measured_slots_within_bound(self, seed, C):
        # Fig 3: with full sorting, slots <= 2m + rho_max * C.
        g = kronecker(8, 6, seed=seed)
        s = SellCSigma(g, C, sigma=g.n)
        assert s.total_slots <= sell_storage_upper_bound(2 * g.m, g.max_degree, C)

    def test_bound_tightness_lower(self):
        # The minimum storage is max(2m, rho_max*C); bound within 2x of it.
        g = kronecker(9, 8, seed=1)
        C = 8
        s = SellCSigma(g, C, sigma=g.n)
        assert s.total_slots >= max(2 * g.m, g.max_degree * C)


class TestMaxDegreeBounds:
    def test_er_dense_regime_linear_in_np(self):
        assert er_max_degree_bound(10**6, 1e-3) == pytest.approx(4 * 1000)

    def test_er_sparse_regime_log(self):
        b = er_max_degree_bound(10**6, 1e-9)
        assert b == pytest.approx(4 * math.log(10**6))

    def test_er_bound_holds_empirically(self):
        n, p = 2048, 8 / 2048
        g = erdos_renyi(n, p, seed=3)
        assert g.max_degree <= er_max_degree_bound(n, p)

    def test_powerlaw_bound_grows_sublinearly(self):
        b1 = powerlaw_max_degree_bound(10**4, 1.0, 2.5)
        b2 = powerlaw_max_degree_bound(10**6, 1.0, 2.5)
        assert b2 > b1
        assert b2 / b1 < 100  # sublinear in n

    def test_powerlaw_beta_validation(self):
        with pytest.raises(ValueError, match="beta"):
            powerlaw_max_degree_bound(100, 1.0, 1.0)

    def test_kronecker_max_degree_below_powerlaw_bound(self):
        g = kronecker(11, 16, seed=0)
        bound = powerlaw_max_degree_bound(g.n, alpha=g.avg_degree, beta=2.0)
        assert g.max_degree <= bound

    def test_tiny_n(self):
        assert er_max_degree_bound(1, 0.5) == 0.0
        assert powerlaw_max_degree_bound(1, 1.0, 2.5) == 0.0


class TestWorkBounds:
    def test_eq1_eq2_general_consistency(self):
        n, m, D, C = 4096, 32768, 8, 16
        general = work_bound_general(n, m, D, C, rho_max=int(4 * m / n))
        eq1 = work_bound_er(n, m, D, C, p=2 * m / (n * n))
        eq2 = work_bound_powerlaw(n, m, D, C, alpha=1.0, beta=2.3)
        assert general > 0 and eq1 > 0 and eq2 > 0
        # All share the dominant D(n+m) term.
        base = D * (n + m)
        for b in (general, eq1, eq2):
            assert b >= base

    def test_measured_work_within_general_bound(self, kron_medium):
        # Engine-counted padded work per iteration must sit under the bound.
        g = kron_medium
        C = 8
        rep = SlimSell(g, C, g.n)
        res = BFSSpMV(rep, "tropical").run(0)
        D = res.n_iterations
        measured = sum(it.work_lanes + g.n for it in res.iterations)
        bound = work_bound_general(g.n, 2 * g.m, D, C, g.max_degree)
        assert measured <= bound
