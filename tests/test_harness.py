"""Tests of the timing/amortization harness (§IV-D)."""

import pytest

from repro.bfs.spmv import BFSSpMV
from repro.formats.slimsell import SlimSell
from repro.perf.harness import AmortizationReport, amortization_report, time_bfs


class TestTimeBFS:
    def test_returns_result_and_positive_time(self, kron_small):
        rep = SlimSell(kron_small, 8)
        eng = BFSSpMV(rep, "tropical")
        res, best = time_bfs(lambda: eng.run(0), repeats=2)
        assert best > 0
        assert res.reached > 1

    def test_repeats_validation(self, kron_small):
        with pytest.raises(ValueError, match="repeats"):
            time_bfs(lambda: None, repeats=0)


class TestAmortization:
    def test_fractions_decrease_with_runs(self):
        r = AmortizationReport(sort_time_s=0.2, build_time_s=1.0, bfs_time_s=1.0)
        f = [r.sort_fraction(k) for k in (1, 2, 10, 100)]
        assert all(b < a for a, b in zip(f, f[1:]))
        assert r.preprocess_fraction(1) > r.preprocess_fraction(50)

    def test_paper_amortization_shape(self):
        # §IV-D: sorting ~21% of one BFS run -> 10 runs bring it below ~2%.
        r = AmortizationReport(sort_time_s=0.21, build_time_s=0.5, bfs_time_s=1.0)
        assert r.sort_fraction(1) > 0.1
        assert r.sort_fraction(10) < 0.021

    def test_runs_until_sort_below(self):
        r = AmortizationReport(sort_time_s=0.2, build_time_s=0.4, bfs_time_s=1.0)
        k = r.runs_until_sort_below(0.02)
        assert r.sort_fraction(k) <= 0.02
        assert k == 1 or r.sort_fraction(k - 1) > 0.02

    def test_zero_times(self):
        r = AmortizationReport(0.0, 0.0, 0.0)
        assert r.sort_fraction(5) == 0.0
        assert r.preprocess_fraction(5) == 0.0

    def test_end_to_end_on_real_rep(self, kron_small):
        rep = SlimSell(kron_small, 8, kron_small.n)
        eng = BFSSpMV(rep, "tropical", slimwork=True)
        rpt = amortization_report(rep, lambda: eng.run(0), repeats=1)
        assert rpt.build_time_s >= rpt.sort_time_s >= 0
        assert rpt.bfs_time_s > 0
        assert 0 < rpt.sort_fraction(1) < 1
