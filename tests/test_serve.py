"""The serving layer: batcher, cache, server, workloads, async front-end.

The load-bearing property — served answers are bit-identical to direct
engine calls under *any* interleaving of submits, any ``max_batch``, and
cache on or off — is checked both directly (hypothesis, against
``MultiSourceBFS``) and through the cross-engine oracle
(``tests/engines.py`` registers ``"serve"`` as an engine, so every
oracle-based test in the suite also covers the serving path).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import SEMIRING_NAMES, path_graph, star_graph, two_components
from engines import assert_bfs_equivalent

from repro.bfs.msbfs import MultiSourceBFS
from repro.formats.slimsell import SlimSell
from repro.serve.batcher import QueryBatcher
from repro.serve.cache import ResultCache, graph_fingerprint
from repro.serve.engines import EnginePool, default_strategy
from repro.serve.faults import FaultPlan
from repro.serve.query import Query, Rejected, Ticket, TimedOut
from repro.serve.server import AsyncServer, Server
from repro.serve.workload import (
    poisson_arrivals,
    run_closed_loop,
    run_open_loop,
    sample_zipf_roots,
    zipf_weights,
)

SETTINGS = dict(deadline=None, max_examples=20,
                suppress_health_check=[HealthCheck.function_scoped_fixture])


def _ticket(root: int, semiring: str = "sel-max", at: float = 0.0) -> Ticket:
    return Ticket(query=Query(root=root, semiring=semiring), submitted_at=at)


# ----------------------------------------------------------------------
class TestQuery:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            Query(root=0, kind="pagerank")

    def test_reachability_needs_target(self):
        with pytest.raises(ValueError, match="target"):
            Query(root=0, kind="reachability")

    def test_batch_key_coalesces_kinds(self):
        a = Query(root=3, kind="distances")
        b = Query(root=3, kind="reachability", target=5)
        assert a.batch_key == b.batch_key

    def test_pending_ticket_raises(self):
        t = _ticket(0)
        assert not t.done
        with pytest.raises(RuntimeError, match="pending"):
            t.result()

    def test_double_resolution_rejected(self):
        t = _ticket(0)
        t._resolve(Rejected(t.query))
        with pytest.raises(RuntimeError, match="twice"):
            t._resolve(Rejected(t.query))


# ----------------------------------------------------------------------
class TestGraphFingerprint:
    def test_equal_graphs_equal_fingerprint(self):
        a, b = path_graph(16), path_graph(16)
        assert a is not b
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_different_graphs_differ(self):
        assert graph_fingerprint(path_graph(16)) != \
            graph_fingerprint(star_graph(16))

    def test_rep_fingerprints_original_graph(self):
        g = path_graph(32)
        assert graph_fingerprint(SlimSell(g, 4, g.n)) == graph_fingerprint(g)
        # Build parameters don't change the key: answers are bit-identical.
        assert graph_fingerprint(SlimSell(g, 8, 16)) == graph_fingerprint(g)


class TestResultCache:
    def test_lru_eviction_order(self):
        c = ResultCache(capacity=2)
        c.put(("f", "s", 1), "one")
        c.put(("f", "s", 2), "two")
        assert c.get(("f", "s", 1)) == "one"  # refreshes 1
        c.put(("f", "s", 3), "three")         # evicts 2 (LRU)
        assert c.get(("f", "s", 2)) is None
        assert c.get(("f", "s", 1)) == "one"
        assert c.stats.evictions == 1

    def test_stats(self):
        c = ResultCache(capacity=4)
        assert c.get(("f", "s", 0)) is None
        c.put(("f", "s", 0), "x")
        assert c.get(("f", "s", 0)) == "x"
        assert (c.stats.hits, c.stats.misses) == (1, 1)
        assert c.stats.hit_rate == 0.5

    def test_capacity_zero_disables(self):
        c = ResultCache(capacity=0)
        c.put(("f", "s", 0), "x")
        assert len(c) == 0 and c.get(("f", "s", 0)) is None
        assert c.stats.rejected_puts == 1

    def test_refresh_existing_key_no_growth(self):
        c = ResultCache(capacity=2)
        c.put(("f", "s", 1), "a")
        c.put(("f", "s", 1), "b")
        assert len(c) == 1 and c.get(("f", "s", 1)) == "b"

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_clear_keeps_stats(self):
        c = ResultCache(capacity=2)
        c.put(("f", "s", 1), "a")
        c.get(("f", "s", 1))
        c.clear()
        assert len(c) == 0 and c.stats.hits == 1


# ----------------------------------------------------------------------
class TestQueryBatcher:
    def test_width_trigger_releases_exactly_max_batch(self):
        b = QueryBatcher(max_batch=3, max_wait=60.0)
        for r in range(5):
            b.enqueue(_ticket(r), now=0.0)
        batches = b.ready(now=0.0)
        assert [x.width for x in batches] == [3]
        assert batches[0].reason == "width"
        assert batches[0].roots.tolist() == [0, 1, 2]  # oldest first
        assert len(b) == 2

    def test_deadline_trigger_releases_partial_group(self):
        b = QueryBatcher(max_batch=8, max_wait=1.0)
        b.enqueue(_ticket(0, at=0.0), now=0.0)
        b.enqueue(_ticket(1, at=0.5), now=0.5)
        assert b.ready(now=0.99) == []
        assert b.next_deadline() == pytest.approx(1.0)
        (batch,) = b.ready(now=1.0)
        assert batch.reason == "deadline" and batch.width == 2
        assert len(b) == 0 and b.next_deadline() is None

    def test_duplicate_roots_coalesce(self):
        b = QueryBatcher(max_batch=4, max_wait=60.0)
        for _ in range(3):
            b.enqueue(_ticket(7), now=0.0)
        assert len(b) == 1 and b.pending_queries == 3
        assert b.coalesced == 2
        (batch,) = b.flush_all()
        assert batch.width == 1 and batch.n_queries == 3

    def test_semirings_batch_separately(self):
        b = QueryBatcher(max_batch=2, max_wait=60.0)
        b.enqueue(_ticket(0, "tropical"), now=0.0)
        b.enqueue(_ticket(0, "boolean"), now=0.0)
        assert len(b) == 2  # same root, different semiring: two columns
        assert b.ready(now=0.0) == []
        batches = b.flush_all()
        assert sorted(x.semiring for x in batches) == ["boolean", "tropical"]

    def test_max_wait_zero_always_due(self):
        b = QueryBatcher(max_batch=64, max_wait=0.0)
        b.enqueue(_ticket(0), now=5.0)
        (batch,) = b.ready(now=5.0)
        assert batch.width == 1 and batch.reason == "deadline"

    def test_deadline_restarts_after_width_pop(self):
        b = QueryBatcher(max_batch=2, max_wait=1.0)
        b.enqueue(_ticket(0, at=0.0), now=0.0)
        b.enqueue(_ticket(1, at=0.0), now=0.0)
        b.enqueue(_ticket(2, at=0.8), now=0.8)
        (full,) = b.ready(now=0.8)
        assert full.reason == "width"
        # The leftover root 2 arrived at 0.8: its deadline is 1.8, not 1.0.
        assert b.ready(now=1.0) == []
        assert b.next_deadline() == pytest.approx(1.8)

    def test_flush_all_respects_max_batch(self):
        b = QueryBatcher(max_batch=2, max_wait=60.0)
        for r in range(5):
            b.enqueue(_ticket(r), now=0.0)
        # enqueue never auto-dispatches; the owner pumps via ready().
        widths = [x.width for x in b.flush_all()]
        assert widths == [2, 2, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryBatcher(max_batch=0)
        with pytest.raises(ValueError):
            QueryBatcher(max_wait=-1.0)


# ----------------------------------------------------------------------
class TestEnginePool:
    def test_default_strategy_threshold(self):
        assert default_strategy(1) == "mshybrid"
        assert default_strategy(16) == "mshybrid"
        assert default_strategy(17) == "msbfs"

    def test_engines_are_reused(self, kron_small):
        pool = EnginePool(SlimSell(kron_small, 8, kron_small.n))
        _, e1 = pool.engine_for("sel-max", 4)
        _, e2 = pool.engine_for("sel-max", 8)
        assert e1 is e2  # same (engine, semiring): one instance

    def test_bad_strategy_return_rejected(self, kron_small):
        pool = EnginePool(SlimSell(kron_small, 8, kron_small.n),
                          strategy=lambda w: "traditional")
        with pytest.raises(ValueError, match="strategy returned"):
            pool.engine_for("sel-max", 4)


# ----------------------------------------------------------------------
class TestServer:
    @pytest.fixture(scope="class")
    def served(self, kron_small):
        rep = SlimSell(kron_small, 8, kron_small.n)
        return kron_small, rep

    def test_served_bit_identical_to_direct(self, served):
        g, rep = served
        roots = [0, 5, 9, 3]
        server = Server(rep, max_batch=4, cache_size=0)
        tickets = [server.submit(r, now=0.0) for r in roots]
        server.drain(now=0.0)
        direct = MultiSourceBFS(rep, "sel-max", slimwork=True).run(roots)
        for t, d in zip(tickets, direct):
            res = t.result()
            assert res.status == "served" and res.bfs.root == d.root
            np.testing.assert_array_equal(res.bfs.dist, d.dist)
            np.testing.assert_array_equal(res.bfs.parent, d.parent)

    def test_width_trigger_dispatches_without_drain(self, served):
        _, rep = served
        server = Server(rep, max_batch=2, max_wait=60.0, cache_size=0)
        t1 = server.submit(0, now=0.0)
        assert not t1.done
        t2 = server.submit(1, now=0.0)
        assert t1.done and t2.done
        assert t1.result().batch_width == 2
        assert server.stats.reasons == {"width": 1}

    def test_cache_hit_path(self, served):
        _, rep = served
        server = Server(rep, max_batch=4, cache_size=8)
        server.submit(0, now=0.0)
        server.drain(now=0.0)
        t = server.submit(0, now=1.0)
        assert t.done and t.result().cache_hit
        assert t.result().latency_s == 0.0
        assert server.stats.cache_hits == 1
        # The reduced kinds ride on the same cached traversal.
        r = server.submit(0, kind="reachability", target=1, now=1.0)
        assert r.done and isinstance(r.result().value, bool)

    def test_backpressure_rejects_explicitly(self, served):
        _, rep = served
        server = Server(rep, max_batch=64, max_wait=60.0, cache_size=0,
                        max_pending=2)
        tickets = [server.submit(r, now=0.0) for r in range(4)]
        assert [t.rejected for t in tickets] == [False, False, True, True]
        assert isinstance(tickets[2].result(), Rejected)
        assert tickets[2].result().status == "rejected"
        assert server.stats.rejected == 2
        # Draining frees capacity: the next submit is accepted again.
        server.drain(now=0.0)
        assert not server.submit(9, now=0.0).rejected

    def test_max_wait_zero_degenerates_to_immediate(self, served):
        _, rep = served
        server = Server(rep, max_batch=64, max_wait=0.0, cache_size=0)
        t = server.submit(3, now=0.0)
        assert t.done and t.result().batch_width == 1

    def test_max_batch_one_degeneration(self, served):
        g, rep = served
        server = Server(rep, max_batch=1, max_wait=60.0, cache_size=0)
        t = server.submit(3, now=0.0)
        assert t.done and t.result().batch_width == 1
        direct = MultiSourceBFS(rep, "sel-max", slimwork=True).run([3])[0]
        np.testing.assert_array_equal(t.result().bfs.dist, direct.dist)
        np.testing.assert_array_equal(t.result().bfs.parent, direct.parent)

    def test_duplicate_submits_share_column(self, served):
        _, rep = served
        server = Server(rep, max_batch=8, cache_size=0)
        tickets = [server.submit(5, now=0.0) for _ in range(3)]
        server.drain(now=0.0)
        assert server.stats.batches == 1
        assert server.stats.widths == [1]  # one column served 3 queries
        assert server.stats.served == 3
        assert all(t.result().bfs is tickets[0].result().bfs
                   for t in tickets)

    def test_engine_selection_by_width(self, served):
        _, rep = served
        server = Server(rep, max_batch=64, cache_size=0, hybrid_max_width=2)
        for r in range(4):
            server.submit(r, now=0.0)
        server.drain(now=0.0)
        assert server.stats.widths == [4]
        # Width 4 > hybrid_max_width 2: the all-pull engine ran.  Re-ask
        # after the batch's virtual completion (an earlier `now` would
        # coalesce onto the in-flight msbfs traversal instead): with the
        # cache off the root is recomputed at width 1 <= 2.
        later = server.busy_until + 1.0
        t = server.submit(0, now=later)
        server.drain(now=later)
        assert t.result().engine == "mshybrid"  # width 1 <= 2

    def test_validate_kind_runs_graph500_checks(self, served):
        _, rep = served
        server = Server(rep, max_batch=1)
        t = server.submit(0, kind="validate", now=0.0)
        assert t.result().value is True

    def test_client_errors_raise(self, served):
        _, rep = served
        server = Server(rep)
        with pytest.raises(ValueError, match="out of range"):
            server.submit(rep.n)
        with pytest.raises(ValueError, match="out of range"):
            server.submit(0, kind="reachability", target=-1)
        with pytest.raises(KeyError):
            server.submit(0, semiring="nope")
        with pytest.raises(ValueError, match="max_pending"):
            Server(rep, max_pending=0)

    def test_fifo_service_queueing(self, served):
        _, rep = served
        server = Server(rep, max_batch=1, cache_size=0)
        t1 = server.submit(0, now=0.0)
        t2 = server.submit(1, now=0.0)
        # Both dispatched at t=0, but service is FIFO: the second batch
        # starts after the first completes, so its latency is larger.
        assert t2.result().latency_s > t1.result().latency_s

    def test_stats_summary_keys(self, served):
        _, rep = served
        server = Server(rep, max_batch=2, cache_size=4)
        for r in range(3):
            server.submit(r, now=0.0)
        server.drain(now=0.0)
        s = server.stats.summary()
        assert s["submitted"] == 3 and s["served"] == 3
        assert s["batches"] == 2 and s["mean_batch_width"] == 1.5
        assert s["latency_p99_s"] >= s["latency_p50_s"] >= 0.0

    def test_builds_rep_from_raw_graph(self, kron_small):
        server = Server(kron_small, C=8)
        assert server.rep.graph_original is kron_small


# ----------------------------------------------------------------------
class TestServeOracle:
    """Bit-identity of the whole serving path, through the shared oracle."""

    def test_registered_in_oracle(self, kron_small):
        results = assert_bfs_equivalent(
            kron_small, [0, 3, 3, 7],
            engines=["traditional", "msbfs", "serve"])
        assert len(results["serve"]) == 4

    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    def test_all_semirings_on_disconnected(self, semiring):
        assert_bfs_equivalent(two_components(), [0, 4, 8],
                              semiring=semiring,
                              engines=["traditional", "mshybrid", "serve"])

    @settings(**SETTINGS)
    @given(
        roots=st.lists(st.integers(0, 511), min_size=1, max_size=12),
        max_batch=st.integers(1, 6),
        cache_size=st.sampled_from([0, 4, 64]),
        max_wait=st.sampled_from([0.0, 60.0]),
        semiring=st.sampled_from(SEMIRING_NAMES),
        gaps=st.lists(st.floats(0.0, 1.0), min_size=12, max_size=12),
    )
    def test_any_interleaving_bit_identical(self, kron_small, roots,
                                            max_batch, cache_size, max_wait,
                                            semiring, gaps):
        """Any submit interleaving serves exactly the direct answers."""
        rep = SlimSell(kron_small, 8, kron_small.n)
        server = Server(rep, max_batch=max_batch, max_wait=max_wait,
                        cache_size=cache_size)
        now, tickets = 0.0, []
        for root, gap in zip(roots, gaps):
            now += gap
            server.poll(now=now)
            tickets.append(server.submit(root, semiring=semiring, now=now))
        server.drain(now=now)
        direct = MultiSourceBFS(rep, semiring, slimwork=True).run(roots)
        for t, d in zip(tickets, direct):
            res = t.result()
            assert res.status == "served"
            np.testing.assert_array_equal(res.bfs.dist, d.dist)
            np.testing.assert_array_equal(res.bfs.parent, d.parent)
        assert server.stats.served == len(roots)


# ----------------------------------------------------------------------
class TestWorkload:
    def test_zipf_weights(self):
        w = zipf_weights(8, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)  # strictly decreasing popularity
        assert np.allclose(zipf_weights(5, 0.0), 0.2)  # s=0: uniform
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(4, -1.0)

    def test_sample_zipf_roots_from_candidates(self):
        cand = np.array([3, 9, 27, 81])
        roots = sample_zipf_roots(cand, 100, 1.1, seed=5)
        assert roots.shape == (100,)
        assert np.isin(roots, cand).all()
        np.testing.assert_array_equal(
            roots, sample_zipf_roots(cand, 100, 1.1, seed=5))  # seeded

    def test_poisson_arrivals(self):
        arr = poisson_arrivals(64, 100.0, seed=5)
        assert arr.shape == (64,) and np.all(np.diff(arr) >= 0)
        assert np.allclose(poisson_arrivals(8, float("inf")), 0.0)
        with pytest.raises(ValueError):
            poisson_arrivals(0, 10.0)
        with pytest.raises(ValueError):
            poisson_arrivals(4, 0.0)

    def test_open_loop_serves_everything(self, kron_small):
        server = Server(kron_small, C=8, max_batch=8, max_wait=1e-3,
                        cache_size=0)
        roots = sample_zipf_roots(np.arange(kron_small.n), 40, 1.1, seed=2)
        report = run_open_loop(server, roots,
                               poisson_arrivals(40, 5000.0, seed=2))
        assert report["served"] == report["nqueries"] == 40
        assert report["rejected"] == 0
        assert report["batches"] == sum(
            server.stats.reasons.get(k, 0)
            for k in ("width", "deadline", "drain"))
        assert report["latency_p99_s"] >= report["latency_p50_s"]
        assert report["virtual_makespan_s"] > 0

    def test_open_loop_burst_fills_batches(self, kron_small):
        server = Server(kron_small, C=8, max_batch=8, cache_size=0)
        roots = np.arange(32) % kron_small.n
        report = run_open_loop(server, roots, np.zeros(32))
        assert report["mean_batch_width"] == 8.0  # all width-triggered

    def test_closed_loop(self, kron_small):
        server = Server(kron_small, C=8, max_batch=8, cache_size=0)
        roots = np.arange(24) % kron_small.n
        report = run_closed_loop(server, roots, clients=8)
        assert report["served"] == 24
        assert report["mean_batch_width"] == 8.0
        assert report["virtual_makespan_s"] == pytest.approx(
            report["kernel_s"])

    def test_open_loop_validation(self, kron_small):
        server = Server(kron_small, C=8)
        with pytest.raises(ValueError, match="equal-length"):
            run_open_loop(server, np.arange(3), np.zeros(2))
        with pytest.raises(ValueError, match="non-decreasing"):
            run_open_loop(server, np.arange(2), np.array([1.0, 0.5]))
        with pytest.raises(ValueError, match="clients"):
            run_closed_loop(server, np.arange(2), clients=0)


# ----------------------------------------------------------------------
class TestAsyncServer:
    def test_concurrent_awaits_share_batches(self, kron_small):
        async def scenario():
            server = AsyncServer(Server(kron_small, C=8, max_batch=4,
                                        max_wait=60.0, cache_size=0))
            return await asyncio.gather(
                *(server.async_submit(r) for r in range(8)))

        results = asyncio.run(scenario())
        assert all(r.status == "served" for r in results)
        assert {r.batch_width for r in results} == {4}

    def test_deadline_timer_fires_for_partial_batch(self, kron_small):
        async def scenario():
            server = AsyncServer(Server(kron_small, C=8, max_batch=64,
                                        max_wait=0.02, cache_size=0))
            # One lone query: only the max_wait timer can resolve it.
            return await asyncio.wait_for(server.async_submit(1), timeout=10)

        result = asyncio.run(scenario())
        assert result.status == "served" and result.batch_width == 1

    def test_drain_settles_everything(self, kron_small):
        async def scenario():
            server = AsyncServer(Server(kron_small, C=8, max_batch=64,
                                        max_wait=60.0, cache_size=0))
            tasks = [asyncio.ensure_future(server.async_submit(r))
                     for r in range(3)]
            await asyncio.sleep(0)  # let submits enqueue
            assert server.pending == 3
            await server.drain()
            assert server.pending == 0
            return await asyncio.gather(*tasks)

        results = asyncio.run(scenario())
        assert [r.query.root for r in results] == [0, 1, 2]

    def test_cache_hit_resolves_inline(self, kron_small):
        async def scenario():
            server = AsyncServer(Server(kron_small, C=8, max_batch=1,
                                        cache_size=8))
            first = await server.async_submit(2)
            second = await server.async_submit(2)
            return first, second

        first, second = asyncio.run(scenario())
        assert not first.cache_hit and second.cache_hit

    def test_timer_rearms_when_deadline_moves(self, kron_small):
        # Stale-timer regression: a width-triggered release used to leave
        # the timer armed for the emptied group's (earlier) deadline and
        # never re-arm it for the surviving group.  max_wait is large so
        # the timer cannot fire during the test; only arming is observed.
        async def scenario():
            server = AsyncServer(Server(kron_small, C=8, max_batch=2,
                                        max_wait=5.0, cache_size=0))
            task_a = asyncio.ensure_future(server.async_submit(0))
            await asyncio.sleep(0)
            armed_first = server._armed_deadline
            assert armed_first is not None
            # A second group (tropical) becomes pending later: its
            # deadline is strictly after the sel-max group's.
            task_b = asyncio.ensure_future(
                server.async_submit(1, semiring="tropical"))
            await asyncio.sleep(0)
            assert server._armed_deadline == armed_first  # still oldest
            # Width release empties the sel-max group inline ...
            task_a2 = asyncio.ensure_future(server.async_submit(2))
            await asyncio.sleep(0)
            # ... so the timer must now track the tropical group's
            # deadline, not the stale (already-released) one.
            assert server._armed_deadline == \
                server.server.batcher.next_deadline()
            assert server._armed_deadline != armed_first
            await server.drain()
            results = await asyncio.gather(task_a, task_b, task_a2)
            return results, server._timer, server._armed_deadline

        results, timer, armed = asyncio.run(scenario())
        assert all(r.status == "served" for r in results)
        assert timer is None and armed is None  # fully disarmed when idle


# ----------------------------------------------------------------------
class TestBugfixRegressions:
    """Pin the serve-layer fixes that rode along with the MSHR change."""

    @pytest.fixture(scope="class")
    def rep(self, kron_small):
        return SlimSell(kron_small, 8, kron_small.n)

    def test_no_premature_cache_visibility(self, rep):
        # The headline bug: a duplicate arriving while its root's batch
        # is still (virtually) in flight used to read the cache entry
        # published at *dispatch* and report an impossible 0.0 latency.
        server = Server(rep, max_batch=1, cache_size=64)
        server.submit(0, now=0.0)
        completion = server.busy_until
        mid = completion / 2  # strictly before the batch completes
        res = server.submit(0, now=mid).result()
        assert not res.cache_hit and res.mshr_hit
        assert res.latency_s == completion - mid > 0.0
        assert server.stats.batches == 1  # and no extra kernel column
        assert all(lat > 0.0 for lat in server.stats.latencies)

    def test_duplicate_coalesces_before_backpressure(self, rep):
        # Coalescing must run before the max_pending check: a duplicate
        # of an outstanding root costs no queue slot and no kernel work,
        # so rejecting it would shed load that is free to serve.
        server = Server(rep, max_batch=64, max_wait=60.0, cache_size=0,
                        max_pending=1)
        first = server.submit(0, now=0.0)
        dup = server.submit(0, now=0.0)  # queue "full", but coalescible
        assert not dup.rejected and server.stats.mshr_hits == 1
        distinct = server.submit(1, now=0.0)  # genuinely new work
        assert distinct.rejected
        server.drain(now=0.0)
        assert first.result().bfs is dup.result().bfs
        # Same holds while the batch is in flight (dispatched, not
        # committed): the MSHR still owns the root, so no rejection.
        inflight_dup = server.submit(0, now=0.0)
        assert not inflight_dup.rejected and inflight_dup.result().mshr_hit

    def test_rejected_lookup_not_a_cache_miss(self, rep):
        # A rejected submit never produces a cache entry, so counting
        # its lookup as a miss deflated the hit rate.
        server = Server(rep, max_batch=64, max_wait=60.0, cache_size=8,
                        max_pending=1)
        server.submit(0, now=0.0)
        misses = server.cache.stats.misses
        assert server.submit(1, now=0.0).rejected
        assert server.cache.stats.misses == misses
        assert server.cache.stats.rejected_lookups == 1
        assert server.cache.stats.lookups == misses  # hit_rate unaffected

    def test_cache_hits_not_in_kernel_latencies(self, rep):
        # Cache hits used to append 0.0 to the kernel-path latency list,
        # dragging p50/p99 toward zero under skewed (hot-root) traffic.
        server = Server(rep, max_batch=1, cache_size=8)
        server.submit(0, now=0.0)
        nlat = len(server.stats.latencies)
        hit = server.submit(0, now=server.busy_until + 1.0)
        assert hit.result().cache_hit
        assert len(server.stats.latencies) == nlat  # no phantom 0.0
        assert server.stats.cache_latencies == [0.0]
        assert min(server.stats.latencies) > 0.0
        s = server.stats.summary()
        assert s["cache_latency_p99_s"] == 0.0 and s["latency_p50_s"] > 0.0

    def test_validate_verdict_memoized(self, rep, monkeypatch):
        # A cache hit on a "validate" query used to re-run the full
        # O(N + M) Graph500 tree check; the verdict is now memoized per
        # (epoch, semiring, root).
        import repro.graph500 as g5

        calls = {"n": 0}
        real = g5.validate_bfs_tree

        def counting(graph, res):
            calls["n"] += 1
            return real(graph, res)

        monkeypatch.setattr(g5, "validate_bfs_tree", counting)
        server = Server(rep, max_batch=1, cache_size=8)
        server.submit(0, kind="validate", now=0.0)
        assert calls["n"] == 1
        hit = server.submit(0, kind="validate", now=server.busy_until + 1.0)
        assert hit.result().cache_hit and hit.result().value is True
        assert calls["n"] == 1  # verdict reused, tree check skipped

    # ---- workload accounting and stale-index fixes (this PR) ----

    def test_closed_loop_on_reused_server_reports_delta(self, rep,
                                                        kron_small):
        # run_closed_loop used to start its virtual clock at 0.0 even
        # when the server's busy_until was already ahead from an earlier
        # run: the second run's makespan absorbed the first run's entire
        # history, and its latencies included time spent waiting behind
        # batches submitted before the run began.
        server = Server(rep, max_batch=8, cache_size=0)
        roots = np.arange(24) % kron_small.n
        first = run_closed_loop(server, roots, clients=8)
        assert server.busy_until > 0.0
        second = run_closed_loop(server, roots, clients=8)
        assert second["served"] == first["served"] == 24
        # Per-run delta, not "time since the server was born" — on a
        # serial closed loop the makespan is exactly this run's kernel
        # seconds (pre-fix it was first kernel_s + second kernel_s).
        assert second["virtual_makespan_s"] == pytest.approx(
            second["kernel_s"])
        assert second["virtual_throughput_qps"] > 0.0

    def test_all_timeout_batch_charges_wasted_kernel(self, rep):
        # A batch whose every waiter timed out contributes nothing to
        # ``served``, but its kernel seconds used to stay in the
        # throughput denominator, silently deflating
        # ``kernel_throughput_qps`` exactly when faults made the number
        # interesting.
        server = Server(rep, max_batch=1, cache_size=0,
                        service_model=lambda width: 1.0)
        dead = server.submit(0, now=0.0, deadline=0.5)
        server.drain(now=0.0)
        assert isinstance(dead.result(), TimedOut)
        ok = server.submit(1, now=server.busy_until)
        server.drain(now=server.busy_until)
        assert ok.result().bfs is not None
        st = server.stats
        assert st.timeouts == 1
        assert st.kernel_s == pytest.approx(2.0)
        assert st.kernel_s_wasted == pytest.approx(1.0)
        # One served query over one *useful* kernel second (pre-fix:
        # 1 / 2.0 = 0.5 qps, half the truth).
        assert st.kernel_throughput == pytest.approx(1.0)
        assert st.summary()["kernel_s_wasted"] == pytest.approx(1.0)

    def test_faulted_run_goodput_over_useful_seconds(self, rep, kron_small):
        # The report-level counterpart at a nonzero fault rate:
        # straggler batches blow past the query deadline, their waiters
        # all time out, and the wasted kernel seconds are split out of
        # the goodput denominator.
        server = Server(rep, max_batch=1, cache_size=0,
                        service_model=lambda width: 0.1,
                        faults=FaultPlan(straggler_rate=0.5,
                                         straggler_factor=10.0, seed=3))
        roots = np.arange(30) % kron_small.n
        arrivals = np.arange(30, dtype=np.float64)  # 1 s apart
        report = run_open_loop(server, roots, arrivals, deadline=0.5)
        assert report["timeouts"] > 0 and report["served"] > 0
        assert 0.0 < report["kernel_s_wasted"] < report["kernel_s"]
        kernel_served = report["served"] - report["cache_hits"]
        useful = report["kernel_s"] - report["kernel_s_wasted"]
        assert report["kernel_throughput_qps"] == pytest.approx(
            kernel_served / useful)
        # Strictly above the pre-fix value, which kept the wasted
        # seconds in the denominator.
        assert report["kernel_throughput_qps"] > \
            kernel_served / report["kernel_s"]

    def test_stale_survives_eviction_of_newer_epoch(self):
        # LRU-evicting the newest entry for a root used to leave the
        # stale-serve index pointing at a dead key, hiding the older
        # epoch that was still cached.
        c = ResultCache(capacity=2)
        c.put((0, "s", 7), "old")
        c.put((1, "s", 7), "new")
        assert c.peek((0, "s", 7)) == "old"  # refresh: epoch-1 is now LRU
        c.put((0, "s", 9), "other")          # evicts (1, "s", 7)
        assert c.peek((1, "s", 7)) is None
        assert c.peek_stale("s", 7, epoch=2) == ((0, "s", 7), "old")

    def test_invalidate_put_interleaving_keeps_older_stale(self):
        # A fresh-epoch put after invalidate() used to move the
        # newest-key pointer to the current epoch; peek_stale's "prior
        # epoch only" check then reported no stale entry even though the
        # older epoch was still cached.
        c = ResultCache(capacity=8)
        c.put((0, "s", 3), "stale")
        c.put((1, "s", 3), "fresh")  # server invalidated; epoch is now 1
        assert c.peek_stale("s", 3, epoch=1) == ((0, "s", 3), "stale")
        assert c.peek_stale("s", 3, epoch=0) is None  # nothing before 0

    @settings(**SETTINGS)
    @given(capacity=st.integers(1, 4),
           ops=st.lists(st.one_of(
               st.tuples(st.just("put"), st.integers(0, 3),
                         st.integers(0, 4)),
               st.tuples(st.just("clear"), st.booleans(), st.just(0)),
           ), max_size=40))
    def test_stale_index_invariant(self, capacity, ops):
        # The invariant the fixes above rest on: the stale-serve index
        # holds exactly the live epochs of every entry (no dead keys, no
        # hidden live ones, no empty sets), and peek_stale answers with
        # the newest live prior epoch — under any put/evict/clear
        # interleaving.
        c = ResultCache(capacity=capacity)
        for op, a, b in ops:
            if op == "put":
                c.put((a, "s", b), f"v{a}:{b}")
            else:
                c.clear(keep_stale=a)
        indexed = {(e, s, r) for (s, r), live in c._epochs.items()
                   for e in live}
        assert indexed == set(c._entries)
        assert all(live for live in c._epochs.values())
        for root in range(5):
            for epoch in range(5):
                prior = [e for (e, s, r) in c._entries
                         if r == root and e < epoch]
                hit = c.peek_stale("s", root, epoch)
                if prior:
                    assert hit == ((max(prior), "s", root),
                                   c._entries[(max(prior), "s", root)])
                else:
                    assert hit is None
