"""Tests of SlimChunk work-unit decomposition (§III-D)."""

import numpy as np

from repro.bfs.slimchunk import WorkUnit, make_work_units, unit_costs
from repro.bfs.spmv import BFSSpMV
from repro.bfs.validate import check_distances_equal, reference_distances
from repro.formats.slimsell import SlimSell
from repro.sched.scheduling import imbalance, schedule_static
from repro.graphs.kronecker import kronecker


class TestDecomposition:
    def test_no_split_one_unit_per_chunk(self):
        cl = np.array([5, 3, 0, 7])
        units = make_work_units(cl, None)
        assert [(u.chunk, u.j0, u.j1) for u in units] == [(0, 0, 5), (1, 0, 3), (3, 0, 7)]

    def test_split_covers_all_layers_exactly_once(self):
        cl = np.array([10, 4, 7])
        units = make_work_units(cl, 3)
        per_chunk = {}
        for u in units:
            per_chunk.setdefault(u.chunk, []).append((u.j0, u.j1))
        for i, length in enumerate(cl):
            spans = sorted(per_chunk[int(i)])
            assert spans[0][0] == 0 and spans[-1][1] == length
            for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
                assert a1 == b0  # contiguous, no overlap

    def test_split_respects_maximum(self):
        units = make_work_units(np.array([100]), 8)
        assert all(u.layers <= 8 for u in units)
        assert len(units) == 13

    def test_active_mask_filters(self):
        cl = np.array([2, 2, 2, 2])
        active = np.array([True, False, True, False])
        units = make_work_units(cl, None, active)
        assert {u.chunk for u in units} == {0, 2}

    def test_empty_chunks_produce_no_units(self):
        assert make_work_units(np.zeros(4, dtype=np.int64), 2) == []

    def test_unit_layers_property(self):
        assert WorkUnit(0, 3, 9).layers == 6

    def test_costs_include_overhead(self):
        units = [WorkUnit(0, 0, 4), WorkUnit(1, 0, 2)]
        costs = unit_costs(units, C=8, per_unit_overhead=1.0)
        assert costs.tolist() == [5.0, 3.0]


class TestLoadBalanceEffect:
    def test_splitting_improves_makespan_on_skewed_chunks(self):
        # A power-law graph at full sigma: first chunks are far heavier.
        g = kronecker(11, 16, seed=1)
        rep = SlimSell(g, 32, g.n)
        threads = 13  # a GPU's worth of units
        whole = unit_costs(make_work_units(rep.cl, None), 32)
        split = unit_costs(make_work_units(rep.cl, 4), 32)
        mk_whole = schedule_static(whole, threads).makespan
        mk_split = schedule_static(split, threads).makespan
        assert mk_split < mk_whole
        assert imbalance(schedule_static(split, threads)) < imbalance(
            schedule_static(whole, threads))

    def test_results_independent_of_slimchunk(self, kron_small):
        ref = reference_distances(kron_small, 0)
        rep = SlimSell(kron_small, 8, kron_small.n)
        for split in (None, 1, 3, 16):
            res = BFSSpMV(rep, "tropical", slimchunk=split).run(0)
            check_distances_equal(res, ref)

    def test_work_units_exposed_by_engine(self, kron_small):
        rep = SlimSell(kron_small, 8, kron_small.n)
        eng = BFSSpMV(rep, "tropical", slimchunk=2)
        units = eng.work_units()
        assert sum(u.layers for u in units) == int(rep.cl.sum())
        assert all(u.layers <= 2 for u in units)
