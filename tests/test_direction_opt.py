"""Tests of the direction-optimizing BFS baseline.

Correctness runs through the shared cross-engine oracle (:mod:`engines`);
the switching-heuristic behavior stays engine-specific.
"""

import numpy as np
import pytest

from repro.bfs.direction_opt import bfs_direction_optimizing
from repro.graphs.kronecker import kronecker

from conftest import complete_graph, cycle_graph, path_graph, star_graph, two_components
from engines import assert_bfs_equivalent


class TestCorrectness:
    @pytest.mark.parametrize("builder,n", [
        (path_graph, 15), (cycle_graph, 11), (star_graph, 20), (complete_graph, 8),
    ])
    def test_oracle_equivalence(self, builder, n):
        assert_bfs_equivalent(builder(n), [0], C=4,
                              engines=["traditional", "direction-opt"])

    @pytest.mark.parametrize("root", [0, 7, 100])
    def test_kronecker_roots(self, kron_small, root):
        assert_bfs_equivalent(kron_small, [root],
                              engines=["traditional", "direction-opt"])

    def test_disconnected(self):
        g = two_components()
        results = assert_bfs_equivalent(
            g, [4], C=4, engines=["traditional", "direction-opt"])
        res = results["direction-opt"][0]
        assert res.reached == 4  # the path component
        assert np.isinf(res.dist[:4]).all()

    def test_root_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            bfs_direction_optimizing(path_graph(3), -1)


class TestSwitching:
    def test_dense_graph_goes_bottom_up(self):
        # A dense Kronecker graph has a huge middle frontier: with default
        # alpha the traversal must take at least one bottom-up step.
        g = kronecker(9, 32, seed=0)
        res = bfs_direction_optimizing(g, 0, alpha=14.0, beta=24.0)
        directions = {it.direction for it in res.iterations}
        assert "bottom-up" in directions
        assert res.iterations[0].direction == "top-down"

    def test_tiny_alpha_disables_bottom_up(self):
        # Switch threshold is m_u / alpha: alpha -> 0 makes it unreachable.
        g = kronecker(9, 16, seed=1)
        res = bfs_direction_optimizing(g, 0, alpha=1e-12)
        assert all(it.direction == "top-down" for it in res.iterations)

    def test_bottom_up_examines_fewer_edges_mid_traversal(self):
        # On dense graphs the bottom-up sweep touches the unvisited side,
        # which is smaller than the frontier's full adjacency mid-run.
        g = kronecker(10, 64, seed=2)
        td = bfs_direction_optimizing(g, 0, alpha=1e-12)  # pure top-down
        do = bfs_direction_optimizing(g, 0, alpha=14.0)
        td_total = sum(it.edges_examined for it in td.iterations)
        do_total = sum(
            it.edges_examined // (2 if it.direction == "bottom-up" else 1)
            for it in do.iterations)
        assert do_total < td_total

    def test_path_graph_stays_top_down(self):
        res = bfs_direction_optimizing(path_graph(30), 0)
        assert all(it.direction == "top-down" for it in res.iterations)
