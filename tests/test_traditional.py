"""Tests of the traditional BFS baselines."""

import numpy as np
import pytest

from repro.bfs.traditional import bfs_serial, bfs_top_down
from repro.bfs.validate import check_parents_valid, reference_distances
from repro.graphs.graph import Graph

from conftest import complete_graph, cycle_graph, path_graph, star_graph, two_components


class TestSerial:
    def test_path_distances(self):
        res = bfs_serial(path_graph(6), 0)
        assert res.dist.tolist() == [0, 1, 2, 3, 4, 5]

    def test_from_middle(self):
        res = bfs_serial(path_graph(5), 2)
        assert res.dist.tolist() == [2, 1, 0, 1, 2]

    def test_disconnected(self):
        res = bfs_serial(two_components(), 0)
        assert np.isfinite(res.dist[:4]).all()
        assert np.isinf(res.dist[4:]).all()
        assert res.reached == 4

    def test_root_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            bfs_serial(path_graph(3), 3)


class TestTopDown:
    @pytest.mark.parametrize("builder,n", [
        (path_graph, 12), (cycle_graph, 9), (star_graph, 17), (complete_graph, 6),
    ])
    def test_matches_reference(self, builder, n):
        g = builder(n)
        ref = reference_distances(g, 0)
        res = bfs_top_down(g, 0)
        np.testing.assert_array_equal(res.dist, ref)
        check_parents_valid(g, res)

    def test_matches_serial_on_kronecker(self, kron_small):
        a = bfs_serial(kron_small, 5)
        b = bfs_top_down(kron_small, 5)
        np.testing.assert_array_equal(a.dist, b.dist)

    def test_iteration_count_is_eccentricity_plus_final_check(self):
        # The last frontier must be expanded to discover it is exhausted.
        res = bfs_top_down(path_graph(8), 0)
        assert res.eccentricity == 7
        assert res.n_iterations == 8
        assert res.iterations[-1].newly == 0

    def test_edges_examined_sums_to_reachable_adjacency(self, kron_small):
        # Top-down BFS examines each reached vertex's adjacency exactly once.
        g = kron_small
        res = bfs_top_down(g, 1)
        reached = np.flatnonzero(np.isfinite(res.dist))
        expect = int(g.degrees[reached].sum())
        assert sum(it.edges_examined for it in res.iterations) == expect

    def test_frontier_sizes_sum_to_reached(self, kron_small):
        res = bfs_top_down(kron_small, 2)
        assert 1 + sum(it.newly for it in res.iterations) == res.reached

    def test_max_iters_truncates(self):
        res = bfs_top_down(path_graph(10), 0, max_iters=3)
        assert res.n_iterations == 3
        assert res.reached == 4

    def test_isolated_root(self):
        g = Graph.empty(4)
        res = bfs_top_down(g, 2)
        assert res.reached == 1
        # One iteration that expands the root's (empty) adjacency and stops.
        assert res.n_iterations == 1
        assert res.iterations[0].edges_examined == 0

    def test_per_iteration_direction_label(self):
        res = bfs_top_down(star_graph(5), 0)
        assert all(it.direction == "top-down" for it in res.iterations)
