"""Unit tests for the core Graph structure."""

import numpy as np
import pytest

from repro.graphs.graph import Graph

from conftest import complete_graph, cycle_graph, path_graph, star_graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.n == 4
        assert g.m == 3
        assert np.array_equal(g.degrees, [1, 2, 2, 1])

    def test_self_loops_dropped(self):
        g = Graph.from_edges(3, [(0, 0), (0, 1), (2, 2)])
        assert g.m == 1
        assert not g.has_edge(0, 0)

    def test_duplicates_merged(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1), (1, 2)])
        assert g.m == 2

    def test_neighbor_lists_sorted(self):
        g = Graph.from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)])
        assert np.array_equal(g.neighbors(2), [0, 1, 3, 4])

    def test_empty_graph(self):
        g = Graph.empty(5)
        assert g.n == 5
        assert g.m == 0
        assert g.avg_degree == 0.0
        assert g.max_degree == 0

    def test_empty_edge_list(self):
        g = Graph.from_edges(3, np.empty((0, 2), dtype=np.int64))
        assert g.m == 0

    def test_out_of_range_endpoint_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_edges(3, [(0, 3)])

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError, match=r"shape \(E, 2\)"):
            Graph.from_edges(3, np.zeros((2, 3), dtype=np.int64))

    def test_malformed_csr_rejected(self):
        with pytest.raises(ValueError, match="malformed CSR"):
            Graph(np.array([1, 2]), np.array([0]))
        with pytest.raises(ValueError, match="non-decreasing"):
            Graph(np.array([0, 2, 1]), np.array([0]))


class TestProperties:
    def test_degrees_and_averages(self):
        g = star_graph(10)
        assert g.max_degree == 9
        assert g.avg_degree == pytest.approx(2 * 9 / 10)

    def test_has_edge(self):
        g = cycle_graph(6)
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 5)
        assert not g.has_edge(0, 3)

    def test_edges_roundtrip(self):
        g = complete_graph(6)
        e = g.edges()
        assert e.shape == (15, 2)
        assert (e[:, 0] < e[:, 1]).all()
        g2 = Graph.from_edges(6, e)
        assert g2 == g

    def test_to_scipy_symmetric(self):
        g = path_graph(5)
        a = g.to_scipy()
        assert (a != a.T).nnz == 0
        assert a.nnz == 2 * g.m

    def test_equality(self):
        assert path_graph(4) == path_graph(4)
        assert path_graph(4) != cycle_graph(4)
        assert path_graph(4).__eq__(42) is NotImplemented


class TestPermute:
    def test_identity_permutation(self):
        g = cycle_graph(8)
        assert g.permute(np.arange(8)) == g

    def test_reversal_preserves_structure(self):
        g = path_graph(5)
        perm = np.array([4, 3, 2, 1, 0])
        h = g.permute(perm)
        # old edge (0,1) -> new edge (4,3)
        assert h.has_edge(4, 3)
        assert h.has_edge(0, 1)  # old (4,3)
        assert h.m == g.m

    def test_random_permutation_isomorphic(self):
        rng = np.random.default_rng(0)
        g = complete_graph(5)
        perm = rng.permutation(5)
        h = g.permute(perm)
        assert h.m == g.m
        for u, v in g.edges():
            assert h.has_edge(perm[u], perm[v])

    def test_permute_keeps_neighbor_lists_sorted(self):
        rng = np.random.default_rng(3)
        g = Graph.from_edges(8, rng.integers(0, 8, size=(20, 2)))
        h = g.permute(rng.permutation(8))
        for v in range(8):
            nb = h.neighbors(v)
            assert np.array_equal(nb, np.sort(nb))

    def test_degree_multiset_preserved(self):
        rng = np.random.default_rng(5)
        g = Graph.from_edges(16, rng.integers(0, 16, size=(40, 2)))
        h = g.permute(rng.permutation(16))
        assert sorted(g.degrees) == sorted(h.degrees)

    def test_non_permutation_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="not a permutation"):
            g.permute(np.array([0, 0, 1, 2]))

    def test_wrong_length_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="shape"):
            g.permute(np.arange(3))
