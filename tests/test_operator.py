"""Tests of the generic SlimSpMV operator."""

import numpy as np
import pytest

from repro.bfs.operator import SlimSpMV
from repro.formats.csr import CSRMatrix
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.semirings.base import get_semiring

from conftest import SEMIRING_NAMES, path_graph, star_graph


class TestAgainstCSRReference:
    @pytest.mark.parametrize("semiring", SEMIRING_NAMES)
    @pytest.mark.parametrize("slim", [True, False], ids=["slimsell", "sell"])
    def test_matches_csr_spmv(self, kron_small, semiring, slim):
        g = kron_small
        rep = (SlimSell if slim else SellCSigma)(g, 8, 64)
        sr = get_semiring(semiring)
        op = SlimSpMV(rep, sr)
        rng = np.random.default_rng(0)
        if semiring == "tropical":
            x = rng.choice([0.0, 1.0, 2.0, np.inf], size=g.n)
        elif semiring == "boolean":
            x = rng.integers(0, 2, size=g.n).astype(float)
        else:
            x = rng.random(g.n) * 4
        want = CSRMatrix(g).spmv(sr, x)
        got = op(x)
        np.testing.assert_allclose(got, want)

    def test_real_matches_scipy(self, kron_small):
        g = kron_small
        op = SlimSpMV(SlimSell(g, 16, g.n), "real")
        x = np.random.default_rng(1).random(g.n)
        np.testing.assert_allclose(op(x), g.to_scipy() @ x, rtol=1e-12)


class TestSemantics:
    def test_operates_in_original_id_space(self):
        # Star graph, full sort: the hub gets relabeled, but the caller's
        # view must be unchanged: y[hub] = sum of leaf values.
        g = star_graph(6)
        op = SlimSpMV(SlimSell(g, 4, g.n), "real")
        x = np.array([0.0, 1, 2, 3, 4, 5])
        y = op(x)
        assert y[0] == 15.0          # hub collects all leaves
        assert np.array_equal(y[1:], np.zeros(5))  # leaves see hub's 0

    def test_power_iterate(self):
        g = path_graph(5)
        op = SlimSpMV(SlimSell(g, 4, g.n), "boolean")
        x0 = np.zeros(5)
        x0[0] = 1.0
        # After k steps of OR-AND the indicator covers distance <= k parity
        y = op.power_iterate(x0, 4)
        assert y[4] == 1.0

    def test_shape_validation(self, kron_small):
        op = SlimSpMV(SlimSell(kron_small, 8), "real")
        with pytest.raises(ValueError, match="shape"):
            op(np.zeros(3))

    def test_n_property(self, kron_small):
        op = SlimSpMV(SlimSell(kron_small, 8), "real")
        assert op.n == kron_small.n
