"""Tests of the static/dynamic scheduling simulator (omp-s / omp-d)."""

import numpy as np
import pytest

from repro.sched.scheduling import imbalance, schedule_dynamic, schedule_static


class TestStatic:
    def test_uniform_costs_balance_perfectly(self):
        s = schedule_static(np.ones(16), 4)
        assert np.allclose(s.per_thread, 4.0)
        assert s.makespan == 4.0
        assert imbalance(s) == pytest.approx(1.0)

    def test_contiguous_blocks(self):
        s = schedule_static(np.ones(8), 2)
        assert s.assignment.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_skewed_front_loads_first_thread(self):
        # Fig 5a effect: descending costs + static blocks overload thread 0.
        costs = np.array([100.0, 90, 80, 1, 1, 1, 1, 1])
        s = schedule_static(costs, 4)
        assert s.per_thread[0] == 190.0
        assert imbalance(s) > 2.0

    def test_work_conserved(self):
        rng = np.random.default_rng(0)
        costs = rng.random(37)
        s = schedule_static(costs, 5)
        assert s.total == pytest.approx(costs.sum())

    def test_more_threads_than_units(self):
        s = schedule_static(np.ones(2), 8)
        assert s.makespan == 1.0
        assert (s.per_thread > 0).sum() == 2

    def test_empty_units(self):
        s = schedule_static(np.empty(0), 4)
        assert s.makespan == 0.0

    def test_invalid_threads(self):
        with pytest.raises(ValueError, match="threads"):
            schedule_static(np.ones(4), 0)


class TestDynamic:
    def test_balances_skewed_costs(self):
        costs = np.array([100.0, 90, 80, 1, 1, 1, 1, 1])
        stat = schedule_static(costs, 4)
        dyn = schedule_dynamic(costs, 4, dispatch_overhead=0.0)
        assert dyn.makespan < stat.makespan

    def test_overhead_charged(self):
        costs = np.ones(10)
        free = schedule_dynamic(costs, 2, dispatch_overhead=0.0)
        taxed = schedule_dynamic(costs, 2, dispatch_overhead=0.02)
        # ~1-2% relative overhead, as the paper reports for omp-d.
        assert taxed.total == pytest.approx(free.total * 1.02)
        assert taxed.overhead == pytest.approx(0.2)

    def test_work_conserved_modulo_overhead(self):
        rng = np.random.default_rng(1)
        costs = rng.random(64)
        s = schedule_dynamic(costs, 8, dispatch_overhead=0.0)
        assert s.total == pytest.approx(costs.sum())

    def test_single_thread_serializes(self):
        costs = np.array([3.0, 1.0, 2.0])
        s = schedule_dynamic(costs, 1, dispatch_overhead=0.0)
        assert s.makespan == pytest.approx(6.0)

    def test_invalid_threads(self):
        with pytest.raises(ValueError, match="threads"):
            schedule_dynamic(np.ones(4), -1)


class TestImbalance:
    def test_perfect_is_one(self):
        assert imbalance(schedule_static(np.ones(8), 4)) == pytest.approx(1.0)

    def test_zero_work(self):
        assert imbalance(schedule_static(np.zeros(4), 2)) == 1.0

    def test_bounded_by_thread_count(self):
        # makespan/mean <= T always (one thread does everything).
        rng = np.random.default_rng(2)
        for t in (2, 4, 8):
            s = schedule_static(rng.random(40), t)
            assert 1.0 <= imbalance(s) <= t + 1e-9
