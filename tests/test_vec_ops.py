"""Unit tests for the simulated vector ISA (Listing 1 semantics)."""

import numpy as np
import pytest

from repro.vec.ops import VectorUnit


@pytest.fixture
def vu() -> VectorUnit:
    return VectorUnit(4)


class TestMemoryOps:
    def test_load_reads_c_contiguous_elements(self, vu):
        mem = np.arange(12, dtype=np.float64)
        assert np.array_equal(vu.load(mem, 4), [4, 5, 6, 7])

    def test_store_writes_c_contiguous_elements(self, vu):
        mem = np.zeros(12)
        vu.store(mem, 8, np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.array_equal(mem[8:12], [1, 2, 3, 4])
        assert np.all(mem[:8] == 0)

    def test_gather_indexed_load(self, vu):
        mem = np.array([10.0, 20.0, 30.0, 40.0, 50.0])
        out = vu.gather(mem, np.array([4, 0, 2, 0]))
        assert np.array_equal(out, [50, 10, 30, 10])

    def test_gather_with_minus_one_wraps_to_last(self, vu):
        # SlimSell relies on numpy's -1 semantics being memory-safe.
        mem = np.array([1.0, 2.0, 3.0])
        out = vu.gather(mem, np.array([-1, 0, -1, 1]))
        assert np.array_equal(out, [3, 1, 3, 2])

    def test_load_counts_instruction_and_words(self, vu):
        vu.load(np.zeros(8), 0)
        assert vu.counters.instructions["LOAD"] == 1
        assert vu.counters.words_loaded == 4
        assert vu.counters.gather_words == 0

    def test_gather_counts_gathered_words(self, vu):
        vu.gather(np.zeros(8), np.array([0, 1, 2, 3]))
        assert vu.counters.gather_words == 4
        assert vu.counters.words_loaded == 4

    def test_store_counts_words(self, vu):
        vu.store(np.zeros(8), 0, np.zeros(4))
        assert vu.counters.words_stored == 4


class TestRegisterCreation:
    def test_set1_broadcasts(self, vu):
        assert np.array_equal(vu.set1(7.5), [7.5] * 4)

    def test_set_requires_exactly_c(self, vu):
        with pytest.raises(ValueError, match="exactly C=4"):
            vu.set([1.0, 2.0])

    def test_set_builds_vector(self, vu):
        assert np.array_equal(vu.set([1, 2, 3, 4]), [1, 2, 3, 4])


class TestComputeOps:
    def test_cmp_eq(self, vu):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([1.0, 0.0, 3.0, 0.0])
        assert np.array_equal(vu.cmp(a, b, "EQ"), [True, False, True, False])

    def test_cmp_neq(self, vu):
        a = np.array([0.0, 1.0, 0.0, 2.0])
        assert np.array_equal(vu.cmp(a, np.zeros(4), "NEQ"),
                              [False, True, False, True])

    @pytest.mark.parametrize("op,expect", [
        ("LT", [True, False, False]), ("LE", [True, True, False]),
        ("GT", [False, False, True]), ("GE", [False, True, True]),
    ])
    def test_cmp_orderings(self, op, expect):
        vu = VectorUnit(3)
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([2.0, 2.0, 2.0])
        assert np.array_equal(vu.cmp(a, b, op), expect)

    def test_blend_selects_b_where_mask(self, vu):
        a = np.array([1.0, 1.0, 1.0, 1.0])
        b = np.array([9.0, 9.0, 9.0, 9.0])
        mask = np.array([True, False, True, False])
        assert np.array_equal(vu.blend(a, b, mask), [9, 1, 9, 1])

    def test_blend_accepts_numeric_mask(self, vu):
        out = vu.blend(np.zeros(4), np.ones(4), np.array([1.0, 0.0, 2.0, 0.0]))
        assert np.array_equal(out, [1, 0, 1, 0])

    def test_min_max_add_mul(self, vu):
        a = np.array([1.0, 5.0, 3.0, 0.0])
        b = np.array([2.0, 4.0, 3.0, -1.0])
        assert np.array_equal(vu.min(a, b), [1, 4, 3, -1])
        assert np.array_equal(vu.max(a, b), [2, 5, 3, 0])
        assert np.array_equal(vu.add(a, b), [3, 9, 6, -1])
        assert np.array_equal(vu.mul(a, b), [2, 20, 9, 0])

    def test_min_with_infinity(self, vu):
        a = np.full(4, np.inf)
        b = np.array([1.0, np.inf, 3.0, np.inf])
        assert np.array_equal(vu.min(a, b), [1, np.inf, 3, np.inf])

    def test_logical_ops(self, vu):
        a = np.array([0.0, 1.0, 1.0, 0.0])
        b = np.array([0.0, 0.0, 1.0, 1.0])
        assert np.array_equal(vu.logical_and(a, b), [False, False, True, False])
        assert np.array_equal(vu.logical_or(a, b), [False, True, True, True])
        assert np.array_equal(vu.logical_not(a), [True, False, False, True])


class TestCounting:
    def test_every_op_counts_one_instruction(self):
        vu = VectorUnit(4)
        a = np.zeros(4)
        vu.min(a, a)
        vu.max(a, a)
        vu.add(a, a)
        vu.mul(a, a)
        vu.cmp(a, a, "EQ")
        vu.blend(a, a, a.astype(bool))
        vu.logical_and(a, a)
        vu.logical_or(a, a)
        vu.logical_not(a)
        assert vu.counters.total_instructions == 9
        assert vu.counters.lanes == 9 * 4

    def test_counting_disabled_skips_bookkeeping(self):
        vu = VectorUnit(4, counting=False)
        vu.add(np.zeros(4), np.zeros(4))
        vu.load(np.zeros(8), 0)
        assert vu.counters.total_instructions == 0
        assert vu.counters.total_words == 0

    def test_semantics_identical_with_counting_off(self):
        a = np.array([1.0, -2.0, 3.0, 0.5])
        b = np.array([0.0, 7.0, -1.0, 0.5])
        on, off = VectorUnit(4), VectorUnit(4, counting=False)
        for fn in ("min", "max", "add", "mul"):
            assert np.array_equal(getattr(on, fn)(a, b), getattr(off, fn)(a, b))

    def test_snapshot_is_independent_copy(self):
        vu = VectorUnit(2)
        vu.add(np.zeros(2), np.zeros(2))
        snap = vu.snapshot()
        vu.add(np.zeros(2), np.zeros(2))
        assert snap.total_instructions == 1
        assert vu.counters.total_instructions == 2


class TestValidation:
    def test_c_must_be_positive(self):
        with pytest.raises(ValueError, match="C must be >= 1"):
            VectorUnit(0)

    @pytest.mark.parametrize("C", [1, 2, 8, 16, 32, 64])
    def test_arbitrary_widths(self, C):
        vu = VectorUnit(C)
        out = vu.add(np.ones(C), np.ones(C))
        assert out.shape == (C,)
        assert np.all(out == 2)
