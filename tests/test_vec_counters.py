"""Unit tests for OpCounters accounting arithmetic."""

from repro.vec.counters import OpCounters


class TestBasicAccounting:
    def test_fresh_counters_are_zero(self):
        c = OpCounters()
        assert c.total_instructions == 0
        assert c.total_words == 0
        assert c.total_bytes == 0
        assert c.lanes == 0

    def test_count_accumulates_per_mnemonic(self):
        c = OpCounters()
        c.count("ADD", 3, lanes=24)
        c.count("ADD", 2, lanes=16)
        c.count("MIN", 1, lanes=8)
        assert c.instructions == {"ADD": 5, "MIN": 1}
        assert c.total_instructions == 6
        assert c.lanes == 48

    def test_load_store_words(self):
        c = OpCounters()
        c.load(8)
        c.load(4, gather=True)
        c.store(6)
        assert c.words_loaded == 12
        assert c.gather_words == 4
        assert c.words_stored == 6
        assert c.total_words == 18
        assert c.total_bytes == 72


class TestArithmetic:
    def test_iadd_merges(self):
        a, b = OpCounters(), OpCounters()
        a.count("ADD", 2)
        a.load(4)
        b.count("ADD", 1)
        b.count("MUL", 3)
        b.store(2)
        a += b
        assert a.instructions == {"ADD": 3, "MUL": 3}
        assert a.words_loaded == 4 and a.words_stored == 2

    def test_add_returns_new_object(self):
        a, b = OpCounters(), OpCounters()
        a.count("X", 1)
        b.count("X", 2)
        c = a + b
        assert c.instructions["X"] == 3
        assert a.instructions["X"] == 1  # unchanged

    def test_copy_is_deep_for_instruction_dict(self):
        a = OpCounters()
        a.count("ADD", 1)
        b = a.copy()
        b.count("ADD", 1)
        assert a.instructions["ADD"] == 1
        assert b.instructions["ADD"] == 2

    def test_diff_subtracts_snapshot(self):
        a = OpCounters()
        a.count("ADD", 5)
        a.load(10, gather=True)
        a.store(3)
        snap = a.copy()
        a.count("ADD", 2)
        a.count("MIN", 1)
        a.load(4)
        a.store(1)
        d = a.diff(snap)
        assert d.instructions == {"ADD": 2, "MIN": 1}
        assert d.words_loaded == 4
        assert d.gather_words == 0
        assert d.words_stored == 1

    def test_diff_omits_zero_deltas(self):
        a = OpCounters()
        a.count("ADD", 5)
        d = a.diff(a.copy())
        assert d.instructions == {}

    def test_reset_clears_everything(self):
        a = OpCounters()
        a.count("ADD", 5)
        a.load(10, gather=True)
        a.store(3)
        a.reset()
        assert a.total_instructions == 0
        assert a.total_words == 0
        assert a.gather_words == 0
        assert a.lanes == 0
