"""The miss-status registry (MSHR) and epoch-based invalidation.

The load-bearing properties, each checked directly and by hypothesis:

* **fan-out** — k duplicate misses on an outstanding (pending or
  in-flight) root cost exactly one kernel column, and every waiter's
  latency is its batch's virtual completion minus its own submit time;
* **visibility** — a result becomes cache-visible only at its virtual
  completion time, never at dispatch (no 0.0-latency phantom hits);
* **invalidation** — ``Server.invalidate()`` bumps the epoch: nothing
  computed before the call can be observed by queries submitted after
  it, while already-attached waiters still resolve correctly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import SEMIRING_NAMES
from repro.bfs.msbfs import MultiSourceBFS
from repro.formats.slimsell import SlimSell
from repro.serve.mshr import MissStatusRegistry
from repro.serve.query import Query, Ticket
from repro.serve.server import Server

SETTINGS = dict(deadline=None, max_examples=20,
                suppress_health_check=[HealthCheck.function_scoped_fixture])


def _ticket(root: int, semiring: str = "sel-max", at: float = 0.0) -> Ticket:
    return Ticket(query=Query(root=root, semiring=semiring), submitted_at=at)


# ----------------------------------------------------------------------
class TestRegistry:
    def test_allocate_attach_dispatch_retire_cycle(self):
        reg = MissStatusRegistry()
        key = (0, "sel-max", 5)
        t1, t2 = _ticket(5), _ticket(5)
        entry = reg.allocate(key, t1)
        assert t1.mshr is entry and entry.state == "pending"
        assert len(reg) == 1 and reg.pending == 1 and reg.inflight == 0
        reg.attach(entry, t2)
        assert entry.n_waiters == 2 and t2.mshr is entry
        assert reg.stats.pending_hits == 1 and reg.stats.inflight_hits == 0

        reg.dispatch(entry, "res", completion=2.5, batch_width=4,
                     engine="msbfs")
        assert entry.state == "inflight" and reg.inflight == 1
        assert reg.inflight_widths() == [4]
        t3 = _ticket(5)
        reg.attach(entry, t3)  # late waiter: batch already dispatched
        assert reg.stats.inflight_hits == 1 and entry.n_waiters == 3

        assert reg.take_due(2.4999) == []  # completion not yet reached
        (done,) = reg.take_due(2.5)        # due exactly at completion
        assert done is entry and len(reg) == 0
        assert reg.stats.retired == 1 and reg.stats.allocated == 1
        assert reg.stats.hits == 2
        assert reg.lookup(key) is None     # retired entries leave the table

    def test_double_allocate_rejected(self):
        reg = MissStatusRegistry()
        reg.allocate((0, "sel-max", 1), _ticket(1))
        with pytest.raises(ValueError, match="already live"):
            reg.allocate((0, "sel-max", 1), _ticket(1))

    def test_epochs_are_distinct_keys(self):
        # Post-invalidate, the same (semiring, root) may be outstanding
        # under two epochs at once: the old traversal can no longer
        # answer new queries, so the new epoch owns a fresh column.
        reg = MissStatusRegistry()
        old = reg.allocate((0, "sel-max", 7), _ticket(7))
        new = reg.allocate((1, "sel-max", 7), _ticket(7))
        assert old is not new and len(reg) == 2
        assert reg.lookup((0, "sel-max", 7)) is old
        assert reg.lookup((1, "sel-max", 7)) is new
        assert (old.epoch, old.semiring, old.root) == (0, "sel-max", 7)


# ----------------------------------------------------------------------
class TestFanOut:
    """k duplicate misses -> 1 column; latency = completion − submit."""

    @pytest.fixture(scope="class")
    def rep(self, kron_small):
        return SlimSell(kron_small, 8, kron_small.n)

    @settings(**SETTINGS)
    @given(k=st.integers(1, 8), root=st.integers(0, 511),
           semiring=st.sampled_from(SEMIRING_NAMES))
    def test_inflight_duplicates_share_one_column(self, rep, k, root,
                                                  semiring):
        server = Server(rep, max_batch=1, max_wait=60.0, cache_size=64)
        primary = server.submit(root, semiring=semiring, now=0.0)
        assert primary.done  # max_batch=1: dispatched inline
        completion = server.busy_until
        assert completion > 0.0
        # All duplicates arrive before the batch's virtual completion.
        waiters = [server.submit(root, semiring=semiring, now=0.0)
                   for _ in range(k)]
        assert server.stats.batches == 1 and server.stats.widths == [1]
        assert server.mshr.stats.inflight_hits == k
        for w in waiters:
            res = w.result()
            assert res.mshr_hit and not res.cache_hit
            assert res.latency_s == completion - 0.0
            assert res.bfs is primary.result().bfs
        assert not primary.result().mshr_hit  # the allocator paid the column

    @settings(**SETTINGS)
    @given(k=st.integers(1, 8), root=st.integers(0, 511),
           gaps=st.lists(st.floats(0.0, 0.5), min_size=9, max_size=9))
    def test_pending_fanout_latency(self, rep, k, root, gaps):
        server = Server(rep, max_batch=64, max_wait=60.0, cache_size=0)
        times = np.cumsum(gaps)[:k + 1]
        tickets = [server.submit(root, now=float(t)) for t in times]
        server.drain(now=float(times[-1]))
        completion = server.busy_until
        assert server.stats.widths == [1]  # one column for k+1 queries
        for t, ticket in zip(times, tickets):
            assert ticket.result().latency_s == completion - float(t)
        assert server.mshr.stats.pending_hits == k

    def test_late_arrival_gets_cache_hit_not_waiter(self, rep):
        # At `now` past the batch's completion the result is committed:
        # the late query is a genuine cache hit, not an MSHR waiter.
        server = Server(rep, max_batch=1, cache_size=8)
        server.submit(3, now=0.0)
        late = server.submit(3, now=server.busy_until + 1.0)
        assert late.result().cache_hit and not late.result().mshr_hit
        assert server.stats.mshr_hits == 0 and server.stats.batches == 1


# ----------------------------------------------------------------------
class TestEpochInvalidation:
    @pytest.fixture(scope="class")
    def rep(self, kron_small):
        return SlimSell(kron_small, 8, kron_small.n)

    def test_invalidate_bumps_epoch_and_drops_cache(self, rep):
        server = Server(rep, max_batch=1, cache_size=8)
        server.submit(0, now=0.0)
        hit = server.submit(0, now=server.busy_until + 1.0)
        assert hit.result().cache_hit
        fp = server.fingerprint
        assert server.invalidate() == 1 and server.epoch == 1
        assert server.fingerprint == fp  # same structure, re-hashed lazily
        t = server.submit(0, now=server.busy_until + 2.0)
        assert not t.result().cache_hit  # recomputed under the new epoch
        assert server.stats.batches == 2

    def test_inflight_result_never_commits_after_invalidate(self, rep):
        server = Server(rep, max_batch=1, cache_size=8)
        t = server.submit(0, now=0.0)  # dispatched; committed at busy_until
        assert t.done
        server.invalidate()
        later = server.busy_until + 1.0
        again = server.submit(0, now=later)  # commit drops the stale epoch
        assert not again.result().cache_hit
        assert len(server.cache) == 0 or all(
            k[0] == server.epoch for k in server.cache._entries)
        assert server.stats.batches == 2

    def test_pending_waiters_still_resolve_across_invalidate(self, rep):
        server = Server(rep, max_batch=64, max_wait=60.0, cache_size=8)
        a = server.submit(0, now=0.0)
        b = server.submit(0, now=0.0)  # attaches to the pending miss
        server.invalidate()
        server.drain(now=0.0)
        assert a.result().status == "served"
        assert b.result().status == "served" and b.result().mshr_hit
        assert a.result().bfs is b.result().bfs

    @settings(**SETTINGS)
    @given(roots=st.lists(st.integers(0, 511), min_size=1, max_size=12),
           invalidations=st.lists(st.booleans(), min_size=12, max_size=12),
           gaps=st.lists(st.floats(0.0, 1.0), min_size=12, max_size=12))
    def test_invalidation_semantics_property(self, rep, roots, invalidations,
                                             gaps):
        """Any interleaving of submits and invalidates: answers stay
        bit-identical, epochs are monotonic, and the cache only ever
        holds current-epoch keys."""
        server = Server(rep, max_batch=3, max_wait=0.5, cache_size=32)
        now, tickets = 0.0, []
        for root, inv, gap in zip(roots, invalidations, gaps):
            now += gap
            if inv:
                before = server.epoch
                assert server.invalidate() == before + 1
            tickets.append(server.submit(root, now=now))
        server.drain(now=now)
        server.poll(now=now + 1e6)  # commit every remaining entry
        direct = MultiSourceBFS(rep, "sel-max", slimwork=True).run(roots)
        for t, d in zip(tickets, direct):
            res = t.result()
            assert res.status == "served"
            np.testing.assert_array_equal(res.bfs.dist, d.dist)
            np.testing.assert_array_equal(res.bfs.parent, d.parent)
        assert all(k[0] == server.epoch for k in server.cache._entries)
        assert len(server.mshr) == 0  # everything committed or dropped

    def test_validate_memo_scoped_to_epoch(self, rep, monkeypatch):
        import repro.graph500 as g5

        calls = {"n": 0}
        real = g5.validate_bfs_tree

        def counting(graph, res):
            calls["n"] += 1
            return real(graph, res)

        monkeypatch.setattr(g5, "validate_bfs_tree", counting)
        server = Server(rep, max_batch=1, cache_size=8)
        server.submit(0, kind="validate", now=0.0)
        assert calls["n"] == 1
        hit = server.submit(0, kind="validate", now=server.busy_until + 1.0)
        assert hit.result().cache_hit and hit.result().value is True
        assert calls["n"] == 1  # memoized verdict: no O(N+M) re-check
        server.invalidate()
        server.submit(0, kind="validate", now=server.busy_until + 2.0)
        assert calls["n"] == 2  # new epoch: verdict must be re-earned
