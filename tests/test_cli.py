"""Tests of the command-line interface."""

import pytest

from repro.cli import _load_graph, build_parser, main


class TestGraphSpecs:
    def test_kronecker_spec(self):
        g = _load_graph("kronecker:8,4")
        assert g.n == 256

    def test_kronecker_spec_with_seed(self):
        assert _load_graph("kronecker:7,4,5") == _load_graph("kronecker:7,4,5")

    def test_er_spec(self):
        g = _load_graph("er:100,200")
        assert g.n == 100 and g.m == 200

    def test_proxy_spec(self):
        g = _load_graph("proxy:epi,512")
        assert g.n >= 16

    def test_unknown_generator(self):
        with pytest.raises(SystemExit, match="unknown generator"):
            _load_graph("magic:1")

    def test_file_paths(self, tmp_path):
        from repro.graphs.io import save_edgelist, save_npz
        from repro.graphs.kronecker import kronecker

        g = kronecker(6, 4, seed=0)
        save_edgelist(g, tmp_path / "g.txt")
        save_npz(g, tmp_path / "g.npz")
        assert _load_graph(str(tmp_path / "g.npz")) == g
        loaded = _load_graph(str(tmp_path / "g.txt"))
        assert loaded.m == g.m


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "knl" in out and "tesla-k80" in out

    def test_bfs_spmv(self, capsys):
        assert main(["bfs", "kronecker:8,4", "--semiring", "sel-max",
                     "--slimwork", "-C", "4", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "reached" in out and "iter 1" in out

    @pytest.mark.parametrize("algo", ["spmspv", "traditional", "direction-opt"])
    def test_bfs_other_algorithms(self, algo, capsys):
        assert main(["bfs", "kronecker:7,4", "--algorithm", algo]) == 0
        assert "reached" in capsys.readouterr().out

    def test_bfs_explicit_root(self, capsys):
        assert main(["bfs", "er:64,128", "--root", "7"]) == 0
        assert "root=7" in capsys.readouterr().out

    def test_bfs_batched(self, capsys):
        assert main(["bfs", "kronecker:8,4", "--batch", "4",
                     "--slimwork"]) == 0
        out = capsys.readouterr().out
        assert "batch=4" in out and "batched sweep total" in out

    def test_bfs_batch_requires_spmv(self):
        with pytest.raises(SystemExit, match="spmv"):
            main(["bfs", "kronecker:7,4", "--batch", "4",
                  "--algorithm", "traditional"])

    def test_bfs_batch_requires_layer_engine(self):
        with pytest.raises(SystemExit, match="layer engine"):
            main(["bfs", "kronecker:7,4", "--batch", "4",
                  "--engine", "chunk"])

    def test_bfs_batch_rejects_nonpositive(self):
        with pytest.raises(SystemExit, match="batch"):
            main(["bfs", "kronecker:7,4", "--batch", "0"])

    def test_bfs_hybrid_batched(self, capsys):
        assert main(["bfs", "kronecker:8,4", "--hybrid", "--batch", "4",
                     "--semiring", "sel-max"]) == 0
        out = capsys.readouterr().out
        assert "spmv-mshybrid" in out and "batch=4" in out
        assert "push" in out and "pull" in out

    def test_bfs_hybrid_single_root(self, capsys):
        assert main(["bfs", "kronecker:8,4", "--hybrid",
                     "--alpha", "20"]) == 0
        out = capsys.readouterr().out
        assert "spmv-mshybrid" in out and "batch=1" in out

    def test_bfs_hybrid_requires_spmv(self):
        with pytest.raises(SystemExit, match="spmv"):
            main(["bfs", "kronecker:7,4", "--hybrid",
                  "--algorithm", "traditional"])

    def test_bfs_hybrid_requires_layer_engine(self):
        with pytest.raises(SystemExit, match="layer engine"):
            main(["bfs", "kronecker:7,4", "--hybrid", "--engine", "chunk"])

    def test_alpha_requires_hybrid(self):
        with pytest.raises(SystemExit, match="alpha"):
            main(["bfs", "kronecker:7,4", "--alpha", "8"])
        with pytest.raises(SystemExit, match="alpha"):
            main(["graph500", "7", "--nroots", "2", "--alpha", "8"])

    def test_graph500_sequential(self, capsys):
        assert main(["graph500", "7", "--edgefactor", "4",
                     "--nroots", "4"]) == 0
        out = capsys.readouterr().out
        assert "harmonic-mean TEPS" in out and "sequential" in out

    def test_graph500_batched(self, capsys):
        assert main(["graph500", "7", "--edgefactor", "4", "--nroots", "4",
                     "--batch", "4"]) == 0
        assert "batch=4" in capsys.readouterr().out

    def test_graph500_hybrid(self, capsys):
        assert main(["graph500", "7", "--edgefactor", "4", "--nroots", "4",
                     "--batch", "4", "--hybrid", "--alpha", "10"]) == 0
        assert "hybrid" in capsys.readouterr().out

    def test_storage(self, capsys):
        assert main(["storage", "kronecker:8,4", "-C", "8"]) == 0
        out = capsys.readouterr().out
        assert "SlimSell" in out and "ELLPACK" in out

    def test_generate_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "k.npz"
        assert main(["generate", "kronecker:7,4", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["bfs", str(out_file)]) == 0

    def test_dist_1d(self, capsys):
        assert main(["dist", "kronecker:8,4", "--ranks", "4", "-C", "8",
                     "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "method=dist-1d+slimwork" in out
        assert "ranks=4" in out and "comm share" in out and "iter 1" in out

    def test_dist_2d_grid(self, capsys):
        assert main(["dist", "kronecker:8,4", "--grid", "2x2", "-C", "8",
                     "--network", "ethernet-10g", "--no-slimwork"]) == 0
        out = capsys.readouterr().out
        assert "method=dist-2d" in out and "ethernet-10g" in out

    def test_dist_blocks_partition(self, capsys):
        assert main(["dist", "er:64,128", "--ranks", "2", "--blocks",
                     "--root", "3"]) == 0
        assert "root=3" in capsys.readouterr().out

    def test_dist_batched_1d(self, capsys):
        assert main(["dist", "kronecker:8,4", "--ranks", "4", "-C", "8",
                     "--nroots", "8", "--batch", "4", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "sources=8" in out and "batch=4" in out and "groups=2" in out
        assert "ms/source" in out and "paid once per layer" in out
        assert "width=" in out

    def test_dist_batched_2d_overlap_transpose(self, capsys):
        assert main(["dist", "kronecker:8,4", "--grid", "2x2", "-C", "8",
                     "--nroots", "4", "--overlap", "0.5", "--transpose"]) == 0
        out = capsys.readouterr().out
        assert "method=dist-2d" in out and "overlap=0.5" in out

    def test_exec_serial(self, capsys):
        assert main(["exec", "kronecker:8,4", "--workers", "3", "-C", "8",
                     "--nroots", "4", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "method=exec-serial-w3+slimwork" in out
        assert "critical-path speedup" in out and "layer 1" in out

    def test_exec_threads_backend(self, capsys):
        assert main(["exec", "kronecker:8,4", "--workers", "2",
                     "--backend", "threads", "--nroots", "2",
                     "--batch", "1", "--no-slimwork"]) == 0
        out = capsys.readouterr().out
        assert "method=exec-threads-w2" in out and "batch=1" in out

    def test_exec_calibrate(self, capsys):
        assert main(["exec", "kronecker:8,4", "-C", "8", "--workers", "2",
                     "--nroots", "4", "--calibrate",
                     "--network", "ethernet-10g"]) == 0
        out = capsys.readouterr().out
        assert "compute_scale" in out and "comm_scale" in out
        assert "'knl' -> 'knl-calibrated'" in out
        assert "ethernet-10g-calibrated" in out

    def test_exec_validation(self):
        with pytest.raises(SystemExit, match="workers"):
            main(["exec", "kronecker:7,4", "--workers", "0"])
        with pytest.raises(SystemExit, match="nroots"):
            main(["exec", "kronecker:7,4", "--nroots", "0"])

    def test_dist_batch_requires_nroots(self):
        with pytest.raises(SystemExit, match="nroots"):
            main(["dist", "kronecker:8,4", "--batch", "4"])

    def test_dist_transpose_requires_grid(self):
        with pytest.raises(SystemExit, match="grid"):
            main(["dist", "kronecker:8,4", "--transpose"])

    def test_dist_overlap_out_of_range(self):
        with pytest.raises(SystemExit, match="overlap"):
            main(["dist", "kronecker:8,4", "--overlap", "1.5"])

    def test_serve_open_loop(self, capsys):
        assert main(["serve", "kronecker:8,4", "--queries", "48",
                     "--max-batch", "8", "--max-wait", "0.001",
                     "--arrival-rate", "5000", "--zipf", "1.1",
                     "--root-pool", "16", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "open-loop" in out and "served 48" in out
        assert "throughput:" in out and "latency: p50" in out
        assert "dispatch reason" in out

    def test_serve_burst_and_cache(self, capsys):
        assert main(["serve", "kronecker:8,4", "--queries", "64",
                     "--arrival-rate", "inf", "--cache", "32",
                     "--root-pool", "8"]) == 0
        out = capsys.readouterr().out
        assert "rate=inf" in out and "hit rate" in out

    def test_serve_closed_loop(self, capsys):
        assert main(["serve", "kronecker:8,4", "--closed-loop",
                     "--queries", "32", "--clients", "8",
                     "--cache", "0"]) == 0
        out = capsys.readouterr().out
        assert "closed-loop (8 clients)" in out

    def test_serve_backpressure_reports_rejections(self, capsys):
        assert main(["serve", "kronecker:8,4", "--queries", "64",
                     "--arrival-rate", "inf", "--max-pending", "4",
                     "--max-batch", "64", "--cache", "0",
                     "--root-pool", "32", "--zipf", "0"]) == 0
        out = capsys.readouterr().out
        assert "max_pending=4" in out

    def test_serve_argument_validation(self):
        with pytest.raises(SystemExit, match="queries"):
            main(["serve", "kronecker:7,4", "--queries", "0"])
        with pytest.raises(SystemExit, match="max-batch"):
            main(["serve", "kronecker:7,4", "--max-batch", "0"])
        with pytest.raises(SystemExit, match="arrival-rate"):
            main(["serve", "kronecker:7,4", "--arrival-rate", "fast"])
        with pytest.raises(SystemExit, match="arrival-rate"):
            main(["serve", "kronecker:7,4", "--arrival-rate", "-5"])
        with pytest.raises(SystemExit, match="zipf"):
            main(["serve", "kronecker:7,4", "--zipf", "-1"])
        with pytest.raises(SystemExit, match="root-pool"):
            main(["serve", "kronecker:7,4", "--root-pool", "0"])
        with pytest.raises(SystemExit, match="clients"):
            main(["serve", "kronecker:7,4", "--closed-loop",
                  "--clients", "0"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTraceCommand:
    def test_serve_trace_roundtrip(self, tmp_path, capsys):
        jsonl = str(tmp_path / "serve.jsonl")
        chrome = str(tmp_path / "serve.json")
        assert main(["serve", "kronecker:8,4", "--queries", "32",
                     "--arrival-rate", "2000", "--trace", jsonl]) == 0
        out = capsys.readouterr().out
        assert f"spans to {jsonl}" in out

        from repro.obs.export import load_trace

        spans = load_trace(jsonl)
        assert spans and all(s.t_end is not None for s in spans)
        assert sum(1 for s in spans if s.name == "serve.query") == 32

        # Summarize, convert to Chrome format, re-summarize: the span
        # population must survive the round trip.
        assert main(["trace", jsonl, "--chrome", chrome]) == 0
        out = capsys.readouterr().out
        assert "serve.query" in out and "serve.kernel" in out
        assert main(["trace", chrome]) == 0
        out2 = capsys.readouterr().out
        assert len(load_trace(chrome)) == len(spans)
        assert f"{len(spans)} spans" in out and f"{len(spans)} spans" in out2

    def test_exec_trace_export(self, tmp_path, capsys):
        path = str(tmp_path / "exec.json")
        assert main(["exec", "kronecker:8,4", "--workers", "2", "-C", "8",
                     "--nroots", "4", "--trace", path]) == 0
        assert "spans" in capsys.readouterr().out
        from repro.obs.export import load_trace

        names = {s.name for s in load_trace(path)}
        assert {"bfs.layer", "exec.layer", "exec.worker"} <= names

    def test_trace_rejects_missing_file(self, tmp_path):
        with pytest.raises((SystemExit, OSError)):
            main(["trace", str(tmp_path / "nope.jsonl")])
