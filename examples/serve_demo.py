#!/usr/bin/env python
"""Serving-layer walkthrough: from single queries to adaptive batches.

The batched engines make a BFS ~B× cheaper per source when B frontier
columns share one SpMM sweep — but users send single-root queries, one at
a time.  This demo walks the layer that bridges the gap:

1. sync ``submit()``/``drain()`` with duplicate-root coalescing;
2. the LRU result cache absorbing a hot-root storm;
3. an open-loop Poisson/Zipf workload, micro-batched vs per-query
   dispatch (the throughput headline, measured honestly: both sides serve
   the identical query stream, answers checked bit-identical);
4. the asyncio front-end awaiting per-query futures.

Run:  python examples/serve_demo.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import AsyncServer, Server, kronecker
from repro.bfs.msbfs import MultiSourceBFS
from repro.graph500 import sample_roots
from repro.serve.workload import (
    poisson_arrivals,
    run_open_loop,
    sample_zipf_roots,
)


def main() -> None:
    g = kronecker(scale=12, edgefactor=16, seed=7)
    print(f"graph: n={g.n}, m={g.m}")

    # 1. Sync driver: five users, two of them asking the same root.
    server = Server(g, max_batch=8, max_wait=2e-3, cache_size=256)
    pool = sample_roots(g, 64, seed=7)
    asks = [int(pool[0]), int(pool[1]), int(pool[0]), int(pool[2]),
            int(pool[3])]
    tickets = [server.submit(r, now=0.0) for r in asks]
    server.drain(now=0.0)
    widths = {t.result().batch_width for t in tickets}
    print("\n-- 1. submit/drain --")
    print(f"5 queries, {server.stats.batches} batch of width {widths} "
          f"({server.batcher.coalesced} coalesced duplicate)")

    # Reductions share the traversal: connectivity and validation ride on
    # the same cached BFS the distance query produced.
    t_reach = server.submit(int(pool[0]), kind="reachability",
                            target=int(pool[1]))
    t_valid = server.submit(int(pool[0]), kind="validate")
    print(f"reachability({int(pool[0])} -> {int(pool[1])}) = "
          f"{t_reach.result().value} (cache hit: "
          f"{t_reach.result().cache_hit}); Graph500 validation = "
          f"{t_valid.result().value}")

    # 2. Hot-root storm: the cache answers without touching a kernel.
    before = server.stats.kernel_s
    for _ in range(1000):
        server.submit(int(pool[0]))
    print("\n-- 2. result cache --")
    print(f"1000 hot-root queries: kernel seconds added = "
          f"{server.stats.kernel_s - before:g}, hit rate "
          f"{server.cache.stats.hit_rate:.1%}")

    # 3. Open-loop Poisson/Zipf traffic, batched vs per-query dispatch.
    print("\n-- 3. micro-batching vs per-query dispatch (open loop) --")
    nq = 512
    roots = sample_zipf_roots(pool, nq, s=1.1, seed=7)
    arrivals = poisson_arrivals(nq, rate=float("inf"), seed=7)
    rep = Server(g).rep  # share one build across both servers
    reports = {}
    for label, max_batch in (("per-query (B=1)", 1), ("micro-batch (64)", 64)):
        srv = Server(rep, max_batch=max_batch, max_wait=1e-3, cache_size=0)
        reports[label] = run_open_loop(srv, roots, arrivals)
    base = reports["per-query (B=1)"]["kernel_throughput_qps"]
    for label, r in reports.items():
        print(f"{label:18s} {r['kernel_throughput_qps']:8.0f} q/s "
              f"(x{r['kernel_throughput_qps'] / base:.1f}), mean width "
              f"{r['mean_batch_width']:5.1f}, p99 latency "
              f"{r['latency_p99_s'] * 1e3:7.2f} ms")

    # Served answers are bit-identical to direct engine calls.
    direct = MultiSourceBFS(rep, "sel-max", slimwork=True).run(pool[:4])
    srv = Server(rep, max_batch=4)
    got = [srv.submit(int(r), now=0.0) for r in pool[:4]]
    srv.drain(now=0.0)
    assert all(np.array_equal(t.result().bfs.dist, d.dist)
               and np.array_equal(t.result().bfs.parent, d.parent)
               for t, d in zip(got, direct))
    print("served answers bit-identical to direct engine calls: True")

    # 4. asyncio front-end: concurrent awaits, one shared batch.
    print("\n-- 4. asyncio front-end --")

    async def clients() -> list:
        aserver = AsyncServer(Server(rep, max_batch=8, max_wait=5e-3))
        return await asyncio.gather(
            *(aserver.async_submit(int(r)) for r in pool[:8]))

    results = asyncio.run(clients())
    print(f"8 concurrent awaits answered by batches of width "
          f"{sorted({r.batch_width for r in results})}, all served: "
          f"{all(r.status == 'served' for r in results)}")


if __name__ == "__main__":
    main()
