#!/usr/bin/env python
"""Social-network analysis: hop distributions and semiring trade-offs.

The workload the paper's introduction motivates: BFS over a social graph
(here the Pokec proxy from the Table IV registry) to compute hop
distributions — the building block of reachability, influence radius, and
betweenness analyses.

Demonstrates:
* choosing a semiring — sel-max when parents are needed (no DP pass),
  tropical when only distances matter;
* hop histograms from repeated BFS over one shared SlimSell representation;
* the DP transformation as a post-processing step.

Run:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import BFSSpMV, SlimSell, dp_transform, realworld_proxy
from repro.graphs.utils import degree_stats


def main() -> None:
    g = realworld_proxy("pok", downscale=256, seed=7)
    stats = degree_stats(g)
    print(f"Pokec proxy: n={stats.n}, m={stats.m}, ρ̄={stats.m / stats.n:.1f}, "
          f"max degree={stats.max} (published: n=1.63M, ρ̄=18.75)")

    # One representation, many traversals.
    rep = SlimSell(g, C=8, sigma=g.n)
    print(f"SlimSell built in {rep.build_time_s * 1e3:.1f} ms "
          f"({rep.padding_slots} padding slots, "
          f"{rep.storage_cells()} cells)")

    # --- Hop histogram from 8 random seeds (tropical: distances only) ----
    engine = BFSSpMV(rep, "tropical", slimwork=True, compute_parents=False)
    rng = np.random.default_rng(1)
    hop_counts: dict[int, int] = {}
    reached_total = 0
    for root in rng.integers(0, g.n, size=8):
        res = engine.run(int(root))
        finite = res.dist[np.isfinite(res.dist)].astype(int)
        reached_total += finite.size
        for h, c in zip(*np.unique(finite, return_counts=True)):
            hop_counts[int(h)] = hop_counts.get(int(h), 0) + int(c)
    print("\nhop histogram over 8 random roots:")
    total = sum(hop_counts.values())
    for h in sorted(hop_counts):
        bar = "#" * int(60 * hop_counts[h] / total)
        print(f"  {h:2d} hops: {hop_counts[h]:7d} {bar}")
    print(f"small-world check: ≥95% of reached pairs within 6 hops? "
          f"{sum(c for h, c in hop_counts.items() if h <= 6) / total:.1%}")

    # --- Parents: sel-max (direct) vs tropical + DP ----------------------
    root = int(np.argmax(g.degrees))
    selmax = BFSSpMV(rep, "sel-max", slimwork=True).run(root)
    tropical = BFSSpMV(rep, "tropical", slimwork=True,
                       compute_parents=False).run(root)
    parents_dp = dp_transform(g, tropical.dist)
    agree = np.mean(
        tropical.dist[parents_dp.clip(0)] == tropical.dist[selmax.parent.clip(0)])
    print(f"\nparents via sel-max (no DP) vs tropical+DP: both valid BFS "
          f"trees; parent depth agreement = {agree:.1%}")
    print(f"sel-max iterations: {selmax.n_iterations}, "
          f"tropical iterations: {tropical.n_iterations}")


if __name__ == "__main__":
    main()
