#!/usr/bin/env python
"""Distributed-memory scaling walkthrough (§VI extension).

Simulates the SlimSell BFS on P KNL nodes linked by a Cray-Aries-class
interconnect and reproduces the classic 1D-BFS scaling story: the local
SpMV shrinks ≈ 1/P while the frontier allgather is P-independent, so
communication dominates at scale — the reason 2D decompositions exist,
which the second half of the walkthrough quantifies.

Run:  python examples/dist_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CRAY_ARIES,
    ETHERNET_10G,
    Partition1D,
    SlimSell,
    bfs_dist_1d,
    bfs_dist_2d,
    get_machine,
    kronecker,
)
from repro.bfs.validate import reference_distances
from repro.graph500 import sample_roots


def main() -> None:
    knl = get_machine("knl")
    g = kronecker(scale=13, edgefactor=8, seed=7)
    rep = SlimSell(g, C=16, sigma=g.n)
    root = int(np.argmax(g.degrees))
    ref = reference_distances(g, root)
    print(f"graph: n={g.n}, m={g.m}, chunks={rep.nc} (C={rep.C})")

    # 1. Strong scaling of the 1D decomposition with work-balanced bands.
    print("\n-- 1D strong scaling (KNL nodes, Cray Aries) --")
    print(f"{'P':>3}  {'t_local':>10}  {'t_comm':>10}  {'t_total':>10}  "
          f"{'speedup':>7}  {'comm share':>10}")
    base = None
    for P in (1, 2, 4, 8, 16, 32):
        res = bfs_dist_1d(rep, root, Partition1D.balanced(rep.cl, P),
                          knl, CRAY_ARIES)
        assert ((res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))).all()
        t_local = sum(it.t_local_s for it in res.iterations)
        t_comm = sum(it.t_comm_s for it in res.iterations)
        base = base or res.modeled_total_s
        print(f"{P:>3}  {t_local:>10.3e}  {t_comm:>10.3e}  "
              f"{res.modeled_total_s:>10.3e}  "
              f"{base / res.modeled_total_s:>7.2f}  "
              f"{res.comm_fraction:>10.1%}")

    # 2. Naive blocks vs balanced bands: the Fig 5a story, distributed.
    print("\n-- partitioning at P=8: blocks vs balanced bands --")
    for label, part in (("blocks", Partition1D.blocks(rep.nc, 8)),
                        ("balanced", Partition1D.balanced(rep.cl, 8))):
        res = bfs_dist_1d(rep, root, part, knl, CRAY_ARIES)
        print(f"{label:>9}: first-iteration imbalance "
              f"{res.iterations[0].imbalance:.2f}, modeled total "
              f"{res.modeled_total_s * 1e3:.3f} ms")

    # 3. 2D grids shrink the per-iteration traffic from O(N) to O(N/R + N/C).
    print("\n-- 16 ranks: 1D row bands vs 2D process grids --")
    runs = [("1D P=16", bfs_dist_1d(rep, root,
                                    Partition1D.balanced(rep.cl, 16),
                                    knl, CRAY_ARIES))]
    for grid in ((4, 4), (8, 2), (2, 8)):
        runs.append((f"2D {grid[0]}x{grid[1]}",
                     bfs_dist_2d(rep, root, grid, knl, CRAY_ARIES)))
    for label, res in runs:
        assert ((res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))).all()
        print(f"{label:>8}: {res.iterations[0].comm_bytes:>7d} bytes/iter, "
              f"comm share {res.comm_fraction:.1%}, modeled total "
              f"{res.modeled_total_s * 1e3:.3f} ms")

    # 4. The interconnect matters: same run on commodity 10G Ethernet.
    res_eth = bfs_dist_1d(rep, root, Partition1D.balanced(rep.cl, 16),
                          knl, ETHERNET_10G)
    print(f"\n16 ranks on ethernet-10g: comm share {res_eth.comm_fraction:.1%} "
          f"(vs {runs[0][1].comm_fraction:.1%} on cray-aries)")

    # 5. Batched sweeps amortize the per-layer collectives: a B-wide
    # frontier matrix pays each allgather's latency once and ships one
    # union value vector plus per-column bitmaps instead of B dense
    # vectors, so per-source cost collapses — most dramatically on the
    # high-latency commodity interconnect.
    roots = sample_roots(g, 32, seed=7)
    part16 = Partition1D.balanced(rep.cl, 16)
    print("\n-- batched multi-source sweeps, 32 roots at P=16 --")
    print(f"{'network':>12}  {'B':>3}  {'bytes/rank':>10}  {'latency':>9}  "
          f"{'ms/source':>9}")
    for net in (CRAY_ARIES, ETHERNET_10G):
        for B in (1, 8, 32):
            res = bfs_dist_1d(rep, roots, part16, knl, net, batch=B)
            print(f"{net.name:>12}  {B:>3}  {res.total_comm_bytes:>10d}  "
                  f"{res.total_comm_latency_s * 1e6:>7.1f}us  "
                  f"{res.modeled_per_source_s * 1e3:>9.3f}")

    # 6. The overlap knob: how much of the wire time SlimSell's short
    # critical path could hide behind the local SpMM.
    print("\n-- communication/computation overlap, B=32 on ethernet-10g --")
    for ov in (0.0, 0.5, 1.0):
        res = bfs_dist_1d(rep, roots, part16, knl, ETHERNET_10G,
                          batch=32, overlap=ov)
        print(f"overlap={ov:3.1f}: modeled total "
              f"{res.modeled_total_s * 1e3:.3f} ms "
              f"(comm share {res.comm_fraction:.1%})")


if __name__ == "__main__":
    main()
