#!/usr/bin/env python
"""Centrality ranking: SlimSell beyond BFS (§VI's future work, delivered).

Ranks the vertices of a social-network proxy by PageRank and (sampled)
betweenness centrality, both computed as SpMV products over one shared
SlimSell representation — the paper's closing argument that the
representation generalizes to algorithms with per-superstep-uniform
communication.

Run:  python examples/centrality_ranking.py
"""

from __future__ import annotations

import numpy as np

from repro import SlimSell, betweenness_centrality, pagerank, realworld_proxy
from repro.bfs.operator import SlimSpMV


def main() -> None:
    g = realworld_proxy("epi", downscale=16, seed=11)
    print(f"Epinions proxy: n={g.n}, m={g.m}, ρ̄={g.m / g.n:.1f}")

    # One representation powers everything.
    rep = SlimSell(g, C=8, sigma=g.n)
    print(f"SlimSell: {rep.storage_cells()} cells, "
          f"built in {rep.build_time_s * 1e3:.0f} ms\n")

    pr = pagerank(rep, alpha=0.85)
    sources = np.random.default_rng(0).choice(g.n, size=min(64, g.n),
                                              replace=False)
    bc = betweenness_centrality(rep, sources=sources)

    deg = g.degrees
    top_pr = np.argsort(-pr)[:10]
    print(f"{'rank':>4s} {'vertex':>7s} {'pagerank':>10s} "
          f"{'betweenness':>12s} {'degree':>7s}")
    for i, v in enumerate(top_pr, 1):
        print(f"{i:4d} {v:7d} {pr[v]:10.5f} {bc[v]:12.6f} {deg[v]:7d}")

    # Sanity: the two centralities broadly agree on who matters.
    k = max(10, g.n // 20)
    top_pr_set = set(np.argsort(-pr)[:k].tolist())
    top_bc_set = set(np.argsort(-bc)[:k].tolist())
    overlap = len(top_pr_set & top_bc_set) / k
    print(f"\ntop-{k} overlap between PageRank and betweenness: {overlap:.0%}")

    # The §VI uniformity claim, measured: PageRank supersteps are uniform.
    op = SlimSpMV(rep, "real")
    import time

    x = pr.copy()
    inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1), 0.0)
    times = []
    for _ in range(8):
        t0 = time.perf_counter()
        x = 0.15 / g.n + 0.85 * op(x * inv)
        times.append(time.perf_counter() - t0)
    print(f"PageRank superstep times: mean {np.mean(times) * 1e3:.2f} ms, "
          f"CV {np.std(times) / np.mean(times):.1%} — identical "
          f"communication every superstep, as §VI predicts.")


if __name__ == "__main__":
    main()
