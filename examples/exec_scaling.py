#!/usr/bin/env python
"""Executed parallel backend: measured sharded sweep + model calibration.

The distributed tier (``repro.dist``) *models* the 1D-partitioned BFS
with analytic per-rank costs; ``repro.exec`` *executes* the same row
sharding, timing each shard's SpMM sweep and the frontier exchange for
real.  This example runs a worker sweep over one Kronecker graph,
verifies every sharded run is bit-identical to the plain batched engine,
prints the measured critical-path scaling, and then fits the ``knl`` /
``cray-aries`` descriptors to the measurement — the calibration loop
that turns the cost model's arbitrary units into this host's seconds.

Run:  python examples/exec_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro import MultiSourceBFS, SlimSell, calibrate, kronecker
from repro.exec import ExecMultiSourceBFS

WORKERS = (1, 2, 4, 8)


def main() -> None:
    g = kronecker(scale=12, edgefactor=16, seed=3)
    rep = SlimSell(g, 16, sigma=g.n)
    roots = np.arange(16, dtype=np.int64)
    print(f"workload: Kronecker n={g.n}, m={g.m}, 16-source batched BFS\n")

    expected = MultiSourceBFS(rep, "sel-max", slimwork=True).run(roots)

    header = (f"{'W':>3s} {'compute ms':>11s} {'critical ms':>12s} "
              f"{'exchange ms':>12s} {'speedup':>8s}  identical")
    print(header)
    print("-" * len(header))
    base = None
    for w in WORKERS:
        with ExecMultiSourceBFS(rep, "sel-max", workers=w,
                                slimwork=True) as engine:
            results = engine.run(roots)
            prof = engine.layer_profile
        compute = sum(layer.t_compute_total_s for layer in prof)
        critical = sum(layer.t_local_s for layer in prof)
        exchange = sum(layer.t_exchange_s for layer in prof)
        if base is None:
            base = compute
        same = all(np.array_equal(a.dist, b.dist)
                   and np.array_equal(a.parent, b.parent)
                   for a, b in zip(results, expected))
        print(f"{w:3d} {compute * 1e3:11.2f} {critical * 1e3:12.2f} "
              f"{exchange * 1e3:12.2f} {base / critical:7.2f}x  {same}")

    print("\ncalibrating the knl / cray-aries descriptors against the "
          "measured 4-worker run:\n")
    rpt = calibrate(rep, roots, workers=4, machine="knl",
                    network="cray-aries", slimwork=True)
    print(rpt.describe())


if __name__ == "__main__":
    main()
