#!/usr/bin/env python
"""Quickstart: build a graph, run SlimSell BFS, validate against baselines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    SellCSigma,
    SlimSell,
    bfs_spmv,
    bfs_top_down,
    kronecker,
    storage_report,
)
from repro.bfs.validate import check_parents_valid, reference_distances


def main() -> None:
    # 1. A Graph500-style Kronecker power-law graph: 2^12 vertices, ρ̄ ≈ 16.
    g = kronecker(scale=12, edgefactor=8, seed=42)
    root = int(np.argmax(g.degrees))  # start from the hub
    print(f"graph: n={g.n}, m={g.m}, avg degree={g.avg_degree:.1f}, "
          f"max degree={g.max_degree}")

    # 2. Algebraic BFS on SlimSell (KNL-style C=16, full σ sort, SlimWork).
    res = bfs_spmv(g, root, semiring="sel-max", C=16, slimwork=True)
    print(f"\nBFS-SpMV ({res.semiring} on {res.representation}): "
          f"reached {res.reached}/{g.n} vertices "
          f"in {res.n_iterations} iterations, {res.total_time_s * 1e3:.1f} ms")
    for it in res.iterations:
        print(f"  iter {it.k}: settled {it.newly:5d} vertices, "
              f"chunks {it.chunks_processed} processed / "
              f"{it.chunks_skipped} skipped (SlimWork)")

    # 3. Validate against the traditional baseline and the SciPy oracle.
    trad = bfs_top_down(g, root)
    assert np.array_equal(res.dist, trad.dist), "distance mismatch!"
    ref = reference_distances(g, root)
    assert np.array_equal(np.nan_to_num(res.dist, posinf=-1),
                          np.nan_to_num(ref, posinf=-1))
    check_parents_valid(g, res)
    print("\nvalidation: distances match traditional BFS and the SciPy "
          "oracle; parent tree is a valid BFS tree")

    # 4. The storage story (Table III): SlimSell ≈ half of Sell-C-σ.
    rep = storage_report(g, C=16, sigma=g.n)
    print(f"\nstorage [cells]: CSR={rep.csr_cells}  AL={rep.al_cells}  "
          f"Sell-C-σ={rep.sell_cells}  SlimSell={rep.slimsell_cells}")
    print(f"SlimSell / Sell-C-σ = {rep.slim_vs_sell:.3f}  "
          f"(padding P = {rep.padding_slots} slots)")

    # 5. Reuse one representation for many traversals (preprocessing
    #    amortization, §IV-D).
    slim = SlimSell(g, C=16, sigma=g.n)
    from repro import BFSSpMV

    engine = BFSSpMV(slim, "tropical", slimwork=True)
    connected = np.flatnonzero(g.degrees > 0)  # Kronecker graphs have
    rng = np.random.default_rng(0)             # isolated vertices; skip them
    roots = rng.choice(connected, size=5, replace=False)
    for r in roots:
        out = engine.run(int(r))
        print(f"root {int(r):5d}: reached {out.reached:5d} "
              f"in {out.n_iterations} iterations")
    _ = SellCSigma  # imported to show both formats exist


if __name__ == "__main__":
    main()
