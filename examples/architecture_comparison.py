#!/usr/bin/env python
"""Architecture comparison: the same BFS modeled on all seven testbed systems.

Replays the paper's central systems question — where does vectorized
BFS-SpMV pay off? — by running one counted traversal per SIMD width
(C = 8 / 16 / 32) and modeling it on each of the paper's seven machines
(§IV "Experimental Setup"), next to the modeled traditional BFS.

Run:  python examples/architecture_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import MACHINES, BFSSpMV, SlimSell, bfs_top_down, kronecker
from repro.perf.costmodel import model_bfs_result, model_traditional_result


def main() -> None:
    g = kronecker(scale=11, edgefactor=32, seed=3)  # dense: SIMD-friendly
    root = int(np.argmax(g.degrees))
    print(f"workload: Kronecker n={g.n}, m={g.m}, ρ̄={g.avg_degree:.0f} "
          f"(dense — the regime where the paper's GPUs win)\n")

    # One counted SpMV run per SIMD width.
    spmv_runs = {}
    for C in (8, 16, 32):
        rep = SlimSell(g, C, sigma=g.n)
        res = BFSSpMV(rep, "tropical", slimwork=True, counting=True,
                      compute_parents=False).run(root)
        spmv_runs[C] = res
    trad = bfs_top_down(g, root)

    header = (f"{'machine':18s} {'kind':9s} {'C':>3s} "
              f"{'SpMV modeled':>14s} {'Trad modeled':>14s} {'SpMV/Trad':>10s}")
    print(header)
    print("-" * len(header))
    winners = {}
    for name, machine in sorted(MACHINES.items()):
        res = spmv_runs[machine.simd_width]
        t_spmv = sum(t.t_total for t in model_bfs_result(machine, res))
        t_trad = sum(t.t_total for t in model_traditional_result(machine, trad))
        ratio = t_trad / t_spmv
        winners[name] = ratio
        print(f"{name:18s} {machine.kind:9s} {machine.simd_width:3d} "
              f"{t_spmv:14.3e} {t_trad:14.3e} {ratio:9.2f}x")

    best = max(winners, key=winners.get)
    print(f"\nlargest same-machine SpMV advantage: {best} "
          f"({winners[best]:.2f}x) — scalar queue BFS wastes a GPU's warps, "
          f"so on wide-SIMD machines the vectorized formulation is the only "
          f"sensible one.")
    print("The paper's headline comparison is cross-machine (GPU SpMV vs "
          "the CPU where traditional BFS is fastest) — see "
          "benchmarks/bench_fig10_gpu_vs_cpu.py for that ~1.5x regime.")
    print("On narrow-SIMD, latency-oriented CPUs the work-efficient "
          "traditional BFS stays competitive; vectorization pays on "
          "KNL-class manycores and GPUs.")


if __name__ == "__main__":
    main()
