#!/usr/bin/env python
"""Capacity planning: how many ranks does a BFS service need?

Routes the serving tier's open-loop workload (Poisson arrivals, Zipf root
skew, batching + MSHR coalescing on the virtual clock) through the
*distributed* cost models instead of a local kernel: every dispatched
batch is priced as a batched 1D BFS-SpMV sweep on P ranks of a chosen
machine over a chosen network, optionally degraded by rank failures and
checkpoint/restart.  The planner sweeps ranks x network x max_batch and
reports, per (qps, p99) target, the cheapest configuration that holds the
target — the paper's vectorization story turned into a provisioning
answer.

Also shown: heterogeneous placement.  When the ranks are *unequal*
machines, `Partition1D.balanced(weights=machine_weights(...))` gives slow
ranks fewer rows; the weighted plan must beat uniform placement end to
end.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import compare_placement, kronecker, plan_capacity


def main() -> None:
    g = kronecker(scale=12, edgefactor=32, seed=7)
    print(f"workload: Kronecker n={g.n}, m={g.m}\n")

    # --- 1. The capacity grid: which configs hold which (qps, p99)? ---
    targets = [(5000.0, 0.002), (20000.0, 0.002)]
    plan = plan_capacity(
        g,
        targets,
        ranks=(1, 2, 4, 8),
        networks=("cray-aries", "ethernet-10g"),
        max_batches=(8, 32),
        nqueries=192,
        root_pool=48,
        zipf=0.8,
        cache=False,
        seed=1,
    )
    print("target            feasible  cheapest configuration")
    print("-" * 66)
    for t in plan["targets"]:
        label = f"{t['qps']:>7.0f} qps @ p99<={1e3 * t['p99_target_s']:g}ms"
        best = t["best"]
        if best is None:
            print(f"{label}  {t['feasible_configs']:>8d}  (infeasible)")
            continue
        print(
            f"{label}  {t['feasible_configs']:>8d}  "
            f"P={best['ranks']} {best['network']} max_batch={best['max_batch']} "
            f"(p99 {1e3 * best['latency_p99_s']:.3f} ms)"
        )

    # --- 2. Checkpoint policy under rank failures ---
    faulty = plan_capacity(
        g,
        [(5000.0, 0.004)],
        ranks=(8,),
        networks=("cray-aries",),
        max_batches=(8,),
        rank_failure_prob=0.05,
        checkpoint_intervals=(None, 1, 4),
        nqueries=192,
        root_pool=48,
        zipf=0.8,
        cache=False,
        seed=1,
    )
    cell = faulty["grid"][0]["per_target"][0]
    print("\ncheckpoint policy at p(rank failure)=0.05 on P=8/cray-aries:")
    for key, p99 in cell["interval_p99_s"].items():
        chosen = "  <- chosen" if key == cell["checkpoint_interval"] else ""
        print(f"  every {key:>5s} iters: p99 {1e3 * p99:.3f} ms{chosen}")

    # --- 3. Heterogeneous placement: weighted beats uniform ---
    ab = compare_placement(
        g,
        "knl*3,knl@0.4",
        network="cray-aries",
        max_batch=8,
        nqueries=96,
        root_pool=24,
        zipf=0.8,
        max_wait=1e-5,
    )
    print(f"\nplacement on {ab['machines']} ({ab['network']}):")
    for mode in ("uniform", "weighted"):
        r = ab[mode]
        print(
            f"  {mode:>8s}: pool sweep {1e3 * r['pool_sweep_s']:.3f} ms, "
            f"served p99 {1e3 * r['latency_p99_s']:.3f} ms, "
            f"rows/rank {r['work_per_rank']}"
        )
    print(
        f"  weighted wins: sweep {ab['sweep_improvement']:.2f}x, "
        f"p99 {ab['p99_improvement']:.2f}x"
    )


if __name__ == "__main__":
    main()
