#!/usr/bin/env python
"""Road-network reachability: where SlimSell does NOT shine (and why).

§IV-A5 of the paper: graphs with high diameter and low average degree
(amz, rca) see "small or no improvement from SlimWork, regardless of σ" —
each of the many BFS iterations touches only a thin frontier, so algebraic
full-matrix sweeps waste work that traditional BFS never does.

This example quantifies that honestly on the California-road proxy:
SlimWork's chunk skipping barely dents the work, the iteration count is in
the hundreds, and direction-optimizing traditional BFS is the right tool.

Run:  python examples/roadnet_reachability.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BFSSpMV,
    SlimSell,
    bfs_direction_optimizing,
    bfs_top_down,
    realworld_proxy,
)
from repro.graphs.utils import largest_component


def main() -> None:
    g = largest_component(realworld_proxy("rca", downscale=1024, seed=5))
    print(f"road proxy: n={g.n}, m={g.m}, ρ̄={g.m / g.n:.2f}, "
          f"max degree={g.max_degree} (published rca: ρ̄=1.4, D=849)")
    root = 0

    rep = SlimSell(g, C=8, sigma=g.n)
    plain = BFSSpMV(rep, "tropical", compute_parents=False).run(root)
    slim = BFSSpMV(rep, "tropical", slimwork=True,
                   compute_parents=False).run(root)
    w_plain = sum(it.work_lanes for it in plain.iterations)
    w_slim = sum(it.work_lanes for it in slim.iterations)
    print(f"\nBFS-SpMV: {plain.n_iterations} iterations (high diameter!)")
    print(f"SlimWork work reduction: {1 - w_slim / w_plain:.1%} "
          f"(the paper: 'small or no improvement ... regardless of σ')")

    trad = bfs_top_down(g, root)
    do = bfs_direction_optimizing(g, root)
    e_trad = sum(it.edges_examined for it in trad.iterations)
    e_spmv_equiv = w_slim  # one lane ≈ one adjacency slot examined
    print(f"\nwork comparison (adjacency entries touched):")
    print(f"  traditional top-down : {e_trad:10d}")
    print(f"  direction-optimizing : "
          f"{sum(it.edges_examined for it in do.iterations):10d}")
    print(f"  BFS-SpMV + SlimWork  : {e_spmv_equiv:10d} "
          f"({e_spmv_equiv / max(e_trad, 1):.0f}x the traditional work)")

    # Distances still agree, of course.
    assert np.array_equal(trad.dist, slim.dist)
    depth = int(slim.dist[np.isfinite(slim.dist)].max())
    print(f"\nall variants agree; BFS depth (eccentricity) = {depth}")
    print("takeaway: pick the representation for the graph — SlimSell for "
          "dense, low-diameter power-law graphs; work-efficient traversal "
          "for long thin ones.")


if __name__ == "__main__":
    main()
