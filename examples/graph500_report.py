#!/usr/bin/env python
"""Graph500-style report with terminal plots.

Runs the Graph500 kernel protocol on a Kronecker problem, validates every
BFS tree with the official five checks, and renders per-iteration shapes
with the built-in ASCII plotter — a self-contained analog of the paper's
evaluation workflow.

Run:  python examples/graph500_report.py
"""

from __future__ import annotations

import numpy as np

from repro import BFSSpMV, SlimSell, kronecker
from repro.graph500 import run_graph500
from repro.plot import ascii_bars, ascii_plot


def main() -> None:
    scale, edgefactor = 11, 16
    print(f"Graph500 kernel: scale={scale}, edgefactor={edgefactor}")
    report = run_graph500(scale, edgefactor, nroots=16, seed=9)
    print(f"graph: n={report.n}, m={report.m}; construction "
          f"{report.construction_time_s:.2f}s (includes SlimSell build)")
    print(f"harmonic-mean TEPS : {report.harmonic_mean_teps:.3e}")
    print(f"min / max TEPS     : {report.min_teps:.3e} / {report.max_teps:.3e}")
    print(f"median BFS time    : {report.median_time_s * 1e3:.2f} ms "
          f"(all {len(report.runs)} trees passed validation)\n")

    print(ascii_bars(
        {f"root {r.root}": r.teps for r in report.runs[:8]},
        title="TEPS per sampled root (first 8):", width=40))

    # Per-iteration shape of one traversal (the Fig 1 / Fig 5d curves).
    g = kronecker(scale, edgefactor, seed=9)
    rep = SlimSell(g, 16, g.n)
    root = int(np.argmax(g.degrees))
    on = BFSSpMV(rep, "tropical", slimwork=True, compute_parents=False).run(root)
    off = BFSSpMV(rep, "tropical", slimwork=False, compute_parents=False).run(root)
    print("\n" + ascii_plot(
        {"SlimWork": [it.work_lanes for it in on.iterations],
         "No SlimWork": [it.work_lanes for it in off.iterations]},
        title="padded lanes processed per iteration (SlimWork decay, Fig 5d):",
        width=48, height=10, xlabel="BFS iteration"))


if __name__ == "__main__":
    main()
