"""Trace exporters: JSONL and Chrome trace-event JSON.

Two on-disk formats, auto-detected on read by :func:`load_trace`:

* **JSONL** — one :meth:`Span.to_dict` object per line; lossless
  round-trip via :func:`read_jsonl`.
* **Chrome trace-event JSON** — ``{"traceEvents": [...]}`` with one
  complete (``"ph": "X"``) event per closed span, loadable by
  ``chrome://tracing`` and https://ui.perfetto.dev.  Timestamps are
  re-based to the earliest span and scaled to microseconds (the format's
  unit), so virtual-clock serve traces starting at t=0.0 render exactly
  like wall-clock engine traces.  Each distinct ``track`` attribute (or,
  absent that, each trace id) becomes one named thread row.

Exports are deterministic: span order, ids and timestamps come from the
tracer, and thread ids are assigned in first-appearance order.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

import numpy as np

from repro.obs.trace import Span

__all__ = [
    "chrome_trace_events",
    "load_trace",
    "read_chrome_trace",
    "read_jsonl",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
]


def _json_default(obj: Any) -> Any:
    """Fallback encoder: numpy scalars → Python scalars, else str."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


# ----------------------------------------------------------------------
# JSONL
def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write one span dict per line; returns the span count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), default=_json_default))
            fh.write("\n")
            n += 1
    return n


def read_jsonl(path: str) -> list[Span]:
    """Inverse of :func:`write_jsonl` (blank lines ignored)."""
    spans = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Chrome trace-event format
def chrome_trace_events(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Spans → trace-event dicts (metadata thread-name events first).

    Open spans export with ``dur = 0`` and ``"open": true`` in ``args``
    rather than being dropped — a truncated trace should say so.
    """
    spans = list(spans)
    if not spans:
        return []
    t0 = min(s.t_start for s in spans)
    tids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in spans:
        track = span.attrs.get("track")
        key = str(track) if track is not None else f"trace-{span.trace_id}"
        tid = tids.get(key)
        if tid is None:
            tid = len(tids) + 1
            tids[key] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": key},
                }
            )
        args = {
            "span_id": span.span_id,
            "trace_id": span.trace_id,
            "parent_id": span.parent_id,
        }
        args.update(span.attrs)
        if span.t_end is None:
            args["open"] = True
            dur_us = 0.0
        else:
            dur_us = (span.t_end - span.t_start) * 1e6
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "pid": 1,
                "tid": tid,
                "ts": (span.t_start - t0) * 1e6,
                "dur": dur_us,
                "args": args,
            }
        )
    return events


def write_chrome_trace(spans: Iterable[Span], path: str) -> int:
    """Write a ``chrome://tracing``/Perfetto-loadable JSON file.

    Returns the number of span events written (metadata events excluded).
    """
    events = chrome_trace_events(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            fh,
            default=_json_default,
        )
        fh.write("\n")
    return sum(1 for e in events if e["ph"] == "X")


def read_chrome_trace(path: str) -> list[Span]:
    """Rebuild spans from a Chrome trace-event file.

    Timestamps come back re-based (earliest span at 0.0) — durations and
    tree structure are preserved exactly; absolute epochs are not.
    """
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    spans = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args") or {})
        span_id = int(args.pop("span_id", len(spans) + 1))
        trace_id = int(args.pop("trace_id", span_id))
        parent_id = args.pop("parent_id", None)
        is_open = bool(args.pop("open", False))
        t_start = float(ev["ts"]) / 1e6
        t_end = None if is_open else t_start + float(ev.get("dur", 0.0)) / 1e6
        spans.append(
            Span(
                name=ev["name"],
                span_id=span_id,
                trace_id=trace_id,
                parent_id=None if parent_id is None else int(parent_id),
                t_start=t_start,
                t_end=t_end,
                attrs=args,
            )
        )
    return spans


# ----------------------------------------------------------------------
def load_trace(path: str) -> list[Span]:
    """Read a trace file in either format (sniffed from the first byte)."""
    first = ""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            first = line.strip()
            if first:
                break
    if not first.startswith("{"):
        return read_jsonl(path)
    # A JSONL file of span dicts also starts with "{" — span dicts carry
    # a "span_id" key at top level, the chrome envelope does not.
    try:
        doc = json.loads(first)
        if isinstance(doc, dict) and "span_id" in doc:
            return read_jsonl(path)
    except json.JSONDecodeError:
        pass
    return read_chrome_trace(path)


def summarize(spans: Iterable[Span]) -> dict[str, Any]:
    """Aggregate a span list: counts plus per-name totals.

    ``names`` maps span name → ``{count, total_s, mean_s}`` over *closed*
    spans (open spans count toward ``spans``/``open`` only).
    """
    spans = list(spans)
    names: dict[str, dict[str, float]] = {}
    n_open = 0
    for span in spans:
        if span.t_end is None:
            n_open += 1
            continue
        agg = names.setdefault(span.name, {"count": 0, "total_s": 0.0})
        agg["count"] += 1
        agg["total_s"] += span.duration_s
    for agg in names.values():
        agg["mean_s"] = agg["total_s"] / agg["count"] if agg["count"] else 0.0
    return {
        "spans": len(spans),
        "open": n_open,
        "traces": len({s.trace_id for s in spans}),
        "roots": sum(1 for s in spans if s.parent_id is None),
        "names": names,
    }
