"""Metrics registry: counters, gauges, streaming-quantile histograms, views.

Every tier publishes under stable dotted names into one
:class:`MetricsRegistry` (see the README's metric table): the serving
layer's counters live at ``serve.*``, component snapshots are *views* —
zero-cost lambdas evaluated only when read — at ``serve.result_cache.*``,
``serve.mshr.*``, ``serve.batcher.*`` and ``serve.breaker.*``, and the
executed backend publishes ``exec.*``.  Views keep the hot path free:
registering one does not touch the component it reads.

:class:`Histogram` tracks count/sum/min/max exactly and quantiles
approximately via the P² streaming estimator (Jain & Chlamtac, CACM
1985) — O(1) memory per tracked quantile, no sample retention, numpy
used only for the exact small-count fallback.

:func:`percentile` is the one shared exact-percentile helper (serve
stats, workload reports, the planner's report consumers all route
through it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
]


def percentile(values: Iterable[float], p: float) -> float:
    """Exact percentile of ``values`` (``numpy.percentile``; empty → 0.0).

    The single shared implementation of the latency-percentile idiom:
    ``float(np.percentile(np.asarray(values, dtype=np.float64), p))``
    with the empty population mapped to 0.0 — bit-identical to the
    expressions it replaced in ``ServeStats`` and ``workload._report``.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, p))


@dataclass
class Counter:
    """Monotonic-by-convention scalar (int stays int; floats allowed)."""

    name: str
    value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins scalar."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class _P2Quantile:
    """One P² streaming quantile estimator (five markers, O(1) memory)."""

    def __init__(self, q: float):
        self.q = float(q)
        self.count = 0
        self._heights: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._incr = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, x: float) -> None:
        self.count += 1
        h = self._heights
        if self.count <= 5:
            h.append(x)
            h.sort()
            return
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._incr[i]
        for i in (1, 2, 3):
            d = self._desired[i] - self._pos[i]
            right_gap = self._pos[i + 1] - self._pos[i]
            left_gap = self._pos[i - 1] - self._pos[i]
            if (d >= 1.0 and right_gap > 1.0) or (d <= -1.0 and left_gap < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                cand = self._parabolic(i, step)
                h[i] = cand if h[i - 1] < cand < h[i + 1] else self._linear(i, step)
                self._pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        n, h = self._pos, self._heights
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        j = i + int(d)
        n, h = self._pos, self._heights
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current estimate (exact while ≤ 5 samples; 0.0 when empty)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            return percentile(self._heights, 100.0 * self.q)
        return self._heights[2]


class Histogram:
    """Streaming distribution summary: exact moments + P² quantiles."""

    def __init__(self, name: str, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)):
        self.name = name
        self.quantiles = tuple(float(q) for q in quantiles)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._estimators = {q: _P2Quantile(q) for q in self.quantiles}

    def observe(self, x: float) -> None:
        x = float(x)
        self.count += 1
        self.sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        for est in self._estimators.values():
            est.observe(x)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate for a tracked quantile (KeyError for untracked)."""
        return self._estimators[float(q)].value

    def snapshot(self) -> dict[str, float]:
        out: dict[str, float] = {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for q in self.quantiles:
            out[f"p{100.0 * q:g}"] = self._estimators[q].value
        return out


class MetricsRegistry:
    """Name → metric store with lazy derived views.

    ``counter``/``gauge``/``histogram`` are get-or-create (TypeError on a
    kind mismatch, so one dotted name always means one thing).
    ``register_view`` maps a name to a zero-argument callable evaluated
    at read time; re-registering a view replaces it (components that are
    rebuilt re-register), but a view can never shadow a concrete metric
    or vice versa.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._views: dict[str, Callable[[], Any]] = {}

    def __len__(self) -> int:
        return len(self._metrics) + len(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics or name in self._views

    def _create(self, name: str, kind: type, **kwargs: Any):
        metric = self._metrics.get(name)
        if metric is None:
            if name in self._views:
                raise TypeError(f"{name!r} is already registered as a view")
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"{name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._create(name, Gauge)

    def histogram(
        self, name: str, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)
    ) -> Histogram:
        return self._create(name, Histogram, quantiles=quantiles)

    def register_view(self, name: str, fn: Callable[[], Any]) -> None:
        if name in self._metrics:
            raise TypeError(f"{name!r} is already a concrete metric")
        self._views[name] = fn

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Every registered dotted name, sorted."""
        return sorted(set(self._metrics) | set(self._views))

    def value(self, name: str) -> Any:
        """Current value: scalar for counters/gauges/views, dict for
        histograms (KeyError for unknown names)."""
        metric = self._metrics.get(name)
        if metric is not None:
            if isinstance(metric, Histogram):
                return metric.snapshot()
            return metric.value
        return self._views[name]()

    def snapshot(self) -> dict[str, Any]:
        """Evaluate everything into one flat name → value dict."""
        return {name: self.value(name) for name in self.names()}
