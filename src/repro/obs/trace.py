"""Span-based tracing on an injectable clock.

A :class:`Span` is one named interval ``[t_start, t_end]`` with a parent
link and free-form attributes; a :class:`Tracer` mints spans with
deterministic integer ids (no randomness — traces from seeded runs are
reproducible byte-for-byte) and keeps them in creation order.

Two clock domains coexist in this codebase and the tracer serves both:

* the **serving layer** runs on a *virtual* clock (workload-generator
  timestamps), so the server always passes explicit ``t=`` values and the
  tracer's own clock is never consulted — with ``tracer=None`` the serve
  path stays bit-identical, and with tracing on it stays deterministic;
* the **engines** measure *wall* time (``time.perf_counter``), either via
  explicit ``t=`` values from timestamps they already take or through the
  :meth:`Tracer.span` context manager.  The server re-bases those wall
  spans into the virtual window of the batch's kernel span (offset plus
  scale), so one exported trace shows both domains on one timeline.

Span ids are unique per tracer; trace ids group spans that share a root
(``parent=None`` starts a new trace).  Exporters live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One named interval in a trace tree.

    ``t_end is None`` marks a span still open; :meth:`Tracer.end` closes
    it.  ``attrs`` is the span's free-form annotation dict (engine name,
    batch width, linked span ids, ...).
    """

    name: str
    span_id: int
    trace_id: int
    parent_id: int | None
    t_start: float
    t_end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def is_root(self) -> bool:
        """Whether this span starts its trace (no parent)."""
        return self.parent_id is None

    @property
    def duration_s(self) -> float:
        """Closed duration in seconds (0.0 while the span is open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            name=d["name"],
            span_id=int(d["span_id"]),
            trace_id=int(d["trace_id"]),
            parent_id=None if d.get("parent_id") is None else int(d["parent_id"]),
            t_start=float(d["t_start"]),
            t_end=None if d.get("t_end") is None else float(d["t_end"]),
            attrs=dict(d.get("attrs") or {}),
        )


class Tracer:
    """Mints and collects :class:`Span` objects on an injectable clock.

    ``clock`` is only consulted when a call omits its explicit ``t=``
    timestamp — callers that already own a clock (the virtual-time server,
    engines that measured ``perf_counter`` anyway) pass ``t=`` and the
    tracer performs no time reads of its own.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.spans: list[Span] = []
        self._next_span_id = 1
        self._next_trace_id = 1

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        *,
        parent: Span | None = None,
        t: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span (a new trace root when ``parent`` is None)."""
        if t is None:
            t = self.clock()
        if parent is None:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name=name,
            span_id=self._next_span_id,
            trace_id=trace_id,
            parent_id=parent_id,
            t_start=t,
            attrs=attrs,
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, *, t: float | None = None, **attrs: Any) -> Span:
        """Close an open span (annotating it with ``attrs``)."""
        if span.t_end is not None:
            raise ValueError(f"span {span.span_id} ({span.name}) already ended")
        span.t_end = self.clock() if t is None else t
        if attrs:
            span.attrs.update(attrs)
        return span

    def record(
        self,
        name: str,
        t_start: float,
        t_end: float,
        *,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        """Add an already-closed span from explicit timestamps.

        Never reads the clock — the retroactive form used for intervals
        whose bounds are only known after the fact (queue waits, kernel
        windows computed from virtual completion times).
        """
        span = self.begin(name, parent=parent, t=t_start, **attrs)
        span.t_end = t_end
        return span

    @contextmanager
    def span(
        self, name: str, *, parent: Span | None = None, **attrs: Any
    ) -> Iterator[Span]:
        """Clock-timed span around a ``with`` block (wall profiling)."""
        s = self.begin(name, parent=parent, **attrs)
        try:
            yield s
        finally:
            self.end(s)

    # ------------------------------------------------------------------
    def roots(self) -> list[Span]:
        """Spans with no parent, in creation order."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in creation order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def by_id(self, span_id: int) -> Span | None:
        """The span with ``span_id``, or None."""
        for s in self.spans:
            if s.span_id == span_id:
                return s
        return None

    def clear(self) -> None:
        """Drop collected spans (id counters keep running)."""
        self.spans.clear()
