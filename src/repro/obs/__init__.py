"""Observability: span tracing, a metrics registry, and trace exporters.

The cross-tier visibility layer (PR 10).  Three pieces, importable
without pulling in any other subsystem (numpy is the only dependency,
so the engines, the serving layer and the dist models can all publish
into it without cycles):

* :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer`: deterministic
  span trees on an injectable clock (virtual serve time or wall time);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, P² streaming-quantile histograms and lazy derived views, plus
  :func:`percentile`, the one shared exact-percentile helper;
* :mod:`repro.obs.export` — JSONL and Chrome trace-event
  (``chrome://tracing``/Perfetto) exporters and readers.

See the README's "Observability" section for the span taxonomy and the
stable metric names.
"""

from repro.obs.export import (
    chrome_trace_events,
    load_trace,
    read_chrome_trace,
    read_jsonl,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "load_trace",
    "percentile",
    "read_chrome_trace",
    "read_jsonl",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
]
