"""ELLPACK format — the related-work storage comparison point (§V).

ELLPACK/ELL pads *every* row to the global maximum degree and stores the
matrix as a dense n × ρ̂ block.  The paper positions Sell-C-σ as the fix
for exactly this: ELLPACK's padding is catastrophic on power-law graphs
(one hub row inflates all rows), while chunk-local padding with σ sorting
keeps P ≈ ρ̂·C.  Having ELLPACK in-tree makes that contrast measurable:

=============  ===========================
ELLPACK        2·n·ρ̂ cells (val + col, both padded)
SlimELLPACK    n·ρ̂ cells (col only, the SlimSell trick applies here too!)
Sell-C-σ       4m + 2n/C + P
SlimSell       2m + 2n/C + P
=============  ===========================

The SlimSell optimization "is applicable not only to Sell-C-σ but also
other sparse matrix formats such as ELLPACK" (§V) — ``slim=True`` realizes
that claim.
"""

from __future__ import annotations

import numpy as np

from repro.formats.sell import PAD
from repro.graphs.graph import Graph
from repro.semirings.base import SemiringBFS


class Ellpack:
    """ELLPACK layout of an undirected graph's adjacency matrix.

    Parameters
    ----------
    graph:
        The graph to encode.
    slim:
        Drop the ``val`` array and keep −1 markers in ``col`` (the SlimSell
        optimization transplanted onto ELLPACK).
    """

    def __init__(self, graph: Graph, slim: bool = False):
        self.graph = graph
        self.slim = bool(slim)
        n = graph.n
        width = graph.max_degree
        col = np.full((n, width), PAD, dtype=np.int32)
        deg = graph.degrees
        if graph.indices.size:
            rows = np.repeat(np.arange(n, dtype=np.int64), deg)
            pos = (np.arange(graph.indices.size, dtype=np.int64)
                   - np.repeat(graph.indptr[:-1], deg))
            col[rows, pos] = graph.indices
        #: Column-index block, shape (n, ρ̂); −1 marks padding.
        self.col = col
        self.width = int(width)

    @property
    def name(self) -> str:
        """Representation label."""
        return "slim-ellpack" if self.slim else "ellpack"

    @property
    def n(self) -> int:
        """Number of rows."""
        return self.graph.n

    @property
    def padding_slots(self) -> int:
        """Padded slots in the block (n·ρ̂ − 2m)."""
        return int(self.col.size - self.graph.indices.size)

    def val_for(self, semiring: SemiringBFS) -> np.ndarray:
        """Materialized (or derived, when slim) values for a semiring."""
        return semiring.values_from_edge_mask(self.col != PAD)

    def storage_cells(self) -> int:
        """n·ρ̂ cells for the slim variant, 2·n·ρ̂ with an explicit val."""
        return self.col.size if self.slim else 2 * self.col.size

    def spmv(self, semiring: SemiringBFS, x: np.ndarray) -> np.ndarray:
        """Reference ``A ⊗ x`` over the dense block (row-major reduction)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] < self.n:
            raise ValueError("x is shorter than the number of rows")
        vals = self.val_for(semiring).reshape(self.n, self.width)
        if self.width == 0:
            return np.full(self.n, semiring.zero)
        rhs = x[self.col]  # -1 gathers wrap; annihilated by pad values
        contrib = semiring.mul(vals, rhs)
        return semiring.add.reduce(
            np.asarray(contrib, dtype=np.float64), axis=1,
            initial=semiring.zero)
