"""Sell-C-σ construction (§II-D2, Fig 2) — the chunked, SIMD-friendly layout.

The adjacency matrix is split into ``nc = ⌈n/C⌉`` chunks of C consecutive
rows.  Inside σ-scoped windows, rows are sorted by descending degree (a
symmetric vertex relabeling), which packs similar-length rows together and
minimizes zero-padding.  Each chunk is stored **column-major**: slot
``cs[i] + j·C + r`` holds the j-th neighbor of the chunk's r-th row, so C
consecutive memory cells feed the C SIMD lanes directly (the "rotate the
layout by 90°" move of the paper).

Internally padding slots carry the marker ``PAD = -1`` in ``col``.
``SellCSigma`` materializes an explicit ``val`` array per semiring and a
gather-safe ``col`` (padding redirected to index 0, annihilated by val);
``SlimSell`` (see :mod:`repro.formats.slimsell`) keeps the marker and drops
``val`` — that is the entire storage trick of §III-B.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graphs.graph import Graph
from repro.semirings.base import SemiringBFS

#: Column-index marker for padding slots (§III-B: "a special marker, e.g., -1").
PAD = np.int32(-1)


def sigma_sort_permutation(degrees: np.ndarray, sigma: int) -> np.ndarray:
    """σ-scoped sort: perm[v] = new id of old vertex v.

    Rows are sorted by descending degree inside each window of ``sigma``
    consecutive vertices (σ=1 keeps the input order; σ=n is a full sort).
    The sort is stable so results are deterministic.

    Vectorized: the degree vector is padded to a whole number of windows
    with a sentinel key that sorts last, reshaped to ``(n/σ, σ)``, and
    argsorted row-wise on the (−degree, old id) key — one NumPy call
    instead of O(n/σ) interpreter iterations, with semantics identical to
    the windowed loop (see :func:`_sigma_sort_permutation_loop`).
    """
    n = degrees.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    sigma = int(min(max(sigma, 1), n))
    if sigma == 1:
        return np.arange(n, dtype=np.int64)
    nw = -(-n // sigma)  # number of σ-windows, last one possibly partial
    # Key = −degree (ascending == descending degree); the pad sentinel is
    # larger than any real key so padded tail slots sort to the window end,
    # and the stable argsort keeps ties in old-id order.
    key = np.full(nw * sigma, np.iinfo(np.int64).max, dtype=np.int64)
    key[:n] = -np.asarray(degrees, dtype=np.int64)
    local = np.argsort(key.reshape(nw, sigma), axis=1, kind="stable")
    offsets = (np.arange(nw, dtype=np.int64) * sigma)[:, None]
    order = (local + offsets).ravel()
    order = order[order < n]  # drop the padded tail of the last window
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return perm


def _sigma_sort_permutation_loop(degrees: np.ndarray, sigma: int) -> np.ndarray:
    """Reference implementation: the original per-window Python loop.

    Kept as the semantic oracle for property tests of the vectorized
    :func:`sigma_sort_permutation` (exact stable-descending tie-breaks).
    """
    n = degrees.size
    sigma = int(min(max(sigma, 1), n)) if n else 1
    order = np.arange(n, dtype=np.int64)
    for start in range(0, n, sigma):
        stop = min(start + sigma, n)
        window = order[start:stop]
        # stable argsort of -degree == descending degree, ties by old id
        local = np.argsort(-degrees[window], kind="stable")
        order[start:stop] = window[local]
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return perm


class _ChunkedLayout:
    """Shared Sell-C-σ/SlimSell chunked storage (built once, wrapped twice)."""

    __slots__ = (
        "graph_original", "graph", "C", "sigma", "n", "N", "nc",
        "perm", "iperm", "cs", "cl", "col", "build_time_s", "sort_time_s",
    )

    def __init__(self, graph: Graph, C: int, sigma: int):
        if C < 1:
            raise ValueError(f"chunk height C must be >= 1, got {C}")
        t0 = time.perf_counter()
        self.graph_original = graph
        self.C = int(C)
        n = graph.n
        self.n = n
        self.sigma = int(min(max(sigma, 1), n)) if n else 1
        self.perm = sigma_sort_permutation(graph.degrees, self.sigma)
        self.sort_time_s = time.perf_counter() - t0
        self.iperm = np.empty(n, dtype=np.int64)
        self.iperm[self.perm] = np.arange(n, dtype=np.int64)
        self.graph = graph.permute(self.perm)

        self.nc = (n + C - 1) // C if n else 0
        self.N = self.nc * C
        deg = np.zeros(self.N, dtype=np.int64)
        deg[:n] = self.graph.degrees
        per_chunk = deg.reshape(self.nc, C) if self.nc else deg.reshape(0, C)
        self.cl = per_chunk.max(axis=1) if self.nc else np.zeros(0, dtype=np.int64)
        sizes = self.cl * C
        self.cs = np.zeros(self.nc, dtype=np.int64)
        if self.nc:
            np.cumsum(sizes[:-1], out=self.cs[1:])
        total = int(sizes.sum())

        # Scatter neighbor ids into column-major chunk slots (vectorized).
        col = np.full(total, PAD, dtype=np.int32)
        if self.graph.indices.size:
            row_of = np.repeat(np.arange(n, dtype=np.int64), self.graph.degrees)
            j_within = (np.arange(self.graph.indices.size, dtype=np.int64)
                        - np.repeat(self.graph.indptr[:-1], self.graph.degrees))
            chunk_of = row_of // C
            slot = self.cs[chunk_of] + j_within * C + (row_of % C)
            col[slot] = self.graph.indices
        self.col = col
        self.build_time_s = time.perf_counter() - t0

    # ------------------------------------------------------------------
    @property
    def total_slots(self) -> int:
        """Slots per padded array (= 2m + padding slots)."""
        return self.col.size

    @property
    def padding_slots(self) -> int:
        """Number of padding slots per padded array."""
        return int(self.col.size - self.graph.indices.size)

    def edge_mask(self) -> np.ndarray:
        """Bool mask over slots: True on edges, False on padding."""
        return self.col != PAD


class SellCSigma:
    """Sell-C-σ representation of an undirected graph (§II-D2).

    Parameters
    ----------
    graph:
        The graph to encode.
    C:
        Chunk height = SIMD width of the target unit (8 AVX, 16 AVX-512,
        32 GPU warp).
    sigma:
        Sorting scope in [1, n]; larger σ → less padding (§IV-A1).

    Attributes (paper names)
    ----------
    val-like data is materialized per semiring with :meth:`val_for`;
    ``col`` is gather-safe (padding → index 0); ``cs``/``cl`` are chunk
    start offsets and lengths; ``perm``/``iperm`` map original ↔ sorted ids.
    """

    name = "sell-c-sigma"
    has_val = True

    def __init__(self, graph: Graph, C: int, sigma: int | None = None,
                 _layout: _ChunkedLayout | None = None):
        self._layout = _layout if _layout is not None else _ChunkedLayout(
            graph, C, sigma if sigma is not None else graph.n)
        lay = self._layout
        self.C = lay.C
        self.sigma = lay.sigma
        self.cs = lay.cs
        self.cl = lay.cl
        self.perm = lay.perm
        self.iperm = lay.iperm
        self.graph = lay.graph
        self.graph_original = lay.graph_original
        #: Gather-safe column indices: padding slots redirected to vertex 0;
        #: the padding value annihilates their contribution.
        self.col = np.where(lay.col == PAD, np.int32(0), lay.col)
        self._edge_mask = lay.edge_mask()
        self._val_cache: dict[str, np.ndarray] = {}
        self._col64: np.ndarray | None = None

    # -- shared geometry ------------------------------------------------
    @property
    def n(self) -> int:
        """Number of (real) vertices."""
        return self._layout.n

    @property
    def N(self) -> int:
        """Padded vertex count nc·C (vectors are allocated at this length)."""
        return self._layout.N

    @property
    def nc(self) -> int:
        """Number of chunks."""
        return self._layout.nc

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self.graph.m

    @property
    def total_slots(self) -> int:
        """Slots per padded array (2m + P_slots)."""
        return self._layout.total_slots

    @property
    def padding_slots(self) -> int:
        """Padding slots per padded array."""
        return self._layout.padding_slots

    @property
    def build_time_s(self) -> float:
        """Wall-clock construction time (preprocessing, §IV-D)."""
        return self._layout.build_time_s

    @property
    def sort_time_s(self) -> float:
        """Wall-clock of the σ sort alone (preprocessing, §IV-D)."""
        return self._layout.sort_time_s

    # -- hot-path operands ------------------------------------------------
    @property
    def col64(self) -> np.ndarray:
        """``col`` widened to int64 for fancy indexing, materialized once.

        The layer engines index ``f[col[idx]]`` on every column layer of
        every traversal; memoizing the widened copy here (per instance,
        since SlimSell's ``col`` keeps the −1 markers while Sell-C-σ's is
        gather-safe) means repeated-traversal workloads — 64 Graph500
        roots, n betweenness sources — pay the astype exactly once.
        """
        c = self._col64
        if c is None:
            c = self.col.astype(np.int64)
            self._col64 = c
        return c

    # -- values ----------------------------------------------------------
    def val_for(self, semiring: SemiringBFS) -> np.ndarray:
        """Materialized ``val`` array under ``semiring`` (cached)."""
        v = self._val_cache.get(semiring.name)
        if v is None:
            v = semiring.values_from_edge_mask(self._edge_mask)
            self._val_cache[semiring.name] = v
        return v

    # -- storage (Table III) ----------------------------------------------
    @property
    def padding_cells(self) -> int:
        """The paper's P for this representation: padding in val *and* col."""
        return 2 * self.padding_slots

    def storage_cells(self) -> int:
        """Table III: 4m + 2n/C + P cells (val+col incl. padding, cs+cl)."""
        return 2 * self.total_slots + 2 * self.nc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(n={self.n}, m={self.m}, C={self.C}, "
                f"sigma={self.sigma}, slots={self.total_slots})")
