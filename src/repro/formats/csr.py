"""Compressed Sparse Row representation and the textbook MV product (§II-D1).

CSR stores the symmetric adjacency matrix with three arrays — ``val``,
``col``, ``row`` — for a total of 4m + n cells on an undirected graph
(Table III).  The SpMV here is the reference the Sell-C-σ/SlimSell kernels
are validated against; it mirrors Listing 3 semantics (row-major reduction
over a semiring) in fully vectorized NumPy via segment reductions.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.semirings.base import SemiringBFS


def segment_reduce(ufunc: np.ufunc, data: np.ndarray, indptr: np.ndarray,
                   empty_value: float) -> np.ndarray:
    """Reduce ``data`` per CSR row with ``ufunc``; empty rows get ``empty_value``.

    ``np.ufunc.reduceat`` returns ``data[i]`` (not the identity) for empty
    segments and cannot take an index equal to ``len(data)``, so both cases
    are patched up explicitly.
    """
    n = indptr.size - 1
    out = np.full(n, empty_value, dtype=np.float64)
    lengths = np.diff(indptr)
    nonempty = lengths > 0
    if data.size == 0 or not nonempty.any():
        return out
    starts = indptr[:-1][nonempty]
    out[nonempty] = ufunc.reduceat(data.astype(np.float64), starts)
    return out


class CSRMatrix:
    """CSR view of a graph's adjacency matrix, usable with any BFS semiring.

    Parameters
    ----------
    graph:
        The undirected :class:`~repro.graphs.graph.Graph`; its CSR arrays are
        shared (views), only ``val`` is materialized per semiring.
    """

    name = "csr"

    def __init__(self, graph: Graph):
        self.graph = graph
        self.row = graph.indptr
        self.col = graph.indices

    @property
    def n(self) -> int:
        """Number of matrix rows (= vertices)."""
        return self.graph.n

    @property
    def nnz(self) -> int:
        """Stored nonzeros (2m for an undirected graph)."""
        return self.col.size

    def val_for(self, semiring: SemiringBFS) -> np.ndarray:
        """The ``val`` array under a semiring (every entry is an edge)."""
        return np.full(self.nnz, semiring.edge_value, dtype=np.float64)

    def storage_cells(self) -> int:
        """Table III: 4m + n cells (val 2m, col 2m, row n)."""
        return 2 * self.nnz + self.n

    def spmv(self, semiring: SemiringBFS, x: np.ndarray) -> np.ndarray:
        """One MV product ``A ⊗ x`` over ``semiring`` (reference kernel).

        Off-diagonal structural zeros contribute the semiring zero, so the
        result of an empty row is ``semiring.zero``.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] < self.n:
            raise ValueError("x is shorter than the number of rows")
        contrib = semiring.mul(np.full(self.nnz, semiring.edge_value), x[self.col])
        return segment_reduce(semiring.add, np.asarray(contrib, dtype=np.float64),
                              self.row, semiring.zero)
