"""Storage accounting (Table III, inequality (3), Figure 7).

A *cell* is one 32-bit word, the paper's unit.  For every representation we
report both the closed-form Table III formula and the measured cell count of
the concrete arrays; the test suite asserts they agree exactly.

Table III:

=============  =========================
Sell-C-σ       4m + 2n/C + P  (P = padding in val *and* col)
CSR            4m + n
AL             2m + n
SlimSell       2m + 2n/C + P  (P = padding in col only)
=============  =========================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.adjacency_list import AdjacencyList
from repro.formats.csr import CSRMatrix
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.graph import Graph

BYTES_PER_CELL = 4


@dataclass(frozen=True)
class StorageReport:
    """Cell counts of all four representations for one graph/(C, σ) setting."""

    n: int
    m: int
    C: int
    sigma: int
    padding_slots: int
    csr_cells: int
    al_cells: int
    sell_cells: int
    slimsell_cells: int

    @property
    def slim_vs_sell(self) -> float:
        """SlimSell size as a fraction of Sell-C-σ (→ 0.5 for small P)."""
        return self.slimsell_cells / self.sell_cells

    @property
    def slim_vs_al(self) -> float:
        """SlimSell size as a fraction of AL (< 1 when ineq. (3) holds)."""
        return self.slimsell_cells / self.al_cells

    @property
    def slim_beats_al(self) -> bool:
        """Inequality (3): P < n(1 - 2/C) ⇔ SlimSell smaller than AL."""
        return self.padding_slots < self.n * (1 - 2 / self.C)

    def gib(self, which: str) -> float:
        """Size of one representation in GiB (Fig 7a/7c unit)."""
        cells = getattr(self, f"{which}_cells")
        return cells * BYTES_PER_CELL / 2**30


def formula_cells(n: int, m: int, C: int, padding_slots: int) -> dict[str, int]:
    """Closed-form Table III cell counts given the measured padding."""
    nc2 = 2 * ((n + C - 1) // C)  # the paper's 2n/C (cs + cl arrays)
    return {
        "csr": 4 * m + n,
        "al": 2 * m + n,
        "sell": 4 * m + nc2 + 2 * padding_slots,
        "slimsell": 2 * m + nc2 + padding_slots,
    }


def storage_report(graph: Graph, C: int, sigma: int | None = None,
                   sell: SellCSigma | None = None) -> StorageReport:
    """Measure all four representations on ``graph`` at a given (C, σ).

    An existing :class:`SellCSigma` can be passed to reuse its layout (the σ
    sort dominates construction cost for large graphs).
    """
    if sell is None:
        sell = SellCSigma(graph, C, sigma)
    slim = SlimSell.from_sell(sell)
    return StorageReport(
        n=graph.n,
        m=graph.m,
        C=sell.C,
        sigma=sell.sigma,
        padding_slots=sell.padding_slots,
        csr_cells=CSRMatrix(graph).storage_cells(),
        al_cells=AdjacencyList(graph).storage_cells(),
        sell_cells=sell.storage_cells(),
        slimsell_cells=slim.storage_cells(),
    )


def storage_table(graph: Graph, C: int, sigmas: list[int]) -> list[StorageReport]:
    """Storage reports across a σ sweep (one Fig 7 panel row)."""
    return [storage_report(graph, C, s) for s in sigmas]
