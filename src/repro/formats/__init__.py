"""Graph representations: CSR, adjacency list, Sell-C-σ, and SlimSell.

The two SIMD-friendly representations (``SellCSigma``, ``SlimSell``) share a
chunked builder (:mod:`repro.formats.sell`): the adjacency matrix is split
into chunks of C rows, rows are sorted by degree inside σ-scoped windows,
and each chunk is stored column-major so consecutive SIMD lanes process
consecutive rows (§II-D2, Fig 2).  SlimSell (§III-B, Fig 4) drops the
``val`` array entirely and derives values from −1 markers in ``col``.

Storage accounting for Table III lives in :mod:`repro.formats.storage`.
"""

from repro.formats.adjacency_list import AdjacencyList
from repro.formats.csr import CSRMatrix
from repro.formats.ellpack import Ellpack
from repro.formats.sell import PAD, SellCSigma
from repro.formats.slimsell import SlimSell
from repro.formats.weighted import WeightedSellCSigma, sssp_chunked
from repro.formats.storage import (
    StorageReport,
    storage_report,
    storage_table,
)

__all__ = [
    "AdjacencyList",
    "CSRMatrix",
    "Ellpack",
    "SellCSigma",
    "SlimSell",
    "WeightedSellCSigma",
    "sssp_chunked",
    "PAD",
    "StorageReport",
    "storage_report",
    "storage_table",
]
