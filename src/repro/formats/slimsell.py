"""SlimSell: the val-free chunked representation (§III-B, Fig 4, Listing 6).

For an undirected, unweighted graph the entries of A carry one bit of
information — edge or no edge — which the column array already encodes.
SlimSell therefore stores *only* ``col``, with the marker −1 on padding
slots.  A kernel reconstructs the values it needs in registers with one
vectorized compare (col == −1?) and one blend (edge → 1, padding → the
semiring's annihilator), trading two cheap ALU instructions for half of the
memory traffic of Sell-C-σ.

Gather safety: NumPy interprets index −1 as "last element", so gathering
``f[col]`` on a padding slot reads a valid cell whose contribution the
blended annihilator value kills — semantically identical to the paper's
kernels and memory-safe by construction.
"""

from __future__ import annotations

import numpy as np

from repro.formats.sell import PAD, SellCSigma, _ChunkedLayout
from repro.graphs.graph import Graph
from repro.semirings.base import SemiringBFS


class SlimSell(SellCSigma):
    """SlimSell representation: Sell-C-σ minus the ``val`` array.

    Shares all geometry with :class:`~repro.formats.sell.SellCSigma`;
    ``col`` keeps the −1 padding markers and :meth:`val_for` derives values
    on the fly (the engines use :attr:`derives_val` to issue the CMP+BLEND
    pair instead of a val load).
    """

    name = "slimsell"
    has_val = False

    def __init__(self, graph: Graph, C: int, sigma: int | None = None,
                 _layout: _ChunkedLayout | None = None):
        super().__init__(graph, C, sigma, _layout=_layout)
        # Undo the gather-safe rewrite: SlimSell's col *is* the marker array.
        self.col = self._layout.col

    @classmethod
    def from_sell(cls, sell: SellCSigma) -> "SlimSell":
        """Zero-copy conversion reusing an existing Sell-C-σ layout."""
        return cls(sell.graph_original, sell.C, sell.sigma, _layout=sell._layout)

    def val_for(self, semiring: SemiringBFS) -> np.ndarray:
        """Values derived from the markers (what a kernel computes in registers)."""
        v = self._val_cache.get(semiring.name)
        if v is None:
            v = semiring.values_from_edge_mask(self.col != PAD)
            self._val_cache[semiring.name] = v
        return v

    # -- storage (Table III) ----------------------------------------------
    @property
    def padding_cells(self) -> int:
        """The paper's P for SlimSell: padding lives only in ``col``."""
        return self.padding_slots

    def storage_cells(self) -> int:
        """Table III: 2m + 2n/C + P cells (col incl. padding, cs+cl)."""
        return self.total_slots + 2 * self.nc
