"""Adjacency-list representation (§II-D3).

AL is the representation traditional BFS uses: an array with the neighbor
ids of each vertex (2m cells) plus an offset array (n cells), for a total of
2m + n cells on an undirected, unweighted graph.  In this repository it is a
thin named wrapper over the graph's CSR arrays — which *is* the adjacency
list layout — existing so the storage analysis (Table III, Fig 7) and the
traditional-BFS baselines have a first-class comparison target.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


class AdjacencyList:
    """The 2m + n cell adjacency-list layout of an undirected graph."""

    name = "al"

    def __init__(self, graph: Graph):
        self.graph = graph
        #: Offsets of each vertex's neighbor block (n entries used; the
        #: paper's accounting charges n cells, the final sentinel is free).
        self.offsets = graph.indptr
        #: Concatenated neighbor ids (2m entries).
        self.neighbors = graph.indices

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.n

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self.graph.m

    def neighbors_of(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (zero-copy view)."""
        return self.graph.neighbors(v)

    def storage_cells(self) -> int:
        """Table III: 2m + n cells."""
        return int(self.neighbors.size) + self.n
