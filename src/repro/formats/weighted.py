"""Weighted Sell-C-σ: the chunked layout with real edge values.

The precise boundary of the SlimSell idea (§III-B): Sell-C-σ works for any
matrix, and its SIMD-friendly chunking carries over to weighted graphs
unchanged — but the ``val`` array now holds information (the weights) and
can no longer be reconstructed from ``col`` markers.  ``WeightedSellCSigma``
completes that story: it shares the geometry of :class:`SellCSigma` and
adds a weight-filled ``val``, on which :func:`sssp_chunked` runs min-plus
SSSP with the same layer sweep the BFS engines use.

Storage: 4m + 2n/C + P cells — exactly Sell-C-σ; the 2m-cell SlimSell
saving is unavailable, by construction.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bfs.result import BFSResult, IterationStats
from repro.formats.sell import SellCSigma
from repro.graphs.graph import Graph


class WeightedSellCSigma(SellCSigma):
    """Sell-C-σ over a weighted undirected graph.

    Parameters
    ----------
    graph:
        The graph (structure only).
    weights:
        float64[m] per-undirected-edge weights aligned with
        :meth:`Graph.edges` (canonical u < v order); must be non-negative.
    C / sigma:
        Chunk height and sorting scope, as for :class:`SellCSigma`.
    """

    name = "weighted-sell-c-sigma"
    has_val = True

    def __init__(self, graph: Graph, weights: np.ndarray, C: int,
                 sigma: int | None = None):
        super().__init__(graph, C, sigma)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (graph.m,):
            raise ValueError(
                f"weights must have shape ({graph.m},), got {weights.shape}")
        if weights.size and weights.min() < 0:
            raise ValueError("negative edge weights are not supported")
        self.edge_weights = weights
        self._wval = self._scatter_weights(weights)

    def _scatter_weights(self, weights: np.ndarray) -> np.ndarray:
        """Weights → padded slot array (padding = +inf, the ⊗ annihilator)."""
        g = self.graph_original
        n = g.n
        e = g.edges()
        keys = e[:, 0] * np.int64(n) + e[:, 1]
        order = np.argsort(keys)
        keys_sorted, w_sorted = keys[order], weights[order]
        # Each slot of the permuted layout corresponds to a directed entry
        # (row', col') in sorted space; map back to original-id pairs.
        lay = self._layout
        is_edge = lay.col != -1
        slots = np.flatnonzero(is_edge)
        # Recover (row', col') per edge slot from the chunk geometry.
        chunk_of = np.searchsorted(self.cs, slots, side="right") - 1
        within = slots - self.cs[chunk_of]
        rows_p = chunk_of * self.C + within % self.C
        cols_p = lay.col[slots].astype(np.int64)
        u = self.iperm[rows_p]
        v = self.iperm[cols_p]
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        idx = np.searchsorted(keys_sorted, lo * np.int64(n) + hi)
        val = np.full(lay.col.size, np.inf)
        val[slots] = w_sorted[idx]
        return val

    def val_for(self, semiring) -> np.ndarray:
        """Weighted values for the tropical semiring (others are undefined)."""
        if semiring.name != "tropical":
            raise ValueError(
                "WeightedSellCSigma only supports the tropical semiring "
                f"(min-plus SSSP); got {semiring.name!r}")
        return self._wval


def sssp_chunked(rep: WeightedSellCSigma, root: int,
                 max_iters: int | None = None) -> BFSResult:
    """Min-plus SSSP by repeated layer sweeps over the weighted layout.

    The weighted generalization of the tropical BFS-SpMV: identical memory
    access pattern, real edge weights in ``val``.  Converges in (weighted
    hop diameter + 1) sweeps.
    """
    from repro.semirings.base import get_semiring

    n = rep.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    sr = get_semiring("tropical")
    C = rep.C
    col = rep.col64  # memoized on the representation across runs
    val = rep.val_for(sr)
    lane_off = np.arange(C, dtype=np.int64)
    order = np.argsort(-rep.cl, kind="stable")
    scl = rep.cl[order]
    f = np.full(rep.N, np.inf)
    f[int(rep.perm[root])] = 0.0
    iters: list[IterationStats] = []
    cap = max_iters if max_iters is not None else rep.N + 1
    t0 = time.perf_counter()
    k = 0
    while k < cap:
        k += 1
        t_it = time.perf_counter()
        x = f.copy()
        x2d = x.reshape(rep.nc, C)
        for j in range(int(scl[0]) if scl.size else 0):
            live = order[: int(np.searchsorted(-scl, -j, side="left"))]
            if live.size == 0:
                break
            idx = (rep.cs[live] + j * C)[:, None] + lane_off
            contrib = sr.mul(val[idx], f[col[idx]])
            x2d[live] = sr.add(x2d[live], contrib)
        changed = int(np.count_nonzero(x != f))
        f = x
        iters.append(IterationStats(
            k=k, newly=changed, time_s=time.perf_counter() - t_it,
            work_lanes=int(rep.cl.sum()) * C, direction="weighted-sweep"))
        if changed == 0:
            break
    dist = f[rep.perm]
    from repro.apps.sssp import _weighted_parents, expand_edge_weights

    wd = expand_edge_weights(rep.graph_original, rep.edge_weights)
    return BFSResult(
        dist=dist, parent=_weighted_parents(rep.graph_original, wd, dist),
        root=root, method="sssp-chunked", semiring="tropical",
        representation=rep.name, iterations=iters,
        preprocess_time_s=rep.build_time_s,
        total_time_s=time.perf_counter() - t0)
