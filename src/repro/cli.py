"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``generate``  write a synthetic graph (kronecker / er / a Table IV proxy)
``bfs``       run any BFS variant on a graph file and report statistics
``graph500``  run the Graph500 kernel protocol (TEPS over sampled roots)
``storage``   print the Table III storage comparison for a graph
``machines``  list the seven modeled evaluation systems
``dist``      simulate the §VI distributed BFS (1D ranks or a 2D grid)
``exec``      execute the row-sharded parallel sweep (and calibrate models)
``serve``     run the micro-batching query server under a simulated load
``plan``      offline capacity planner: serve traffic priced by the dist
              models, swept over ranks × network × batch × checkpoints
``trace``     summarize or convert a trace exported with ``--trace``

``serve``, ``exec`` and ``plan`` accept ``--trace FILE``: the run records
a span tree per query/sweep and exports it as JSONL (``.jsonl``) or
Chrome trace-event JSON (anything else — loadable in ``chrome://tracing``
or https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load_graph(spec: str):
    """Parse a graph spec: a file path, or ``kronecker:scale,ef`` /
    ``er:n,m`` / ``proxy:id[,downscale]`` generator shorthand."""
    from repro.graphs.erdos_renyi import erdos_renyi_nm
    from repro.graphs.io import load_edgelist, load_npz
    from repro.graphs.kronecker import kronecker
    from repro.graphs.realworld import realworld_proxy

    if ":" in spec:
        kind, _, args = spec.partition(":")
        parts = args.split(",")
        if kind == "kronecker":
            return kronecker(int(parts[0]), float(parts[1]),
                             seed=int(parts[2]) if len(parts) > 2 else 0)
        if kind == "er":
            return erdos_renyi_nm(int(parts[0]), int(parts[1]),
                                  seed=int(parts[2]) if len(parts) > 2 else 0)
        if kind == "proxy":
            ds = int(parts[1]) if len(parts) > 1 else 128
            return realworld_proxy(parts[0], downscale=ds)
        raise SystemExit(f"unknown generator {kind!r}")
    if spec.endswith(".npz"):
        return load_npz(spec)
    return load_edgelist(spec)


def _make_tracer(path: str | None):
    """A fresh :class:`~repro.obs.trace.Tracer` when ``--trace`` was given."""
    if path is None:
        return None
    from repro.obs.trace import Tracer

    return Tracer()


def _export_trace(tracer, path: str | None) -> None:
    """Write the collected spans: ``.jsonl`` → JSONL, else Chrome JSON."""
    if tracer is None or path is None:
        return
    from repro.obs.export import write_chrome_trace, write_jsonl

    if path.endswith(".jsonl"):
        write_jsonl(tracer.spans, path)
    else:
        write_chrome_trace(tracer.spans, path)
    print(f"wrote {len(tracer.spans)} spans to {path}")


def _cmd_generate(args) -> int:
    from repro.graphs.io import save_edgelist, save_npz

    g = _load_graph(args.spec)
    if args.output.endswith(".npz"):
        save_npz(g, args.output)
    else:
        save_edgelist(g, args.output)
    print(f"wrote {args.output}: n={g.n} m={g.m} "
          f"avg_degree={g.avg_degree:.2f} max_degree={g.max_degree}")
    return 0


def _cmd_bfs(args) -> int:
    from repro.bfs.direction_opt import bfs_direction_optimizing
    from repro.bfs.spmspv import bfs_spmspv
    from repro.bfs.spmv import bfs_spmv
    from repro.bfs.traditional import bfs_top_down

    g = _load_graph(args.graph)
    root = args.root if args.root >= 0 else int(np.argmax(g.degrees))
    if args.batch < 1:
        raise SystemExit(f"--batch must be >= 1, got {args.batch}")
    if args.alpha is not None and not args.hybrid:
        raise SystemExit("--alpha requires --hybrid")
    if args.batch > 1 or args.hybrid:
        if args.algorithm != "spmv":
            raise SystemExit("--batch/--hybrid require --algorithm spmv")
        if args.engine == "chunk":
            raise SystemExit("--batch/--hybrid require the layer engine "
                             "(the chunk engine is single-source)")
        # Batch the requested root with the next-highest-degree vertices:
        # a deterministic multi-source workload over one SpMM sweep.
        by_degree = np.argsort(-g.degrees, kind="stable")
        roots = by_degree[by_degree != root][: args.batch - 1]
        roots = np.concatenate([[root], roots])
        if args.hybrid:
            from repro.bfs.mshybrid import bfs_mshybrid

            results = bfs_mshybrid(
                g, roots, args.semiring, C=args.chunk, sigma=args.sigma,
                slim=not args.sell, slimwork=args.slimwork,
                alpha=args.alpha if args.alpha is not None else 14.0)
        else:
            from repro.bfs.msbfs import bfs_msbfs

            results = bfs_msbfs(g, roots, args.semiring, C=args.chunk,
                                sigma=args.sigma, slim=not args.sell,
                                slimwork=args.slimwork)
        total = sum(r.total_time_s for r in results)
        print(f"method={results[0].method} semiring={results[0].semiring} "
              f"batch={len(results)}")
        for r in results:
            line = (f"  root {r.root}: reached {r.reached}/{g.n}, "
                    f"depth {r.eccentricity}, {r.n_iterations} iterations")
            if args.hybrid:
                dirs = [it.direction for it in r.iterations]
                line += (f" ({dirs.count('push')} push / "
                         f"{dirs.count('pull')} pull)")
            print(line)
        print(f"batched sweep total {total * 1e3:.2f} ms "
              f"({total / len(results) * 1e3:.2f} ms/source amortized)")
        return 0
    if args.algorithm == "spmv":
        res = bfs_spmv(g, root, args.semiring, C=args.chunk,
                       sigma=args.sigma, slim=not args.sell,
                       slimwork=args.slimwork, engine=args.engine)
    elif args.algorithm == "spmspv":
        res = bfs_spmspv(g, root, args.semiring)
    elif args.algorithm == "traditional":
        res = bfs_top_down(g, root)
    else:
        res = bfs_direction_optimizing(g, root)
    print(f"method={res.method} semiring={res.semiring or '-'} root={root}")
    print(f"reached {res.reached}/{g.n} vertices, depth {res.eccentricity}, "
          f"{res.n_iterations} iterations, {res.total_time_s * 1e3:.2f} ms")
    if args.verbose:
        for it in res.iterations:
            print(f"  iter {it.k}: newly={it.newly} "
                  f"chunks={it.chunks_processed}/{it.chunks_skipped} "
                  f"edges={it.edges_examined} t={it.time_s * 1e3:.3f} ms")
    return 0


def _cmd_graph500(args) -> int:
    from repro.graph500 import run_graph500

    if args.alpha is not None and not args.hybrid:
        raise SystemExit("--alpha requires --hybrid")
    report = run_graph500(
        args.scale, args.edgefactor, nroots=args.nroots, seed=args.seed,
        validate=not args.no_validate,
        batch=args.batch if args.batch > 1 else None,
        hybrid=args.hybrid,
        alpha=args.alpha if args.alpha is not None else 14.0)
    mode = f"batch={args.batch}" if args.batch > 1 else "sequential"
    if args.hybrid:
        mode += ", hybrid"
    print(f"graph500 scale={report.scale} edgefactor={report.edgefactor} "
          f"n={report.n} m={report.m} roots={len(report.runs)} ({mode})")
    print(f"construction {report.construction_time_s * 1e3:.1f} ms")
    print(f"harmonic-mean TEPS {report.harmonic_mean_teps:.3e} "
          f"(min {report.min_teps:.3e}, max {report.max_teps:.3e}, "
          f"median BFS {report.median_time_s * 1e3:.2f} ms)")
    return 0


def _cmd_storage(args) -> int:
    from repro.formats.ellpack import Ellpack
    from repro.formats.storage import storage_report

    g = _load_graph(args.graph)
    sigma = args.sigma if args.sigma else g.n
    rep = storage_report(g, args.chunk, sigma)
    print(f"n={g.n} m={g.m} C={rep.C} sigma={rep.sigma} "
          f"padding={rep.padding_slots} slots")
    print(f"{'CSR':12s} {rep.csr_cells:12d} cells")
    print(f"{'AL':12s} {rep.al_cells:12d} cells")
    print(f"{'Sell-C-sigma':12s} {rep.sell_cells:12d} cells")
    print(f"{'SlimSell':12s} {rep.slimsell_cells:12d} cells "
          f"({rep.slim_vs_sell:.1%} of Sell-C-sigma)")
    print(f"{'ELLPACK':12s} {Ellpack(g).storage_cells():12d} cells")
    print(f"{'SlimELLPACK':12s} {Ellpack(g, slim=True).storage_cells():12d} cells")
    return 0


def _cmd_dist(args) -> int:
    from repro.dist.bfs1d import bfs_dist_1d
    from repro.dist.bfs2d import bfs_dist_2d
    from repro.dist.network import get_network
    from repro.dist.partition import Partition1D
    from repro.formats.slimsell import SlimSell
    from repro.graph500 import sample_roots
    from repro.vec.machine import get_machine

    if args.nroots < 1:
        raise SystemExit(f"--nroots must be >= 1, got {args.nroots}")
    if args.batch is not None and args.nroots == 1:
        raise SystemExit("--batch requires --nroots > 1 (a multi-source sweep)")
    if args.transpose and not args.grid:
        raise SystemExit("--transpose requires --grid (the 2D model)")
    if not 0.0 <= args.overlap <= 1.0:
        raise SystemExit(f"--overlap must be in [0, 1], got {args.overlap:g}")
    for name in ("rank_failure", "straggler"):
        v = getattr(args, name)
        if not 0.0 <= v <= 1.0:
            flag = "--" + name.replace("_", "-")
            raise SystemExit(f"{flag} must be in [0, 1], got {v:g}")
    if args.checkpoint_interval is not None and args.checkpoint_interval < 1:
        raise SystemExit(f"--checkpoint-interval must be >= 1, "
                         f"got {args.checkpoint_interval}")
    faults = None
    if args.rank_failure > 0 or args.straggler > 0:
        from repro.dist.faults import DistFaultModel

        faults = DistFaultModel(
            rank_failure_prob=args.rank_failure,
            straggler_prob=args.straggler,
            checkpoint_interval=args.checkpoint_interval,
            seed=args.fault_seed)
    g = _load_graph(args.graph)
    machine = get_machine(args.machine)
    network = get_network(args.network)
    rep = SlimSell(g, args.chunk, args.sigma if args.sigma else g.n)
    slimwork = not args.no_slimwork
    batched = args.nroots > 1
    if batched:
        root = sample_roots(g, args.nroots, args.seed)
    else:
        root = args.root if args.root >= 0 else int(np.argmax(g.degrees))
    if args.grid:
        r, _, c = args.grid.lower().partition("x")
        if not (r.isdigit() and c.isdigit()):
            raise SystemExit(f"--grid must be RxC (e.g. 4x4), got {args.grid!r}")
        res = bfs_dist_2d(rep, root, (int(r), int(c)), machine, network,
                          slimwork=slimwork, batch=args.batch,
                          overlap=args.overlap, transpose=args.transpose,
                          faults=faults)
    else:
        part = (Partition1D.blocks(rep.nc, args.ranks) if args.blocks
                else Partition1D.balanced(rep.cl, args.ranks))
        res = bfs_dist_1d(rep, root, part, machine, network,
                          slimwork=slimwork, batch=args.batch,
                          overlap=args.overlap, faults=faults)
    t_local = sum(it.t_local_s for it in res.iterations)
    t_comm = sum(it.t_comm_s for it in res.iterations)
    if batched:
        print(f"method={res.method} ranks={res.ranks} "
              f"machine={res.machine} network={res.network} "
              f"sources={res.n_sources} batch={res.batch} "
              f"groups={res.groups} overlap={res.overlap:g}")
        print(f"reached {int(res.reached.sum())} vertices over "
              f"{res.n_sources} traversals in {res.n_iterations} union "
              f"iterations")
        print(f"modeled: local {t_local * 1e3:.3f} ms + comm "
              f"{t_comm * 1e3:.3f} ms -> {res.modeled_total_s * 1e3:.3f} ms "
              f"total ({res.modeled_per_source_s * 1e3:.3f} ms/source, "
              f"comm share {res.comm_fraction:.1%})")
        print(f"collectives: {res.total_comm_bytes} bytes/rank, "
              f"latency {res.total_comm_latency_s * 1e6:.1f} us "
              f"(paid once per layer for the whole batch)")
    else:
        print(f"method={res.method} ranks={res.ranks} "
              f"machine={res.machine} network={res.network} root={root}")
        print(f"reached {res.reached}/{g.n} vertices in {res.n_iterations} "
              f"iterations")
        print(f"modeled: local {t_local * 1e3:.3f} ms + comm {t_comm * 1e3:.3f} ms "
              f"= {res.modeled_total_s * 1e3:.3f} ms "
              f"(comm share {res.comm_fraction:.1%}, "
              f"{res.total_comm_bytes} bytes/rank)")
    if faults is not None:
        overhead = res.fault_overhead_s
        base = res.modeled_total_s - overhead
        share = f" ({overhead / base:.1%} of fault-free time)" if base > 0 \
            else ""
        interval = args.checkpoint_interval or "none (recompute from root)"
        print(f"resilience: rank-failure p={args.rank_failure:g}/rank/iter, "
              f"straggler p={args.straggler:g}, checkpoint "
              f"interval={interval}: overhead {overhead * 1e3:.3f} ms"
              + share)
    if args.verbose:
        for it in res.iterations:
            print(f"  iter {it.k}: newly={it.newly} width={it.width} "
                  f"active={it.chunks_active} imbalance={it.imbalance:.2f} "
                  f"t_local={it.t_local_s * 1e6:.1f}us "
                  f"t_comm={it.t_comm_s * 1e6:.1f}us "
                  f"t_fault={it.t_fault_s * 1e6:.1f}us")
    return 0


def _cmd_exec(args) -> int:
    from repro.bfs.msbfs import run_in_batches
    from repro.exec.engine import ExecMultiSourceBFS
    from repro.formats.slimsell import SlimSell
    from repro.graph500 import sample_roots

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.nroots < 1:
        raise SystemExit(f"--nroots must be >= 1, got {args.nroots}")
    g = _load_graph(args.graph)
    rep = SlimSell(g, args.chunk, args.sigma if args.sigma else g.n)
    slimwork = not args.no_slimwork
    roots = sample_roots(g, args.nroots, args.seed)
    tracer = _make_tracer(args.trace)
    if args.calibrate:
        from repro.dist.calibrate import calibrate

        rpt = calibrate(rep, roots, workers=args.workers,
                        machine=args.machine, network=args.network,
                        backend=args.backend, slimwork=slimwork,
                        batch=args.batch, tracer=tracer)
        print(rpt.describe())
        _export_trace(tracer, args.trace)
        return 0
    engine = ExecMultiSourceBFS(rep, workers=args.workers,
                                backend=args.backend, slimwork=slimwork)
    engine.tracer = tracer
    with engine:
        results = run_in_batches(engine, roots, args.batch)
        prof = list(engine.layer_profile)
    t_compute = sum(layer.t_compute_total_s for layer in prof)
    t_crit = sum(layer.t_local_s for layer in prof)
    t_exch = sum(layer.t_exchange_s for layer in prof)
    reached = sum(r.reached for r in results)
    print(f"method={results[0].method} workers={args.workers} "
          f"backend={args.backend} sources={len(results)} "
          f"batch={args.batch or len(results)}")
    print(f"reached {reached} vertices over {len(results)} traversals in "
          f"{len(prof)} executed layers")
    speedup = t_compute / t_crit if t_crit > 0 else 0.0
    print(f"measured: compute {t_compute * 1e3:.3f} ms total, critical "
          f"path {t_crit * 1e3:.3f} ms (critical-path speedup "
          f"{speedup:.2f}x), exchange {t_exch * 1e3:.3f} ms")
    if args.verbose:
        for layer in prof:
            shards = "/".join(f"{t * 1e6:.0f}" for t in layer.t_workers)
            print(f"  layer {layer.k}: width={layer.width} "
                  f"chunks={list(layer.chunks_per_worker)} "
                  f"t_workers={shards}us "
                  f"t_exchange={layer.t_exchange_s * 1e6:.1f}us")
    _export_trace(tracer, args.trace)
    return 0


def _cmd_serve(args) -> int:
    from repro.graph500 import sample_roots
    from repro.serve.server import Server
    from repro.serve.workload import (
        poisson_arrivals,
        run_closed_loop,
        run_open_loop,
        sample_zipf_roots,
    )

    if args.queries < 1:
        raise SystemExit(f"--queries must be >= 1, got {args.queries}")
    if args.max_batch < 1:
        raise SystemExit(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.max_wait < 0:
        raise SystemExit(f"--max-wait must be >= 0, got {args.max_wait:g}")
    if args.cache < 0:
        raise SystemExit(f"--cache must be >= 0, got {args.cache}")
    if args.zipf < 0:
        raise SystemExit(f"--zipf must be >= 0, got {args.zipf:g}")
    if args.root_pool < 1:
        raise SystemExit(f"--root-pool must be >= 1, got {args.root_pool}")
    if args.clients is not None and args.clients < 1:
        raise SystemExit(f"--clients must be >= 1, got {args.clients}")
    for name in ("fault_transient", "fault_permanent", "fault_straggler",
                 "cache_flake"):
        v = getattr(args, name)
        if not 0.0 <= v <= 1.0:
            flag = "--" + name.replace("_", "-")
            raise SystemExit(f"{flag} must be in [0, 1], got {v:g}")
    if args.deadline is not None and args.deadline <= 0:
        raise SystemExit(f"--deadline must be > 0, got {args.deadline:g}")
    faults = None
    if (args.fault_transient > 0 or args.fault_permanent > 0
            or args.fault_straggler > 0 or args.cache_flake > 0):
        from repro.serve.faults import FaultPlan

        faults = FaultPlan(transient_rate=args.fault_transient,
                           permanent_rate=args.fault_permanent,
                           straggler_rate=args.fault_straggler,
                           cache_flake_rate=args.cache_flake,
                           seed=args.fault_seed)
    rate = float("inf") if args.arrival_rate == "inf" else None
    if rate is None:
        try:
            rate = float(args.arrival_rate)
        except ValueError:
            raise SystemExit(
                f"--arrival-rate must be a number or 'inf', "
                f"got {args.arrival_rate!r}") from None
        if not rate > 0:
            raise SystemExit(f"--arrival-rate must be positive, got {rate:g}")

    g = _load_graph(args.graph)
    tracer = _make_tracer(args.trace)
    server = Server(g, C=args.chunk, max_batch=args.max_batch,
                    max_wait=args.max_wait, cache_size=args.cache,
                    max_pending=args.max_pending, alpha=args.alpha,
                    faults=faults, serve_stale=args.serve_stale,
                    tracer=tracer)
    pool = sample_roots(g, args.root_pool, args.seed)
    roots = sample_zipf_roots(pool, args.queries, args.zipf, seed=args.seed)
    params = {"seed": args.seed, "zipf": args.zipf,
              "root_pool": args.root_pool}
    if args.closed_loop:
        report = run_closed_loop(server, roots, clients=args.clients,
                                 semiring=args.semiring, params=params)
        mode = (f"closed-loop ({args.clients or server.max_batch} clients)")
    else:
        arrivals = poisson_arrivals(args.queries, rate, seed=args.seed)
        report = run_open_loop(server, roots, arrivals,
                               semiring=args.semiring,
                               deadline=args.deadline,
                               params={**params, "rate": rate})
        mode = f"open-loop (Poisson, rate={rate:g}/s)"
    cs = server.cache.stats
    print(f"serve n={g.n} m={g.m} {mode}: {report['nqueries']} queries, "
          f"zipf s={args.zipf:g} over {pool.size} roots, "
          f"semiring={args.semiring}")
    print(f"config: max_batch={server.max_batch} "
          f"max_wait={server.max_wait * 1e3:g}ms cache={args.cache} "
          f"max_pending={args.max_pending}")
    print(f"served {report['served']} (rejected {report['rejected']}), "
          f"{report['batches']} batches, mean width "
          f"{report['mean_batch_width']:.1f}, "
          f"cache hits {report['cache_hits']} "
          f"(hit rate {cs.hit_rate:.1%}), "
          f"mshr hits {report['mshr_hits']} "
          f"(in-flight {server.mshr.stats.inflight_hits}, "
          f"pending {server.mshr.stats.pending_hits})")
    print(f"throughput: {report['kernel_throughput_qps']:.0f} q/s kernel, "
          f"{report['virtual_throughput_qps']:.0f} q/s wall "
          f"(kernel {report['kernel_s'] * 1e3:.1f} ms)")
    print(f"latency: p50 {report['latency_p50_s'] * 1e3:.2f} ms, "
          f"p95 {report['latency_p95_s'] * 1e3:.2f} ms, "
          f"p99 {report['latency_p99_s'] * 1e3:.2f} ms (kernel path; "
          f"{report['cache_hits']} cache hits at "
          f"{report['cache_latency_p99_s'] * 1e3:g} ms)")
    if faults is not None or args.deadline is not None or args.serve_stale:
        print(f"resilience: {report['timeouts']} timeouts, "
              f"{report['retries']} retries, {report['failed']} failed "
              f"({report['failed_batches']} batches), "
              f"{report['sheds']} shed, {report['stale_serves']} stale, "
              f"{report['cache_flakes']} cache flakes, breaker opened "
              f"{report['breaker_opens']}x")
    if args.verbose:
        for reason, count in sorted(server.stats.reasons.items()):
            print(f"  dispatch reason {reason}: {count}")
        widths = server.stats.widths
        print(f"  widths: {widths}")
    _export_trace(tracer, args.trace)
    return 0


def _parse_targets(specs: list[str]) -> list[tuple[float, float]]:
    """Parse ``--target QPS:P99_MS`` pairs into (qps, p99_seconds)."""
    targets = []
    for spec in specs:
        qps_s, sep, p99_s = spec.partition(":")
        if not sep:
            raise SystemExit(
                f"--target must be QPS:P99_MS (e.g. 5000:2), got {spec!r}")
        try:
            qps, p99_ms = float(qps_s), float(p99_s)
        except ValueError:
            raise SystemExit(f"bad --target {spec!r}: both fields must be "
                             f"numbers") from None
        if not qps > 0 or not p99_ms > 0:
            raise SystemExit(f"bad --target {spec!r}: QPS and P99_MS must "
                             f"be positive")
        targets.append((qps, p99_ms * 1e-3))
    return targets


def _cmd_plan(args) -> int:
    from repro.serve.plan import compare_placement, plan_capacity

    targets = _parse_targets(args.target)
    if args.queries < 1:
        raise SystemExit(f"--queries must be >= 1, got {args.queries}")
    if args.root_pool < 1:
        raise SystemExit(f"--root-pool must be >= 1, got {args.root_pool}")
    if not 0.0 <= args.fault_rate < 1.0:
        raise SystemExit(
            f"--fault-rate must be in [0, 1), got {args.fault_rate:g}")
    intervals: list[int | None] = []
    for part in args.checkpoints.split(","):
        part = part.strip()
        if part in ("never", "none", ""):
            intervals.append(None)
        elif part.isdigit() and int(part) >= 1:
            intervals.append(int(part))
        else:
            raise SystemExit(f"--checkpoints entries must be 'never' or a "
                             f"positive integer, got {part!r}")
    g = _load_graph(args.graph)

    if args.ablate_placement:
        if args.machines is None:
            raise SystemExit("--ablate-placement requires --machines")
        out = compare_placement(
            g, args.machines, network=args.networks.split(",")[0],
            max_batch=args.max_batches_list[0], target=targets[0],
            nqueries=args.queries, root_pool=args.root_pool,
            zipf=args.zipf, seed=args.seed, max_wait=args.max_wait,
            C=args.chunk)
        print(f"placement ablation on {'+'.join(out['machines'])} "
              f"({out['network']}, max_batch={out['max_batch']})")
        print(f"weights: {[round(w, 3) for w in out['weights']]}")
        for label in ("weighted", "uniform"):
            r = out[label]
            print(f"  {label:9s} pool sweep {r['pool_sweep_s'] * 1e3:.3f} ms  "
                  f"p99 {r['latency_p99_s'] * 1e3:.3f} ms  "
                  f"rows/rank {r['work_per_rank']}")
        print(f"weighted placement is {out['sweep_improvement']:.2f}x on the "
              f"sweep, {out['p99_improvement']:.2f}x on served p99")
        return 0

    tracer = _make_tracer(args.trace)
    plan = plan_capacity(
        g, targets, ranks=args.ranks_list, networks=args.networks.split(","),
        max_batches=args.max_batches_list, machine=args.machine,
        machines=args.machines, placement=args.placement,
        rank_failure_prob=args.fault_rate, checkpoint_intervals=intervals,
        nqueries=args.queries, root_pool=args.root_pool, zipf=args.zipf,
        seed=args.seed, fault_seed=args.fault_seed, max_wait=args.max_wait,
        overlap=args.overlap, C=args.chunk, cache=not args.no_cache,
        tracer=tracer)

    w = plan["workload"]
    print(f"capacity plan: n={w['n']} m={w['m']} {w['nqueries']} queries, "
          f"zipf s={w['zipf']:g} over {w['root_pool']} roots, "
          f"fault rate {w['rank_failure_prob']:g}")
    header = (f"{'ranks':>5s} {'network':>13s} {'batch':>5s} "
              f"{'ckpt':>5s} {'p99 ms':>9s} {'qps':>9s} feasible")
    for t_index, t in enumerate(plan["targets"]):
        print(f"-- target {t['qps']:g} qps at p99 <= "
              f"{t['p99_target_s'] * 1e3:g} ms "
              f"({t['feasible_configs']}/{len(plan['grid'])} feasible)")
        if args.verbose:
            print(header)
            for row in plan["grid"]:
                c = row["per_target"][t_index]
                ck = ("never" if c["checkpoint_interval"] is None
                      else str(c["checkpoint_interval"]))
                print(f"{row['ranks']:>5d} {row['network']:>13s} "
                      f"{row['max_batch']:>5d} {ck:>5s} "
                      f"{c['latency_p99_s'] * 1e3:>9.3f} "
                      f"{c['virtual_throughput_qps']:>9.0f} "
                      f"{'yes' if c['feasible'] else 'no'}")
        best = t["best"]
        if best is None:
            print("   infeasible: no swept configuration meets this target")
        else:
            ck = ("never" if best["checkpoint_interval"] is None
                  else str(best["checkpoint_interval"]))
            print(f"   cheapest: {best['ranks']} x {best['machine']} on "
                  f"{best['network']}, max_batch={best['max_batch']}, "
                  f"checkpoint={ck} -> p99 "
                  f"{best['latency_p99_s'] * 1e3:.3f} ms at "
                  f"{best['virtual_throughput_qps']:.0f} qps")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(plan, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    _export_trace(tracer, args.trace)
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.export import (
        load_trace,
        summarize,
        write_chrome_trace,
        write_jsonl,
    )

    spans = load_trace(args.file)
    s = summarize(spans)
    print(f"{args.file}: {s['spans']} spans in {s['traces']} traces "
          f"({s['roots']} roots, {s['open']} still open)")
    if s["names"]:
        width = max(max(len(n) for n in s["names"]), len("span"))
        print(f"{'span':<{width}s} {'count':>7s} {'total ms':>10s} "
              f"{'mean us':>10s}")
        for name, row in sorted(s["names"].items()):
            print(f"{name:<{width}s} {row['count']:>7d} "
                  f"{row['total_s'] * 1e3:>10.3f} "
                  f"{row['mean_s'] * 1e6:>10.1f}")
    if args.chrome:
        write_chrome_trace(spans, args.chrome)
        print(f"wrote {args.chrome} (chrome://tracing / Perfetto)")
    if args.jsonl:
        write_jsonl(spans, args.jsonl)
        print(f"wrote {args.jsonl}")
    return 0


def _cmd_machines(_args) -> int:
    from repro.vec.machine import MACHINES

    for m in MACHINES.values():
        print(f"{m.name:16s} {m.kind:9s} C={m.simd_width:<3d} "
              f"{m.units:3d} units @ {m.ghz} GHz, {m.bandwidth_gbs} GB/s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="SlimSell reproduction: vectorizable BFS toolbox")
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate and save a graph")
    g.add_argument("spec", help="kronecker:scale,ef | er:n,m | proxy:id")
    g.add_argument("output", help="output path (.txt edge list or .npz)")
    g.set_defaults(fn=_cmd_generate)

    b = sub.add_parser("bfs", help="run a BFS variant")
    b.add_argument("graph", help="graph file or generator spec")
    b.add_argument("--algorithm", default="spmv",
                   choices=["spmv", "spmspv", "traditional", "direction-opt"])
    b.add_argument("--semiring", default="tropical",
                   choices=["tropical", "real", "boolean", "sel-max"])
    b.add_argument("--root", type=int, default=-1,
                   help="root vertex (-1 = highest degree)")
    b.add_argument("--chunk", "-C", type=int, default=8, help="chunk height C")
    b.add_argument("--sigma", type=int, default=None, help="sorting scope")
    b.add_argument("--sell", action="store_true",
                   help="use Sell-C-sigma instead of SlimSell")
    b.add_argument("--slimwork", action="store_true", help="enable SlimWork")
    b.add_argument("--engine", default="layer", choices=["layer", "chunk"])
    b.add_argument("--batch", type=int, default=1,
                   help="multi-source batch width: traverse from this many "
                        "roots in one SpMM sweep (spmv only)")
    b.add_argument("--hybrid", action="store_true",
                   help="direction-optimizing engine: each batched source "
                        "picks push or pull per layer (spmv only)")
    b.add_argument("--alpha", type=float, default=None,
                   help="Beamer threshold for --hybrid (pull when frontier "
                        "edge mass > unexplored / alpha; default 14)")
    b.add_argument("--verbose", "-v", action="store_true")
    b.set_defaults(fn=_cmd_bfs)

    g5 = sub.add_parser("graph500", help="Graph500 kernel protocol (TEPS)")
    g5.add_argument("scale", type=int, help="Kronecker scale (n = 2**scale)")
    g5.add_argument("--edgefactor", type=float, default=16)
    g5.add_argument("--nroots", type=int, default=64,
                    help="number of sampled roots (official: 64)")
    g5.add_argument("--seed", type=int, default=1)
    g5.add_argument("--batch", type=int, default=1,
                    help="roots per multi-source SpMM batch (1 = sequential)")
    g5.add_argument("--hybrid", action="store_true",
                    help="direction-optimizing engine (per-column push/pull)")
    g5.add_argument("--alpha", type=float, default=None,
                    help="Beamer threshold for --hybrid (default 14)")
    g5.add_argument("--no-validate", action="store_true",
                    help="skip the five-check tree validation")
    g5.set_defaults(fn=_cmd_graph500)

    s = sub.add_parser("storage", help="Table III storage comparison")
    s.add_argument("graph", help="graph file or generator spec")
    s.add_argument("--chunk", "-C", type=int, default=8)
    s.add_argument("--sigma", type=int, default=None)
    s.set_defaults(fn=_cmd_storage)

    m = sub.add_parser("machines", help="list modeled systems")
    m.set_defaults(fn=_cmd_machines)

    d = sub.add_parser("dist", help="simulate the distributed BFS (§VI)")
    d.add_argument("graph", help="graph file or generator spec")
    d.add_argument("--ranks", "-P", type=int, default=8,
                   help="1D rank count (ignored with --grid)")
    d.add_argument("--grid", default=None,
                   help="2D process grid as RxC (e.g. 4x4)")
    d.add_argument("--machine", default="knl",
                   help="node descriptor (see `repro machines`)")
    from repro.dist.network import NETWORKS

    d.add_argument("--network", default="cray-aries",
                   choices=sorted(NETWORKS))
    d.add_argument("--chunk", "-C", type=int, default=16, help="chunk height C")
    d.add_argument("--sigma", type=int, default=None, help="sorting scope")
    d.add_argument("--root", type=int, default=-1,
                   help="root vertex (-1 = highest degree; single-source only)")
    d.add_argument("--nroots", type=int, default=1,
                   help="simulate a multi-source sweep from this many "
                        "Graph500-sampled roots (1 = single-source)")
    d.add_argument("--batch", type=int, default=None,
                   help="frontier columns per batched sweep (default: all "
                        "--nroots sources in one sweep)")
    d.add_argument("--overlap", type=float, default=0.0,
                   help="fraction (0..1) of each collective hidden behind "
                        "the local SpMV (0 = bulk-synchronous)")
    d.add_argument("--transpose", action="store_true",
                   help="charge the direction-optimizing frontier transpose "
                        "(2D grids only)")
    d.add_argument("--seed", type=int, default=1,
                   help="root-sampling seed for --nroots > 1")
    d.add_argument("--blocks", action="store_true",
                   help="naive block partition instead of work-balanced bands")
    d.add_argument("--no-slimwork", action="store_true",
                   help="disable SlimWork chunk skipping")
    d.add_argument("--rank-failure", type=float, default=0.0,
                   help="per-rank, per-iteration failure probability "
                        "charged by the fault model (default: 0 = off)")
    d.add_argument("--straggler", type=float, default=0.0,
                   help="P(the critical-path rank straggles 4x) per "
                        "iteration (default: 0 = off)")
    d.add_argument("--checkpoint-interval", type=int, default=None,
                   help="checkpoint the BFS state every K union iterations "
                        "(default: never; recover by recomputing from root)")
    d.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the fault-injection rng stream")
    d.add_argument("--verbose", "-v", action="store_true")
    d.set_defaults(fn=_cmd_dist)

    from repro.exec.pool import BACKENDS

    e = sub.add_parser(
        "exec",
        help="execute the row-sharded parallel SpMM sweep (measured, "
             "bit-identical to the batched engine)")
    e.add_argument("graph", help="graph file or generator spec")
    e.add_argument("--workers", "-w", type=int, default=2,
                   help="row shards swept per layer (default: 2)")
    e.add_argument("--backend", default="serial", choices=BACKENDS,
                   help="how shards run: instrumented in-process loop, "
                        "thread pool, or forked shared-memory processes")
    e.add_argument("--chunk", "-C", type=int, default=16,
                   help="chunk height C")
    e.add_argument("--sigma", type=int, default=None, help="sorting scope")
    e.add_argument("--nroots", type=int, default=8,
                   help="Graph500-sampled BFS sources (default: 8)")
    e.add_argument("--batch", type=int, default=None,
                   help="frontier columns per batched sweep "
                        "(default: all --nroots sources at once)")
    e.add_argument("--seed", type=int, default=1,
                   help="root-sampling seed")
    e.add_argument("--no-slimwork", action="store_true",
                   help="disable SlimWork chunk skipping")
    e.add_argument("--calibrate", action="store_true",
                   help="fit the dist cost model to the measured run and "
                        "print the machine/network descriptor diff")
    e.add_argument("--machine", default="knl",
                   help="descriptor to calibrate (see `repro machines`)")
    e.add_argument("--network", default="cray-aries",
                   choices=sorted(NETWORKS),
                   help="network descriptor to calibrate")
    e.add_argument("--trace", default=None, metavar="FILE",
                   help="export per-layer/worker spans (.jsonl = JSONL, "
                        "else Chrome trace JSON)")
    e.add_argument("--verbose", "-v", action="store_true")
    e.set_defaults(fn=_cmd_exec)

    sv = sub.add_parser(
        "serve", help="micro-batching query server under a simulated load")
    sv.add_argument("graph", help="graph file or generator spec")
    sv.add_argument("--queries", "-n", type=int, default=256,
                    help="number of queries in the simulated workload")
    sv.add_argument("--max-batch", type=int, default=16,
                    help="frontier columns per dispatched batch")
    sv.add_argument("--max-wait", type=float, default=2e-3,
                    help="seconds a query may wait for its batch to fill")
    sv.add_argument("--cache", type=int, default=1024,
                    help="result-cache capacity in entries (0 = off)")
    sv.add_argument("--max-pending", type=int, default=None,
                    help="pending-query bound; beyond it submits are "
                         "rejected (default: unbounded)")
    sv.add_argument("--arrival-rate", default="10000",
                    help="open-loop Poisson arrival rate in queries/s, or "
                         "'inf' for an all-at-once burst")
    sv.add_argument("--zipf", type=float, default=1.1,
                    help="Zipf exponent of root popularity (0 = uniform)")
    sv.add_argument("--root-pool", type=int, default=64,
                    help="distinct Graph500-sampled roots queries draw from")
    sv.add_argument("--closed-loop", action="store_true",
                    help="closed-loop saturation workload instead of "
                         "open-loop Poisson arrivals")
    sv.add_argument("--clients", type=int, default=None,
                    help="closed-loop concurrent clients "
                         "(default: max_batch)")
    sv.add_argument("--semiring", default="sel-max",
                    choices=["tropical", "real", "boolean", "sel-max"])
    sv.add_argument("--alpha", type=float, default=14.0,
                    help="Beamer threshold of the hybrid engine")
    sv.add_argument("--chunk", "-C", type=int, default=16,
                    help="chunk height C")
    sv.add_argument("--seed", type=int, default=1)
    sv.add_argument("--fault-transient", type=float, default=0.0,
                    help="per-attempt transient kernel-fault rate "
                         "(retried with backoff; default: 0 = off)")
    sv.add_argument("--fault-permanent", type=float, default=0.0,
                    help="per-attempt permanent kernel-fault rate "
                         "(fails the batch; default: 0 = off)")
    sv.add_argument("--fault-straggler", type=float, default=0.0,
                    help="P(a batch's kernel time straggles 4x)")
    sv.add_argument("--cache-flake", type=float, default=0.0,
                    help="P(a cache hit is dropped and re-misses)")
    sv.add_argument("--fault-seed", type=int, default=0,
                    help="seed of the fault-injection rng stream")
    sv.add_argument("--deadline", type=float, default=None,
                    help="per-query deadline in seconds (open loop only); "
                         "late results resolve TimedOut")
    sv.add_argument("--serve-stale", action="store_true",
                    help="serve prior-epoch cache entries (flagged stale) "
                         "while the circuit breaker is open")
    sv.add_argument("--trace", default=None, metavar="FILE",
                    help="export the per-query span trees (.jsonl = JSONL, "
                         "else Chrome trace JSON for Perfetto)")
    sv.add_argument("--verbose", "-v", action="store_true")
    sv.set_defaults(fn=_cmd_serve)

    def _int_list(spec: str) -> list[int]:
        try:
            values = [int(x) for x in spec.split(",") if x.strip()]
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected a comma list of integers, got {spec!r}") from None
        if not values or any(v < 1 for v in values):
            raise argparse.ArgumentTypeError(
                f"expected positive integers, got {spec!r}")
        return values

    pl = sub.add_parser(
        "plan", help="offline capacity planner: serve traffic priced by "
                     "the distributed models")
    pl.add_argument("graph", help="graph file or generator spec")
    pl.add_argument("--target", action="append", required=True,
                    metavar="QPS:P99_MS",
                    help="a (throughput, latency) target, e.g. 5000:2; "
                         "repeat for several targets")
    pl.add_argument("--ranks", dest="ranks_list", type=_int_list,
                    default=[1, 2, 4, 8],
                    help="comma list of rank counts to sweep")
    pl.add_argument("--networks", default="cray-aries,ethernet-10g",
                    help="comma list of network presets to sweep")
    pl.add_argument("--max-batches", dest="max_batches_list", type=_int_list,
                    default=[1, 8, 32],
                    help="comma list of server max_batch widths to sweep")
    pl.add_argument("--machine", default="knl",
                    help="homogeneous node descriptor (name[@factor])")
    pl.add_argument("--machines", default=None,
                    help="heterogeneous per-rank machine list, e.g. "
                         "'knl*3,knl@0.5' (fixes the rank count)")
    pl.add_argument("--placement", choices=["weighted", "uniform"],
                    default="weighted",
                    help="heterogeneous row placement policy")
    pl.add_argument("--ablate-placement", action="store_true",
                    help="compare weighted vs uniform placement on "
                         "--machines instead of sweeping capacity")
    pl.add_argument("--fault-rate", type=float, default=0.0,
                    help="per-iteration per-rank failure probability")
    pl.add_argument("--checkpoints", default="never",
                    help="comma list of checkpoint intervals to sweep "
                         "('never' or iteration counts, e.g. never,2,4)")
    pl.add_argument("--fault-seed", type=int, default=0)
    pl.add_argument("--queries", "-n", type=int, default=256)
    pl.add_argument("--root-pool", type=int, default=64)
    pl.add_argument("--zipf", type=float, default=1.1)
    pl.add_argument("--max-wait", type=float, default=1e-3,
                    help="seconds a query may wait for its batch to fill")
    pl.add_argument("--overlap", type=float, default=0.0,
                    help="fraction of each collective hidden behind compute")
    pl.add_argument("--no-cache", action="store_true",
                    help="disable the server's result cache")
    pl.add_argument("--chunk", "-C", type=int, default=16)
    pl.add_argument("--seed", type=int, default=1)
    pl.add_argument("--json", default=None,
                    help="also write the full plan payload to this path")
    pl.add_argument("--trace", default=None, metavar="FILE",
                    help="export span trees of every evaluated cell "
                         "(.jsonl = JSONL, else Chrome trace JSON)")
    pl.add_argument("--verbose", "-v", action="store_true",
                    help="print the full feasibility table per target")
    pl.set_defaults(fn=_cmd_plan)

    tr = sub.add_parser(
        "trace", help="summarize or convert an exported trace file")
    tr.add_argument("file", help="trace file (.jsonl or Chrome trace JSON)")
    tr.add_argument("--chrome", default=None, metavar="OUT",
                    help="convert to Chrome trace-event JSON "
                         "(chrome://tracing / Perfetto)")
    tr.add_argument("--jsonl", default=None, metavar="OUT",
                    help="convert to one-span-per-line JSONL")
    tr.set_defaults(fn=_cmd_trace)
    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
