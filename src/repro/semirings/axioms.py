"""Semiring axiom verification (the §III-A definition, checked numerically).

A semiring S = (X, op1, op2, el1, el2) requires (X, op1) to be a
commutative monoid with identity el1, (X, op2) a monoid with identity el2,
distributivity of op2 over op1, and el1 annihilating op2.  BFS additionally
relies on the padding value annihilating ⊗ with respect to ⊕ accumulation.

``verify_semiring`` exercises all of these on a sample of the semiring's
value domain and reports violations — used by the test suite and available
to users defining custom semirings against :class:`SemiringBFS`.
"""

from __future__ import annotations

import numpy as np

from repro.semirings.base import SemiringBFS

#: Default sample domains per semiring (representative closed subsets).
SAMPLE_DOMAINS: dict[str, np.ndarray] = {
    "tropical": np.array([0.0, 1.0, 2.0, 5.0, 100.0, np.inf]),
    "real": np.array([0.0, 1.0, 2.0, 3.5, 10.0]),
    "boolean": np.array([0.0, 1.0]),
    "sel-max": np.array([0.0, 1.0, 2.0, 7.0, 64.0]),
}

#: ⊗ identities (el2) per semiring: tropical ⊗ is +, so el2 = 0; the
#: multiplicative semirings use 1.
MUL_IDENTITY: dict[str, float] = {
    "tropical": 0.0,
    "real": 1.0,
    "boolean": 1.0,
    "sel-max": 1.0,
}


def verify_semiring(sr: SemiringBFS, domain: np.ndarray | None = None,
                    check_annihilation: bool = True) -> list[str]:
    """Check the semiring axioms on a value sample; return violations.

    An empty list means every axiom held on the sampled triples.  The
    sel-max semiring's practical el1 = 0 only annihilates on the
    non-negative domain (documented in :mod:`repro.semirings.selmax`), so
    the check runs on the declared domain.
    """
    if domain is None:
        domain = SAMPLE_DOMAINS.get(sr.name)
        if domain is None:
            raise ValueError(
                f"no default domain for {sr.name!r}; pass one explicitly")
    x = np.asarray(domain, dtype=np.float64)
    violations: list[str] = []
    a = x[:, None, None]
    b = x[None, :, None]
    c = x[None, None, :]

    def bad(name: str, lhs, rhs) -> None:
        eq = (lhs == rhs) | (np.isnan(lhs) & np.isnan(rhs))
        if not np.all(eq):
            violations.append(name)

    # (X, op1): commutative monoid with identity el1.
    bad("add-commutative", sr.add(a, b), sr.add(b, a))
    bad("add-associative", sr.add(sr.add(a, b), c), sr.add(a, sr.add(b, c)))
    bad("add-identity", sr.add(x, sr.zero), x)
    # (X, op2): monoid with identity el2.
    one = MUL_IDENTITY[sr.name] if sr.name in MUL_IDENTITY else sr.edge_value
    bad("mul-associative", sr.mul(sr.mul(a, b), c), sr.mul(a, sr.mul(b, c)))
    bad("mul-identity", sr.mul(x, one), x)
    # Distributivity: a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c).
    bad("distributivity",
        sr.mul(a, sr.add(b, c)),
        sr.add(sr.mul(a, b), sr.mul(a, c)))
    if check_annihilation:
        # Padding annihilation w.r.t. ⊕ accumulation (the SlimSell contract).
        bad("pad-annihilation", sr.add(x, sr.mul(sr.pad_value, x)), x)
    return violations
