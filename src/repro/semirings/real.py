"""The real semiring R = (R, +, ·, 0, 1) — §III-A2.

The MV product counts BFS paths: x_k[v] = number of length-k walks from the
root reaching v through frontier vertices.  The filter g (1 = unvisited)
restricts the next frontier to newly reached vertices: f_k = x_k ⊙ ḡ_k.
Distances accumulate as d = Σ k·⟦f_k ≠ 0⟧; parents need DP.

Path counts grow like ρ̄^k, so the carried frontier is clipped at
``PATH_COUNT_CLIP`` — clipping preserves non-zeroness (the only property
BFS consumes) while keeping ``0 · huge`` away from ``0 · inf = nan`` on
padding entries.
"""

from __future__ import annotations

import numpy as np

from repro.semirings.base import BFSState, SemiringBFS, count_newly
from repro.vec.ops import VectorUnit

#: Upper bound on carried path counts; row sums then stay < 1e308 for any
#: realistic row length, so no inf (hence no 0*inf) can appear.
PATH_COUNT_CLIP = 1e100


class RealSemiring(SemiringBFS):
    """plus-times BFS (path counting) with an unvisited filter g."""

    name = "real"
    add = np.add
    mul = np.multiply
    zero = 0.0
    edge_value = 1.0
    pad_value = 0.0
    needs_dp = True

    def init_state(self, n: int, N: int, root: int) -> BFSState:
        f = np.zeros(N)
        f[root] = 1.0
        g = np.zeros(N)
        g[:n] = 1.0
        g[root] = 0.0
        d = np.full(N, np.inf)
        d[root] = 0.0
        return BFSState(f=f, d=d, n=n, N=N, root=root, g=g)

    # ------------------------------------------------------------------
    def newly_mask(self, st: BFSState, x_raw: np.ndarray) -> np.ndarray:
        # Positive path count this iteration and not yet visited per g.
        return (x_raw != 0) & (st.g != 0)

    def postprocess(self, st: BFSState, x_raw: np.ndarray,
                    newly: np.ndarray | None = None) -> int | np.ndarray:
        mask = self.newly_mask(st, x_raw) if newly is None else newly
        st.d[mask] = st.depth
        st.g[mask] = 0.0
        st.f = np.where(mask, np.minimum(x_raw, PATH_COUNT_CLIP), 0.0)
        return count_newly(mask)

    def chunk_post(self, vu: VectorUnit, st: BFSState, f_next: np.ndarray,
                   addr: int, x: np.ndarray) -> int:
        C = vu.C
        zeros = np.zeros(C)
        clip = np.full(C, PATH_COUNT_CLIP)
        depth_vec = np.full(C, float(st.depth))
        g = vu.load(st.g, addr)
        nz = vu.cmp(x, zeros, "NEQ")
        gm = vu.cmp(g, zeros, "NEQ")
        msk = vu.logical_and(nz, gm)
        f_vals = vu.blend(zeros, vu.min(x, clip), msk)
        vu.store(f_next, addr, f_vals)
        xd = vu.mul(msk.astype(np.float64), depth_vec)
        d_new = vu.blend(vu.load(st.d, addr), xd, msk)
        vu.store(st.d, addr, d_new)
        g_new = vu.logical_and(vu.logical_not(msk), g)
        vu.store(st.g, addr, g_new)
        return int(np.count_nonzero(msk))

    def kernel_step(self, vu: VectorUnit, x: np.ndarray, rhs: np.ndarray,
                    vals: np.ndarray) -> np.ndarray:
        # x = ADD(MUL(rhs, vals), x)  -- the real-semiring analog of line 16.
        return vu.add(vu.mul(rhs, vals), x)

    def settled_lanes(self, st: BFSState) -> np.ndarray:
        return st.g == 0

    def finalize_distances(self, st: BFSState) -> np.ndarray:
        return st.d.copy()
