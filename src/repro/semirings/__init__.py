"""BFS semirings (§III-A): tropical, real, boolean, and sel-max.

Each semiring object bundles (1) the algebra — the ⊕/⊗ ufuncs, identities,
and the values taken by edge and padding entries of the transformed
adjacency matrix — and (2) the BFS semantics: state initialization, the
per-iteration post-processing that derives the frontier f_k from x_k
(Listing 5 lines 22–45), the SlimWork skip criterion (Listing 7), and
finalization into distances/parents.

Two equivalent forms of the post-processing exist: a whole-array NumPy form
(used by the layer engine) and a per-chunk form written against the
simulated vector ISA (used by the chunk engine, instruction-counted).
"""

from repro.semirings.base import BFSState, SemiringBFS, get_semiring
from repro.semirings.boolean import BooleanSemiring
from repro.semirings.real import RealSemiring
from repro.semirings.selmax import SelMaxSemiring
from repro.semirings.tropical import TropicalSemiring

SEMIRINGS = {
    "tropical": TropicalSemiring,
    "real": RealSemiring,
    "boolean": BooleanSemiring,
    "sel-max": SelMaxSemiring,
}

__all__ = [
    "SemiringBFS",
    "BFSState",
    "get_semiring",
    "SEMIRINGS",
    "TropicalSemiring",
    "RealSemiring",
    "BooleanSemiring",
    "SelMaxSemiring",
]
