"""The boolean semiring B = ({0,1}, |, &, 0, 1) — §III-A3.

The frontier is a 0/1 indicator; one MV product ORs together the frontier
bits of each vertex's neighbors.  Already-visited vertices are masked out by
the filter vector g (1 = unvisited), updated after every iteration
(Listing 5 lines 25–35).  Distances accumulate as d = ∪ k·f_k; parents need
the DP transformation.

Implementation note: on {0,1} floats, OR ≡ max and AND ≡ min, so the
whole-array path uses ``np.maximum``/``np.minimum`` (reduceat-friendly);
the vector-ISA path issues the paper's actual OR/AND instructions.
"""

from __future__ import annotations

import numpy as np

from repro.semirings.base import BFSState, SemiringBFS, count_newly
from repro.vec.ops import VectorUnit


class BooleanSemiring(SemiringBFS):
    """OR-AND BFS with an explicit unvisited filter g."""

    name = "boolean"
    add = np.maximum  # ≡ OR on {0,1}
    mul = np.minimum  # ≡ AND on {0,1}
    zero = 0.0
    edge_value = 1.0
    pad_value = 0.0
    needs_dp = True

    def init_state(self, n: int, N: int, root: int) -> BFSState:
        f = np.zeros(N)
        f[root] = 1.0
        g = np.zeros(N)
        g[:n] = 1.0  # virtual rows stay "visited" so they never block skipping
        g[root] = 0.0
        d = np.full(N, np.inf)
        d[root] = 0.0
        return BFSState(f=f, d=d, n=n, N=N, root=root, g=g)

    # ------------------------------------------------------------------
    def newly_mask(self, st: BFSState, x_raw: np.ndarray) -> np.ndarray:
        # Reached this iteration and not yet visited per the filter g.
        return (x_raw != 0) & (st.g != 0)

    def postprocess(self, st: BFSState, x_raw: np.ndarray,
                    newly: np.ndarray | None = None) -> int | np.ndarray:
        mask = self.newly_mask(st, x_raw) if newly is None else newly
        st.d[mask] = st.depth
        st.g[mask] = 0.0
        st.f = mask.astype(np.float64)
        return count_newly(mask)

    def chunk_post(self, vu: VectorUnit, st: BFSState, f_next: np.ndarray,
                   addr: int, x: np.ndarray) -> int:
        # Listing 5 lines 25-35 (constants are hoisted registers, uncounted).
        C = vu.C
        zeros = np.zeros(C)
        depth_vec = np.full(C, float(st.depth))
        g = vu.load(st.g, addr)
        xf = vu.cmp(vu.logical_and(x, g), zeros, "NEQ")  # filter the frontier
        vu.store(f_next, addr, xf)
        x_mask = xf
        xd = vu.mul(x_mask.astype(np.float64), depth_vec)  # distances = depth
        d_new = vu.blend(vu.load(st.d, addr), xd, x_mask)
        vu.store(st.d, addr, d_new)
        g_new = vu.logical_and(vu.logical_not(x_mask), g)  # update the filter
        vu.store(st.g, addr, g_new)
        return int(np.count_nonzero(x_mask))

    def kernel_step(self, vu: VectorUnit, x: np.ndarray, rhs: np.ndarray,
                    vals: np.ndarray) -> np.ndarray:
        # x = OR(AND(rhs, vals), x)  -- Listing 5 line 16.
        return vu.logical_or(vu.logical_and(rhs, vals), x).astype(np.float64)

    def settled_lanes(self, st: BFSState) -> np.ndarray:
        # Listing 7 lines 8-11: process the chunk while any filter entry != 0.
        return st.g == 0

    def finalize_distances(self, st: BFSState) -> np.ndarray:
        return st.d.copy()
