"""The tropical semiring T = (R ∪ {∞}, min, +, ∞, 0) — §III-A1.

A is transformed to A′ with ∞ on structural zeros and 1 (one hop) on edges.
Starting from x_0 = ∞ everywhere except x_0^r = 0, each product
``x_k = A′ ⊗_T f_{k-1}`` relaxes distances by one hop; after D iterations
x_D *is* the distance vector, and parents follow from the DP transformation.
The tropical variant has the cheapest post-processing of all semirings: a
single store per chunk (Listing 5 line 24).
"""

from __future__ import annotations

import numpy as np

from repro.semirings.base import BFSState, SemiringBFS, count_newly
from repro.vec.ops import VectorUnit


class TropicalSemiring(SemiringBFS):
    """min-plus BFS: frontier vector = current tentative distances."""

    name = "tropical"
    add = np.minimum
    mul = np.add
    zero = np.inf
    edge_value = 1.0
    pad_value = np.inf
    needs_dp = True

    def init_state(self, n: int, N: int, root: int) -> BFSState:
        f = np.full(N, np.inf)
        f[root] = 0.0
        # d aliases f conceptually; materialized at finalize time.
        return BFSState(f=f, d=f, n=n, N=N, root=root)

    # ------------------------------------------------------------------
    def newly_mask(self, st: BFSState, x_raw: np.ndarray) -> np.ndarray:
        # min-plus products only ever lower distances: changed == settled.
        return x_raw != st.f

    def postprocess(self, st: BFSState, x_raw: np.ndarray,
                    newly: np.ndarray | None = None) -> int | np.ndarray:
        mask = self.newly_mask(st, x_raw) if newly is None else newly
        st.f = x_raw
        st.d = x_raw
        return count_newly(mask)

    def chunk_post(self, vu: VectorUnit, st: BFSState, f_next: np.ndarray,
                   addr: int, x: np.ndarray) -> int:
        # Listing 5 line 24: "just a store".
        vu.store(f_next, addr, x)
        return int(np.count_nonzero(x != st.f[addr : addr + vu.C]))

    def kernel_step(self, vu: VectorUnit, x: np.ndarray, rhs: np.ndarray,
                    vals: np.ndarray) -> np.ndarray:
        # x = MIN(ADD(rhs, vals), x)  -- Listing 5 line 14.
        return vu.min(vu.add(rhs, vals), x)

    def settled_lanes(self, st: BFSState) -> np.ndarray:
        # Listing 7 lines 5-7: process the chunk while any distance is ∞.
        return np.isfinite(st.f)

    def finalize_distances(self, st: BFSState) -> np.ndarray:
        return st.f.copy()
