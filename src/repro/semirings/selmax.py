"""The sel-max semiring S = (R, max, ·, −∞, 1) — §III-A4.

The only semiring that yields *parents* directly, with no DP transformation.
The carried vector x holds 1-based vertex ids of visited vertices (0 =
unvisited).  One MV product gives each vertex the maximum id among its
visited neighbors — its parent candidate; unassigned vertices adopt it
(p_k = p_{k-1} + p̄_{k-1} ⊙ x_k), and x is re-normalized so every visited
vertex carries its own id (x_k = x̄̄_k ⊙ (1, 2, …, n)ᵀ).

Practical note: with ids ≥ 0 the value 0 acts as the ⊕ identity on all
reachable values, so padding uses 0 rather than the theoretical −∞ — this
matches the paper's kernels, which MUL padding entries to 0 and MAX them
away.
"""

from __future__ import annotations

import numpy as np

from repro.semirings.base import BFSState, SemiringBFS, count_newly
from repro.vec.ops import VectorUnit


class SelMaxSemiring(SemiringBFS):
    """max-times BFS computing the parent vector directly."""

    name = "sel-max"
    add = np.maximum
    mul = np.multiply
    zero = 0.0  # practical identity for non-negative ids (theoretical: -inf)
    edge_value = 1.0
    pad_value = 0.0
    needs_dp = False

    def init_state(self, n: int, N: int, root: int) -> BFSState:
        f = np.zeros(N)  # the carried vector is x itself
        f[root] = float(root + 1)
        p = np.zeros(N)
        p[root] = float(root + 1)  # paper: p_0 = x_0 (root parents itself)
        p[n:] = -1.0  # virtual rows never block SlimWork skipping
        d = np.full(N, np.inf)
        d[root] = 0.0
        st = BFSState(f=f, d=d, n=n, N=N, root=root, p=p)
        st.extras["ids1"] = np.arange(1, N + 1, dtype=np.float64)
        return st

    # ------------------------------------------------------------------
    def newly_mask(self, st: BFSState, x_raw: np.ndarray) -> np.ndarray:
        # Got a visited-neighbor id and has no parent yet (p = -1 on the
        # virtual padded rows, so they are never counted as settled).
        return (x_raw != 0) & (st.p == 0)

    def postprocess(self, st: BFSState, x_raw: np.ndarray,
                    newly: np.ndarray | None = None) -> int | np.ndarray:
        mask = self.newly_mask(st, x_raw) if newly is None else newly
        st.p[mask] = x_raw[mask]  # parent = max-id visited neighbor
        st.d[mask] = st.depth
        # x_k = nonzero-indicator ⊙ (1..n): each visited vertex carries its id.
        st.f = np.where(x_raw != 0, st.extras["ids1"], 0.0)
        return count_newly(mask)

    def chunk_post(self, vu: VectorUnit, st: BFSState, f_next: np.ndarray,
                   addr: int, x: np.ndarray) -> int:
        # Listing 5 lines 37-44 + the §III-A4 parent assignment.
        C = vu.C
        zeros = np.zeros(C)
        depth_vec = np.full(C, float(st.depth))
        pars = vu.load(st.p, addr)
        p_unset = vu.cmp(pars, zeros, "EQ")
        x_nz = vu.cmp(x, zeros, "NEQ")
        new_mask = vu.logical_and(p_unset, x_nz)
        pars = vu.blend(pars, x, new_mask)
        vu.store(st.p, addr, pars)
        d_new = vu.blend(vu.load(st.d, addr), depth_vec, new_mask)
        vu.store(st.d, addr, d_new)
        ids = vu.load(st.extras["ids1"], addr)
        x_norm = vu.blend(zeros, ids, x_nz)  # normalize x to own indices
        vu.store(f_next, addr, x_norm)
        return int(np.count_nonzero(new_mask))

    def kernel_step(self, vu: VectorUnit, x: np.ndarray, rhs: np.ndarray,
                    vals: np.ndarray) -> np.ndarray:
        # x = MAX(MUL(rhs, vals), x)  -- Listing 5 line 18.
        return vu.max(vu.mul(rhs, vals), x)

    def settled_lanes(self, st: BFSState) -> np.ndarray:
        # Listing 7 lines 12-14: process the chunk while any parent is 0.
        return st.p != 0

    def finalize_distances(self, st: BFSState) -> np.ndarray:
        return st.d.copy()

    def finalize_parents(self, st: BFSState) -> np.ndarray:
        out = np.full(st.p.shape, -1, dtype=np.int64)  # (N,) or batched (N, B)
        assigned = st.p > 0
        out[assigned] = st.p[assigned].astype(np.int64) - 1
        return out
