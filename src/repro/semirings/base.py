"""Semiring base class and BFS state shared by all algebraic BFS variants.

A semiring S = (X, op1, op2, el1, el2) gives the MV product
``x_k[v] = ⊕_w (A'[v, w] ⊗ f[w])`` (§III-A).  For BFS the matrix entries
take only two values: ``edge_value`` on edges and ``pad_value`` on padding /
structural zeros, where ``pad_value ⊗ anything`` must be absorbed by ⊕ —
that is exactly what lets SlimSell reconstruct ``val`` from a −1 marker in
``col`` with one CMP + one BLEND (Listing 6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.vec.ops import VectorUnit


@dataclass
class BFSState:
    """Mutable per-traversal state, in the representation's (permuted) id space.

    Arrays have length N = nc·C (padded to whole chunks); entries beyond n
    are virtual rows with no edges, initialized so they never block SlimWork
    skipping or convergence.

    **Batched states** (built by :meth:`SemiringBFS.init_batch_state`) carry
    a trailing batch axis: every per-vertex array has shape ``(N, B)`` and
    column ``b`` evolves bit-identically to the single-source state of
    ``roots[b]``.  The semiring methods that the layer engines call
    (``postprocess`` / ``settled_lanes`` / ``finalize_*``) are
    shape-polymorphic: they accept both layouts and return per-source
    results (shape ``(B,)``) for batched input.

    Attributes
    ----------
    f:
        The carried/gathered vector (frontier for tropical/boolean/real,
        the x vector for sel-max).  Double-buffered by the engines.
    d:
        Distances; ``inf`` = not yet reached, root = 0.
    g:
        Unvisited filter (boolean/real): 1 = not yet visited.
    p:
        1-based parent ids (sel-max): 0 = unassigned.
    depth:
        Current iteration number k (0 before the first expansion).
    n / N:
        Real and padded vertex counts.
    """

    f: np.ndarray
    d: np.ndarray
    n: int
    N: int
    root: int
    g: np.ndarray | None = None
    p: np.ndarray | None = None
    depth: int = 0
    extras: dict = field(default_factory=dict)


class SemiringBFS(ABC):
    """Algebra + BFS semantics of one semiring.

    Subclasses set the class attributes and implement state handling.

    Attributes
    ----------
    name:
        Identifier (``"tropical"``, ``"real"``, ``"boolean"``, ``"sel-max"``).
    add / mul:
        NumPy ufuncs for ⊕ (op1) and ⊗ (op2).  For the boolean semiring,
        max/min on {0,1} floats are used as OR/AND — identical algebra,
        reduceat-friendly.
    zero:
        Additive identity el1 (result of an empty reduction).
    edge_value / pad_value:
        Matrix entry on an edge / on padding.  ``pad_value`` is the ⊗
        annihilator w.r.t. ⊕ accumulation.
    needs_dp:
        True when parents require the DP transformation (all but sel-max).
    """

    name: str = "abstract"
    add: np.ufunc
    mul: np.ufunc
    zero: float
    edge_value: float
    pad_value: float
    needs_dp: bool = True

    # ------------------------------------------------------------------
    # State lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def init_state(self, n: int, N: int, root: int) -> BFSState:
        """Fresh state for a traversal from ``root`` (ids already permuted)."""

    def init_batch_state(self, n: int, N: int, roots: np.ndarray) -> BFSState:
        """Batched state whose column ``b`` equals ``init_state(n, N, roots[b])``.

        Per-vertex arrays (``f``/``d``/``g``/``p``) gain a trailing batch
        axis of width ``B = len(roots)``; root-independent extras of shape
        ``(N,)`` become broadcast-ready ``(N, 1)`` columns.  The batched
        SpMM engine (:mod:`repro.bfs.msbfs`) relies on every column
        trajectory being bit-identical to the corresponding single-source
        state, which this generic construction guarantees for any semiring.
        """
        roots = np.asarray(roots, dtype=np.int64)
        if roots.ndim != 1 or roots.size == 0:
            raise ValueError("roots must be a non-empty 1-D array")
        states = [self.init_state(n, N, int(r)) for r in roots]

        def stack(attr: str) -> np.ndarray | None:
            cols = [getattr(s, attr) for s in states]
            return None if cols[0] is None else np.stack(cols, axis=1)

        st = BFSState(f=stack("f"), d=stack("d"), n=n, N=N,
                      root=int(roots[0]), g=stack("g"), p=stack("p"))
        st.extras = {
            key: (value[:, None]
                  if isinstance(value, np.ndarray) and value.shape == (N,)
                  else value)
            for key, value in states[0].extras.items()
        }
        return st

    @abstractmethod
    def newly_mask(self, st: BFSState, x_raw: np.ndarray) -> np.ndarray:
        """Bool mask of vertices settled by this iteration's product.

        ``x_raw`` is the MV result combined with the carried vector, *before*
        :meth:`postprocess` has consumed it — the mask is exactly the set of
        vertices ``postprocess`` would newly settle, i.e. the next frontier.
        Shape-polymorphic: ``(N,)`` states yield a ``(N,)`` mask, batched
        ``(N, B)`` states a ``(N, B)`` mask (column-wise independent).

        The direction-optimizing engines (:mod:`repro.bfs.mshybrid`) rely on
        this to keep an explicit frontier across push/pull direction changes:
        a push step writes its sparse expansion into ``x_raw`` and the mask
        mirrors the resulting frontier back into the batched state exactly as
        a pull sweep would have.
        """

    @abstractmethod
    def postprocess(self, st: BFSState, x_raw: np.ndarray,
                    newly: np.ndarray | None = None) -> int | np.ndarray:
        """Whole-array derivation of f_k (and d/g/p updates) from x_k.

        ``x_raw`` is the MV result already combined with the carried vector
        (the kernels initialize each chunk register from the carried chunk).
        Returns the number of newly settled vertices; 0 means converged.
        Must write the new carried vector into ``st.f`` (fresh array).
        The settled set is ``newly_mask(st, x_raw)``; implementations share
        that predicate so the two views can never drift apart.  An engine
        that already evaluated it (the hybrid engines keep the mask as the
        next frontier) passes it as ``newly`` to skip the second pass.

        Shape-polymorphic: on a batched ``(N, B)`` state the same algebra
        applies column-wise and an ``int64[B]`` per-source count is returned.
        """

    @abstractmethod
    def chunk_post(self, vu: VectorUnit, st: BFSState, f_next: np.ndarray,
                   addr: int, x: np.ndarray) -> int:
        """Per-chunk post-processing on the vector ISA (Listing 5 l.22–45).

        ``x`` is the chunk's accumulated register; ``addr`` the chunk's base
        offset; ``f_next`` the output buffer for the carried vector.
        Returns newly settled lanes in this chunk.
        """

    @abstractmethod
    def kernel_step(self, vu: VectorUnit, x: np.ndarray, rhs: np.ndarray,
                    vals: np.ndarray) -> np.ndarray:
        """The inner-loop vector update (Listing 5 lines 12–19)."""

    @abstractmethod
    def settled_lanes(self, st: BFSState) -> np.ndarray:
        """Bool[N]: lanes whose final output can no longer change.

        SlimWork (§III-C, Listing 7) skips a chunk iff *all* its lanes are
        settled.
        """

    @abstractmethod
    def finalize_distances(self, st: BFSState) -> np.ndarray:
        """Distances over the padded id space (inf = unreached)."""

    def finalize_parents(self, st: BFSState) -> np.ndarray | None:
        """Parents (0-based, -1 unassigned) if the semiring computes them."""
        return None

    # ------------------------------------------------------------------
    # Algebra helpers
    # ------------------------------------------------------------------
    def values_from_edge_mask(self, is_edge: np.ndarray) -> np.ndarray:
        """Materialize matrix values from an edge/padding mask."""
        return np.where(is_edge, self.edge_value, self.pad_value)

    def mv_combine(self, acc: np.ndarray, contrib: np.ndarray,
                   out: np.ndarray | None = None) -> np.ndarray:
        """Accumulate ``contrib`` into ``acc`` with ⊕ (vectorized)."""
        return self.add(acc, contrib, out=out if out is not None else acc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def count_newly(mask: np.ndarray) -> int | np.ndarray:
    """Settled-vertex count of a postprocess mask, batch-aware.

    1-D masks (single-source states) reduce to a plain ``int``; ``(N, B)``
    masks reduce per column to ``int64[B]`` — one count per source, which is
    what lets the batched engine terminate each source independently.
    """
    if mask.ndim == 2:
        return np.count_nonzero(mask, axis=0)
    return int(np.count_nonzero(mask))


def get_semiring(name: str) -> SemiringBFS:
    """Instantiate a semiring by name (accepts ``selmax`` for ``sel-max``)."""
    from repro.semirings import SEMIRINGS

    key = name.lower().replace("_", "-")
    if key == "selmax":
        key = "sel-max"
    try:
        return SEMIRINGS[key]()
    except KeyError:
        raise KeyError(
            f"unknown semiring {name!r}; available: {sorted(SEMIRINGS)}"
        ) from None
