"""Offline capacity planner: serve traffic priced by the distributed model.

The north-star question — *how many ranks on which network sustain X
queries/s at p99 ≤ Y?* — needs both halves of the repo at once: the
serving tier knows how Poisson×Zipf traffic coalesces into (N, B) batches
(batcher, MSHR, cache, FIFO queueing on the virtual clock), and the dist
tier knows what one batched union sweep costs on P ranks of a given
machine over a given interconnect (:func:`repro.dist.bfs1d.profile_1d`,
with PR 7's :class:`~repro.dist.faults.DistFaultModel` charging failures,
checkpoints, and recovery).  This module connects them:

* :class:`SweepCache` — one batched ground-truth sweep over the root pool
  (:func:`repro.bfs.msbfs.batched_levels`): per-root levels, iteration
  counts, and traversal results.  Per-column levels are batch-invariant
  (the repo's pinned msbfs property), so the union schedule of *any*
  dispatched subset of roots can be reconstructed exactly without
  re-running a kernel;
* :class:`DistServiceModel` — a ``roots -> seconds`` callable for
  ``Server(batch_service_model=...)``: reconstructs the dispatched
  batch's union schedule from the cache, profiles it with
  :func:`~repro.dist.bfs1d.profile_1d` (homogeneous or per-rank
  heterogeneous machines), and charges fault overhead through
  :func:`~repro.dist.faults.faulted_profile`.  Bit-identical to
  ``bfs_dist_1d(roots, batch=len(roots))`` sweep for sweep;
* :class:`ReplayEnginePool` — answers queries from the cached traversals
  instead of re-running kernels, so a rank × network × batch × checkpoint
  sweep costs numpy bookkeeping, not thousands of SpMM sweeps;
* :func:`plan_capacity` — the sweep driver: replays one seed-determined
  workload through a real :class:`~repro.serve.server.Server` per
  configuration cell and reports, per (qps, p99) target, every cell's
  modeled latency, the checkpoint interval minimizing p99 at the given
  rank-failure probability, and the cheapest feasible configuration;
* :func:`compare_placement` — the heterogeneous-placement ablation:
  :func:`~repro.dist.partition.machine_weights` drives
  ``Partition1D.balanced(weights=)`` so mixed clusters shift rows off
  weak ranks, verified end to end through the dist models against
  uniform placement.

Everything runs on virtual clocks from seeded streams: a plan is a pure
function of its arguments, so ``BENCH_capacity.json`` regression-gates
exactly (``timing=False`` points).
"""

from __future__ import annotations

import numpy as np

from repro.bfs.msbfs import batched_levels, build_rep
from repro.bfs.result import BFSResult
from repro.dist.bfs1d import machine_label, per_rank_machines, profile_1d
from repro.dist.faults import (
    DistFaultInjector,
    DistFaultModel,
    faulted_profile,
)
from repro.dist.network import Network, get_network
from repro.dist.partition import Partition1D, machine_weights
from repro.dist.result import active_chunk_mask
from repro.formats.sell import SellCSigma
from repro.graphs.graph import Graph
from repro.perf.costmodel import BYTES_PER_WORD
from repro.serve.server import Server
from repro.serve.workload import (
    poisson_arrivals,
    run_open_loop,
    sample_zipf_roots,
)
from repro.vec.machine import Machine, get_machine, get_machines

__all__ = [
    "DistServiceModel",
    "ReplayEnginePool",
    "SweepCache",
    "best_configuration",
    "compare_placement",
    "plan_capacity",
]

#: Relative acquisition/operating cost rank of the network presets: a
#: commodity 10 GbE fabric is cheaper than Cray Aries at equal rank count,
#: so feasible configs tie-break toward Ethernet.  Unknown networks rank
#: after both (never preferred on a tie).
NETWORK_COST_RANK = {"ethernet-10g": 0, "cray-aries": 1}


class SweepCache:
    """Per-root ground truth of one pool: levels, iterations, results.

    One :func:`~repro.bfs.msbfs.batched_levels` sweep per batch of unseen
    roots; because per-column levels and iteration logs are invariant
    under batch composition (the msbfs property the oracle pins), the
    cached columns reconstruct the union schedule of any subset exactly
    as :func:`repro.dist.result.batch_schedule` would from a fresh sweep.
    """

    def __init__(self, rep: SellCSigma, *, slimwork: bool = True):
        self.rep = rep
        self.slimwork = slimwork
        self._index: dict[int, int] = {}
        self._levels = np.empty((rep.N, 0))
        self._n_iters = np.empty(0, dtype=np.int64)
        self._newly: list[list[int]] = []
        self._results: list[BFSResult] = []

    def ensure(self, roots) -> None:
        """Sweep any roots not cached yet (one batched run, in order)."""
        fresh: list[int] = []
        for r in np.asarray(roots, dtype=np.int64).ravel():
            r = int(r)
            if r not in self._index and r not in fresh:
                fresh.append(r)
        if not fresh:
            return
        results, levels = batched_levels(
            self.rep, np.asarray(fresh, dtype=np.int64), slimwork=self.slimwork
        )
        for root, res in zip(fresh, results):
            self._index[root] = len(self._results)
            self._results.append(res)
            self._newly.append([int(it.newly) for it in res.iterations])
        self._levels = np.concatenate([self._levels, levels], axis=1)
        self._n_iters = np.concatenate(
            [self._n_iters, [len(r.iterations) for r in results]]
        ).astype(np.int64)

    def result_for(self, root: int) -> BFSResult:
        """The cached traversal of ``root`` (sweeping it if needed)."""
        self.ensure([root])
        return self._results[self._index[int(root)]]

    def schedule_for(self, roots) -> list[tuple[int, int, int, np.ndarray]]:
        """Union iteration schedule ``(k, width, newly, active)`` of one
        batched sweep over ``roots`` — the dist models' profiling input,
        reconstructed from cached columns instead of a fresh kernel run.
        """
        roots = np.asarray(roots, dtype=np.int64).ravel()
        if roots.size == 0:
            raise ValueError("cannot schedule an empty batch")
        self.ensure(roots)
        idx = np.array([self._index[int(r)] for r in roots], dtype=np.int64)
        levels = self._levels[:, idx]
        n_iters = self._n_iters[idx]
        rep = self.rep
        schedule = []
        for k in range(1, int(n_iters.max()) + 1):
            live = np.flatnonzero(n_iters >= k)
            per_col = active_chunk_mask(
                levels[:, live], rep.nc, rep.C, k, self.slimwork
            )
            newly = sum(self._newly[int(idx[b])][k - 1] for b in live)
            schedule.append((k, int(live.size), newly, per_col.any(axis=1)))
        return schedule


class DistServiceModel:
    """``roots -> modeled seconds`` of one batched sweep on a 1D cluster.

    Plugs into ``Server(batch_service_model=...)``: every dispatched
    batch is charged what :func:`repro.dist.bfs1d.bfs_dist_1d` would
    model for the same roots in one sweep — slowest-rank local SpMM at
    the live width per union layer (heterogeneous per-rank machines
    supported), per-layer allgather on ``network``, ``overlap`` hiding,
    and the fault model's straggler/checkpoint/recovery overhead.  One
    :class:`~repro.dist.faults.DistFaultInjector` persists across
    batches, so consecutive dispatches draw from one evolving seeded
    stream (like groups of one ``bfs_dist_1d`` call).
    """

    def __init__(
        self,
        rep: SellCSigma,
        partition: Partition1D,
        machine,
        network: Network,
        *,
        slimwork: bool = True,
        overlap: float = 0.0,
        faults: DistFaultModel | DistFaultInjector | None = None,
        cache: SweepCache | None = None,
    ):
        if cache is not None and (
            cache.rep is not rep or cache.slimwork != slimwork
        ):
            raise ValueError(
                "shared SweepCache must be built on the same rep and "
                "slimwork setting as the service model"
            )
        self.rep = rep
        self.partition = partition
        self.machines = per_rank_machines(machine, partition.ranks)
        self.network = network
        self.slimwork = slimwork
        self.overlap = overlap
        self.injector = (
            faults
            if faults is None or isinstance(faults, DistFaultInjector)
            else DistFaultInjector(faults)
        )
        self.cache = cache if cache is not None else SweepCache(
            rep, slimwork=slimwork
        )
        #: Σ modeled seconds charged across all batches (planner totals).
        self.charged_s = 0.0
        self.batches = 0

    @property
    def label(self) -> str:
        """Report label (machine name, or the heterogeneous list)."""
        return machine_label(self.machines)

    def service_seconds(self, roots) -> float:
        """Modeled seconds of one batched sweep over ``roots``."""
        schedule = self.cache.schedule_for(roots)
        iterations = profile_1d(
            self.rep,
            self.partition,
            self.machines,
            self.network,
            self.slimwork,
            self.overlap,
            schedule,
        )
        iterations = faulted_profile(
            iterations,
            self.injector,
            ranks=self.partition.ranks,
            network=self.network,
            nwords=self.rep.N,
            bytes_per_word=BYTES_PER_WORD,
        )
        total = float(sum(it.t_total_s for it in iterations))
        self.charged_s += total
        self.batches += 1
        return total

    __call__ = service_seconds


class _ReplayEngine:
    """Engine facade over cached traversals: ``run`` never sweeps twice."""

    def __init__(self, cache: SweepCache):
        self.cache = cache

    def run(self, roots) -> list[BFSResult]:
        return [
            self.cache.result_for(int(r))
            for r in np.asarray(roots, dtype=np.int64).ravel()
        ]


class ReplayEnginePool:
    """Drop-in for :class:`~repro.serve.engines.EnginePool` that answers
    from a :class:`SweepCache`.

    The cached per-root results are bit-identical to what any live engine
    would produce (msbfs column invariance, oracle-pinned), so the served
    answers stay exact while a planner cell costs no kernel time.  Only
    the tropical semiring is cached — the planner's workload semiring.
    """

    def __init__(self, cache: SweepCache):
        self._engine = _ReplayEngine(cache)

    def engine_for(self, semiring: str, width: int):
        if semiring != "tropical":
            raise ValueError(
                f"replay pool caches tropical traversals only, "
                f"got semiring {semiring!r}"
            )
        return "replay", self._engine


def _resolve_machines(machine, machines):
    """Normalize the homogeneous/heterogeneous machine arguments."""
    if machines is not None:
        if isinstance(machines, str):
            machines = get_machines(machines)
        machines = [
            get_machine(m) if isinstance(m, str) else m for m in machines
        ]
        return None, machines
    if isinstance(machine, str):
        machine = get_machine(machine)
    return machine, None


def _network_cost(name: str) -> int:
    return NETWORK_COST_RANK.get(name, len(NETWORK_COST_RANK))


def best_configuration(rows: list[dict], target_index: int) -> dict | None:
    """The cheapest feasible grid row for one target (``None`` if none).

    Cost order: fewest ranks first (nodes dominate cost), then the
    cheaper network preset (commodity Ethernet before Aries), then the
    narrower batch, then lower modeled p99.
    """
    feasible = [
        (r, r["per_target"][target_index])
        for r in rows
        if r["per_target"][target_index]["feasible"]
    ]
    if not feasible:
        return None
    row, cell = min(
        feasible,
        key=lambda rc: (
            rc[0]["ranks"],
            _network_cost(rc[0]["network"]),
            rc[0]["max_batch"],
            rc[1]["latency_p99_s"],
        ),
    )
    return {
        "ranks": row["ranks"],
        "network": row["network"],
        "max_batch": row["max_batch"],
        "machine": row["machine"],
        "checkpoint_interval": cell["checkpoint_interval"],
        "latency_p99_s": cell["latency_p99_s"],
        "virtual_throughput_qps": cell["virtual_throughput_qps"],
    }


def _evaluate_cell(
    rep,
    cache: SweepCache,
    partition: Partition1D,
    machine_spec,
    network: Network,
    max_batch: int,
    roots: np.ndarray,
    arrivals: np.ndarray,
    target: tuple[float, float],
    *,
    max_wait: float,
    cache_size: int,
    overlap: float,
    slimwork: bool,
    faults: DistFaultModel | None,
    tracer=None,
) -> dict:
    """Replay one workload through one configuration; report feasibility."""
    qps, p99_target = target
    model = DistServiceModel(
        rep,
        partition,
        machine_spec,
        network,
        slimwork=slimwork,
        overlap=overlap,
        faults=faults,
        cache=cache,
    )
    server = Server(
        rep,
        max_batch=max_batch,
        max_wait=max_wait,
        cache_size=cache_size,
        batch_service_model=model,
        tracer=tracer,
    )
    server.pool = ReplayEnginePool(cache)
    report = run_open_loop(
        server,
        roots,
        arrivals,
        semiring="tropical",
        params={"qps": float(qps)},
    )
    span = float(arrivals[-1] - arrivals[0])
    p99 = report["latency_p99_s"]
    sustained = report["virtual_makespan_s"] <= span + p99_target
    return {
        "qps": float(qps),
        "p99_target_s": float(p99_target),
        "latency_p50_s": report["latency_p50_s"],
        "latency_p99_s": p99,
        "virtual_makespan_s": report["virtual_makespan_s"],
        "virtual_throughput_qps": report["virtual_throughput_qps"],
        "served": report["served"],
        "cache_hits": report["cache_hits"],
        "mshr_hits": report["mshr_hits"],
        "batches": report["batches"],
        "mean_batch_width": report["mean_batch_width"],
        "modeled_service_s": model.charged_s,
        "sustained": bool(sustained),
        "feasible": bool(sustained and p99 <= p99_target),
    }


def plan_capacity(
    graph_or_rep: Graph | SellCSigma,
    targets,
    *,
    ranks=(2, 4, 8),
    networks=("cray-aries", "ethernet-10g"),
    max_batches=(1, 8, 32),
    machine="knl",
    machines=None,
    placement: str = "weighted",
    rank_failure_prob: float = 0.0,
    checkpoint_intervals=(None,),
    nqueries: int = 256,
    root_pool: int = 64,
    zipf: float = 1.1,
    seed: int = 1,
    fault_seed: int = 0,
    max_wait: float = 1e-3,
    overlap: float = 0.0,
    slimwork: bool = True,
    C: int = 16,
    cache: bool = True,
    tracer=None,
) -> dict:
    """Sweep rank count × network × batch width against one workload.

    For every configuration cell and every ``(qps, p99_s)`` target, the
    seed-determined Poisson×Zipf workload is replayed through a real
    :class:`~repro.serve.server.Server` (batching, coalescing, MSHR,
    cache, FIFO queueing — all on the virtual clock) whose batches are
    priced by :class:`DistServiceModel`.  At ``rank_failure_prob > 0``
    each cell additionally sweeps ``checkpoint_intervals`` and keeps the
    interval minimizing modeled p99 — the planner answers capacity
    questions *at* a failure probability, checkpoint policy included.

    Parameters mirror the serve benches; ``machines`` (a per-rank
    descriptor list or ``"knl,knl,knl@0.5"`` spec) switches to a
    heterogeneous plan of exactly ``len(machines)`` ranks, placed by
    :func:`~repro.dist.partition.machine_weights` unless
    ``placement="uniform"``.  ``tracer`` (an optional
    :class:`repro.obs.trace.Tracer`) threads through every cell's replay
    server, so one planner run exports the span trees of every
    configuration it evaluated.

    Returns a JSON-friendly payload: ``grid`` rows (one per cell, with
    ``per_target`` feasibility cells and the per-interval p99 curve) and
    ``targets`` summaries naming the cheapest feasible configuration
    (see :func:`best_configuration`) or ``None``.
    """
    from repro.graph500 import sample_roots

    targets = [(float(q), float(p)) for q, p in targets]
    if not targets:
        raise ValueError("at least one (qps, p99_s) target is required")
    for q, p in targets:
        if not (q > 0 and np.isfinite(q)):
            raise ValueError(f"target qps must be positive finite, got {q}")
        if not p > 0:
            raise ValueError(f"target p99 must be positive, got {p}")
    if placement not in ("weighted", "uniform"):
        raise ValueError(
            f"placement must be 'weighted' or 'uniform', got {placement!r}"
        )
    intervals = list(checkpoint_intervals) or [None]
    if rank_failure_prob == 0.0 and intervals != [None]:
        # Checkpoints without failures are pure premium: the fault-free
        # plan never benefits, so the sweep would waste cells.
        intervals = [None]

    rep = build_rep(graph_or_rep, C, None, slim=True)
    graph = rep.graph_original
    machine_one, machine_list = _resolve_machines(machine, machines)
    if machine_list is not None:
        rank_counts = [len(machine_list)]
        weights = (
            machine_weights(machine_list, rep, slimwork=slimwork)
            if placement == "weighted"
            else None
        )
    else:
        rank_counts = sorted(set(int(r) for r in ranks))
        if any(r < 1 for r in rank_counts):
            raise ValueError(f"rank counts must be >= 1, got {rank_counts}")
        weights = None

    pool = sample_roots(graph, root_pool, seed)
    roots = sample_zipf_roots(pool, nqueries, zipf, seed=seed)
    arrival_streams = {
        qps: poisson_arrivals(nqueries, qps, seed=seed) for qps, _ in targets
    }
    sweep_cache = SweepCache(rep, slimwork=slimwork)
    sweep_cache.ensure(pool)
    cache_size = int(pool.size) if cache else 0

    rows: list[dict] = []
    for P in rank_counts:
        partition = Partition1D.balanced(rep.cl, P, weights=weights)
        machine_spec = (
            machine_list if machine_list is not None else machine_one
        )
        for net_name in networks:
            network = get_network(net_name)
            for B in max_batches:
                per_target = []
                for t_index, target in enumerate(targets):
                    qps = target[0]
                    candidates = []
                    for interval in intervals:
                        faults = None
                        if rank_failure_prob > 0 or interval is not None:
                            faults = DistFaultModel(
                                rank_failure_prob=rank_failure_prob,
                                checkpoint_interval=interval,
                                seed=fault_seed,
                            )
                        cell = _evaluate_cell(
                            rep,
                            sweep_cache,
                            partition,
                            machine_spec,
                            network,
                            B,
                            roots,
                            arrival_streams[qps],
                            target,
                            max_wait=max_wait,
                            cache_size=cache_size,
                            overlap=overlap,
                            slimwork=slimwork,
                            faults=faults,
                            tracer=tracer,
                        )
                        cell["checkpoint_interval"] = interval
                        candidates.append(cell)
                    best = min(
                        candidates, key=lambda c: c["latency_p99_s"]
                    )
                    best["interval_p99_s"] = {
                        "never" if c["checkpoint_interval"] is None
                        else str(c["checkpoint_interval"]): c["latency_p99_s"]
                        for c in candidates
                    }
                    per_target.append(best)
                rows.append({
                    "ranks": int(P),
                    "network": net_name,
                    "max_batch": int(B),
                    "machine": machine_label(
                        machine_spec
                        if machine_list is None
                        else machine_list
                    ),
                    "placement": (
                        placement if machine_list is not None else "uniform"
                    ),
                    "per_target": per_target,
                })

    target_reports = []
    for t_index, (qps, p99) in enumerate(targets):
        feasible = sum(
            1 for r in rows if r["per_target"][t_index]["feasible"]
        )
        target_reports.append({
            "qps": qps,
            "p99_target_s": p99,
            "feasible_configs": feasible,
            "best": best_configuration(rows, t_index),
        })

    return {
        "workload": {
            "n": graph.n,
            "m": graph.m,
            "nqueries": int(nqueries),
            "root_pool": int(pool.size),
            "zipf": float(zipf),
            "seed": int(seed),
            "fault_seed": int(fault_seed),
            "C": int(rep.C),
            "semiring": "tropical",
            "max_wait": float(max_wait),
            "overlap": float(overlap),
            "slimwork": bool(slimwork),
            "cache_size": cache_size,
            "rank_failure_prob": float(rank_failure_prob),
            "checkpoint_intervals": [
                "never" if i is None else int(i) for i in intervals
            ],
        },
        "grid": rows,
        "targets": target_reports,
        "deterministic": True,
    }


def compare_placement(
    graph_or_rep: Graph | SellCSigma,
    machines,
    *,
    network: str = "cray-aries",
    max_batch: int = 8,
    target=(2000.0, 0.05),
    nqueries: int = 192,
    root_pool: int = 48,
    zipf: float = 1.1,
    seed: int = 1,
    max_wait: float = 1e-3,
    slimwork: bool = True,
    C: int = 16,
) -> dict:
    """Weighted vs uniform placement on a heterogeneous cluster, end to
    end through the dist models.

    Two probes of the same mixed cluster: (a) one direct
    ``bfs_dist_1d``-equivalent batched sweep over the root pool, and
    (b) a full serve replay at ``target`` — both under
    :func:`~repro.dist.partition.machine_weights` placement and under
    uniform bands.  On a skewed cluster the weighted bands move rows off
    the weak ranks, so both the modeled sweep total and the served p99
    must come out strictly better (the bench and tests pin this).
    """
    from repro.graph500 import sample_roots

    rep = build_rep(graph_or_rep, C, None, slim=True)
    if isinstance(machines, str):
        machines = get_machines(machines)
    machines = [get_machine(m) if isinstance(m, str) else m for m in machines]
    net = get_network(network)
    pool = sample_roots(rep.graph_original, root_pool, seed)
    cache = SweepCache(rep, slimwork=slimwork)
    cache.ensure(pool)
    weights = machine_weights(machines, rep, slimwork=slimwork)
    out: dict = {
        "machines": [m.name for m in machines],
        "network": net.name,
        "max_batch": int(max_batch),
        "weights": [float(w) for w in weights],
    }
    for label, w in (("weighted", weights), ("uniform", None)):
        partition = Partition1D.balanced(rep.cl, len(machines), weights=w)
        model = DistServiceModel(
            rep, partition, machines, net, slimwork=slimwork, cache=cache
        )
        sweep_s = model.service_seconds(pool)
        qps, p99_target = float(target[0]), float(target[1])
        cell = _evaluate_cell(
            rep,
            cache,
            partition,
            machines,
            net,
            max_batch,
            sample_zipf_roots(pool, nqueries, zipf, seed=seed),
            poisson_arrivals(nqueries, qps, seed=seed),
            (qps, p99_target),
            max_wait=max_wait,
            cache_size=int(pool.size),
            overlap=0.0,
            slimwork=slimwork,
            faults=None,
        )
        out[label] = {
            "pool_sweep_s": sweep_s,
            "latency_p99_s": cell["latency_p99_s"],
            "latency_p50_s": cell["latency_p50_s"],
            "feasible": cell["feasible"],
            "work_per_rank": [
                int(x) for x in partition.work_per_rank(rep.cl)
            ],
        }
    out["p99_improvement"] = (
        out["uniform"]["latency_p99_s"] / out["weighted"]["latency_p99_s"]
        if out["weighted"]["latency_p99_s"] > 0
        else float("inf")
    )
    out["sweep_improvement"] = (
        out["uniform"]["pool_sweep_s"] / out["weighted"]["pool_sweep_s"]
    )
    return out
