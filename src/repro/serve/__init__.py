"""Serving layer: adaptive micro-batching of single-root graph queries.

The batched engines (``repro.bfs.msbfs`` / ``repro.bfs.mshybrid``) only
pay off at width — one (N, B) SpMM sweep is ~B× cheaper per source than B
single-source sweeps — but real traffic arrives as independent
single-root queries.  This subsystem is the layer between the two:

* :class:`~repro.serve.query.Query` /
  :class:`~repro.serve.query.Ticket` — single-root requests (BFS
  distances, connectivity membership, Graph500-style validation) and
  their pending handles;
* :class:`~repro.serve.batcher.QueryBatcher` — coalesces pending queries
  into (N, B) batches on a width (``max_batch``) or deadline
  (``max_wait``) trigger, sharing one frontier column per duplicate root;
* :class:`~repro.serve.cache.ResultCache` — bounded LRU keyed on
  (epoch, semiring, root), consulted before enqueue; results commit at
  their batch's virtual completion time, never at dispatch;
* :class:`~repro.serve.mshr.MissStatusRegistry` — the MSHR: misses on a
  root that is already pending or in flight attach as waiters on the
  outstanding traversal (one frontier column no matter how many users),
  and ``Server.invalidate()`` bumps the epoch for O(1) invalidation;
* :class:`~repro.serve.server.Server` — the synchronous driver
  (``submit()`` / ``drain()``) with backpressure and latency/throughput
  accounting, plus :class:`~repro.serve.server.AsyncServer`, the asyncio
  front-end awaiting per-query futures;
* :class:`~repro.serve.engines.EnginePool` — width-driven engine
  selection (direction-optimizing hybrid for narrow batches, all-pull
  SpMM for wide ones), pluggable via ``strategy=``;
* :mod:`~repro.serve.workload` — closed-loop and open-loop (Poisson
  arrivals, Zipfian roots) generators driving the server on a virtual
  arrival clock;
* :mod:`~repro.serve.plan` — the offline capacity planner: replays the
  open-loop workload through the server while each dispatched batch is
  priced by the §VI distributed models
  (:class:`~repro.serve.plan.DistServiceModel`), sweeping rank count ×
  network × batch width × checkpoint interval to the cheapest feasible
  configuration per (qps, p99) target
  (:func:`~repro.serve.plan.plan_capacity`), with
  heterogeneous-placement ablation
  (:func:`~repro.serve.plan.compare_placement`).

* :mod:`~repro.serve.faults` — the failure surface: seed-driven
  :class:`~repro.serve.faults.FaultPlan` /
  :class:`~repro.serve.faults.FaultInjector` (kernel exceptions,
  stragglers, cache flakiness on the virtual clock) and the
  :class:`~repro.serve.faults.CircuitBreaker` behind graceful
  degradation — per-query deadlines (``TimedOut``), batch-level retry
  with exponential backoff, load shedding, and stale serves.

Served answers are bit-identical to direct engine calls — the serving
path is registered in the cross-engine differential oracle
(``tests/engines.py``) next to the engines themselves.
"""

from repro.serve.batcher import Batch, QueryBatcher
from repro.serve.cache import CacheStats, ResultCache, graph_fingerprint
from repro.serve.engines import EnginePool, default_strategy
from repro.serve.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    KernelFault,
    PermanentKernelFault,
    TransientKernelFault,
)
from repro.serve.mshr import MissStatusRegistry, MSHREntry, MSHRStats
from repro.serve.plan import (
    DistServiceModel,
    ReplayEnginePool,
    SweepCache,
    best_configuration,
    compare_placement,
    plan_capacity,
)
from repro.serve.query import (
    Failed,
    Query,
    QueryResult,
    Rejected,
    Ticket,
    TimedOut,
)
from repro.serve.server import AsyncServer, ServeStats, Server
from repro.serve.workload import (
    poisson_arrivals,
    run_closed_loop,
    run_open_loop,
    sample_zipf_roots,
    zipf_weights,
)

__all__ = [
    "AsyncServer",
    "Batch",
    "CacheStats",
    "CircuitBreaker",
    "DistServiceModel",
    "EnginePool",
    "Failed",
    "FaultInjector",
    "FaultPlan",
    "KernelFault",
    "MSHREntry",
    "MSHRStats",
    "MissStatusRegistry",
    "PermanentKernelFault",
    "Query",
    "QueryBatcher",
    "QueryResult",
    "Rejected",
    "ReplayEnginePool",
    "ResultCache",
    "ServeStats",
    "Server",
    "SweepCache",
    "Ticket",
    "TimedOut",
    "TransientKernelFault",
    "best_configuration",
    "compare_placement",
    "default_strategy",
    "graph_fingerprint",
    "plan_capacity",
    "poisson_arrivals",
    "run_closed_loop",
    "run_open_loop",
    "sample_zipf_roots",
    "zipf_weights",
]
