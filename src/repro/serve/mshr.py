"""Miss-status registry: MSHR-style in-flight miss coalescing.

The non-blocking-cache pattern from hardware memory hierarchies, applied
to the serving layer.  A CPU's Miss Status Holding Registers track every
cache miss that is already being fetched so a second load to the same
line *attaches* to the outstanding fill instead of issuing a new memory
request; when the fill returns, it fans out to every waiter at once.

Here the "cache line" is one traversal — keyed ``(epoch, semiring,
root)`` — and the "fill" is the frontier column computing it inside a
dispatched batch.  The registry sits between the
:class:`~repro.serve.cache.ResultCache` and the
:class:`~repro.serve.batcher.QueryBatcher` and tracks each miss through
three stages:

* **pending** — the miss owns a frontier column waiting in the batcher.
  A duplicate miss attaches its ticket to the entry's waiter list
  instead of enqueueing a second column.
* **in flight** — the column's batch has been dispatched.  On the
  virtual clock the result exists only from the batch's completion time
  (``busy_until``), so it is *not yet cache-visible*; a duplicate miss
  still attaches here and resolves with latency ``completion − submit``,
  exactly as if it had waited for the batch.
* **retired** — the owner committed the entry at (or after) its virtual
  completion time: the result becomes cache-visible and the entry leaves
  the registry.

Results therefore become visible *only* at completion — never at
dispatch — which fixes premature cache visibility by construction: no
query can observe a result before the virtual clock says it exists.

Epoch-based invalidation rides on the key: bumping the epoch makes every
older entry unreachable for new lookups, and the owner drops stale
epochs at commit time instead of publishing them (see
``Server.invalidate``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bfs.result import BFSResult
from repro.serve.query import Ticket

__all__ = ["MSHREntry", "MSHRStats", "MissStatusRegistry"]

#: An entry's key: (epoch, semiring, root) — the same key the cache uses.
Key = tuple[int, str, int]


@dataclass
class MSHREntry:
    """One outstanding miss and everything waiting on it."""

    key: Key
    #: Tickets answered by this entry's traversal; ``waiters[0]`` is the
    #: primary (the miss that allocated the entry and owns its column).
    waiters: list[Ticket]
    #: ``"pending"`` (column queued) or ``"inflight"`` (batch dispatched).
    state: str = "pending"
    #: Set at dispatch: the traversal, its virtual completion time, and
    #: the batch provenance late waiters inherit.
    result: BFSResult | None = None
    completion: float = 0.0
    batch_width: int = 0
    engine: str = ""
    #: Tracing servers only: the ``serve.kernel`` span of the batch that
    #: computed this entry's column, set at dispatch — late (in-flight)
    #: waiters link their root span to it, so every coalesced query
    #: points at the one traversal that answered it.
    kernel_span: object = None

    @property
    def epoch(self) -> int:
        return self.key[0]

    @property
    def semiring(self) -> str:
        return self.key[1]

    @property
    def root(self) -> int:
        return self.key[2]

    @property
    def n_waiters(self) -> int:
        """Queries sharing this entry's single frontier column."""
        return len(self.waiters)


@dataclass
class MSHRStats:
    """Lifetime counters of one :class:`MissStatusRegistry`."""

    #: Entries allocated (= frontier columns actually paid for).
    allocated: int = 0
    #: Tickets attached to a pending entry (column still in the batcher).
    pending_hits: int = 0
    #: Tickets attached to an in-flight entry (batch already dispatched).
    inflight_hits: int = 0
    #: Entries retired at commit time.
    retired: int = 0
    #: Entries removed because their batch failed (kernel fault or real
    #: exception): their waiters resolved ``Failed``; nothing published.
    aborted: int = 0

    @property
    def hits(self) -> int:
        """Misses absorbed without a new column (pending + in-flight)."""
        return self.pending_hits + self.inflight_hits


class MissStatusRegistry:
    """Outstanding-miss table keyed ``(epoch, semiring, root)``.

    Holds only live entries (pending or in flight); retired entries leave
    the table at :meth:`take_due`.  At most one live entry exists per
    key, but distinct epochs may hold live entries for the same
    ``(semiring, root)`` — that is exactly what invalidation means: the
    old epoch's traversal can no longer answer new queries.
    """

    def __init__(self):
        self._entries: dict[Key, MSHREntry] = {}
        self.stats = MSHRStats()

    def __len__(self) -> int:
        """Live (pending + in-flight) entries."""
        return len(self._entries)

    # ------------------------------------------------------------------
    def lookup(self, key: Key) -> MSHREntry | None:
        """The live entry for ``key``, or None (no stats side effects)."""
        return self._entries.get(key)

    def allocate(self, key: Key, ticket: Ticket) -> MSHREntry:
        """Open a pending entry for a fresh miss; ``ticket`` is primary."""
        if key in self._entries:
            raise ValueError(f"MSHR entry for {key} already live; "
                             "attach to it instead of allocating")
        entry = MSHREntry(key=key, waiters=[ticket])
        ticket.mshr = entry
        self._entries[key] = entry
        self.stats.allocated += 1
        return entry

    def attach(self, entry: MSHREntry, ticket: Ticket) -> None:
        """Add ``ticket`` as a waiter on an outstanding miss."""
        entry.waiters.append(ticket)
        ticket.mshr = entry
        if entry.state == "inflight":
            self.stats.inflight_hits += 1
        else:
            self.stats.pending_hits += 1

    def dispatch(self, entry: MSHREntry, result: BFSResult,
                 completion: float, batch_width: int, engine: str) -> None:
        """Mark ``entry`` in flight: its batch ran, completing (on the
        virtual clock) at ``completion``.  The result stays invisible to
        the cache until the owner commits the entry at that time."""
        entry.state = "inflight"
        entry.result = result
        entry.completion = completion
        entry.batch_width = batch_width
        entry.engine = engine

    def abort(self, entry: MSHREntry) -> None:
        """Remove a live entry whose batch failed.

        The owner has already resolved every waiter (``Failed``); the
        entry must leave the table so a later query on the same key can
        allocate a fresh miss instead of attaching to a dead one —
        nothing is ever published from an aborted entry.
        """
        if self._entries.get(entry.key) is entry:
            del self._entries[entry.key]
            self.stats.aborted += 1

    def take_due(self, now: float) -> list[MSHREntry]:
        """Pop every in-flight entry whose completion time has passed.

        The owner publishes each returned entry to the result cache (or
        drops it, if its epoch was invalidated while in flight).
        """
        due = [e for e in self._entries.values()
               if e.state == "inflight" and e.completion <= now]
        for entry in due:
            del self._entries[entry.key]
        self.stats.retired += len(due)
        return due

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Live entries whose column is still waiting in the batcher."""
        return sum(e.state == "pending" for e in self._entries.values())

    @property
    def inflight(self) -> int:
        """Live entries whose batch has dispatched but not yet committed."""
        return sum(e.state == "inflight" for e in self._entries.values())

    def inflight_widths(self) -> list[int]:
        """Batch widths of the currently in-flight entries."""
        return [e.batch_width for e in self._entries.values()
                if e.state == "inflight"]

    def register_metrics(self, registry, prefix: str = "serve.mshr") -> None:
        """Publish live views of this registry under ``prefix``.

        Views are lazy reads of the existing counters/tables — nothing on
        the miss path changes, and re-registering (a rebuilt server) just
        replaces the previous component's views.
        """
        st = self.stats
        registry.register_view(f"{prefix}.allocated", lambda: st.allocated)
        registry.register_view(f"{prefix}.pending_hits",
                               lambda: st.pending_hits)
        registry.register_view(f"{prefix}.inflight_hits",
                               lambda: st.inflight_hits)
        registry.register_view(f"{prefix}.retired", lambda: st.retired)
        registry.register_view(f"{prefix}.aborted", lambda: st.aborted)
        registry.register_view(f"{prefix}.hits", lambda: st.hits)
        registry.register_view(f"{prefix}.live", lambda: len(self))
        registry.register_view(f"{prefix}.pending", lambda: self.pending)
        registry.register_view(f"{prefix}.inflight", lambda: self.inflight)
