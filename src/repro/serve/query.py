"""Query and result types of the serving layer.

A *query* is one user request that reduces to a single-root BFS over the
served graph:

* ``"distances"`` — the BFS itself: hop distances and a parent tree from
  ``root`` (the :class:`~repro.bfs.result.BFSResult` is the answer);
* ``"reachability"`` — connectivity membership: is ``target`` in
  ``root``'s connected component?  (answer: ``bool``);
* ``"validate"`` — Graph500-style service: run the BFS *and* the official
  five-check tree validation (answer: ``True``, or the check raises).

Every kind shares the same expensive sub-problem — a traversal from
``root`` under ``semiring`` — which is exactly what the batcher coalesces
and the cache memoizes: two queries of different kinds on the same
``(semiring, root)`` share one frontier column and one cache entry, and
only the cheap *reduction* (nothing / a distance lookup / the validator)
differs per ticket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.bfs.result import BFSResult

if TYPE_CHECKING:  # pragma: no cover - circular at runtime only
    from repro.obs.trace import Span
    from repro.serve.mshr import MSHREntry

__all__ = [
    "KINDS",
    "Failed",
    "Query",
    "QueryResult",
    "Rejected",
    "Ticket",
    "TimedOut",
]

#: Supported query kinds, in documentation order.
KINDS = ("distances", "reachability", "validate")


@dataclass(frozen=True)
class Query:
    """One user request: a single-root question about the served graph."""

    root: int
    kind: str = "distances"
    semiring: str = "sel-max"
    #: ``"reachability"`` only: the vertex whose membership is asked.
    target: int | None = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown query kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if self.kind == "reachability" and self.target is None:
            raise ValueError("reachability queries need a target vertex")

    @property
    def batch_key(self) -> tuple[str, int]:
        """The coalescing key: queries sharing it share one BFS column."""
        return (self.semiring, self.root)


@dataclass
class QueryResult:
    """The resolved answer to one query, with serving provenance."""

    query: Query
    #: ``"served"``, ``"rejected"`` (backpressure or load shedding),
    #: ``"timeout"`` (missed its deadline), or ``"failed"`` (kernel fault).
    status: str
    #: Kind-specific answer: the :class:`BFSResult` (distances), a bool
    #: (reachability / validate), or ``None`` for a rejection.
    value: Any = None
    #: The underlying traversal (also set for reduced kinds), ``None`` for
    #: rejections.
    bfs: BFSResult | None = None
    #: Answered straight from the :class:`~repro.serve.cache.ResultCache`.
    cache_hit: bool = False
    #: Answered by attaching to another query's outstanding miss (the
    #: MSHR coalescing path): no new frontier column was paid for.
    mshr_hit: bool = False
    #: Queries sharing the answering traversal's frontier column at the
    #: time this result was resolved (0 = cache hit or rejection).
    waiters: int = 0
    #: Width of the SpMM batch that computed the answer (0 = cache hit or
    #: rejection).
    batch_width: int = 0
    #: Engine that ran the batch (``"msbfs"`` / ``"mshybrid"`` / ``""``).
    engine: str = ""
    #: Submit-to-completion seconds (queue wait + kernel share).
    latency_s: float = 0.0
    #: Answered from a prior-epoch cache entry while the circuit breaker
    #: was open (graceful degradation: possibly outdated, never wrong for
    #: the epoch it was computed in).
    stale: bool = False
    #: Root span of this query's trace (None when the server ran without
    #: a tracer).  Its ``kernel_span``/``batch_span`` attrs link into the
    #: owning tracer's span list, so the full tree — queue wait, batch,
    #: kernel, per-layer sweeps — is reconstructable from the result.
    span: "Span | None" = field(default=None, repr=False)


class Rejected(QueryResult):
    """Explicit refusal: the query never reached a kernel.

    ``reason`` says why: ``"backpressure"`` (the pending queue was full)
    or ``"shed"`` (the circuit breaker was open and no stale cache entry
    could stand in).  A distinct type (``isinstance(result, Rejected)``)
    so clients can branch on overload without string-matching ``status``.
    """

    def __init__(self, query: Query, reason: str = "backpressure"):
        super().__init__(query=query, status="rejected")
        self.reason = reason


class TimedOut(QueryResult):
    """The answer arrived after the query's ``deadline=`` expired.

    The traversal still ran (and is cache-visible for later queries);
    only *this* ticket's answer was too late to be useful.  ``latency_s``
    records when the answer would have arrived.
    """

    def __init__(self, query: Query, latency_s: float = 0.0):
        super().__init__(query=query, status="timeout", latency_s=latency_s)


class Failed(QueryResult):
    """The answering batch failed (injected or real kernel exception).

    Every waiter coalesced onto the failed traversal resolves to one of
    these; nothing is published to the cache.  ``error`` carries the
    exception message.
    """

    def __init__(self, query: Query, error: str = "",
                 latency_s: float = 0.0):
        super().__init__(query=query, status="failed", latency_s=latency_s)
        self.error = error


@dataclass
class Ticket:
    """Handle returned by ``submit()``; resolves to a :class:`QueryResult`.

    A ticket is *done* once its batch ran (or it was answered from cache /
    rejected on entry).  :meth:`result` is the blocking-free accessor: it
    raises if the ticket is still pending — call ``Server.drain()`` (or
    await the asyncio front-end) to force completion.

    **Resolve-exactly-once contract.**  Every ticket the server accepts is
    resolved exactly once, by exactly one of: the cache-hit fast path, a
    rejection on entry (backpressure or breaker shed), a stale serve, or
    its batch's completion fan-out (served / timeout / failed — including
    batches that fail).  :meth:`_resolve` enforces the "at most once" half
    by raising on a second call; the server's dispatch paths provide the
    "at least once" half, which the chaos property test pins.
    """

    query: Query
    #: Virtual/real submit timestamp (the server's clock domain).
    submitted_at: float = 0.0
    #: Absolute virtual time after which the answer is useless (None =
    #: no deadline).  Checked at batch completion: an answer landing
    #: later resolves :class:`TimedOut`.
    deadline_at: float | None = None
    #: The outstanding-miss entry this ticket waits on (set by the
    #: server's MSHR when the ticket allocates or attaches; None for
    #: cache hits and rejections).
    mshr: "MSHREntry | None" = field(default=None, repr=False)
    #: The query's open root span (tracing servers only; closed — and
    #: copied onto the result — when the ticket resolves).
    span: "Span | None" = field(default=None, repr=False)
    _result: QueryResult | None = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """Whether a result is available."""
        return self._result is not None

    @property
    def rejected(self) -> bool:
        """Whether the ticket was refused on entry (backpressure)."""
        return self._result is not None and self._result.status == "rejected"

    def result(self) -> QueryResult:
        """The resolved :class:`QueryResult`; raises while pending."""
        if self._result is None:
            raise RuntimeError(
                f"query {self.query} is still pending; drain() the server "
                "(or advance the clock past the batch deadline) before "
                "reading results")
        return self._result

    def _resolve(self, result: QueryResult) -> None:
        if self._result is not None:
            raise RuntimeError(f"ticket for {self.query} resolved twice")
        self._result = result
