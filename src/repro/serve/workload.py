"""Workload generators for the serving layer: make the benefit measurable.

Two classic load models drive a :class:`~repro.serve.server.Server` on a
**virtual arrival clock** (kernel time stays real, measured):

* **Open loop** (:func:`run_open_loop`) — queries arrive by a Poisson
  process at ``rate`` queries/second regardless of completions (the
  "millions of independent users" regime): root popularity is Zipfian
  (:func:`sample_zipf_roots`), arrival gaps are exponential
  (:func:`poisson_arrivals`), and the driver fires the server's
  ``max_wait`` deadlines between arrivals exactly when they fall due, so
  the adaptive batcher sees the same interleaving a real event loop
  would.  Latencies include queueing delay (FIFO service model).
* **Closed loop** (:func:`run_closed_loop`) — ``clients`` users each keep
  exactly one query outstanding and resubmit on completion: the classic
  saturation benchmark, and the upper bound of what batching can harvest
  (every round offers ``clients`` concurrent roots).

Both return a JSON-friendly report with throughput (kernel and
virtual-wall), latency percentiles, batch-width and cache statistics.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import percentile
from repro.serve.server import Server

__all__ = [
    "poisson_arrivals",
    "run_closed_loop",
    "run_open_loop",
    "sample_zipf_roots",
    "zipf_weights",
]


def zipf_weights(k: int, s: float) -> np.ndarray:
    """Normalized Zipf popularity over ``k`` ranks: p(r) ∝ 1/(r+1)^s.

    ``s = 0`` is uniform; larger ``s`` concentrates mass on few ranks.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if s < 0:
        raise ValueError(f"s must be >= 0, got {s}")
    w = 1.0 / np.power(np.arange(1, k + 1, dtype=np.float64), s)
    return w / w.sum()


def sample_zipf_roots(candidates: np.ndarray, nqueries: int, s: float,
                      seed: int = 1) -> np.ndarray:
    """Draw ``nqueries`` roots with Zipfian popularity over ``candidates``.

    Popularity ranks are assigned to candidates in a seeded shuffle (the
    hottest root is a random candidate, not vertex 0), then queries sample
    from that fixed popularity law — with replacement, since independent
    users repeat hot roots; that repetition is precisely what duplicate
    coalescing and the result cache exploit.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size == 0:
        raise ValueError("no candidate roots to sample from")
    if nqueries < 1:
        raise ValueError(f"nqueries must be >= 1, got {nqueries}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(candidates)
    return rng.choice(order, size=nqueries, replace=True,
                      p=zipf_weights(candidates.size, s))


def poisson_arrivals(nqueries: int, rate: float, seed: int = 1) -> np.ndarray:
    """Arrival timestamps of a Poisson process at ``rate`` queries/second.

    ``rate = inf`` puts every arrival at t=0 (the all-at-once burst).
    """
    if nqueries < 1:
        raise ValueError(f"nqueries must be >= 1, got {nqueries}")
    if not rate > 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if np.isinf(rate):
        return np.zeros(nqueries)
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, size=nqueries))


def run_open_loop(server: Server, roots: np.ndarray, arrivals: np.ndarray,
                  *, kind: str = "distances",
                  semiring: str = "sel-max",
                  deadline: float | None = None,
                  params: dict | None = None) -> dict:
    """Drive ``server`` with ``roots[i]`` arriving at ``arrivals[i]``.

    Arrivals must be non-decreasing.  Between consecutive arrivals the
    driver fires every batcher deadline at its due time, reproducing the
    event order of a real timer loop on the virtual clock.  All pending
    work is drained at the end (the stream is over; nothing more to wait
    for).  ``deadline`` (seconds, relative) is attached to every query:
    answers arriving later resolve ``TimedOut`` and count in the
    report's ``timeouts``.

    ``params`` (optional) are caller-side generation parameters — seed,
    arrival rate, Zipf exponent — echoed verbatim into the report's
    ``"workload"`` key so a saved report (or the trace exported next to
    it) is self-describing and reproducible.
    """
    roots = np.asarray(roots, dtype=np.int64)
    arrivals = np.asarray(arrivals, dtype=np.float64)
    if roots.shape != arrivals.shape or roots.ndim != 1 or roots.size == 0:
        raise ValueError("roots and arrivals must be equal-length 1-D "
                         "non-empty sequences")
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrivals must be non-decreasing")
    before = _snapshot(server)
    tickets = []
    for root, t in zip(roots, arrivals):
        due = server.batcher.next_deadline()
        while due is not None and due <= t:
            server.poll(now=due)
            due = server.batcher.next_deadline()
        tickets.append(server.submit(int(root), kind=kind,
                                     semiring=semiring, now=float(t),
                                     deadline=deadline))
    end = float(arrivals[-1])
    due = server.batcher.next_deadline()
    while due is not None:
        server.poll(now=due)
        end = max(end, due)
        due = server.batcher.next_deadline()
    server.drain(now=end)
    makespan = max(server.busy_until, end) - float(arrivals[0])
    return _report(server, before, tickets, makespan,
                   _workload_key("open-loop", kind, semiring,
                                 deadline=deadline, nqueries=int(roots.size),
                                 params=params))


def run_closed_loop(server: Server, roots: np.ndarray, *,
                    clients: int | None = None, kind: str = "distances",
                    semiring: str = "sel-max",
                    params: dict | None = None) -> dict:
    """Drive ``server`` with ``clients`` users of one outstanding query each.

    Round-robin: each round, every client submits its next root from
    ``roots`` at the current virtual time, then blocks until the round's
    results are drained; the clock advances to the round's completion.
    ``clients`` defaults to the server's ``max_batch`` (saturation).

    The run begins at the server's current virtual time (``busy_until``
    of any earlier run on a shared server; 0.0 on a fresh one) — never
    behind it, which would land the first round's completions in the
    past — and the reported makespan is the delta from that start.
    """
    roots = np.asarray(roots, dtype=np.int64)
    if roots.ndim != 1 or roots.size == 0:
        raise ValueError("roots must be a non-empty 1-D sequence")
    if clients is None:
        clients = server.max_batch
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    before = _snapshot(server)
    tickets = []
    start = max(0.0, server.busy_until)  # busy_until is -inf when idle
    now = start
    for i in range(0, roots.size, clients):
        for root in roots[i:i + clients]:
            tickets.append(server.submit(int(root), kind=kind,
                                         semiring=semiring, now=now))
        server.drain(now=now)
        now = max(now, server.busy_until)
    return _report(server, before, tickets, makespan=now - start,
                   workload=_workload_key("closed-loop", kind, semiring,
                                          clients=int(clients),
                                          nqueries=int(roots.size),
                                          params=params))


# ----------------------------------------------------------------------
def _workload_key(loop: str, kind: str, semiring: str, *,
                  params: dict | None = None, **extra) -> dict:
    """The report's self-description: loop shape, query mix, and the
    caller's generation parameters (seed, rate, Zipf s, ...) merged in —
    so a saved report states how to regenerate its own traffic."""
    out = {"loop": loop, "kind": kind, "semiring": semiring}
    out.update({k: v for k, v in extra.items() if v is not None})
    if params:
        out.update(params)
    return out


def _snapshot(server: Server) -> dict:
    """Counters before a run, so a shared server reports per-run deltas."""
    st, cs = server.stats, server.cache.stats
    return {"served": st.served, "cache_hits": st.cache_hits,
            "mshr_hits": st.mshr_hits,
            "rejected": st.rejected, "kernel_s": st.kernel_s,
            "kernel_s_wasted": st.kernel_s_wasted,
            "batches": st.batches, "nlat": len(st.latencies),
            "nclat": len(st.cache_latencies),
            "nwidths": len(st.widths), "coalesced": server.batcher.coalesced,
            "lookups": cs.lookups,
            "timeouts": st.timeouts, "retries": st.retries,
            "failed": st.failed, "failed_batches": st.failed_batches,
            "sheds": st.sheds, "stale_serves": st.stale_serves,
            "cache_flakes": st.cache_flakes,
            "breaker_opens": st.breaker_opens}


def _report(server: Server, before: dict, tickets: list,
            makespan: float, workload: dict | None = None) -> dict:
    """Per-run counters and percentiles.

    ``latency_*`` keys cover the *kernel path* only (queries resolved by
    a traversal, including MSHR waiters that shared one); cache hits are
    a separate population (``cache_latency_*``, identically 0.0 on the
    virtual clock) so Zipf-skewed hit traffic cannot drag p50 to zero.
    ``workload`` is echoed under the ``"workload"`` key (self-describing
    reports: loop shape, seed, arrival parameters).
    """
    st = server.stats
    lat = np.asarray(st.latencies[before["nlat"]:], dtype=np.float64)
    clat = np.asarray(st.cache_latencies[before["nclat"]:], dtype=np.float64)
    widths = st.widths[before["nwidths"]:]
    served = st.served - before["served"]
    kernel_s = st.kernel_s - before["kernel_s"]
    kernel_served = served - (st.cache_hits - before["cache_hits"])
    # Goodput accounting: ``served`` excludes timed-out/failed queries,
    # so kernel seconds that produced no served answer (batches whose
    # every waiter timed out) are split out rather than left in the
    # denominator — otherwise faulted runs silently deflate throughput.
    kernel_s_wasted = st.kernel_s_wasted - before["kernel_s_wasted"]
    kernel_s_useful = kernel_s - kernel_s_wasted
    makespan = float(max(makespan, 0.0))
    return {
        "workload": workload if workload is not None else {},
        "nqueries": len(tickets),
        "served": served,
        "rejected": st.rejected - before["rejected"],
        "cache_hits": st.cache_hits - before["cache_hits"],
        "mshr_hits": st.mshr_hits - before["mshr_hits"],
        "coalesced": server.batcher.coalesced - before["coalesced"],
        "batches": st.batches - before["batches"],
        "mean_batch_width": float(np.mean(widths)) if widths else 0.0,
        "kernel_s": kernel_s,
        "kernel_s_wasted": kernel_s_wasted,
        "kernel_throughput_qps": (kernel_served / kernel_s_useful
                                  if kernel_s_useful > 0 else 0.0),
        "virtual_makespan_s": makespan,
        "virtual_throughput_qps": served / makespan if makespan > 0 else 0.0,
        "latency_p50_s": percentile(lat, 50),
        "latency_p95_s": percentile(lat, 95),
        "latency_p99_s": percentile(lat, 99),
        "latency_mean_s": float(lat.mean()) if lat.size else 0.0,
        "cache_latency_p50_s": percentile(clat, 50),
        "cache_latency_p99_s": percentile(clat, 99),
        # Resilience counters (all zero under a fault-free run).
        "timeouts": st.timeouts - before["timeouts"],
        "retries": st.retries - before["retries"],
        "failed": st.failed - before["failed"],
        "failed_batches": st.failed_batches - before["failed_batches"],
        "sheds": st.sheds - before["sheds"],
        "stale_serves": st.stale_serves - before["stale_serves"],
        "cache_flakes": st.cache_flakes - before["cache_flakes"],
        "breaker_opens": st.breaker_opens - before["breaker_opens"],
    }
