"""The serving driver: submit single-root queries, answer them in batches.

:class:`Server` is the synchronous core.  ``submit()`` consults the
:class:`~repro.serve.cache.ResultCache` (hot roots never touch a kernel),
applies backpressure (a full pending queue resolves the ticket to an
explicit :class:`~repro.serve.query.Rejected` result instead of growing
without bound), and otherwise hands the ticket to the
:class:`~repro.serve.batcher.QueryBatcher`.  Batches released by width or
deadline run on the engine the :class:`~repro.serve.engines.EnginePool`
picks for their width, and every resolved query is accounted in
:class:`ServeStats` (latency percentiles, batch widths, kernel seconds).

Time is explicit: every entry point takes ``now=`` (defaulting to the
server's ``clock``), so workload generators can drive the server on a
virtual arrival clock while kernel time stays measured.  The sync server
is cooperatively scheduled — ``max_wait`` deadlines fire inside
``submit()``/``poll()``/``drain()``; :class:`AsyncServer` adds real
timers and per-query awaitable futures on top.

Service is modeled FIFO: a batch dispatched while a previous batch is
still "running" (in virtual time) starts after it, so open-loop latencies
include queueing delay, not just batching delay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bfs.msbfs import build_rep
from repro.bfs.result import BFSResult
from repro.formats.sell import SellCSigma
from repro.graphs.graph import Graph
from repro.semirings.base import get_semiring
from repro.serve.batcher import Batch, QueryBatcher
from repro.serve.cache import ResultCache, graph_fingerprint
from repro.serve.engines import DEFAULT_HYBRID_MAX_WIDTH, EnginePool
from repro.serve.query import Query, QueryResult, Rejected, Ticket

__all__ = ["AsyncServer", "ServeStats", "Server"]


@dataclass
class ServeStats:
    """Serving-side accounting: counts, widths, kernel time, latencies."""

    submitted: int = 0
    served: int = 0
    rejected: int = 0
    cache_hits: int = 0
    batches: int = 0
    #: Total kernel wall-clock seconds across dispatched batches.
    kernel_s: float = 0.0
    #: Width of every dispatched batch, in dispatch order.
    widths: list[int] = field(default_factory=list)
    #: Release-reason histogram (``width`` / ``deadline`` / ``drain``).
    reasons: dict[str, int] = field(default_factory=dict)
    #: Per-served-query latency (submit → completion), seconds.
    latencies: list[float] = field(default_factory=list)

    @property
    def mean_batch_width(self) -> float:
        """Average frontier columns per dispatched batch."""
        return float(np.mean(self.widths)) if self.widths else 0.0

    @property
    def kernel_throughput(self) -> float:
        """Kernel-resolved queries per kernel second (excludes cache hits)."""
        kernel_served = self.served - self.cache_hits
        return kernel_served / self.kernel_s if self.kernel_s > 0 else 0.0

    def latency_percentile(self, p: float) -> float:
        """The ``p``-th percentile (0–100) of served-query latencies."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), p))

    def summary(self) -> dict:
        """Plain-dict snapshot (JSON-friendly; used by benches/CLI)."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "mean_batch_width": self.mean_batch_width,
            "reasons": dict(self.reasons),
            "kernel_s": self.kernel_s,
            "kernel_throughput_qps": self.kernel_throughput,
            "latency_p50_s": self.latency_percentile(50),
            "latency_p95_s": self.latency_percentile(95),
            "latency_p99_s": self.latency_percentile(99),
        }


class Server:
    """Adaptive micro-batching query server over one graph.

    Parameters
    ----------
    graph_or_rep:
        The served graph, or a prebuilt :class:`SellCSigma`/``SlimSell``.
    C / sigma:
        Build parameters when a raw graph is passed (SlimSell, C=16).
    max_batch:
        Frontier columns per dispatched batch (width release trigger).
    max_wait:
        Seconds a pending query may wait for its batch to fill before the
        deadline releases it (0 = dispatch on every submit: B degenerates
        to the coalesced arrivals of a single timestamp).
    cache_size:
        :class:`ResultCache` capacity in entries (0 disables caching).
    max_pending:
        Pending-query bound; a submit beyond it is rejected.  ``None``
        (default) = unbounded.
    alpha / slimwork / strategy / hybrid_max_width:
        Engine-selection knobs, see :class:`EnginePool`.
    clock:
        The time source for defaulted ``now`` values
        (``time.perf_counter``); injectable for deterministic tests.
    """

    def __init__(self, graph_or_rep: Graph | SellCSigma, *, C: int = 16,
                 sigma: int | None = None, max_batch: int = 16,
                 max_wait: float = 2e-3, cache_size: int = 1024,
                 max_pending: int | None = None, alpha: float = 14.0,
                 slimwork: bool = True,
                 strategy: Callable[[int], str] | None = None,
                 hybrid_max_width: int = DEFAULT_HYBRID_MAX_WIDTH,
                 clock: Callable[[], float] = time.perf_counter):
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1 or None, got {max_pending}")
        self.rep = build_rep(graph_or_rep, C, sigma, slim=True)
        self.graph = self.rep.graph_original
        self.fingerprint = graph_fingerprint(self.rep)
        self.batcher = QueryBatcher(max_batch=max_batch, max_wait=max_wait)
        self.cache = ResultCache(capacity=cache_size)
        self.pool = EnginePool(self.rep, alpha=alpha, slimwork=slimwork,
                               strategy=strategy,
                               hybrid_max_width=hybrid_max_width)
        self.max_pending = max_pending
        self.clock = clock
        self.stats = ServeStats()
        #: Virtual completion time of the last dispatched batch (FIFO).
        self._busy_until = float("-inf")

    # ------------------------------------------------------------------
    @property
    def max_batch(self) -> int:
        """Width release trigger (delegated to the batcher)."""
        return self.batcher.max_batch

    @property
    def max_wait(self) -> float:
        """Deadline release trigger in seconds (delegated to the batcher)."""
        return self.batcher.max_wait

    @property
    def busy_until(self) -> float:
        """Virtual completion time of the last dispatched batch.

        ``-inf`` before the first dispatch; workload drivers read this to
        advance their clocks past the modeled FIFO service.
        """
        return self._busy_until

    # ------------------------------------------------------------------
    def submit(self, root: int, *, kind: str = "distances",
               semiring: str = "sel-max", target: int | None = None,
               now: float | None = None) -> Ticket:
        """Submit one query; returns its :class:`Ticket`.

        Resolution order: cache hit (immediate), backpressure rejection
        (immediate, explicit :class:`Rejected` result), else enqueue —
        the ticket resolves when its batch dispatches (possibly within
        this very call, if it fills a batch or a deadline is due).

        Invalid input — unknown kind/semiring, out-of-range root or
        target — raises :class:`ValueError` (a client error, not
        backpressure).
        """
        query = Query(root=int(root), kind=kind, semiring=semiring,
                      target=None if target is None else int(target))
        get_semiring(semiring)  # unknown semiring: raise here, not at flush
        n = self.rep.n
        if not 0 <= query.root < n:
            raise ValueError(f"root {query.root} out of range [0, {n})")
        if query.target is not None and not 0 <= query.target < n:
            raise ValueError(f"target {query.target} out of range [0, {n})")
        if now is None:
            now = self.clock()
        self.stats.submitted += 1
        ticket = Ticket(query=query, submitted_at=now)

        cached = self.cache.get((self.fingerprint, semiring, query.root))
        if cached is not None:
            self.stats.cache_hits += 1
            self.stats.served += 1
            self.stats.latencies.append(0.0)
            ticket._resolve(QueryResult(
                query=query, status="served", value=self._reduce(query, cached),
                bfs=cached, cache_hit=True))
            return ticket

        if (self.max_pending is not None
                and self.batcher.pending_queries >= self.max_pending):
            self.stats.rejected += 1
            ticket._resolve(Rejected(query))
            return ticket

        self.batcher.enqueue(ticket, now)
        self._pump(now)
        return ticket

    def poll(self, now: float | None = None) -> None:
        """Dispatch any deadline-due batches without submitting."""
        self._pump(self.clock() if now is None else now)

    def drain(self, now: float | None = None) -> list[QueryResult]:
        """Dispatch everything still pending; returns the drained results.

        Pending queries are released in (at most) ``max_batch``-wide
        groups, so a drain keeps the batching benefit; results come back
        in completion order.
        """
        now = self.clock() if now is None else now
        out: list[QueryResult] = []
        for batch in self.batcher.flush_all():
            out.extend(self._run_batch(batch, now))
        return out

    # ------------------------------------------------------------------
    def _pump(self, now: float) -> None:
        for batch in self.batcher.ready(now):
            self._run_batch(batch, now)

    def _run_batch(self, batch: Batch, now: float) -> list[QueryResult]:
        name, engine = self.pool.engine_for(batch.semiring, batch.width)
        t0 = time.perf_counter()
        results = engine.run(batch.roots)
        kernel = time.perf_counter() - t0
        start = max(now, self._busy_until)
        completion = start + kernel
        self._busy_until = completion
        st = self.stats
        st.batches += 1
        st.kernel_s += kernel
        st.widths.append(batch.width)
        st.reasons[batch.reason] = st.reasons.get(batch.reason, 0) + 1
        out: list[QueryResult] = []
        for j, res in enumerate(results):
            self.cache.put(
                (self.fingerprint, batch.semiring, int(batch.roots[j])), res)
            for ticket in batch.tickets[j]:
                qr = QueryResult(
                    query=ticket.query, status="served",
                    value=self._reduce(ticket.query, res), bfs=res,
                    batch_width=batch.width, engine=name,
                    latency_s=completion - ticket.submitted_at)
                ticket._resolve(qr)
                st.served += 1
                st.latencies.append(qr.latency_s)
                out.append(qr)
        return out

    def _reduce(self, query: Query, res: BFSResult):
        """Kind-specific reduction of the shared traversal."""
        if query.kind == "reachability":
            return bool(np.isfinite(res.dist[query.target]))
        if query.kind == "validate":
            from repro.graph500 import validate_bfs_tree

            validate_bfs_tree(self.graph, res)
            return True
        return res  # "distances": the traversal is the answer


class AsyncServer:
    """asyncio front-end: per-query awaitable futures over a :class:`Server`.

    ``await async_submit(...)`` resolves when the query's batch runs —
    which a width trigger may do inline, a ``max_wait`` timer (a real
    asyncio timer armed at the batcher's next deadline) does for partial
    batches, and :meth:`drain` forces.  The wrapped server must use the
    default real-time clock (virtual ``now`` values would disagree with
    the event loop's timers).
    """

    def __init__(self, server: Server):
        self.server = server
        self._waiters: list = []  # (Ticket, asyncio.Future) pairs
        self._timer = None

    async def async_submit(self, root: int, *, kind: str = "distances",
                           semiring: str = "sel-max",
                           target: int | None = None) -> QueryResult:
        """Submit one query and await its :class:`QueryResult`."""
        import asyncio

        loop = asyncio.get_running_loop()
        ticket = self.server.submit(root, kind=kind, semiring=semiring,
                                    target=target)
        self._settle()
        if ticket.done:
            return ticket.result()
        future = loop.create_future()
        self._waiters.append((ticket, future))
        self._arm_timer(loop)
        return await future

    async def drain(self) -> list[QueryResult]:
        """Force-dispatch everything pending and settle all futures."""
        out = self.server.drain()
        self._settle()
        return out

    @property
    def pending(self) -> int:
        """Futures still awaiting a batch."""
        return len(self._waiters)

    # ------------------------------------------------------------------
    def _settle(self) -> None:
        still = []
        for ticket, future in self._waiters:
            if ticket.done:
                if not future.cancelled():
                    future.set_result(ticket.result())
            else:
                still.append((ticket, future))
        self._waiters = still
        if not self._waiters and self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _arm_timer(self, loop) -> None:
        deadline = self.server.batcher.next_deadline()
        if deadline is None or (self._timer is not None
                                and not self._timer.cancelled()):
            return
        delay = max(0.0, deadline - self.server.clock())
        self._timer = loop.call_later(delay, self._fire, loop)

    def _fire(self, loop) -> None:
        self._timer = None
        self.server.poll()
        self._settle()
        if self._waiters:
            self._arm_timer(loop)
