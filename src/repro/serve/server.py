"""The serving driver: submit single-root queries, answer them in batches.

:class:`Server` is the synchronous core.  ``submit()`` resolves each
query in stages:

1. **cache** — a committed result for ``(epoch, semiring, root)`` is a
   hit: answered immediately, no kernel, no frontier column (hot
   ``"validate"`` queries reuse a memoized verdict, so they skip the
   O(N+M) tree checks too);
2. **MSHR** — a miss on a root that is already *pending* or *in flight*
   (:class:`~repro.serve.mshr.MissStatusRegistry`) attaches the ticket
   as a waiter on the outstanding traversal instead of enqueueing a new
   column — zero extra kernel work, latency = the batch's virtual
   completion minus the submit time;
3. **backpressure** — only a query that would need a *new* frontier
   column counts against ``max_pending``; beyond it the ticket resolves
   to an explicit :class:`~repro.serve.query.Rejected` result (and its
   cache lookup is counted as rejected, not as a miss);
4. **enqueue** — otherwise the ticket allocates an MSHR entry and hands
   its column to the :class:`~repro.serve.batcher.QueryBatcher`.

Batches released by width or deadline run on the engine the
:class:`~repro.serve.engines.EnginePool` picks for their width.  Results
become cache-visible only at the batch's *virtual completion time*
(``busy_until``), never at dispatch: completed entries are committed
lazily as the clock advances, so a query arriving before completion can
never observe the result early (it attaches to the in-flight entry and
pays the remaining wait instead).  Every resolved query is accounted in
:class:`ServeStats` — kernel-path and cache-hit latencies are kept as
separate populations so percentiles stay meaningful under Zipf skew.

Time is explicit: every entry point takes ``now=`` (defaulting to the
server's ``clock``), so workload generators can drive the server on a
virtual arrival clock while kernel time stays measured.  The sync server
is cooperatively scheduled — ``max_wait`` deadlines fire inside
``submit()``/``poll()``/``drain()``; :class:`AsyncServer` adds real
timers and per-query awaitable futures on top.

Service is modeled FIFO: a batch dispatched while a previous batch is
still "running" (in virtual time) starts after it, so open-loop latencies
include queueing delay, not just batching delay.

The failure surface is first-class (:mod:`repro.serve.faults`): a
seed-driven ``faults=`` plan injects kernel exceptions, stragglers, and
cache flakiness; per-query ``deadline=`` turns late answers into
:class:`~repro.serve.query.TimedOut`; transient faults are retried at
*batch* granularity with exponential backoff (all coalesced waiters ride
one retry); and a :class:`~repro.serve.faults.CircuitBreaker` degrades
gracefully under sustained failures — shedding kernel-path load,
halving ``max_batch``, optionally serving prior-epoch cache entries
flagged ``stale=True``.  With ``faults=None`` and no deadlines none of
this machinery runs: behavior is bit-identical to the fault-free server.

Observability rides on the same opt-in pattern (:mod:`repro.obs`): a
``tracer=`` turns every accepted query into a span tree — root
``serve.query`` [submit → resolution], children for the cache/MSHR
verdict and the queue wait, ``serve.batch``/``serve.kernel`` spans per
dispatched batch with the engine's wall-clock per-layer spans re-based
into the kernel's virtual window — while ``tracer=None`` (default)
creates *no span ever* and stays bit-identical, exactly like
``faults=None``.  Every scalar :class:`ServeStats` counter lives in the
server's :class:`~repro.obs.metrics.MetricsRegistry` (``self.metrics``)
under stable ``serve.*`` names, and the cache, MSHR, batcher and breaker
publish lazy views beside them; the registry always exists — it is pure
bookkeeping relocation, with no clock reads and no rng.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.bfs.msbfs import build_rep
from repro.bfs.result import BFSResult
from repro.formats.sell import SellCSigma
from repro.graphs.graph import Graph
from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.trace import Tracer
from repro.semirings.base import get_semiring
from repro.serve.batcher import Batch, QueryBatcher
from repro.serve.cache import ResultCache, graph_fingerprint
from repro.serve.engines import DEFAULT_HYBRID_MAX_WIDTH, EnginePool
from repro.serve.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    PermanentKernelFault,
    TransientKernelFault,
)
from repro.serve.mshr import MissStatusRegistry, MSHREntry
from repro.serve.query import (
    Failed,
    Query,
    QueryResult,
    Rejected,
    Ticket,
    TimedOut,
)

__all__ = ["AsyncServer", "ServeStats", "Server"]


#: ServeStats scalar counters → their stable registry names: the single
#: source of truth for the attribute surface *and* the ``serve.*`` metric
#: table (see the README).  Semantics, per attribute:
#:
#: - ``submitted`` / ``served`` / ``rejected``: query outcomes.
#: - ``cache_hits``: answered straight from the committed cache.
#: - ``mshr_hits``: attached to an outstanding (pending or in-flight)
#:   miss instead of paying for a new frontier column.
#: - ``batches``: dispatched batches.
#: - ``kernel_s``: total kernel wall-clock seconds across batches.
#: - ``kernel_s_wasted``: kernel seconds of batches that served *no*
#:   waiter (every query resolved past its deadline) — charged to
#:   ``kernel_s`` like any other batch but split out so goodput metrics
#:   can exclude them.
#: - ``timeouts`` / ``retries`` / ``failed`` / ``failed_batches`` /
#:   ``sheds`` / ``stale_serves`` / ``cache_flakes`` /
#:   ``breaker_opens`` / ``breaker_closes``: resilience accounting (all
#:   zero with ``faults=None`` and no deadlines).
_STAT_COUNTERS = {
    "submitted": "serve.submitted",
    "served": "serve.served",
    "rejected": "serve.rejected",
    "cache_hits": "serve.cache_hits",
    "mshr_hits": "serve.mshr_hits",
    "batches": "serve.batches",
    "kernel_s": "serve.kernel_s",
    "kernel_s_wasted": "serve.kernel_s_wasted",
    "timeouts": "serve.timeouts",
    "retries": "serve.retries",
    "failed": "serve.failed",
    "failed_batches": "serve.failed_batches",
    "sheds": "serve.sheds",
    "stale_serves": "serve.stale_serves",
    "cache_flakes": "serve.cache_flakes",
    "breaker_opens": "serve.breaker_opens",
    "breaker_closes": "serve.breaker_closes",
}


class ServeStats:
    """Serving-side accounting: counts, widths, kernel time, latencies.

    The scalar counters live in a :class:`~repro.obs.metrics.MetricsRegistry`
    under the stable dotted names of :data:`_STAT_COUNTERS`; the familiar
    attributes (``stats.served``, ``stats.kernel_s``, ...) are thin
    read/write properties over those registry counters, so existing code
    and registry readers see one store.  Values and arithmetic are
    bit-identical to the former plain fields (a counter starts at int 0
    and follows ordinary ``+=`` promotion).  The list/dict populations
    (widths, reasons, latencies) stay plain attributes; their derived
    percentiles are registered as lazy views.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        #: The registry every scalar counter lives in; the owning server
        #: shares it with its components (``Server.metrics``).
        self.registry = MetricsRegistry() if registry is None else registry
        self._counters = {attr: self.registry.counter(name)
                          for attr, name in _STAT_COUNTERS.items()}
        #: Width of every dispatched batch, in dispatch order.
        self.widths: list[int] = []
        #: Release-reason histogram (``width`` / ``deadline`` / ``drain``).
        self.reasons: dict[str, int] = {}
        #: Kernel-path latency (submit → batch completion) per query
        #: resolved by a traversal — batch fan-out and in-flight MSHR
        #: attaches alike.
        self.latencies: list[float] = []
        #: Cache-hit latency per query answered from the committed cache
        #: — a separate population (identically 0.0 on the virtual
        #: clock), so kernel percentiles are not diluted by hits under
        #: Zipf skew.
        self.cache_latencies: list[float] = []
        reg = self.registry
        reg.register_view("serve.mean_batch_width",
                          lambda: self.mean_batch_width)
        reg.register_view("serve.kernel_throughput_qps",
                          lambda: self.kernel_throughput)
        reg.register_view("serve.latency_p50_s",
                          lambda: self.latency_percentile(50))
        reg.register_view("serve.latency_p95_s",
                          lambda: self.latency_percentile(95))
        reg.register_view("serve.latency_p99_s",
                          lambda: self.latency_percentile(99))
        reg.register_view("serve.cache_latency_p50_s",
                          lambda: self.cache_latency_percentile(50))
        reg.register_view("serve.cache_latency_p99_s",
                          lambda: self.cache_latency_percentile(99))

    @property
    def mean_batch_width(self) -> float:
        """Average frontier columns per dispatched batch."""
        return float(np.mean(self.widths)) if self.widths else 0.0

    @property
    def kernel_throughput(self) -> float:
        """Kernel-resolved queries per *useful* kernel second.

        Excludes cache hits from the numerator and wasted kernel seconds
        (batches whose every waiter timed out) from the denominator, so
        the metric stays a goodput rate under fault injection instead of
        silently deflating.
        """
        kernel_served = self.served - self.cache_hits
        useful = self.kernel_s - self.kernel_s_wasted
        return kernel_served / useful if useful > 0 else 0.0

    def latency_percentile(self, p: float) -> float:
        """``p``-th percentile (0–100) of *kernel-path* latencies."""
        return percentile(self.latencies, p)

    def cache_latency_percentile(self, p: float) -> float:
        """``p``-th percentile (0–100) of cache-hit latencies."""
        return percentile(self.cache_latencies, p)

    def summary(self) -> dict:
        """Plain-dict snapshot (JSON-friendly; used by benches/CLI)."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "mshr_hits": self.mshr_hits,
            "batches": self.batches,
            "mean_batch_width": self.mean_batch_width,
            "reasons": dict(self.reasons),
            "kernel_s": self.kernel_s,
            "kernel_s_wasted": self.kernel_s_wasted,
            "kernel_throughput_qps": self.kernel_throughput,
            "latency_p50_s": self.latency_percentile(50),
            "latency_p95_s": self.latency_percentile(95),
            "latency_p99_s": self.latency_percentile(99),
            "cache_latency_p50_s": self.cache_latency_percentile(50),
            "cache_latency_p99_s": self.cache_latency_percentile(99),
            "timeouts": self.timeouts,
            "retries": self.retries,
            "failed": self.failed,
            "failed_batches": self.failed_batches,
            "sheds": self.sheds,
            "stale_serves": self.stale_serves,
            "cache_flakes": self.cache_flakes,
            "breaker_opens": self.breaker_opens,
            "breaker_closes": self.breaker_closes,
        }


def _counter_property(attr: str, metric: str) -> property:
    """Read/write property over one registry-backed stats counter."""
    def fget(self):
        return self._counters[attr].value

    def fset(self, value):
        self._counters[attr].value = value

    return property(fget, fset,
                    doc=f"Registry-backed counter ``{metric}``.")


for _attr, _metric in _STAT_COUNTERS.items():
    setattr(ServeStats, _attr, _counter_property(_attr, _metric))
del _attr, _metric


class Server:
    """Adaptive micro-batching query server over one graph.

    Parameters
    ----------
    graph_or_rep:
        The served graph, or a prebuilt :class:`SellCSigma`/``SlimSell``.
    C / sigma:
        Build parameters when a raw graph is passed (SlimSell, C=16).
    max_batch:
        Frontier columns per dispatched batch (width release trigger).
    max_wait:
        Seconds a pending query may wait for its batch to fill before the
        deadline releases it (0 = dispatch on every submit: B degenerates
        to the coalesced arrivals of a single timestamp).
    cache_size:
        :class:`ResultCache` capacity in entries (0 disables caching;
        in-flight miss coalescing through the MSHR stays on either way).
    max_pending:
        Bound on frontier columns waiting in the batcher; a submit that
        would need a *new* column beyond it is rejected.  Duplicates of
        an outstanding root attach to its MSHR entry for free and are
        never rejected.  ``None`` (default) = unbounded.
    alpha / slimwork / strategy / hybrid_max_width:
        Engine-selection knobs, see :class:`EnginePool`.
    clock:
        The time source for defaulted ``now`` values
        (``time.perf_counter``); injectable for deterministic tests.
    faults:
        A :class:`~repro.serve.faults.FaultPlan` (or a prebuilt — possibly
        scripted — :class:`~repro.serve.faults.FaultInjector`) injecting
        kernel faults, stragglers, and cache flakiness around
        ``_run_batch``.  ``None`` (default) = no injection and *no rng is
        ever created*: the fault-free server is bit-identical to one that
        predates the fault layer.
    max_retries:
        Batch re-dispatches allowed after transient kernel faults before
        the batch fails.  One retry re-dispatches *all* coalesced MSHR
        waiters together — never a per-waiter retry storm.
    retry_backoff:
        Base of the exponential backoff charged to the virtual timeline
        per retry (attempt ``k`` adds ``retry_backoff * 2**k`` modeled
        seconds).
    breaker:
        The :class:`~repro.serve.faults.CircuitBreaker` degrading service
        under sustained batch failures (opens after its
        ``failure_threshold``: sheds kernel-path load, halves
        ``max_batch``, optionally serves stale).  Pass a configured
        instance to tune thresholds; the default never acts unless
        batches actually fail.
    serve_stale:
        While the breaker is open, answer shed queries from prior-epoch
        cache entries (flagged ``stale=True``) when one exists, instead
        of rejecting; also keeps cache entries across
        :meth:`invalidate` so there is something stale to serve.
    service_model:
        Optional ``width -> seconds`` callable replacing the *measured*
        kernel time on the virtual timeline (the engine still runs for
        real answers).  Makes completion times — hence timeouts, breaker
        cooldowns, goodput — deterministic for tests and benchmarks.
    batch_service_model:
        Optional ``roots -> seconds`` callable (``roots`` the dispatched
        batch's int64 root array) replacing the measured kernel time with
        a cost computed from the *actual batch composition*, not just its
        width.  This is the capacity planner's seam
        (:class:`~repro.serve.plan.DistServiceModel` charges each batch
        the distributed model's union-sweep time); mutually exclusive
        with ``service_model``.
    tracer:
        A :class:`~repro.obs.trace.Tracer` collecting the span tree of
        every accepted query (root ``serve.query`` per ticket,
        ``serve.batch``/``serve.kernel`` per dispatched batch, engine
        per-layer spans re-based into the kernel's virtual window — see
        the README span taxonomy).  ``None`` (default) = tracing off and
        *no span is ever created*: like ``faults=None``, the untraced
        server is bit-identical to one that predates the tracing layer.
    """

    def __init__(self, graph_or_rep: Graph | SellCSigma, *, C: int = 16,
                 sigma: int | None = None, max_batch: int = 16,
                 max_wait: float = 2e-3, cache_size: int = 1024,
                 max_pending: int | None = None, alpha: float = 14.0,
                 slimwork: bool = True,
                 strategy: Callable[[int], str] | None = None,
                 hybrid_max_width: int = DEFAULT_HYBRID_MAX_WIDTH,
                 clock: Callable[[], float] = time.perf_counter,
                 faults: FaultPlan | FaultInjector | None = None,
                 max_retries: int = 2, retry_backoff: float = 1e-3,
                 breaker: CircuitBreaker | None = None,
                 serve_stale: bool = False,
                 service_model: Callable[[int], float] | None = None,
                 batch_service_model: Callable[[np.ndarray], float] | None
                 = None,
                 tracer: Tracer | None = None):
        if service_model is not None and batch_service_model is not None:
            raise ValueError(
                "service_model and batch_service_model are mutually "
                "exclusive: one virtual timeline per server")
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1 or None, got {max_pending}")
        if alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        if hybrid_max_width < 1:
            raise ValueError(
                f"hybrid_max_width must be >= 1, got {hybrid_max_width}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}")
        self.rep = build_rep(graph_or_rep, C, sigma, slim=True)
        self.graph = self.rep.graph_original
        self.batcher = QueryBatcher(max_batch=max_batch, max_wait=max_wait)
        self.cache = ResultCache(capacity=cache_size)
        self.mshr = MissStatusRegistry()
        self.pool = EnginePool(self.rep, alpha=alpha, slimwork=slimwork,
                               strategy=strategy,
                               hybrid_max_width=hybrid_max_width)
        self.max_pending = max_pending
        self.clock = clock
        self.stats = ServeStats()
        #: The metrics registry every serving component publishes into:
        #: the stats counters live here (``serve.*``), and the cache,
        #: MSHR, batcher and breaker register lazy views below.
        self.metrics = self.stats.registry
        #: Span tracer (None = tracing off: no span is ever created and
        #: the serve path is bit-identical to an untraced server).
        self.tracer = tracer
        #: The fault sampler (None = fault-free: no rng exists at all).
        self.faults: FaultInjector | None = (
            FaultInjector(faults) if isinstance(faults, FaultPlan)
            else faults)
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.serve_stale = serve_stale
        self.service_model = service_model
        self.batch_service_model = batch_service_model
        #: The configured width trigger, restored when the breaker closes
        #: (opens halve ``batcher.max_batch`` to drain faster).
        self._configured_max_batch = max_batch
        #: Monotonic invalidation counter: the first component of every
        #: cache/MSHR key.  Bumped by :meth:`invalidate`.
        self.epoch = 0
        self._fingerprint: str | None = None
        #: Memoized ``"validate"`` verdicts per (epoch, semiring, root):
        #: hot roots never re-run the O(N+M) five-check validation.
        self._validated: set[tuple[int, str, int]] = set()
        #: Virtual completion time of the last dispatched batch (FIFO).
        self._busy_until = float("-inf")
        # Component views: lazy reads, nothing on the serve path changes.
        self.cache.register_metrics(self.metrics)
        self.mshr.register_metrics(self.metrics)
        self.batcher.register_metrics(self.metrics)
        self.breaker.register_metrics(self.metrics)
        self.metrics.register_view("serve.epoch", lambda: self.epoch)
        self.metrics.register_view("serve.busy_until",
                                   lambda: self._busy_until)

    # ------------------------------------------------------------------
    @property
    def max_batch(self) -> int:
        """Width release trigger (delegated to the batcher)."""
        return self.batcher.max_batch

    @property
    def max_wait(self) -> float:
        """Deadline release trigger in seconds (delegated to the batcher)."""
        return self.batcher.max_wait

    @property
    def busy_until(self) -> float:
        """Virtual completion time of the last dispatched batch.

        ``-inf`` before the first dispatch; workload drivers read this to
        advance their clocks past the modeled FIFO service.
        """
        return self._busy_until

    @property
    def fingerprint(self) -> str:
        """Structural digest of the served graph, hashed once per epoch.

        Provenance only — cache keys use the cheap :attr:`epoch` counter
        instead of re-hashing the CSR arrays on every lookup.
        """
        if self._fingerprint is None:
            self._fingerprint = graph_fingerprint(self.rep)
        return self._fingerprint

    # ------------------------------------------------------------------
    def invalidate(self) -> int:
        """Begin a new epoch: no query submitted from now on can observe
        a result computed before this call.

        O(1) where it matters: the epoch counter is bumped (making every
        older key unreachable) and the fingerprint is re-hashed lazily on
        next access.  Already-cached entries are dropped; traversals
        still pending or in flight run to completion and resolve their
        existing waiters, but their results are *discarded at commit*
        instead of becoming cache-visible.  Returns the new epoch.

        This is the hook for mutable graphs: mutate the underlying
        structure, then ``invalidate()`` so stale traversals can never be
        served again.
        """
        self.epoch += 1
        self._fingerprint = None
        # A stale-serving server keeps the old entries: unreachable
        # through epoch-keyed lookups, but peek_stale can degrade to them
        # while the breaker is open.
        self.cache.clear(keep_stale=self.serve_stale)
        self._validated.clear()
        return self.epoch

    # ------------------------------------------------------------------
    def submit(self, root: int, *, kind: str = "distances",
               semiring: str = "sel-max", target: int | None = None,
               now: float | None = None,
               deadline: float | None = None) -> Ticket:
        """Submit one query; returns its :class:`Ticket`.

        Resolution order: cache hit (immediate; a fault plan with cache
        flakiness may spuriously turn it into a miss), MSHR attach
        (shares the outstanding traversal — immediate if that batch
        already dispatched, else resolved at its dispatch), breaker shed
        (while the circuit breaker is open a kernel-path query is
        answered from a prior-epoch cache entry flagged ``stale=True``
        when ``serve_stale`` allows, else rejected with reason
        ``"shed"``), backpressure rejection (immediate, explicit
        :class:`Rejected` result — only for queries needing a new
        frontier column), else enqueue — the ticket resolves when its
        batch dispatches (possibly within this very call, if it fills a
        batch or a deadline is due).

        ``deadline`` (seconds from ``now``) marks the answer useless
        after ``now + deadline``: a batch completing later resolves the
        ticket :class:`TimedOut` instead of served.  The traversal still
        runs and is cached for future queries.

        Invalid input — unknown kind/semiring, out-of-range root or
        target, non-positive deadline — raises :class:`ValueError` (a
        client error, not backpressure).
        """
        query = Query(root=int(root), kind=kind, semiring=semiring,
                      target=None if target is None else int(target))
        get_semiring(semiring)  # unknown semiring: raise here, not at flush
        n = self.rep.n
        if not 0 <= query.root < n:
            raise ValueError(f"root {query.root} out of range [0, {n})")
        if query.target is not None and not 0 <= query.target < n:
            raise ValueError(f"target {query.target} out of range [0, {n})")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        if now is None:
            now = self.clock()
        self._commit(now)
        self.stats.submitted += 1
        ticket = Ticket(query=query, submitted_at=now,
                        deadline_at=None if deadline is None
                        else now + deadline)
        tracer = self.tracer
        if tracer is not None:
            ticket.span = tracer.begin(
                "serve.query", t=now, root=query.root, kind=kind,
                semiring=semiring)

        key = (self.epoch, semiring, query.root)
        cached = self.cache.peek(key)
        if cached is not None and self.faults is not None \
                and self.faults.cache_flaky():
            # Injected flaky read: the hit is spuriously invisible and
            # the query pays the full kernel path (recompute).
            self.stats.cache_flakes += 1
            if tracer is not None:
                tracer.record("serve.cache.flake", now, now,
                              parent=ticket.span)
            cached = None
        if cached is not None:
            self.cache.record_hit()
            self.stats.cache_hits += 1
            self.stats.served += 1
            self.stats.cache_latencies.append(0.0)
            qr = QueryResult(
                query=query, status="served",
                value=self._reduce(query, cached, key),
                bfs=cached, cache_hit=True)
            if tracer is not None:
                tracer.record("serve.cache.hit", now, now,
                              parent=ticket.span)
                tracer.end(ticket.span, t=now, status="served",
                           cache_hit=True)
                qr.span = ticket.span
            ticket._resolve(qr)
            return ticket

        entry = self.mshr.lookup(key)
        if entry is not None:
            # Outstanding miss: attach as a waiter (zero extra kernel
            # work), *before* any backpressure check — sharing an
            # existing column must never be rejected or shed.
            self.cache.record_miss()
            self.mshr.attach(entry, ticket)
            self.stats.mshr_hits += 1
            if tracer is not None:
                tracer.record("serve.mshr.attach", now, now,
                              parent=ticket.span, state=entry.state)
            if entry.state == "inflight":
                self._resolve_inflight(entry, ticket)
            return ticket

        if not self.breaker.allow(now):
            # Breaker open: degrade instead of queueing doomed kernel
            # work.  A prior-epoch cache entry (when configured) beats
            # refusing outright; either way no new column is paid for.
            if self.serve_stale:
                stale = self.cache.peek_stale(semiring, query.root,
                                              self.epoch)
                if stale is not None:
                    stale_key, stale_res = stale
                    self.cache.record_hit()
                    self.stats.stale_serves += 1
                    self.stats.served += 1
                    self.stats.cache_latencies.append(0.0)
                    qr = QueryResult(
                        query=query, status="served",
                        value=self._reduce(query, stale_res, stale_key),
                        bfs=stale_res, cache_hit=True, stale=True)
                    if tracer is not None:
                        tracer.record("serve.cache.stale", now, now,
                                      parent=ticket.span)
                        tracer.end(ticket.span, t=now, status="served",
                                   stale=True)
                        qr.span = ticket.span
                    ticket._resolve(qr)
                    return ticket
            self.cache.record_rejected_lookup()
            self.stats.rejected += 1
            self.stats.sheds += 1
            qr = Rejected(query, reason="shed")
            if tracer is not None:
                tracer.record("serve.shed", now, now, parent=ticket.span)
                tracer.end(ticket.span, t=now, status="rejected",
                           reason="shed")
                qr.span = ticket.span
            ticket._resolve(qr)
            return ticket

        if (self.max_pending is not None
                and self.batcher.pending_queries >= self.max_pending):
            self.cache.record_rejected_lookup()
            self.stats.rejected += 1
            qr = Rejected(query)
            if tracer is not None:
                tracer.record("serve.reject", now, now, parent=ticket.span,
                              reason="backpressure")
                tracer.end(ticket.span, t=now, status="rejected",
                           reason="backpressure")
                qr.span = ticket.span
            ticket._resolve(qr)
            return ticket

        self.cache.record_miss()
        self.mshr.allocate(key, ticket)
        self.batcher.enqueue(ticket, now)
        if tracer is not None:
            tracer.record("serve.enqueue", now, now, parent=ticket.span,
                          pending=self.batcher.pending_queries)
        self._pump(now)
        return ticket

    def poll(self, now: float | None = None) -> None:
        """Commit completed batches and dispatch any deadline-due ones."""
        now = self.clock() if now is None else now
        self._commit(now)
        self._pump(now)

    def drain(self, now: float | None = None) -> list[QueryResult]:
        """Dispatch everything still pending; returns the drained results.

        Pending queries are released in (at most) ``max_batch``-wide
        groups, so a drain keeps the batching benefit; results come back
        in completion order.
        """
        now = self.clock() if now is None else now
        self._commit(now)
        out: list[QueryResult] = []
        for batch in self.batcher.flush_all():
            out.extend(self._run_batch(batch, now))
        return out

    # ------------------------------------------------------------------
    def _commit(self, now: float) -> None:
        """Publish every in-flight traversal whose virtual completion
        time has passed: only now does it become cache-visible.  Entries
        whose epoch was invalidated while in flight are dropped."""
        for entry in self.mshr.take_due(now):
            if entry.key[0] == self.epoch:
                self.cache.put(entry.key, entry.result)

    def _pump(self, now: float) -> None:
        for batch in self.batcher.ready(now):
            self._run_batch(batch, now)

    def _run_batch(self, batch: Batch, now: float) -> list[QueryResult]:
        """Run one released batch, under the fault plan when one is set.

        The retry loop is *batch-level*: a transient kernel fault
        re-dispatches the whole batch (all coalesced MSHR waiters ride
        the one retry), charging ``retry_backoff * 2**attempt`` modeled
        seconds per attempt.  A permanent fault, an exhausted retry
        budget, or a real engine exception takes the :meth:`_fail_batch`
        path — every waiter resolves ``Failed``, the MSHR entries are
        aborted, and nothing is ever published to the cache (a real
        exception then re-raises, invariants already restored).
        """
        name, engine = self.pool.engine_for(batch.semiring, batch.width)
        start = max(now, self._busy_until)
        tracer = self.tracer
        delay = 0.0  # modeled seconds lost to faulted attempts
        attempt = 0
        while True:
            if self.faults is not None:
                try:
                    self.faults.kernel_fault()
                except PermanentKernelFault as exc:
                    return self._fail_batch(batch, start + delay, exc)
                except TransientKernelFault as exc:
                    if attempt >= self.max_retries:
                        return self._fail_batch(batch, start + delay, exc)
                    delay += self.retry_backoff * (2.0 ** attempt)
                    attempt += 1
                    self.stats.retries += 1
                    continue
            if tracer is not None:
                # Let the engine emit its per-layer wall-clock spans
                # (re-based into the virtual kernel window below).
                engine.tracer = tracer
                engine.trace_parent = None
                mark = len(tracer.spans)
            t0 = time.perf_counter()
            try:
                results = engine.run(batch.roots)
            except Exception as exc:
                if tracer is not None:
                    engine.tracer = None
                self._fail_batch(batch, start + delay, exc)
                raise
            kernel = time.perf_counter() - t0
            if tracer is not None:
                engine.tracer = None
                engine_spans = tracer.spans[mark:]
                measured = kernel
            break
        if self.batch_service_model is not None:
            kernel = self.batch_service_model(batch.roots)
        elif self.service_model is not None:
            kernel = self.service_model(batch.width)
        if self.faults is not None:
            kernel *= self.faults.straggler()
        completion = start + delay + kernel
        self._busy_until = completion
        st = self.stats
        st.batches += 1
        st.kernel_s += kernel
        st.widths.append(batch.width)
        st.reasons[batch.reason] = st.reasons.get(batch.reason, 0) + 1
        if self.breaker.record_success():
            st.breaker_closes += 1
            self.batcher.max_batch = self._configured_max_batch
        bspan = kspan = None
        if tracer is not None:
            bspan = tracer.begin(
                "serve.batch", t=start, track="server",
                semiring=batch.semiring, width=batch.width,
                reason=batch.reason, engine=name,
                queries=batch.n_queries)
            if delay > 0.0:
                tracer.record("serve.retry.backoff", start, start + delay,
                              parent=bspan, retries=attempt)
            kstart = start + delay
            kspan = tracer.record("serve.kernel", kstart, completion,
                                  parent=bspan, track="server", engine=name,
                                  width=batch.width, measured_s=measured)
            if engine_spans and measured > 0.0:
                # Re-base the engine's wall-clock layer spans into the
                # kernel's virtual window: offset to kstart, scaled so
                # the measured duration fills the modeled one exactly.
                scale = kernel / measured
                for s in engine_spans:
                    if s.parent_id is None:
                        s.parent_id = kspan.span_id
                    s.trace_id = kspan.trace_id
                    s.t_start = kstart + (s.t_start - t0) * scale
                    if s.t_end is not None:
                        s.t_end = kstart + (s.t_end - t0) * scale
            tracer.end(bspan, t=completion)
        out: list[QueryResult] = []
        batch_served = 0
        for j, res in enumerate(results):
            entry = self._entry_for(batch, j)
            self.mshr.dispatch(entry, res, completion, batch.width, name)
            if tracer is not None:
                entry.kernel_span = kspan
            nwaiters = len(entry.waiters)
            for i, ticket in enumerate(entry.waiters):
                latency = completion - ticket.submitted_at
                if (ticket.deadline_at is not None
                        and completion > ticket.deadline_at):
                    # Too late to be useful for *this* ticket; the
                    # traversal is still cached for future queries.
                    qr = TimedOut(ticket.query, latency_s=latency)
                    st.timeouts += 1
                else:
                    qr = QueryResult(
                        query=ticket.query, status="served",
                        value=self._reduce(ticket.query, res, entry.key),
                        bfs=res, mshr_hit=i > 0, waiters=nwaiters,
                        batch_width=batch.width, engine=name,
                        latency_s=latency)
                    st.served += 1
                    batch_served += 1
                    st.latencies.append(latency)
                if tracer is not None:
                    self._trace_finish(ticket, qr, start, completion,
                                       bspan, kspan, mshr_hit=i > 0)
                ticket._resolve(qr)
                out.append(qr)
        if batch_served == 0:
            # Every waiter missed its deadline: the batch's kernel time
            # produced no served answer (goodput-wasted, though the
            # results are still cached for future queries).
            st.kernel_s_wasted += kernel
        return out

    def _trace_finish(self, ticket: Ticket, qr: QueryResult, start: float,
                      completion: float, batch_span, kernel_span, *,
                      mshr_hit: bool) -> None:
        """Close one waiter's root span at its batch's completion time,
        linking it to the batch/kernel spans that answered it (and
        recording the queueing wait, when there was one)."""
        span = ticket.span
        if span is None:
            return
        if start > ticket.submitted_at:
            self.tracer.record("serve.queue", ticket.submitted_at, start,
                               parent=span)
        self.tracer.end(
            span, t=completion, status=qr.status, mshr_hit=mshr_hit,
            batch_span=batch_span.span_id, kernel_span=kernel_span.span_id,
            engine=qr.engine, latency_s=qr.latency_s)
        qr.span = span

    def _fail_batch(self, batch: Batch, completion: float,
                    exc: BaseException) -> list[QueryResult]:
        """Resolve a failed batch: every coalesced waiter gets ``Failed``,
        every MSHR entry is aborted (so later queries on the same roots
        allocate fresh misses), and the breaker accounts the failure —
        possibly opening and degrading ``max_batch``.  Restores every
        serving invariant, so it is safe to re-raise afterwards for real
        engine exceptions."""
        st = self.stats
        st.failed_batches += 1
        self._busy_until = max(self._busy_until, completion)
        out: list[QueryResult] = []
        for j in range(batch.width):
            entry = self._entry_for(batch, j)
            for ticket in entry.waiters:
                qr = Failed(ticket.query, error=str(exc) or repr(exc),
                            latency_s=completion - ticket.submitted_at)
                if self.tracer is not None and ticket.span is not None:
                    self.tracer.end(ticket.span, t=completion,
                                    status="failed", latency_s=qr.latency_s)
                    qr.span = ticket.span
                ticket._resolve(qr)
                st.failed += 1
                out.append(qr)
            self.mshr.abort(entry)
        if self.breaker.record_failure(completion):
            st.breaker_opens += 1
            # Degrade: narrower batches fail less work per fault and
            # drain the queue sooner; restored when the breaker closes.
            self.batcher.max_batch = max(1, self.batcher.max_batch // 2)
        return out

    def _entry_for(self, batch: Batch, j: int) -> MSHREntry:
        """The MSHR entry owning column ``j`` of ``batch``.

        ``submit()`` always allocates one before enqueueing, so the
        primary ticket carries it; tickets enqueued into the batcher
        directly (bypassing the server) get an entry synthesized here,
        and any batcher-level coalesced duplicates are folded into the
        waiter list so fan-out stays the single resolution path.
        """
        tickets = batch.tickets[j]
        entry = tickets[0].mshr
        if entry is None:
            entry = self.mshr.allocate(
                (self.epoch, batch.semiring, int(batch.roots[j])), tickets[0])
        for t in tickets[1:]:
            if t.mshr is None:
                self.mshr.attach(entry, t)
        return entry

    def _resolve_inflight(self, entry: MSHREntry, ticket: Ticket) -> None:
        """Resolve a waiter that attached after its batch dispatched: the
        answer exists from the batch's virtual completion, so latency is
        completion − submit (never the impossible 0.0 of a premature
        cache hit).  A deadline earlier than that completion resolves
        :class:`TimedOut` instead."""
        latency = entry.completion - ticket.submitted_at
        if (ticket.deadline_at is not None
                and entry.completion > ticket.deadline_at):
            qr = TimedOut(ticket.query, latency_s=latency)
            self.stats.timeouts += 1
        else:
            qr = QueryResult(
                query=ticket.query, status="served",
                value=self._reduce(ticket.query, entry.result, entry.key),
                bfs=entry.result, mshr_hit=True, waiters=len(entry.waiters),
                batch_width=entry.batch_width, engine=entry.engine,
                latency_s=latency)
            self.stats.served += 1
            self.stats.latencies.append(latency)
        if self.tracer is not None and ticket.span is not None:
            kspan = entry.kernel_span
            self.tracer.end(
                ticket.span, t=entry.completion, status=qr.status,
                mshr_hit=True,
                kernel_span=None if kspan is None else kspan.span_id,
                latency_s=latency)
            qr.span = ticket.span
        ticket._resolve(qr)

    def _reduce(self, query: Query, res: BFSResult,
                key: tuple[int, str, int]):
        """Kind-specific reduction of the shared traversal."""
        if query.kind == "reachability":
            return bool(np.isfinite(res.dist[query.target]))
        if query.kind == "validate":
            if key not in self._validated:
                from repro.graph500 import validate_bfs_tree

                validate_bfs_tree(self.graph, res)
                self._validated.add(key)
            return True
        return res  # "distances": the traversal is the answer


class AsyncServer:
    """asyncio front-end: per-query awaitable futures over a :class:`Server`.

    ``await async_submit(...)`` resolves when the query's batch runs —
    which a width trigger may do inline, a ``max_wait`` timer (a real
    asyncio timer armed at the batcher's next deadline) does for partial
    batches, and :meth:`drain` forces.  Duplicate submits attach to the
    outstanding miss's MSHR entry inside the server, so their futures all
    settle from that one traversal's fan-out.  The timer is
    deadline-aware: it tracks the deadline it was armed for and re-arms
    whenever the batcher's next deadline moves (e.g. after a
    width-triggered release empties the group it was armed for), so no
    stale timer is left behind and no due group is stranded.  The wrapped
    server must use the default real-time clock (virtual ``now`` values
    would disagree with the event loop's timers).
    """

    def __init__(self, server: Server):
        self.server = server
        self._waiters: list = []  # (Ticket, asyncio.Future) pairs
        self._timer = None
        #: The batcher deadline the live timer was armed for (None =
        #: no timer armed); compared against ``next_deadline()`` so a
        #: moved deadline cancels and re-arms instead of going stale.
        self._armed_deadline: float | None = None

    async def async_submit(self, root: int, *, kind: str = "distances",
                           semiring: str = "sel-max",
                           target: int | None = None,
                           deadline: float | None = None) -> QueryResult:
        """Submit one query and await its :class:`QueryResult`.

        ``deadline`` behaves as in :meth:`Server.submit`: an answer
        arriving after it resolves the future to a
        :class:`~repro.serve.query.TimedOut` result (the future itself
        still settles at batch completion — no asyncio-level
        cancellation is involved).
        """
        import asyncio

        loop = asyncio.get_running_loop()
        ticket = self.server.submit(root, kind=kind, semiring=semiring,
                                    target=target, deadline=deadline)
        self._settle()
        if ticket.done:
            if self._waiters:
                self._arm_timer(loop)  # this submit may have moved the deadline
            return ticket.result()
        future = loop.create_future()
        self._waiters.append((ticket, future))
        self._arm_timer(loop)
        return await future

    async def drain(self) -> list[QueryResult]:
        """Force-dispatch everything pending and settle all futures."""
        out = self.server.drain()
        self._settle()
        return out

    @property
    def pending(self) -> int:
        """Futures still awaiting a batch."""
        return len(self._waiters)

    # ------------------------------------------------------------------
    def _settle(self) -> None:
        still = []
        for ticket, future in self._waiters:
            if ticket.done:
                if not future.cancelled():
                    future.set_result(ticket.result())
            else:
                still.append((ticket, future))
        self._waiters = still
        if not self._waiters:
            self._disarm()

    def _disarm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._armed_deadline = None

    def _arm_timer(self, loop) -> None:
        deadline = self.server.batcher.next_deadline()
        if deadline == self._armed_deadline and (
                deadline is None or self._timer is not None):
            return  # already armed for exactly this deadline
        self._disarm()
        if deadline is None:
            return
        self._armed_deadline = deadline
        delay = max(0.0, deadline - self.server.clock())
        self._timer = loop.call_later(delay, self._fire, loop)

    def _fire(self, loop) -> None:
        self._timer = None
        self._armed_deadline = None
        self.server.poll()
        self._settle()
        if self._waiters:
            self._arm_timer(loop)
