"""Deterministic fault injection and the circuit breaker of the serving tier.

A production traffic tier is defined as much by what it does when things
break as by its steady state, so the failure model is a first-class,
*seed-driven* component: every fault decision comes from one
``numpy.random.default_rng(seed)`` stream whose draw order depends only on
the event sequence (batch attempts, cache reads) — never on measured wall
time — so a workload replayed on the virtual clock injects exactly the
same faults on every run.  That determinism is what lets the resilience
benchmark commit goodput/timeout/retry curves as exact, timing-free
regression baselines.

Three pieces:

* :class:`FaultPlan` — the declarative failure model: rates for transient
  and permanent kernel exceptions, straggler batches (a latency
  multiplier on the modeled kernel time), and cache flakiness (a read
  that spuriously misses), plus the seed.
* :class:`FaultInjector` — the stateful sampler the
  :class:`~repro.serve.server.Server` consults around ``_run_batch``:
  one draw per batch attempt (:meth:`kernel_fault`), one per successful
  attempt (:meth:`straggler`), one per cache read — only when flakiness
  is enabled — (:meth:`cache_flaky`).  Subclass it to script exact fault
  sequences in tests.
* :class:`CircuitBreaker` — the graceful-degradation policy: consecutive
  batch failures trip it ``open`` (the server sheds kernel-path load
  early, shrinks ``max_batch``, and may serve stale cache entries); after
  a modeled cooldown it goes ``half-open`` and lets a trial batch
  through; a success closes it again.

Injected kernel faults are modeled exceptions —
:class:`TransientKernelFault` (retryable: the server re-dispatches the
*whole* batch with exponential backoff, so all coalesced MSHR waiters
ride one retry, never a per-waiter storm) and
:class:`PermanentKernelFault` (not retryable: every waiter resolves to a
:class:`~repro.serve.query.Failed` result).  Real engine exceptions take
the same invariant-restoring failure path and then re-raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "KernelFault",
    "PermanentKernelFault",
    "TransientKernelFault",
]


class KernelFault(Exception):
    """Base of the injected kernel-exception hierarchy."""


class TransientKernelFault(KernelFault):
    """A kernel failure that a bounded batch-level retry may outlive."""


class PermanentKernelFault(KernelFault):
    """A kernel failure no retry can fix: the batch resolves ``Failed``."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seed-driven failure model for one server run.

    Rates are per-draw probabilities: ``transient_rate`` and
    ``permanent_rate`` apply to every batch *attempt* (retries re-draw),
    ``straggler_rate`` to every successful attempt, ``cache_flake_rate``
    to every cache read (drawn only when nonzero, so kernel-fault-only
    plans keep their draw sequence regardless of hit traffic).
    """

    #: P(batch attempt raises :class:`TransientKernelFault`).
    transient_rate: float = 0.0
    #: P(batch attempt raises :class:`PermanentKernelFault`).
    permanent_rate: float = 0.0
    #: P(successful attempt is a straggler).
    straggler_rate: float = 0.0
    #: Kernel-time multiplier of a straggler batch (>= 1).
    straggler_factor: float = 4.0
    #: P(a cache read spuriously misses and the root is recomputed).
    cache_flake_rate: float = 0.0
    #: Seed of the single rng stream behind every decision.
    seed: int = 0

    def __post_init__(self):
        for name in ("transient_rate", "permanent_rate", "straggler_rate",
                     "cache_flake_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.transient_rate + self.permanent_rate > 1.0:
            raise ValueError(
                "transient_rate + permanent_rate must be <= 1, got "
                f"{self.transient_rate + self.permanent_rate}")
        if self.straggler_factor < 1.0:
            raise ValueError(f"straggler_factor must be >= 1, "
                             f"got {self.straggler_factor}")


@dataclass
class FaultStats:
    """Lifetime counters of one :class:`FaultInjector`."""

    #: Transient kernel faults injected (each triggers one batch retry
    #: attempt, until the server's retry budget runs out).
    transient: int = 0
    #: Permanent kernel faults injected (each fails its batch outright).
    permanent: int = 0
    #: Straggler batches injected (kernel time multiplied).
    stragglers: int = 0
    #: Cache reads forced to miss.
    cache_flakes: int = 0


class FaultInjector:
    """Samples the :class:`FaultPlan` with one deterministic rng stream.

    The server consults it at three seams; each consults the stream in a
    fixed order, so two runs with the same plan and the same event
    sequence inject identical faults.  Tests that need exact fault
    scripts subclass it and override the three decision methods.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.stats = FaultStats()

    def kernel_fault(self) -> None:
        """One draw per batch attempt: raise the injected kernel fault,
        if any.  Permanent faults claim the low end of the unit interval
        so the two rates never overlap."""
        plan = self.plan
        if plan.transient_rate == 0.0 and plan.permanent_rate == 0.0:
            return
        u = self.rng.random()
        if u < plan.permanent_rate:
            self.stats.permanent += 1
            raise PermanentKernelFault("injected permanent kernel fault")
        if u < plan.permanent_rate + plan.transient_rate:
            self.stats.transient += 1
            raise TransientKernelFault("injected transient kernel fault")

    def straggler(self) -> float:
        """Kernel-time multiplier of one successful attempt (1.0 = none)."""
        plan = self.plan
        if plan.straggler_rate == 0.0:
            return 1.0
        if self.rng.random() < plan.straggler_rate:
            self.stats.stragglers += 1
            return plan.straggler_factor
        return 1.0

    def cache_flaky(self) -> bool:
        """Whether this cache read spuriously misses.  Draws from the
        stream only when flakiness is enabled, so plans without it keep
        their fault sequence independent of cache-hit traffic."""
        plan = self.plan
        if plan.cache_flake_rate == 0.0:
            return False
        if self.rng.random() < plan.cache_flake_rate:
            self.stats.cache_flakes += 1
            return True
        return False


#: Breaker states, in escalation order.
BREAKER_STATES = ("closed", "open", "half-open")


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker over modeled (virtual-clock) time.

    ``closed`` is the healthy state.  ``failure_threshold`` consecutive
    batch failures — or any failure while ``half-open`` — trip it
    ``open``: :meth:`allow` answers False until ``cooldown_s`` modeled
    seconds pass, after which the breaker turns ``half-open`` and lets
    trial traffic through.  One successful batch closes it; another
    failure re-opens it and restarts the cooldown.  The owner decides
    what "not allowed" means (the server sheds kernel-path queries early
    and may serve stale cache entries instead of failing outright).
    """

    #: Consecutive batch failures that trip the breaker open.
    failure_threshold: int = 4
    #: Modeled seconds the breaker stays open before a half-open trial.
    cooldown_s: float = 1.0
    state: str = "closed"
    #: Consecutive failures observed since the last success.
    failures: int = 0
    #: Virtual time of the transition that opened the breaker.
    opened_at: float = field(default=float("-inf"), repr=False)
    #: Lifetime transition counters (opens includes half-open reopens).
    opens: int = 0
    closes: int = 0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {self.failure_threshold}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, "
                             f"got {self.cooldown_s}")

    def allow(self, now: float) -> bool:
        """Whether new kernel-path work may enter at virtual time ``now``.

        Flips ``open`` → ``half-open`` once the cooldown has elapsed, so
        the first query after it is the trial.
        """
        if self.state == "open":
            if now - self.opened_at >= self.cooldown_s:
                self.state = "half-open"
        return self.state != "open"

    def record_failure(self, now: float) -> bool:
        """Account one batch failure at ``now``; True if this opened
        (or re-opened) the breaker."""
        self.failures += 1
        if self.state == "half-open" or (
                self.state == "closed"
                and self.failures >= self.failure_threshold):
            self.state = "open"
            self.opened_at = now
            self.opens += 1
            return True
        return False

    def record_success(self) -> bool:
        """Account one successful batch; True if this closed the breaker."""
        self.failures = 0
        if self.state != "closed":
            self.state = "closed"
            self.closes += 1
            return True
        return False

    def register_metrics(self, registry,
                         prefix: str = "serve.breaker") -> None:
        """Publish live views under ``prefix``.  ``state`` exports as the
        index into :data:`BREAKER_STATES` (0 closed / 1 open / 2
        half-open) so it plots as a numeric series."""
        registry.register_view(
            f"{prefix}.state", lambda: BREAKER_STATES.index(self.state))
        registry.register_view(f"{prefix}.failures", lambda: self.failures)
        registry.register_view(f"{prefix}.opens", lambda: self.opens)
        registry.register_view(f"{prefix}.closes", lambda: self.closes)
