"""Adaptive micro-batching of pending queries.

The batched engines (PRs 2–3) make a traversal ~B× cheaper *per source*
when B frontier columns share one SpMM sweep — but only if someone turns
independently-arriving single-root queries into (N, B) batches.  That is
this module: pending tickets accumulate in per-semiring groups (one SpMM
sweep runs one semiring), and a group is released as a :class:`Batch`
when either

* **width** — ``max_batch`` distinct roots accumulated (the profitable
  batch is full), or
* **deadline** — ``max_wait`` seconds elapsed since the group's oldest
  pending query (latency SLO beats batch efficiency), or
* **drain** — the owner flushes unconditionally (shutdown / sync barrier).

Duplicate roots coalesce: tickets asking the same ``(semiring, root)``
share one frontier column and are all resolved from its single traversal,
so k users hammering one root cost the same kernel work as one user.
(Inside a :class:`~repro.serve.server.Server`, duplicates are normally
absorbed upstream by the MSHR — :mod:`repro.serve.mshr` — which also
covers roots already *dispatched*; the batcher's own coalescing remains
for standalone use and as a defense-in-depth backstop.)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.serve.query import Ticket

__all__ = ["Batch", "QueryBatcher"]


@dataclass
class Batch:
    """One released group: the unit of work handed to an engine."""

    semiring: str
    #: int64[B] roots, column order = first-enqueue order.  Distinct per
    #: coalescing key; a root can repeat only across cache epochs.
    roots: np.ndarray
    #: ``tickets[j]`` are the (coalesced) tickets answered by column ``j``.
    tickets: list[list[Ticket]]
    #: Enqueue timestamp of the group's oldest query.
    enqueued_at: float
    #: What released the batch: ``"width" | "deadline" | "drain"``.
    reason: str

    @property
    def width(self) -> int:
        """Number of frontier columns (distinct roots)."""
        return int(self.roots.size)

    @property
    def n_queries(self) -> int:
        """Number of tickets resolved by this batch (≥ width)."""
        return sum(len(ts) for ts in self.tickets)


@dataclass
class QueryBatcher:
    """Coalescing queue that releases (N, B) batches by width or deadline."""

    max_batch: int = 16
    max_wait: float = 2e-3
    #: Queries that shared an already-pending root's column.
    coalesced: int = 0
    #: semiring → (root → tickets), insertion-ordered per group.
    _groups: dict[str, OrderedDict[int, list[Ticket]]] = field(
        default_factory=dict, repr=False)
    #: semiring → enqueue time of the group's oldest pending root.
    _first: dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Distinct pending roots (frontier columns if flushed now)."""
        return sum(len(g) for g in self._groups.values())

    @property
    def pending_queries(self) -> int:
        """Pending tickets, counting coalesced duplicates."""
        return sum(len(ts) for g in self._groups.values()
                   for ts in g.values())

    # ------------------------------------------------------------------
    def enqueue(self, ticket: Ticket, now: float) -> None:
        """Add one pending ticket at timestamp ``now`` (coalescing).

        Tickets that carry an MSHR entry coalesce on the entry's full
        key — epoch included — so a root resubmitted after an
        ``invalidate()`` gets its own column instead of silently sharing
        the stale epoch's pending traversal.  Standalone tickets (no
        server upstream) coalesce on the root alone, as before.
        """
        semiring, root = ticket.query.batch_key
        gkey = ticket.mshr.key if ticket.mshr is not None else root
        group = self._groups.setdefault(semiring, OrderedDict())
        if gkey in group:
            group[gkey].append(ticket)
            self.coalesced += 1
            return
        if not group:
            self._first[semiring] = now
        group[gkey] = [ticket]

    def register_metrics(self, registry,
                         prefix: str = "serve.batcher") -> None:
        """Publish live views of the queue under ``prefix``."""
        registry.register_view(f"{prefix}.pending_roots", lambda: len(self))
        registry.register_view(f"{prefix}.pending_queries",
                               lambda: self.pending_queries)
        registry.register_view(f"{prefix}.coalesced", lambda: self.coalesced)
        registry.register_view(f"{prefix}.max_batch", lambda: self.max_batch)

    def next_deadline(self) -> float | None:
        """Timestamp at which the oldest group becomes due (None = empty)."""
        if not self._first:
            return None
        return min(self._first.values()) + self.max_wait

    # ------------------------------------------------------------------
    def ready(self, now: float) -> list[Batch]:
        """Release every batch due at ``now`` (full-width first).

        Width-triggered releases pop exactly ``max_batch`` roots (oldest
        first); a busy group can release several full batches from one
        call.  Deadline-triggered releases pop the whole remaining group.
        """
        out: list[Batch] = []
        for semiring in list(self._groups):
            while len(self._groups.get(semiring, ())) >= self.max_batch:
                out.append(self._pop(semiring, self.max_batch, "width"))
            group = self._groups.get(semiring)
            # Same float expression as next_deadline(): polling exactly at
            # the returned deadline is always due (a - b >= w can round
            # differently than a >= b + w and strand the group forever).
            if group and now >= self._first[semiring] + self.max_wait:
                out.append(self._pop(semiring, len(group), "deadline"))
        return out

    def flush_all(self) -> list[Batch]:
        """Release everything still pending (``reason="drain"``)."""
        out = []
        for semiring in list(self._groups):
            while self._groups.get(semiring):
                width = min(self.max_batch, len(self._groups[semiring]))
                out.append(self._pop(semiring, width, "drain"))
        return out

    # ------------------------------------------------------------------
    def _pop(self, semiring: str, width: int, reason: str) -> Batch:
        group = self._groups[semiring]
        first = self._first[semiring]
        roots = np.empty(width, dtype=np.int64)
        tickets: list[list[Ticket]] = []
        for j in range(width):
            _, ts = group.popitem(last=False)
            roots[j] = ts[0].query.root
            tickets.append(ts)
        if group:
            # The remaining oldest root's first ticket restarts the clock.
            self._first[semiring] = next(iter(group.values()))[0].submitted_at
        else:
            del self._groups[semiring]
            del self._first[semiring]
        return Batch(semiring=semiring, roots=roots, tickets=tickets,
                     enqueued_at=first, reason=reason)
