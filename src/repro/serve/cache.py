"""Bounded LRU result cache for the serving layer.

Zipfian root popularity — the regime the open-loop workload generator
models — means a small set of hot roots dominates real traffic.  Those
traversals are deterministic functions of ``(graph, semiring, root)``, so
the server consults this cache *before* enqueueing a query: a hot root is
answered without touching a kernel or occupying a frontier column.

The key's graph component is a structural fingerprint
(:func:`graph_fingerprint`) rather than object identity, so a server
rebuilt over the same graph — or two servers over equal graphs — share
semantics: equal structure, equal key.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.bfs.result import BFSResult
from repro.formats.sell import SellCSigma
from repro.graphs.graph import Graph

__all__ = ["CacheStats", "ResultCache", "graph_fingerprint"]


def graph_fingerprint(graph_or_rep: Graph | SellCSigma) -> str:
    """Stable structural digest of a graph (or a built representation).

    BLAKE2b over the CSR arrays (``indptr``/``indices``) plus the vertex
    count: equal graphs (same adjacency structure) produce equal
    fingerprints across processes, unequal ones collide only with
    cryptographic improbability.  A built representation fingerprints its
    *original* graph, so the cache key is independent of C/σ build
    parameters — the answers those builds produce are bit-identical.
    """
    graph = (graph_or_rep.graph_original
             if isinstance(graph_or_rep, SellCSigma) else graph_or_rep)
    h = hashlib.blake2b(digest_size=16)
    h.update(graph.n.to_bytes(8, "little"))
    h.update(graph.indptr.tobytes())
    h.update(graph.indices.tobytes())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Stores refused because ``capacity == 0``.
    rejected_puts: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get()`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Bounded LRU mapping ``(fingerprint, semiring, root)`` → BFSResult.

    ``capacity`` bounds the entry count; 0 disables the cache entirely
    (every ``get`` misses, every ``put`` is dropped) so "cache off" needs
    no branching in the server.  ``get`` refreshes recency; inserting
    beyond capacity evicts the least-recently-used entry.
    """

    capacity: int = 1024
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self):
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple[str, str, int]) -> BFSResult | None:
        """The cached result for ``key``, refreshed as most-recent."""
        res = self._entries.get(key)
        if res is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return res

    def put(self, key: tuple[str, str, int], result: BFSResult) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past capacity."""
        if self.capacity == 0:
            self.stats.rejected_puts += 1
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._entries.clear()
