"""Bounded LRU result cache for the serving layer.

Zipfian root popularity — the regime the open-loop workload generator
models — means a small set of hot roots dominates real traffic.  Those
traversals are deterministic functions of ``(graph, semiring, root)``, so
the server consults this cache *before* touching the miss registry or
the batcher: a hot root is answered without a kernel or a frontier
column.  (Hot ``"validate"`` queries also skip the O(N+M) tree checks —
the server memoizes the verdict per key.)

Keys are ``(epoch, semiring, root)``.  The epoch is the server's cheap
monotonic invalidation counter: ``Server.invalidate()`` bumps it, which
makes every older entry unreachable in O(1) instead of rehashing the
graph.  The structural BLAKE2b digest (:func:`graph_fingerprint`) is
still available for cross-process provenance, but it is computed once
per epoch — never per lookup.

Entries become visible only when the server *commits* them at their
batch's virtual completion time (see :mod:`repro.serve.mshr`), never at
dispatch — so a lookup can never observe a result before the virtual
clock says it exists.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.bfs.result import BFSResult
from repro.formats.sell import SellCSigma
from repro.graphs.graph import Graph

__all__ = ["CacheStats", "ResultCache", "graph_fingerprint"]


def graph_fingerprint(graph_or_rep: Graph | SellCSigma) -> str:
    """Stable structural digest of a graph (or a built representation).

    BLAKE2b over the CSR arrays (``indptr``/``indices``) plus the vertex
    count: equal graphs (same adjacency structure) produce equal
    fingerprints across processes, unequal ones collide only with
    cryptographic improbability.  A built representation fingerprints its
    *original* graph, so the digest is independent of C/σ build
    parameters — the answers those builds produce are bit-identical.

    The serving layer computes this once per epoch (for provenance), not
    per lookup: cache keys use the epoch counter instead.
    """
    graph = (graph_or_rep.graph_original
             if isinstance(graph_or_rep, SellCSigma) else graph_or_rep)
    h = hashlib.blake2b(digest_size=16)
    h.update(graph.n.to_bytes(8, "little"))
    h.update(graph.indptr.tobytes())
    h.update(graph.indices.tobytes())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Stores refused because ``capacity == 0``.
    rejected_puts: int = 0
    #: Lookups whose query was then refused by backpressure: counted
    #: apart from ``misses`` so overload does not deflate ``hit_rate``
    #: (a rejected query never had a chance to be served from cache).
    rejected_lookups: int = 0

    @property
    def lookups(self) -> int:
        """Served ``get()`` calls (excludes backpressure-rejected ones)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of served lookups answered from cache (0.0 unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Bounded LRU mapping ``(epoch, semiring, root)`` → BFSResult.

    ``capacity`` bounds the entry count; 0 disables the cache entirely
    (every ``get`` misses, every ``put`` is dropped) so "cache off" needs
    no branching in the server.  ``get`` refreshes recency; inserting
    beyond capacity evicts the least-recently-used entry.

    The server resolves lookups in stages (cache → MSHR → backpressure),
    so it uses :meth:`peek` plus the explicit ``record_*`` counters to
    classify each lookup only once its outcome is known; :meth:`get`
    bundles the common hit-or-miss accounting for direct users.
    """

    capacity: int = 1024
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    #: ``(semiring, root)`` → set of epochs with a live cached entry for
    #: that root — the stale-serve index: when the circuit breaker is
    #: open, :meth:`peek_stale` answers from the newest *prior*-epoch
    #: entry (flagged ``stale=True``) instead of failing outright.
    #: Invariant: ``e in _epochs[(s, r)]`` iff ``(e, s, r) in _entries``
    #: (and no set is ever empty), maintained by put/eviction/clear — a
    #: single newest-key pointer is not enough, because LRU eviction of
    #: the newest entry, or an ``invalidate()`` + ``put`` landing a
    #: fresh-epoch entry on top of a kept-stale one, would leave it
    #: either dangling on a dead key or hiding a live older epoch.
    _epochs: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, key: tuple[int, str, int]) -> BFSResult | None:
        """The cached result for ``key``, refreshed as most-recent —
        without touching the hit/miss counters (the caller classifies
        the lookup itself via ``record_hit``/``record_miss``/...)."""
        res = self._entries.get(key)
        if res is not None:
            self._entries.move_to_end(key)
        return res

    def get(self, key: tuple[int, str, int]) -> BFSResult | None:
        """:meth:`peek` plus hit/miss accounting."""
        res = self.peek(key)
        if res is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return res

    # Lookup classification: the server decides hit / miss / rejected
    # only after consulting the MSHR and backpressure, hence explicit.
    def record_hit(self) -> None:
        """Count one lookup answered from cache."""
        self.stats.hits += 1

    def record_miss(self) -> None:
        """Count one lookup that missed and was (or will be) served."""
        self.stats.misses += 1

    def record_rejected_lookup(self) -> None:
        """Count one lookup whose query backpressure then refused."""
        self.stats.rejected_lookups += 1

    def peek_stale(self, semiring: str, root: int,
                   epoch: int) -> tuple[tuple[int, str, int],
                                        BFSResult] | None:
        """The newest cached entry for ``(semiring, root)`` from an epoch
        *before* ``epoch``, or None.

        The graceful-degradation read: current-epoch entries are the
        normal hit path and deliberately excluded — a stale serve means
        "here is the answer from before the last invalidation", never a
        second name for a fresh hit.  Does not refresh recency (stale
        entries should not outlive hot fresh ones on degraded traffic).
        """
        live = self._epochs.get((semiring, root))
        if not live:
            return None
        prior = [e for e in live if e < epoch]
        if not prior:
            return None
        key = (max(prior), semiring, root)
        res = self._entries.get(key)
        if res is None:  # defensive: the index invariant forbids this
            return None
        return key, res

    def put(self, key: tuple[int, str, int], result: BFSResult) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past capacity."""
        if self.capacity == 0:
            self.stats.rejected_puts += 1
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        epoch, semiring, root = key
        self._epochs.setdefault((semiring, root), set()).add(epoch)
        while len(self._entries) > self.capacity:
            old_key, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            e, s, r = old_key
            live = self._epochs.get((s, r))
            if live is not None:
                live.discard(e)
                if not live:
                    del self._epochs[(s, r)]

    def register_metrics(self, registry,
                         prefix: str = "serve.result_cache") -> None:
        """Publish live views of this cache under ``prefix`` (lazy reads
        of the existing counters — the lookup path is untouched)."""
        st = self.stats
        registry.register_view(f"{prefix}.hits", lambda: st.hits)
        registry.register_view(f"{prefix}.misses", lambda: st.misses)
        registry.register_view(f"{prefix}.evictions", lambda: st.evictions)
        registry.register_view(f"{prefix}.rejected_puts",
                               lambda: st.rejected_puts)
        registry.register_view(f"{prefix}.rejected_lookups",
                               lambda: st.rejected_lookups)
        registry.register_view(f"{prefix}.lookups", lambda: st.lookups)
        registry.register_view(f"{prefix}.hit_rate", lambda: st.hit_rate)
        registry.register_view(f"{prefix}.entries", lambda: len(self))
        registry.register_view(f"{prefix}.capacity", lambda: self.capacity)

    def clear(self, keep_stale: bool = False) -> None:
        """Drop every entry (stats are preserved).

        With ``keep_stale=True`` (a server configured to serve stale
        results across invalidations) the entries — and the index
        :meth:`peek_stale` reads — survive; they are unreachable through
        normal epoch-keyed lookups either way.
        """
        if keep_stale:
            return
        self._entries.clear()
        self._epochs.clear()
