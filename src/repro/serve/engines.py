"""Pluggable engine selection for the serving layer.

A released :class:`~repro.serve.batcher.Batch` can run on either batched
engine, and which one wins depends on the batch width the traffic
produced (``BENCH_mshybrid.json``): the direction-optimizing
:class:`~repro.bfs.mshybrid.MultiSourceHybridBFS` dominates at narrow
widths (6.3× over all-pull at B=1, best point around B=16), while the
all-pull SpMM sweep of :class:`~repro.bfs.msbfs.MultiSourceBFS` keeps
scaling past it at wide batches, where the shared pull sweep amortizes
best.  :class:`EnginePool` encodes that policy as a width threshold
(``hybrid_max_width``), keeps one engine instance per (semiring, kind) so
repeated batches reuse the representation's memoized operands, and is the
single seam to swap policies: pass ``strategy=`` any
``(width) -> "msbfs" | "mshybrid"`` callable.

Both engines are differential-tested bit-identical through
``tests/engines.py``'s oracle, so the policy only moves *work*, never
answers.
"""

from __future__ import annotations

from typing import Callable

from repro.bfs.msbfs import MultiSourceBFS
from repro.bfs.mshybrid import MultiSourceHybridBFS
from repro.formats.sell import SellCSigma

__all__ = ["ENGINE_NAMES", "EnginePool", "default_strategy"]

ENGINE_NAMES = ("msbfs", "mshybrid")

#: Widths at or below this run the direction-optimizing engine by default.
DEFAULT_HYBRID_MAX_WIDTH = 16


def default_strategy(width: int, *,
                     hybrid_max_width: int = DEFAULT_HYBRID_MAX_WIDTH) -> str:
    """Width-threshold policy: hybrid for narrow batches, all-pull wide."""
    return "mshybrid" if width <= hybrid_max_width else "msbfs"


class EnginePool:
    """Engine instances over one representation, selected per batch.

    Parameters
    ----------
    rep:
        The served, prebuilt representation (shared by every engine).
    alpha:
        Beamer push/pull threshold for the hybrid engine.
    slimwork:
        §III-C chunk skipping (both engines).
    strategy:
        ``(width) -> engine name``; defaults to :func:`default_strategy`
        with ``hybrid_max_width``.
    hybrid_max_width:
        Threshold of the default strategy (ignored when ``strategy`` is
        passed explicitly).
    """

    def __init__(self, rep: SellCSigma, *, alpha: float = 14.0,
                 slimwork: bool = True,
                 strategy: Callable[[int], str] | None = None,
                 hybrid_max_width: int = DEFAULT_HYBRID_MAX_WIDTH):
        self.rep = rep
        self.alpha = float(alpha)
        self.slimwork = bool(slimwork)
        if strategy is None:
            strategy = lambda width: default_strategy(  # noqa: E731
                width, hybrid_max_width=hybrid_max_width)
        self.strategy = strategy
        self._engines: dict[tuple[str, str], object] = {}

    def select(self, width: int) -> str:
        """Engine name for a batch of ``width`` columns (validated)."""
        name = self.strategy(width)
        if name not in ENGINE_NAMES:
            raise ValueError(f"strategy returned {name!r}; expected one of "
                             f"{ENGINE_NAMES}")
        return name

    def engine_for(self, semiring: str, width: int):
        """``(engine_name, engine)`` to run a batch of ``width`` columns."""
        name = self.select(width)
        key = (name, semiring)
        engine = self._engines.get(key)
        if engine is None:
            if name == "mshybrid":
                engine = MultiSourceHybridBFS(
                    self.rep, semiring, alpha=self.alpha,
                    slimwork=self.slimwork)
            else:
                engine = MultiSourceBFS(
                    self.rep, semiring, slimwork=self.slimwork)
            self._engines[key] = engine
        return name, engine
