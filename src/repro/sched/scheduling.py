"""Static and dynamic work-unit scheduling over T threads.

* :func:`schedule_static` — OpenMP ``schedule(static)``: iterations split
  into T contiguous blocks.  With σ = n the first block holds every
  high-degree chunk, which is exactly the imbalance the paper observes in
  Fig 5a ("the first chunk contains all of the longest rows and the
  corresponding thread performs the majority of work").
* :func:`schedule_dynamic` — OpenMP ``schedule(dynamic,1)``: an idle thread
  grabs the next unit; modeled as greedy list scheduling with a per-unit
  dispatch overhead (the paper measures ≈1–2% relative overhead).

Costs are abstract (vector instructions / column layers); only ratios reach
the cost model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Schedule:
    """Outcome of assigning work units to threads.

    Attributes
    ----------
    per_thread:
        float64[T]: total cost assigned to each thread.
    assignment:
        int64[U]: thread id of each unit.
    makespan:
        max(per_thread) — the modeled parallel completion time.
    overhead:
        Dispatch overhead included in the makespan (dynamic only).
    """

    per_thread: np.ndarray
    assignment: np.ndarray
    makespan: float
    overhead: float = 0.0

    @property
    def threads(self) -> int:
        """Number of threads T."""
        return self.per_thread.size

    @property
    def total(self) -> float:
        """Total work across threads."""
        return float(self.per_thread.sum())


def schedule_static(costs: np.ndarray, threads: int) -> Schedule:
    """Contiguous block assignment (OpenMP ``static``)."""
    costs = np.asarray(costs, dtype=np.float64)
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    u = costs.size
    bounds = np.linspace(0, u, threads + 1).astype(np.int64)
    assignment = np.zeros(u, dtype=np.int64)
    per_thread = np.zeros(threads)
    for t in range(threads):
        lo, hi = bounds[t], bounds[t + 1]
        assignment[lo:hi] = t
        per_thread[t] = costs[lo:hi].sum()
    return Schedule(per_thread, assignment, float(per_thread.max(initial=0.0)))


def schedule_dynamic(costs: np.ndarray, threads: int,
                     dispatch_overhead: float = 0.02) -> Schedule:
    """Greedy work-queue assignment (OpenMP ``dynamic``).

    ``dispatch_overhead`` is charged per unit, relative to the mean unit
    cost, modeling the paper's observed ≈1–2% dynamic-scheduling tax.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    u = costs.size
    assignment = np.zeros(u, dtype=np.int64)
    per_thread = np.zeros(threads)
    tax = dispatch_overhead * (float(costs.mean()) if u else 0.0)
    heap = [(0.0, t) for t in range(threads)]
    heapq.heapify(heap)
    for i in range(u):
        busy_until, t = heapq.heappop(heap)
        cost = costs[i] + tax
        assignment[i] = t
        per_thread[t] += cost
        heapq.heappush(heap, (busy_until + cost, t))
    return Schedule(per_thread, assignment, float(per_thread.max(initial=0.0)),
                    overhead=tax * u)


def imbalance(schedule: Schedule) -> float:
    """Load imbalance = makespan / mean thread load (1.0 = perfect)."""
    mean = schedule.per_thread.mean() if schedule.threads else 0.0
    return float(schedule.makespan / mean) if mean > 0 else 1.0
