"""Thread-scheduling simulation (the paper's omp-s / omp-d settings).

The load-imbalance effects in Figs 5a/5b (static vs dynamic OpenMP
scheduling at large σ) and Fig 6d/6e (SlimChunk on GPUs) are scheduling
effects of the chunk-cost distribution; this package simulates the
assignment of work units to threads and reports makespans and imbalance.
"""

from repro.sched.scheduling import (
    Schedule,
    imbalance,
    schedule_dynamic,
    schedule_static,
)

__all__ = ["Schedule", "schedule_static", "schedule_dynamic", "imbalance"]
