"""Analytic cost model: counted work → modeled time on a machine descriptor.

This is the substitute for the paper's physical testbed.  The model is a
two-term roofline:

* **memory time** — streamed words at the machine's sustained bandwidth;
  gathered words pay the machine's ``gather_penalty`` (irregular accesses
  achieve a fraction of streaming bandwidth);
* **compute time** — vector instructions retired at one per cycle per
  compute unit, scaled by a load-balance factor from the scheduling
  simulator; scalar (non-vectorizable) work pays the machine's
  ``scalar_penalty``, which is how a 32-lane GPU warp models its
  underutilization on fine-grained traditional BFS.

An iteration's modeled time is ``max(memory, compute)`` — the bottleneck
resource — matching the paper's observation that BFS is memory-bound on
CPUs (§IV-A2) while wide-SIMD devices expose the compute term on dense
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bfs.result import BFSResult
from repro.vec.counters import OpCounters
from repro.vec.machine import Machine

BYTES_PER_WORD = 4


@dataclass(frozen=True)
class ModeledTime:
    """Modeled time of one iteration (or a whole run) on a machine."""

    t_memory: float
    t_compute: float

    @property
    def t_total(self) -> float:
        """Roofline: the slower of the two resources."""
        return max(self.t_memory, self.t_compute)

    @property
    def bound(self) -> str:
        """Which resource limits this phase ("memory" or "compute")."""
        return "memory" if self.t_memory >= self.t_compute else "compute"

    def __add__(self, other: "ModeledTime") -> "ModeledTime":
        # Phases execute back to back; totals add per resource.
        return ModeledTime(self.t_memory + other.t_memory,
                           self.t_compute + other.t_compute)


def model_vector_iteration(machine: Machine, counters: OpCounters,
                           balance: float = 1.0,
                           threads: int | None = None) -> ModeledTime:
    """Model one SpMV iteration from its vector-ISA counters.

    Parameters
    ----------
    machine:
        Target system descriptor.
    counters:
        Instructions and words counted (or synthesized) for the iteration.
    balance:
        Load-imbalance factor ≥ 1 from the scheduling simulator (makespan /
        mean); scales the compute term.
    threads:
        Compute units used (defaults to all of them).
    """
    units = threads if threads is not None else machine.units
    streamed = counters.total_words - counters.gather_words
    bw = machine.bandwidth_gbs * 1e9
    t_mem = BYTES_PER_WORD * (streamed + counters.gather_words * machine.gather_penalty) / bw
    t_cmp = counters.total_instructions * balance / (units * machine.ghz * 1e9)
    return ModeledTime(t_mem, t_cmp)


def model_scalar_iteration(machine: Machine, edges_examined: int,
                           vertices_touched: int = 0,
                           ops_per_edge: float = 4.0) -> ModeledTime:
    """Model one traditional-BFS iteration (fine-grained scalar work).

    Every examined adjacency entry costs ``ops_per_edge`` scalar
    instructions (load id, visited check, compare-and-set, append) and one
    irregular word of traffic charged at the machine's ``random_penalty``
    (a fine-grained random access fetches a full cache line / memory sector
    per useful word); ``scalar_penalty`` models SIMD underutilization of
    scalar control flow (≈1 on CPUs, large on GPUs).
    """
    bw = machine.bandwidth_gbs * 1e9
    words = edges_examined + 2 * vertices_touched
    t_mem = BYTES_PER_WORD * words * machine.random_penalty / bw
    ops = ops_per_edge * edges_examined + 2 * vertices_touched
    t_cmp = ops * machine.scalar_penalty / (machine.units * machine.ghz * 1e9)
    return ModeledTime(t_mem, t_cmp)


def model_bfs_result(machine: Machine, result: BFSResult,
                     balance: float = 1.0) -> list[ModeledTime]:
    """Per-iteration modeled times of a counted SpMV run."""
    out = []
    for it in result.iterations:
        if it.counters is None:
            raise ValueError(
                "result has no counters; run with counting=True to model it")
        out.append(model_vector_iteration(machine, it.counters, balance=balance))
    return out


def model_traditional_result(machine: Machine, result: BFSResult) -> list[ModeledTime]:
    """Per-iteration modeled times of a traditional/direction-opt run."""
    out = []
    for it in result.iterations:
        examined = it.edges_examined
        if it.direction == "bottom-up":
            # Real bottom-up codes stop scanning at the first frontier hit;
            # expectation ≈ half of the recorded full scan.
            examined = examined // 2
        out.append(model_scalar_iteration(machine, examined, it.newly))
    return out
