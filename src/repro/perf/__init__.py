"""Performance modeling and measurement harness.

:mod:`repro.perf.costmodel` converts counted work (vector instructions,
memory words, scalar edge examinations) into modeled times on any of the
paper's seven machine descriptors — the substitute for running on the real
testbed.  :mod:`repro.perf.harness` wraps BFS runs with wall-clock and
modeled per-iteration timing and handles preprocessing amortization (§IV-D).
"""

from repro.perf.costmodel import (
    ModeledTime,
    model_bfs_result,
    model_scalar_iteration,
    model_traditional_result,
    model_vector_iteration,
)
from repro.perf.harness import (
    AmortizationReport,
    amortization_report,
    time_bfs,
)

__all__ = [
    "ModeledTime",
    "model_vector_iteration",
    "model_scalar_iteration",
    "model_bfs_result",
    "model_traditional_result",
    "time_bfs",
    "AmortizationReport",
    "amortization_report",
]
