"""Measurement harness: repeated-run timing and preprocessing amortization.

§IV-D of the paper shows that the σ sort (≈21% of one BFS on a 2^24
Kronecker graph) and the build amortize over repeated BFS runs: 10 runs
bring sorting under 2%, 20 runs bring full preprocessing under 5%.  The
:func:`amortization_report` reproduces that accounting for any graph;
:func:`time_bfs` provides best-of-k wall-clock timing with the same
"preprocess once, traverse many" discipline the paper uses when reporting
averaged iteration times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bfs.result import BFSResult


def time_bfs(run: Callable[[], BFSResult], repeats: int = 3) -> tuple[BFSResult, float]:
    """Run a BFS thunk ``repeats`` times; return last result and best time."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = np.inf
    result: BFSResult | None = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - t0)
    assert result is not None
    return result, float(best)


@dataclass(frozen=True)
class AmortizationReport:
    """Preprocessing-vs-traversal accounting (§IV-D).

    Attributes
    ----------
    sort_time_s / build_time_s:
        One-time σ-sort cost and total representation build cost (the sort
        is part of the build).
    bfs_time_s:
        One full BFS traversal on the built representation.
    """

    sort_time_s: float
    build_time_s: float
    bfs_time_s: float

    def sort_fraction(self, runs: int) -> float:
        """Sort cost as a fraction of total time after ``runs`` traversals."""
        total = self.build_time_s + runs * self.bfs_time_s
        return self.sort_time_s / total if total > 0 else 0.0

    def preprocess_fraction(self, runs: int) -> float:
        """Full preprocessing as a fraction of total time after ``runs`` runs."""
        total = self.build_time_s + runs * self.bfs_time_s
        return self.build_time_s / total if total > 0 else 0.0

    def runs_until_sort_below(self, fraction: float) -> int:
        """Traversals needed before the sort drops below ``fraction`` of total."""
        runs = 1
        while self.sort_fraction(runs) > fraction and runs < 10_000_000:
            runs *= 2
        # binary refine
        lo, hi = max(1, runs // 2), runs
        while lo < hi:
            mid = (lo + hi) // 2
            if self.sort_fraction(mid) > fraction:
                lo = mid + 1
            else:
                hi = mid
        return lo


def amortization_report(rep, run: Callable[[], BFSResult],
                        repeats: int = 3) -> AmortizationReport:
    """Measure preprocessing amortization for a built representation.

    Parameters
    ----------
    rep:
        A built ``SellCSigma``/``SlimSell`` (its recorded build/sort times
        are used).
    run:
        Thunk executing one BFS on ``rep``.
    repeats:
        Timing repeats for the traversal (best-of).
    """
    _, bfs_s = time_bfs(run, repeats=repeats)
    return AmortizationReport(
        sort_time_s=rep.sort_time_s,
        build_time_s=rep.build_time_s,
        bfs_time_s=bfs_s,
    )
