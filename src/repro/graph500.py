"""Graph500-style benchmark kernel (the paper's comparison protocol).

The paper's headline result — "SlimSell accelerates a tuned Graph500 BFS
code by up to 33%" — is framed in the Graph500 benchmark's terms [30]:
generate a Kronecker graph at a given *scale* and *edgefactor*, run BFS
from a fixed number of random roots (64 in the official spec), validate
each BFS tree, and report TEPS (traversed edges per second) statistics
with the harmonic mean as the headline figure.

This module implements that protocol over any of the library's BFS
engines, including the official five-part tree validation:

1. the tree has no cycles and is rooted at the search key;
2. tree edges connect vertices whose levels differ by exactly one;
3. every edge of the graph connects vertices whose levels differ by at
   most one (or touches an unreached vertex in a different component);
4. the tree spans exactly the root's connected component;
5. tree edges exist in the graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bfs.result import BFSResult
from repro.graphs.graph import Graph
from repro.graphs.kronecker import kronecker


@dataclass
class Graph500Run:
    """One validated BFS run: root, wall time, TEPS."""

    root: int
    time_s: float
    edges_traversed: int

    @property
    def teps(self) -> float:
        """Traversed edges per second."""
        return self.edges_traversed / self.time_s if self.time_s > 0 else 0.0


@dataclass
class Graph500Report:
    """Aggregate statistics of a Graph500 kernel execution."""

    scale: int
    edgefactor: float
    n: int
    m: int
    construction_time_s: float
    runs: list[Graph500Run] = field(default_factory=list)

    @property
    def teps_values(self) -> np.ndarray:
        """Per-run TEPS values."""
        return np.array([r.teps for r in self.runs])

    @property
    def harmonic_mean_teps(self) -> float:
        """The official headline figure."""
        t = self.teps_values
        return float(t.size / np.sum(1.0 / t)) if t.size else 0.0

    @property
    def min_teps(self) -> float:
        """Worst-run TEPS."""
        return float(self.teps_values.min()) if self.runs else 0.0

    @property
    def max_teps(self) -> float:
        """Best-run TEPS."""
        return float(self.teps_values.max()) if self.runs else 0.0

    @property
    def median_time_s(self) -> float:
        """Median per-BFS wall time."""
        return float(np.median([r.time_s for r in self.runs])) if self.runs else 0.0


class ValidationError(AssertionError):
    """A BFS tree failed the Graph500 validation."""


def sample_roots(graph: Graph, nroots: int, seed: int = 1) -> np.ndarray:
    """Sample BFS roots the way the Graph500 kernel does.

    Up to ``nroots`` vertices drawn without replacement from a
    ``default_rng(seed + 1)`` stream (the kernel derives its root stream
    from the generation seed).  Shared by :func:`run_graph500`, the
    benchmark ablations, the distributed CLI, and the serving layer's
    workload generators, so every multi-root workload in the repo agrees
    on what "64 sampled roots" means.

    Guarantees (the batched engines and the serving batcher rely on them):

    * every returned root has degree > 0 — an isolated vertex never seeds
      a traversal (the Graph500 spec's "search keys must have at least one
      edge" rule);
    * the returned roots are **pairwise distinct** (sampling is without
      replacement), so a batch seeded from them needs no duplicate-column
      coalescing;
    * asking for more roots than there are non-isolated vertices returns
      *every* non-isolated vertex (size ``< nroots``) instead of repeating
      or failing — callers must size batches from ``roots.size``, not from
      the requested ``nroots``.

    Raises :class:`ValueError` for ``nroots < 1`` and for edgeless graphs
    (no valid root exists).
    """
    if nroots < 1:
        raise ValueError(f"nroots must be >= 1, got {nroots}")
    candidates = np.flatnonzero(graph.degrees > 0)
    if candidates.size == 0:
        raise ValueError("graph has no edges; cannot sample BFS roots")
    rng = np.random.default_rng(seed + 1)
    return rng.choice(candidates, size=min(nroots, candidates.size),
                      replace=False)


def validate_bfs_tree(graph: Graph, result: BFSResult) -> None:
    """The five Graph500 tree checks; raises :class:`ValidationError`."""
    if result.parent is None:
        raise ValidationError("no parent vector to validate")
    n = graph.n
    dist, parent, root = result.dist, result.parent, result.root
    reached = np.isfinite(dist)
    # (1) rooted, acyclic: parent pointers strictly decrease the level.
    if parent[root] != root or dist[root] != 0:
        raise ValidationError("tree is not rooted at the search key")
    others = reached.copy()
    others[root] = False
    idx = np.flatnonzero(others)
    p = parent[idx]
    if (p < 0).any():
        raise ValidationError("reached vertex without a tree edge")
    # (2) tree edges span exactly one level.
    if not (dist[p] == dist[idx] - 1).all():
        raise ValidationError("tree edge does not span exactly one level")
    # (3) every graph edge spans at most one level within the component.
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    nbr = graph.indices.astype(np.int64)
    both = reached[src] & reached[nbr]
    if np.any(np.abs(dist[src[both]] - dist[nbr[both]]) > 1):
        raise ValidationError("graph edge spans more than one BFS level")
    cross = reached[src] != reached[nbr]
    if cross.any():
        raise ValidationError("edge connects the component to an unreached vertex")
    # (4) the tree spans the root's component: every reached vertex walks
    # to the root (levels are finite and checked above, so reachability via
    # parents follows from (2); verify a sample explicitly).
    rng = np.random.default_rng(0)
    sample = idx[rng.integers(0, idx.size, size=min(64, idx.size))] if idx.size else idx
    for v in sample:
        hops = 0
        u = int(v)
        while u != root:
            u = int(parent[u])
            hops += 1
            if hops > n:
                raise ValidationError("cycle in the parent structure")
    # (5) tree edges exist in the graph.
    for v, w in zip(idx[:256].tolist(), p[:256].tolist()):
        if not graph.has_edge(v, w):
            raise ValidationError(f"tree edge ({v}, {w}) is not a graph edge")


def run_graph500(
    scale: int,
    edgefactor: float = 16,
    bfs: Callable[[Graph, int], BFSResult] | None = None,
    nroots: int = 64,
    seed: int = 1,
    validate: bool = True,
    batch: int | None = None,
    hybrid: bool = False,
    alpha: float = 14.0,
) -> Graph500Report:
    """Execute the Graph500 kernel protocol.

    Parameters
    ----------
    scale / edgefactor:
        Kronecker problem size (n = 2**scale, m ≈ edgefactor·n).
    bfs:
        ``(graph, root) -> BFSResult`` — any engine; defaults to SlimSell
        BFS-SpMV (sel-max, SlimWork, C=16).
    nroots:
        Number of sampled roots (official: 64); roots must have degree > 0.
    seed:
        RNG seed for generation and root sampling.
    validate:
        Run the five tree checks on every run.
    batch:
        Traverse the roots ``batch`` sources at a time with the batched
        multi-source SpMM engine (default engine only; incompatible with a
        custom ``bfs`` callable).  Trees and distances are bit-identical to
        the sequential path; each run's recorded time is its batch's wall
        clock divided by the batch width (so TEPS reflect the amortized
        per-source cost).
    hybrid:
        Use the direction-optimizing engine instead of the all-pull one
        (default engine only): Beamer push/pull per column, batched when
        ``batch`` is set (:class:`repro.bfs.mshybrid.MultiSourceHybridBFS`).
        Results stay bit-identical — only the work per iteration changes.
    alpha:
        Beamer threshold for ``hybrid=True``.
    """
    if bfs is not None and (batch is not None or hybrid):
        raise ValueError("batch=/hybrid= apply to the default engine; "
                         "pass either bfs or batch/hybrid, not both")
    if batch is not None and batch < 1:
        raise ValueError(f"batch must be >= 1 or None, got {batch}")
    t0 = time.perf_counter()
    graph = kronecker(scale, edgefactor, seed=seed)
    run_group = None
    if bfs is None:
        from repro.formats.slimsell import SlimSell

        rep = SlimSell(graph, 16, graph.n)
        if hybrid:
            from repro.bfs.mshybrid import MultiSourceHybridBFS

            engine = MultiSourceHybridBFS(rep, "sel-max", alpha=alpha,
                                          slimwork=True)
            bfs = lambda g, r: engine.run([r])[0]  # noqa: E731
            run_group = engine.run
        else:
            from repro.bfs.spmv import BFSSpMV

            engine = BFSSpMV(rep, "sel-max", slimwork=True, batch=batch)
            bfs = lambda g, r: engine.run(r)  # noqa: E731 - concise default
            run_group = engine.run_many
    construction = time.perf_counter() - t0

    roots = sample_roots(graph, nroots, seed)
    report = Graph500Report(scale=scale, edgefactor=edgefactor,
                            n=graph.n, m=graph.m,
                            construction_time_s=construction)

    def record(root: int, res: BFSResult, elapsed: float) -> None:
        if validate:
            validate_bfs_tree(graph, res)
        reached = np.flatnonzero(np.isfinite(res.dist))
        edges = int(graph.degrees[reached].sum()) // 2
        report.runs.append(Graph500Run(int(root), elapsed, edges))

    if batch is not None and batch > 1:
        for i in range(0, roots.size, batch):
            group = roots[i:i + batch]
            t1 = time.perf_counter()
            results = run_group(group)
            elapsed = (time.perf_counter() - t1) / group.size
            for root, res in zip(group, results):
                record(int(root), res, elapsed)
    else:
        for root in roots:
            t1 = time.perf_counter()
            res = bfs(graph, int(root))
            elapsed = time.perf_counter() - t1
            record(int(root), res, elapsed)
    return report
