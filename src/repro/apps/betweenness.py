"""Brandes betweenness centrality over SlimSell SpMV/SpMM products.

The paper's §VI names betweenness centrality (BC) as the natural next
algorithm for SlimSell (and [35] is the authors' own algebraic BC work).
This module implements Brandes' algorithm [2001] with both sweeps expressed
as A ⊗ x products over the real semiring on a chunked representation:

* **forward** — level-synchronous path counting: σ_k = A ⊗ (σ restricted
  to level k−1), keeping entries that land on level k;
* **backward** — dependency accumulation: δ contributions flow one level
  down via A ⊗ ((1 + δ_w)/σ_w restricted to level k).

Sources are processed in batches (``batch`` parameter): the per-source BFS
levelizations come from one multi-source SpMM traversal
(:class:`~repro.bfs.msbfs.MultiSourceBFS`) and both sweeps run over
``(n, B)`` blocks through :meth:`~repro.bfs.operator.SlimSpMV.matmat`, so
the layout's ``col`` stream is read once per layer for all B sources.
``batch=1`` falls back to the sequential per-source loop (same numbers up
to float summation order when accumulating into ``bc``).

For an unweighted undirected graph, BC(v) = Σ_{s≠v≠t} σ_st(v)/σ_st.
Exact for every graph; normalized like networkx when ``normalized=True``.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.msbfs import MultiSourceBFS
from repro.bfs.operator import SlimSpMV
from repro.bfs.spmv import BFSSpMV
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.graph import Graph

#: Default number of Brandes sources per SpMM batch.  The batched path
#: holds roughly six (n, B) float64 blocks live (dist/σ/δ/X/Y plus masks):
#: ~1.5 MB per 1k vertices at B=32.  That amortizes the per-layer indexing
#: ~32x and stays comfortable up to ~10^6 vertices (~1.5 GB); beyond that,
#: pass a smaller ``batch`` to trade speed for footprint.
DEFAULT_BC_BATCH = 32


def _bc_from_source(op: SlimSpMV, bfs: BFSSpMV, s: int, bc: np.ndarray,
                    x: np.ndarray | None = None) -> None:
    """Accumulate one source's dependencies into ``bc`` (Brandes inner loop).

    ``x`` is an optional caller-owned scratch vector (all zeros on entry,
    re-zeroed via the level index sets before returning) so the n-source
    loop doesn't allocate two fresh dense vectors per level per sweep.
    """
    n = op.n
    res = bfs.run(s)
    dist = res.dist
    reached = np.isfinite(dist)
    depth = int(dist[reached].max()) if reached.any() else 0
    levels = [np.flatnonzero(reached & (dist == k)) for k in range(depth + 1)]
    if x is None:
        x = np.zeros(n)

    # Forward sweep: σ (number of shortest paths) per level.
    sigma = np.zeros(n)
    sigma[s] = 1.0
    for k in range(1, depth + 1):
        prev = levels[k - 1]
        x[prev] = sigma[prev]
        y = op(x)  # y[w] = Σ_{v ∈ N(w)} x[v]
        sigma[levels[k]] = y[levels[k]]
        x[prev] = 0.0  # re-zero the scratch via the level index set

    # Backward sweep: δ dependencies, deepest level first.
    delta = np.zeros(n)
    for k in range(depth, 0, -1):
        w = levels[k]
        x[w] = (1.0 + delta[w]) / sigma[w]
        y = op(x)  # y[v] = Σ_{w ∈ N(v)} x[w]
        v = levels[k - 1]
        delta[v] += sigma[v] * y[v]
        x[w] = 0.0
    delta[s] = 0.0
    bc += delta


def _bc_from_batch(op: SlimSpMV, ms: MultiSourceBFS, srcs: np.ndarray,
                   bc: np.ndarray) -> None:
    """Accumulate one batch of sources via (n, B) SpMM sweeps."""
    n = op.n
    B = srcs.size
    cols = np.arange(B)
    results = ms.run(srcs)
    dist = np.stack([r.dist for r in results], axis=1)  # (n, B)
    reached = np.isfinite(dist)
    depth = int(dist[reached].max()) if reached.any() else 0

    # Forward sweep: all B σ columns advance one level per matmat.
    sigma = np.zeros((n, B))
    sigma[srcs, cols] = 1.0
    for k in range(1, depth + 1):
        prev = dist == (k - 1)
        X = np.where(prev, sigma, 0.0)
        Y = op.matmat(X)
        sigma = np.where(dist == k, Y, sigma)

    # Backward sweep, deepest level first; columns past their own depth
    # contribute all-zero blocks and are effectively idle.
    delta = np.zeros((n, B))
    for k in range(depth, 0, -1):
        wm = dist == k
        X = np.zeros((n, B))
        np.divide(1.0 + delta, sigma, out=X, where=wm & (sigma != 0))
        Y = op.matmat(X)
        delta += np.where(dist == (k - 1), sigma * Y, 0.0)
    delta[srcs, cols] = 0.0
    bc += delta.sum(axis=1)


def betweenness_centrality(
    graph_or_rep: Graph | SellCSigma,
    *,
    C: int = 8,
    sources: np.ndarray | None = None,
    normalized: bool = True,
    seed: int = 0,
    batch: int | None = None,
) -> np.ndarray:
    """Betweenness centrality via algebraic sweeps on SlimSell.

    Parameters
    ----------
    graph_or_rep:
        Graph (a SlimSell representation is built) or a prebuilt rep.
    C:
        Chunk height when building the representation.
    sources:
        Source subset for approximate BC (Brandes–Pich sampling); ``None``
        computes the exact value from every vertex.
    normalized:
        Divide by (n−1)(n−2) (undirected pairs, networkx convention).
    seed:
        Reserved for samplers built on top; unused when ``sources`` given.
    batch:
        Sources per SpMM batch (``None`` = :data:`DEFAULT_BC_BATCH`;
        1 = sequential per-source SpMV loop).

    Returns
    -------
    float64[n] centrality scores (undirected: each pair counted once).
    """
    if isinstance(graph_or_rep, Graph):
        rep = SlimSell(graph_or_rep, C, graph_or_rep.n)
    else:
        rep = graph_or_rep
    n = rep.n
    if batch is None:
        batch = DEFAULT_BC_BATCH
    if batch < 1:
        raise ValueError(f"batch must be >= 1 or None, got {batch}")
    op = SlimSpMV(rep, "real")
    bc = np.zeros(n)
    src = np.arange(n) if sources is None else np.asarray(sources, dtype=np.int64)
    if batch > 1 and len(src):
        ms = MultiSourceBFS(rep, "tropical", slimwork=True,
                            compute_parents=False)
        for i in range(0, len(src), batch):
            _bc_from_batch(op, ms, np.asarray(src[i:i + batch]), bc)
    else:
        bfs = BFSSpMV(rep, "tropical", slimwork=True, compute_parents=False)
        x_scratch = np.zeros(n)
        for s in src:
            _bc_from_source(op, bfs, int(s), bc, x_scratch)
    bc /= 2.0  # undirected: every pair (s, t) visited twice
    if sources is not None and len(src) and len(src) < n:
        bc *= n / len(src)  # unbiased sample scale-up
    if normalized and n > 2:
        bc /= (n - 1) * (n - 2) / 2.0
    return bc
