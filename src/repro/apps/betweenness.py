"""Brandes betweenness centrality over SlimSell SpMV products.

The paper's §VI names betweenness centrality (BC) as the natural next
algorithm for SlimSell (and [35] is the authors' own algebraic BC work).
This module implements Brandes' algorithm [2001] with both sweeps expressed
as A ⊗ x products over the real semiring on a chunked representation:

* **forward** — level-synchronous path counting: σ_k = A ⊗ (σ restricted
  to level k−1), keeping entries that land on level k;
* **backward** — dependency accumulation: δ contributions flow one level
  down via A ⊗ ((1 + δ_w)/σ_w restricted to level k).

For an unweighted undirected graph, BC(v) = Σ_{s≠v≠t} σ_st(v)/σ_st.
Exact for every graph; normalized like networkx when ``normalized=True``.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.operator import SlimSpMV
from repro.bfs.spmv import BFSSpMV
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.graph import Graph


def _bc_from_source(op: SlimSpMV, bfs: BFSSpMV, s: int, bc: np.ndarray) -> None:
    """Accumulate one source's dependencies into ``bc`` (Brandes inner loop)."""
    n = op.n
    res = bfs.run(s)
    dist = res.dist
    reached = np.isfinite(dist)
    depth = int(dist[reached].max()) if reached.any() else 0
    levels = [np.flatnonzero(reached & (dist == k)) for k in range(depth + 1)]

    # Forward sweep: σ (number of shortest paths) per level.
    sigma = np.zeros(n)
    sigma[s] = 1.0
    for k in range(1, depth + 1):
        x = np.zeros(n)
        x[levels[k - 1]] = sigma[levels[k - 1]]
        y = op(x)  # y[w] = Σ_{v ∈ N(w)} x[v]
        sigma[levels[k]] = y[levels[k]]

    # Backward sweep: δ dependencies, deepest level first.
    delta = np.zeros(n)
    for k in range(depth, 0, -1):
        w = levels[k]
        x = np.zeros(n)
        x[w] = (1.0 + delta[w]) / sigma[w]
        y = op(x)  # y[v] = Σ_{w ∈ N(v)} x[w]
        v = levels[k - 1]
        delta[v] += sigma[v] * y[v]
    delta[s] = 0.0
    bc += delta


def betweenness_centrality(
    graph_or_rep: Graph | SellCSigma,
    *,
    C: int = 8,
    sources: np.ndarray | None = None,
    normalized: bool = True,
    seed: int = 0,
) -> np.ndarray:
    """Betweenness centrality via algebraic sweeps on SlimSell.

    Parameters
    ----------
    graph_or_rep:
        Graph (a SlimSell representation is built) or a prebuilt rep.
    C:
        Chunk height when building the representation.
    sources:
        Source subset for approximate BC (Brandes–Pich sampling); ``None``
        computes the exact value from every vertex.
    normalized:
        Divide by (n−1)(n−2) (undirected pairs, networkx convention).
    seed:
        Reserved for samplers built on top; unused when ``sources`` given.

    Returns
    -------
    float64[n] centrality scores (undirected: each pair counted once).
    """
    if isinstance(graph_or_rep, Graph):
        rep = SlimSell(graph_or_rep, C, graph_or_rep.n)
    else:
        rep = graph_or_rep
    n = rep.n
    op = SlimSpMV(rep, "real")
    bfs = BFSSpMV(rep, "tropical", slimwork=True, compute_parents=False)
    bc = np.zeros(n)
    src = np.arange(n) if sources is None else np.asarray(sources, dtype=np.int64)
    for s in src:
        _bc_from_source(op, bfs, int(s), bc)
    bc /= 2.0  # undirected: every pair (s, t) visited twice
    if sources is not None and len(src) and len(src) < n:
        bc *= n / len(src)  # unbiased sample scale-up
    if normalized and n > 2:
        bc /= (n - 1) * (n - 2) / 2.0
    return bc
