"""Connectivity queries powered by SlimSell BFS.

Connected components and repeated reachability over one shared
representation — the "preprocess once, traverse many" usage pattern whose
economics §IV-D quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.msbfs import MultiSourceBFS
from repro.bfs.spmv import BFSSpMV
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.graph import Graph

#: Default number of seed columns per batched component sweep.
DEFAULT_CC_BATCH = 16


def components_via_bfs(graph_or_rep: Graph | SellCSigma, *, C: int = 8,
                       batch: int | None = None) -> np.ndarray:
    """Connected-component labels (0..k−1) via repeated SlimSell BFS.

    Each unlabeled vertex seeds one traversal; its reached set becomes one
    component.  O(n + m) total BFS work plus one representation build.

    ``batch`` caps how many unvisited vertices seed frontier columns of
    one multi-source SpMM sweep per round (``None`` =
    :data:`DEFAULT_CC_BATCH`; 1 = the sequential loop).  The round width
    ramps up geometrically (1, 2, 4, … up to ``batch``): a connected graph
    costs exactly one BFS, like the sequential scan, while
    component-soup graphs quickly reach full batch width.  When two seeds
    of a round share a component, the later seed's result is discarded, so
    labels are identical to the sequential ascending scan.
    """
    if isinstance(graph_or_rep, Graph):
        rep = SlimSell(graph_or_rep, C, graph_or_rep.n)
    else:
        rep = graph_or_rep
    n = rep.n
    labels = np.full(n, -1, dtype=np.int64)
    if batch is None:
        batch = DEFAULT_CC_BATCH
    if batch < 1:
        raise ValueError(f"batch must be >= 1 or None, got {batch}")
    nxt = 0
    if batch > 1:
        engine = MultiSourceBFS(rep, "boolean", slimwork=True,
                                compute_parents=False)
        width = 1  # ramp up: redundant same-component seeds stay bounded
        while True:
            unlabeled = np.flatnonzero(labels < 0)
            if unlabeled.size == 0:
                break
            roots = unlabeled[:width]
            width = min(2 * width, batch)
            for res in engine.run(roots):
                if labels[res.root] >= 0:
                    continue  # same component as an earlier seed this round
                labels[np.isfinite(res.dist)] = nxt
                nxt += 1
        return labels
    engine = BFSSpMV(rep, "boolean", slimwork=True, compute_parents=False)
    v = 0
    while v < n:
        if labels[v] < 0:
            res = engine.run(v)
            labels[np.isfinite(res.dist)] = nxt
            nxt += 1
        v += 1
        remaining = np.flatnonzero(labels[v:] < 0)
        if remaining.size == 0:
            break
        v += int(remaining[0])
    return labels


class Reachability:
    """Amortized reachability oracle: build once, query many.

    Lazily runs one BFS per distinct source and caches distances, so a
    workload of grouped queries pays O(n + m) per unique source.
    """

    def __init__(self, graph: Graph, C: int = 8):
        self.graph = graph
        self.rep = SlimSell(graph, C, graph.n)
        self._engine = BFSSpMV(self.rep, "tropical", slimwork=True,
                               compute_parents=False)
        self._cache: dict[int, np.ndarray] = {}

    def distances_from(self, source: int) -> np.ndarray:
        """Hop distances from ``source`` (cached per source)."""
        d = self._cache.get(source)
        if d is None:
            d = self._engine.run(source).dist
            self._cache[source] = d
        return d

    def reachable(self, source: int, target: int) -> bool:
        """Is ``target`` reachable from ``source``?"""
        return bool(np.isfinite(self.distances_from(source)[target]))

    def hops(self, source: int, target: int) -> int | None:
        """Hop distance, or ``None`` when unreachable."""
        d = self.distances_from(source)[target]
        return int(d) if np.isfinite(d) else None

    @property
    def cached_sources(self) -> int:
        """Number of sources traversed so far."""
        return len(self._cache)
