"""Applications built on the SlimSell algebraic primitives.

The paper's §VI argues SlimSell extends past BFS; this package delivers the
two algorithms it names:

* :mod:`repro.apps.betweenness` — Brandes betweenness centrality with
  algebraic forward/backward sweeps (path counting over the real semiring).
* :mod:`repro.apps.pagerank` — PageRank as repeated SlimSell SpMV products
  ("identical communication patterns in each superstep").

plus :mod:`repro.apps.connectivity` — BFS-powered connected components and
reachability over one shared representation.
"""

from repro.apps.betweenness import betweenness_centrality
from repro.apps.connectivity import Reachability, components_via_bfs
from repro.apps.pagerank import pagerank
from repro.apps.sssp import sssp_dijkstra, sssp_spmv

__all__ = [
    "betweenness_centrality",
    "pagerank",
    "components_via_bfs",
    "Reachability",
    "sssp_spmv",
    "sssp_dijkstra",
]
