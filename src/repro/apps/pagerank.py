"""PageRank as repeated SlimSell SpMV products.

§VI of the paper: "many algorithms (e.g., Pagerank) have identical
communication patterns in each superstep" — i.e., every iteration is the
same full A ⊗ x product that BFS-SpMV performs, so the SlimSell layout's
bandwidth savings apply to every superstep, not just the early ones.

For an undirected graph, PR solves
``pr = (1−α)/n + α · (Aᵀ D⁻¹ pr + dangling mass / n)``
with A symmetric (Aᵀ = A); D⁻¹ is applied to the vector before the
product, so the unweighted SlimSell matrix needs no edge values.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.operator import SlimSpMV
from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.graphs.graph import Graph


def pagerank(
    graph_or_rep: Graph | SellCSigma,
    *,
    C: int = 8,
    alpha: float = 0.85,
    tol: float = 1e-10,
    max_iters: int = 200,
) -> np.ndarray:
    """PageRank over a chunked representation.

    Parameters
    ----------
    graph_or_rep:
        Graph (a SlimSell representation is built) or a prebuilt rep.
    C:
        Chunk height when building the representation.
    alpha:
        Damping factor.
    tol:
        L1 convergence threshold between iterations.
    max_iters:
        Iteration cap; raises ``RuntimeError`` if not converged.

    Returns
    -------
    float64[n] scores summing to 1.
    """
    if isinstance(graph_or_rep, Graph):
        rep = SlimSell(graph_or_rep, C, graph_or_rep.n)
        graph = graph_or_rep
    else:
        rep = graph_or_rep
        graph = rep.graph_original
    n = rep.n
    if n == 0:
        return np.empty(0)
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    op = SlimSpMV(rep, "real")
    deg = graph.degrees.astype(np.float64)
    dangling = deg == 0
    inv_deg = np.where(dangling, 0.0, 1.0 / np.maximum(deg, 1.0))
    pr = np.full(n, 1.0 / n)
    for _ in range(max_iters):
        spread = op(pr * inv_deg)
        loose = pr[dangling].sum() / n  # dangling mass spread uniformly
        new = (1.0 - alpha) / n + alpha * (spread + loose)
        if np.abs(new - pr).sum() < tol:
            return new
        pr = new
    raise RuntimeError(f"PageRank did not converge in {max_iters} iterations")
