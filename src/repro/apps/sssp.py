"""Single-source shortest paths on *weighted* graphs — SlimSell's boundary.

SlimSell exists because unweighted adjacency values carry no information
(§III-B).  With real edge weights that premise breaks: the ``val`` array is
load-bearing and cannot be dropped, so weighted traversals run on Sell-C-σ
or CSR with explicit values.  This module makes that boundary concrete:

* :func:`sssp_spmv` — Bellman-Ford-style label correcting as repeated
  tropical-semiring SpMV products (the weighted generalization of the
  paper's BFS formulation), on weighted CSR.
* :func:`sssp_dijkstra` — binary-heap Dijkstra, the work-efficient scalar
  baseline (the weighted analog of Trad-BFS).

Both demand non-negative weights and agree exactly; property tests compare
them against ``scipy.sparse.csgraph``.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.bfs.result import BFSResult, IterationStats
from repro.formats.csr import segment_reduce
from repro.graphs.graph import Graph


def expand_edge_weights(graph: Graph, weights: np.ndarray) -> np.ndarray:
    """Per-undirected-edge weights → per-directed-CSR-entry weights.

    ``weights`` is aligned with :meth:`Graph.edges` (canonical u < v rows);
    the result is aligned with ``graph.indices``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    m = graph.m
    if weights.shape != (m,):
        raise ValueError(f"weights must have shape ({m},), got {weights.shape}")
    if m and weights.min() < 0:
        raise ValueError("negative edge weights are not supported")
    n = graph.n
    e = graph.edges()
    keys = e[:, 0] * np.int64(n) + e[:, 1]
    order = np.argsort(keys)
    keys_sorted, w_sorted = keys[order], weights[order]
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    dst = graph.indices.astype(np.int64)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    idx = np.searchsorted(keys_sorted, lo * np.int64(n) + hi)
    return w_sorted[idx]


def sssp_spmv(graph: Graph, weights: np.ndarray, root: int,
              max_iters: int | None = None) -> BFSResult:
    """Algebraic SSSP: iterate x ← A′ ⊗_T x over the tropical semiring.

    One iteration relaxes every edge once (a full min-plus SpMV); the fixed
    point is the distance vector.  O(D′·m) work where D′ is the weighted
    hop diameter — the weighted analog of the paper's BFS-SpMV trade-off.
    """
    n = graph.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    w = expand_edge_weights(graph, weights)
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    iters: list[IterationStats] = []
    cap = max_iters if max_iters is not None else n + 1
    t0 = time.perf_counter()
    k = 0
    while k < cap:
        k += 1
        t_it = time.perf_counter()
        candidate = segment_reduce(
            np.minimum, w + dist[graph.indices], graph.indptr, np.inf)
        new = np.minimum(dist, candidate)
        changed = int(np.count_nonzero(new < dist))
        dist = new
        iters.append(IterationStats(
            k=k, newly=changed, time_s=time.perf_counter() - t_it,
            edges_examined=int(graph.indices.size), direction="spmv"))
        if changed == 0:
            break
    return BFSResult(
        dist=dist, parent=_weighted_parents(graph, w, dist), root=root,
        method="sssp-spmv", semiring="tropical", representation="csr",
        iterations=iters, total_time_s=time.perf_counter() - t0)


def sssp_dijkstra(graph: Graph, weights: np.ndarray, root: int) -> BFSResult:
    """Binary-heap Dijkstra (the scalar work-efficient baseline)."""
    n = graph.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    w = expand_edge_weights(graph, weights)
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    dist[root] = 0.0
    parent[root] = root
    heap: list[tuple[float, int]] = [(0.0, root)]
    done = np.zeros(n, dtype=bool)
    t0 = time.perf_counter()
    while heap:
        d, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        lo, hi = graph.indptr[v], graph.indptr[v + 1]
        for u, wu in zip(graph.indices[lo:hi], w[lo:hi]):
            nd = d + wu
            if nd < dist[u]:
                dist[u] = nd
                parent[u] = v
                heapq.heappush(heap, (nd, int(u)))
    return BFSResult(
        dist=dist, parent=parent, root=root, method="sssp-dijkstra",
        representation="al", total_time_s=time.perf_counter() - t0)


def _weighted_parents(graph: Graph, w: np.ndarray, dist: np.ndarray) -> np.ndarray:
    """Weighted DP: parent of v is a neighbor u with dist[u] + w(u,v) = dist[v]."""
    n = graph.n
    parent = np.full(n, -1, dtype=np.int64)
    roots = dist == 0
    parent[roots] = np.flatnonzero(roots)
    if graph.indices.size:
        src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
        nbr = graph.indices.astype(np.int64)
        ok = np.isclose(dist[nbr] + w, dist[src]) & np.isfinite(dist[src])
        cand = np.where(ok, nbr, np.int64(-1))
        lengths = np.diff(graph.indptr)
        nonempty = lengths > 0
        best = np.full(n, -1, dtype=np.int64)
        if nonempty.any():
            best[nonempty] = np.maximum.reduceat(
                cand, graph.indptr[:-1][nonempty])
        settle = np.isfinite(dist) & ~roots
        parent[settle] = best[settle]
    return parent
