"""Distributed-memory BFS simulation (§VI "Scaling to Distributed Memory").

The paper's §VI observes that SlimSell composes with the classic
Graph500 / Combinatorial-BLAS distributed BFS formulations: partition the
chunked matrix across P ranks, run the local SlimSell SpMV on each rank,
and allgather the frontier between iterations.  This package simulates
that execution the same way :mod:`repro.perf` simulates a single node —
exact distances come from the real single-node engine, while per-rank
compute is modeled with the vector-ISA cost model and inter-node traffic
with an allgather latency/bandwidth model.

Both decompositions take either one root (the seed's single-traversal
simulation, unchanged cost term for cost term) or a sequence of roots with
``batch=``/``overlap=`` knobs: the batched path reuses the multi-source
SpMM sweep of :mod:`repro.bfs.msbfs` for the local term and charges each
collective once per layer for the whole batch, which is the §VI scaling
question — how much allgather latency and volume a B-wide frontier
amortizes on Aries vs commodity Ethernet.

Modules
-------
``partition``  1D chunk-to-rank partitions (naive blocks / work-balanced)
``network``    interconnect descriptors + allgather / reduce-scatter /
               transpose / checkpoint cost models and the
               batched-frontier payload
``bfs1d``      1D row decomposition (frontier allgather over all ranks)
``bfs2d``      2D (R, C) grid decomposition (column allgather + row
               reduce-scatter, optional direction-optimizing transpose)
``faults``     seed-deterministic rank-failure/straggler injection with
               checkpoint-interval vs recompute-from-root recovery cost
``calibrate``  fit the machine/network descriptors to the *executed*
               parallel backend's measured layer times (:mod:`repro.exec`)
``result``     per-iteration profile and result containers
"""

from repro.dist.bfs1d import bfs_dist_1d, profile_1d
from repro.dist.bfs2d import bfs_dist_2d
from repro.dist.calibrate import (
    CalibrationIteration,
    CalibrationReport,
    calibrate,
)
from repro.dist.faults import (
    DistFaultInjector,
    DistFaultModel,
    apply_dist_faults,
)
from repro.dist.network import (
    CRAY_ARIES,
    ETHERNET_10G,
    NETWORKS,
    Network,
    batched_frontier_bytes,
    get_network,
    model_allgather,
    model_checkpoint,
    model_reduce_scatter,
    model_transpose,
)
from repro.dist.partition import Partition1D, machine_weights
from repro.dist.result import DistBatchResult, DistBFSResult, DistIterationStats

__all__ = [
    "bfs_dist_1d",
    "bfs_dist_2d",
    "CalibrationIteration",
    "CalibrationReport",
    "calibrate",
    "Partition1D",
    "Network",
    "NETWORKS",
    "CRAY_ARIES",
    "ETHERNET_10G",
    "batched_frontier_bytes",
    "get_network",
    "model_allgather",
    "model_checkpoint",
    "model_reduce_scatter",
    "model_transpose",
    "DistBatchResult",
    "DistBFSResult",
    "DistFaultInjector",
    "DistFaultModel",
    "DistIterationStats",
    "apply_dist_faults",
    "machine_weights",
    "profile_1d",
]
