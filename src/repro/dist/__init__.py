"""Distributed-memory BFS simulation (§VI "Scaling to Distributed Memory").

The paper's §VI observes that SlimSell composes with the classic
Graph500 / Combinatorial-BLAS distributed BFS formulations: partition the
chunked matrix across P ranks, run the local SlimSell SpMV on each rank,
and allgather the frontier between iterations.  This package simulates
that execution the same way :mod:`repro.perf` simulates a single node —
exact distances come from the real single-node engine, while per-rank
compute is modeled with the vector-ISA cost model and inter-node traffic
with an allgather latency/bandwidth model.

Modules
-------
``partition``  1D chunk-to-rank partitions (naive blocks / work-balanced)
``network``    interconnect descriptors + the allgather cost model
``bfs1d``      1D row decomposition (frontier allgather over all ranks)
``bfs2d``      2D (R, C) grid decomposition (column allgather + row merge)
``result``     per-iteration profile and result containers
"""

from repro.dist.bfs1d import bfs_dist_1d
from repro.dist.bfs2d import bfs_dist_2d
from repro.dist.network import CRAY_ARIES, ETHERNET_10G, NETWORKS, Network, model_allgather
from repro.dist.partition import Partition1D
from repro.dist.result import DistBFSResult, DistIterationStats

__all__ = [
    "bfs_dist_1d",
    "bfs_dist_2d",
    "Partition1D",
    "Network",
    "NETWORKS",
    "CRAY_ARIES",
    "ETHERNET_10G",
    "model_allgather",
    "DistBFSResult",
    "DistIterationStats",
]
