"""1D-decomposed distributed BFS over SlimSell (§VI; cf. [9]'s 1D variant).

Each rank owns a band of chunks (C-row blocks of the permuted matrix) and
the matching slice of every vector.  An iteration is

1. **local SpMV** — the rank's chunks, exactly the single-node SlimSell
   kernel with SlimWork chunk skipping; all ranks wait for the slowest
   (modeled with the vector-ISA cost model on the node descriptor);
2. **frontier allgather** — every rank receives the full N-word frontier
   (4·N bytes), modeled with the interconnect's allgather cost.

This is the classic 1D-BFS scaling story the benchmark regenerates: local
work shrinks ≈ 1/P while the allgather result is P-independent, so the
communication share grows with P — the motivation for the 2D decomposition
in :mod:`repro.dist.bfs2d`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dist.network import Network, model_allgather
from repro.dist.partition import Partition1D
from repro.dist.result import (
    DistBFSResult,
    DistIterationStats,
    active_chunk_mask,
    modeled_local_seconds,
    run_global_bfs,
    work_imbalance,
)
from repro.formats.sell import SellCSigma
from repro.perf.costmodel import BYTES_PER_WORD
from repro.semirings.base import get_semiring
from repro.vec.machine import Machine

__all__ = ["bfs_dist_1d"]


def bfs_dist_1d(
    rep: SellCSigma,
    root: int,
    partition: Partition1D,
    machine: Machine,
    network: Network,
    *,
    slimwork: bool = True,
) -> DistBFSResult:
    """Simulate a 1D-distributed BFS-SpMV from ``root`` (original ids).

    Parameters
    ----------
    rep:
        A built :class:`~repro.formats.slimsell.SlimSell` (or
        :class:`~repro.formats.sell.SellCSigma`) representation.
    root:
        Traversal root in original vertex ids.
    partition:
        Chunk → rank assignment; must cover all ``rep.nc`` chunks.
    machine:
        Node descriptor used to model each rank's local SpMV.
    network:
        Interconnect descriptor used to model the frontier allgather.
    slimwork:
        Enable §III-C chunk skipping inside each rank's local SpMV.

    Returns
    -------
    DistBFSResult
        Exact distances (bit-identical to the single-node run) plus the
        per-iteration profile: slowest-rank local time, allgather time,
        bytes moved, per-rank work lanes, and work imbalance.
    """
    if not 0 <= root < rep.n:
        raise ValueError(f"root {root} out of range [0, {rep.n})")
    if partition.nchunks != rep.nc:
        raise ValueError(
            f"partition covers {partition.nchunks} chunks but the "
            f"representation has {rep.nc}; the partition must cover every chunk")

    t0 = time.perf_counter()
    ranks = partition.ranks
    semiring = get_semiring("tropical")
    slim = not rep.has_val
    res, levels = run_global_bfs(rep, root, slimwork)

    owner = partition.owner
    owned = partition.counts_per_rank()
    # Each rank receives the full frontier (N words) in the allgather.
    comm_bytes = 0 if ranks == 1 else BYTES_PER_WORD * rep.N
    iterations: list[DistIterationStats] = []
    for it in res.iterations:
        active = active_chunk_mask(levels, rep.nc, rep.C, it.k, slimwork)
        act_owner = owner[active]
        processed = np.bincount(act_owner, minlength=ranks)
        layers = np.bincount(act_owner, weights=rep.cl[active],
                             minlength=ranks).astype(np.int64)
        rank_lanes = layers * rep.C
        t_local = max(
            modeled_local_seconds(machine, semiring, rep.C, slim,
                                  int(processed[r]),
                                  int(owned[r] - processed[r]),
                                  int(layers[r]), slimwork)
            for r in range(ranks))
        t_comm = model_allgather(network, ranks, comm_bytes)
        iterations.append(DistIterationStats(
            k=it.k, newly=it.newly, t_local_s=t_local, t_comm_s=t_comm,
            comm_bytes=comm_bytes, imbalance=work_imbalance(rank_lanes),
            rank_lanes=rank_lanes, chunks_active=int(active.sum()),
        ))

    method = "dist-1d" + ("+slimwork" if slimwork else "")
    return DistBFSResult(
        dist=res.dist, root=root, method=method, ranks=ranks,
        machine=machine.name, network=network.name, iterations=iterations,
        wall_time_s=time.perf_counter() - t0,
    )
