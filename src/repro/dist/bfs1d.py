"""1D-decomposed distributed BFS over SlimSell (§VI; cf. [9]'s 1D variant).

Each rank owns a band of chunks (C-row blocks of the permuted matrix) and
the matching slice of every vector.  An iteration is

1. **local SpMV** — the rank's chunks, exactly the single-node SlimSell
   kernel with SlimWork chunk skipping; all ranks wait for the slowest
   (modeled with the vector-ISA cost model on the node descriptor);
2. **frontier allgather** — every rank receives the full N-word frontier
   (4·N bytes), modeled with the interconnect's allgather cost.

This is the classic 1D-BFS scaling story the benchmark regenerates: local
work shrinks ≈ 1/P while the allgather result is P-independent, so the
communication share grows with P — the motivation for the 2D decomposition
in :mod:`repro.dist.bfs2d`.

Batched traversals (``roots`` a sequence, optionally chopped into groups of
``batch`` columns) run the multi-source SpMM sweep instead: the local term
models the union-of-columns chunk activity at the live width, and the
allgather ships one union value vector plus per-column bitmaps
(:func:`repro.dist.network.batched_frontier_bytes`) — once per layer, so
the α·log2(P) latency amortizes across the batch.  ``overlap`` hides that
fraction of every collective behind the local compute.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.dist.faults import (
    DistFaultInjector,
    DistFaultModel,
    faulted_profile,
)
from repro.dist.network import (
    Network,
    batched_frontier_bytes,
    model_allgather,
)
from repro.dist.partition import Partition1D
from repro.dist.result import (
    DistBatchResult,
    DistBFSResult,
    DistIterationStats,
    active_chunk_mask,
    check_overlap,
    modeled_local_seconds,
    run_global_bfs,
    simulate_batched,
    work_imbalance,
)
from repro.formats.sell import SellCSigma
from repro.perf.costmodel import BYTES_PER_WORD
from repro.semirings.base import get_semiring
from repro.vec.machine import Machine

__all__ = ["bfs_dist_1d", "machine_label", "per_rank_machines", "profile_1d"]


def per_rank_machines(machine, ranks: int) -> list[Machine]:
    """Normalize a node descriptor spec to one :class:`Machine` per rank.

    A single :class:`Machine` models a homogeneous cluster (every rank on
    the same descriptor); a sequence models a heterogeneous one — rank
    ``r`` runs on ``machine[r]``, so its length must equal ``ranks``.
    """
    if isinstance(machine, Machine):
        return [machine] * ranks
    machines = list(machine)
    if len(machines) != ranks:
        raise ValueError(
            f"heterogeneous machine list has {len(machines)} entries "
            f"but the partition has {ranks} ranks")
    return machines


def machine_label(machine) -> str:
    """Report label of a machine spec: one name, or the per-rank list."""
    if isinstance(machine, Machine):
        return machine.name
    names = [m.name for m in machine]
    if len(set(names)) == 1:
        return names[0]
    return "+".join(names)


def profile_1d(rep: SellCSigma, partition: Partition1D, machine,
               network: Network, slimwork: bool, overlap: float,
               schedule) -> list[DistIterationStats]:
    """Map a union iteration schedule onto 1D ranks and the wire.

    ``machine`` is a single :class:`Machine` (homogeneous ranks) or a
    per-rank sequence (heterogeneous cluster: the barrier waits for the
    slowest rank *on its own descriptor*, which is what weighted
    placement exists to rebalance).  This is the profiling seam the
    capacity planner (:mod:`repro.serve.plan`) charges batches through.
    """
    ranks = partition.ranks
    machines = per_rank_machines(machine, ranks)
    semiring = get_semiring("tropical")
    slim = not rep.has_val
    owned = partition.counts_per_rank()
    latency = 0.0 if ranks == 1 else math.log2(ranks) * network.latency_s
    iterations: list[DistIterationStats] = []
    for k, width, newly, active in schedule:
        processed = partition.counts_per_rank(active)
        layers = partition.sum_by_rank(rep.cl, active)
        rank_lanes = layers * rep.C
        t_local = max(
            modeled_local_seconds(machines[r], semiring, rep.C, slim,
                                  int(processed[r]),
                                  int(owned[r] - processed[r]),
                                  int(layers[r]), slimwork, batch=width)
            for r in range(ranks))
        # Each rank receives the whole frontier: one dense union value
        # vector plus, for batches, a membership bitmap per column.
        comm_bytes = (0 if ranks == 1
                      else batched_frontier_bytes(rep.N, width,
                                                  BYTES_PER_WORD))
        t_comm = model_allgather(network, ranks, comm_bytes)
        iterations.append(DistIterationStats(
            k=k, newly=newly, t_local_s=t_local, t_comm_s=t_comm,
            comm_bytes=comm_bytes, imbalance=work_imbalance(rank_lanes),
            rank_lanes=rank_lanes, chunks_active=int(active.sum()),
            width=width, overlap=overlap,
            comm_latency_s=0.0 if ranks == 1 else latency,
        ))
    return iterations


def bfs_dist_1d(
    rep: SellCSigma,
    root,
    partition: Partition1D,
    machine: Machine | list[Machine] | tuple[Machine, ...],
    network: Network,
    *,
    slimwork: bool = True,
    batch: int | None = None,
    overlap: float = 0.0,
    faults: DistFaultModel | DistFaultInjector | None = None,
) -> DistBFSResult | DistBatchResult:
    """Simulate a 1D-distributed BFS-SpMV from ``root`` (original ids).

    Parameters
    ----------
    rep:
        A built :class:`~repro.formats.slimsell.SlimSell` (or
        :class:`~repro.formats.sell.SellCSigma`) representation.
    root:
        Traversal root in original vertex ids, or a sequence of roots for a
        batched multi-source sweep.
    partition:
        Chunk → rank assignment; must cover all ``rep.nc`` chunks.
    machine:
        Node descriptor used to model each rank's local SpMV, or a
        per-rank sequence of descriptors (one entry per partition rank)
        modeling a heterogeneous cluster — each iteration's barrier then
        waits for the slowest rank *on its own machine*.  Pair with
        ``Partition1D.balanced(weights=machine_weights(...))`` so weak
        ranks own proportionally less work.
    network:
        Interconnect descriptor used to model the frontier allgather.
    slimwork:
        Enable §III-C chunk skipping inside each rank's local SpMV.
    batch:
        With a roots sequence: columns per SpMM sweep (``None`` = all roots
        in one sweep; groups run back to back).  ``batch=1`` reproduces the
        single-source model per root, cost term for cost term.
    overlap:
        Fraction (0..1) of each collective hidden behind the local SpMV;
        0 is the bulk-synchronous seed model.
    faults:
        A :class:`~repro.dist.faults.DistFaultModel` (or a prebuilt
        injector) charging rank failures, stragglers, and
        checkpoint/recovery into the per-iteration ``t_fault_s``.
        ``None`` (default) charges nothing and creates no rng — modeled
        times are bit-identical to the fault-free model.

    Returns
    -------
    DistBFSResult | DistBatchResult
        Exact distances (bit-identical to the single-node run) plus the
        per-iteration profile: slowest-rank local time, allgather time,
        bytes moved, per-rank work lanes, and work imbalance.  A scalar
        ``root`` yields :class:`DistBFSResult`; a sequence yields the
        batched container.
    """
    if partition.nchunks != rep.nc:
        raise ValueError(
            f"partition covers {partition.nchunks} chunks but the "
            f"representation has {rep.nc}; the partition must cover every chunk")
    overlap = check_overlap(overlap)
    method = "dist-1d" + ("+slimwork" if slimwork else "")
    # One injector for the whole call: a batched sweep's groups draw from
    # the same evolving stream instead of replaying the seed per group.
    injector = (faults if faults is None or isinstance(faults,
                                                       DistFaultInjector)
                else DistFaultInjector(faults))
    if np.ndim(root) != 0:
        return simulate_batched(
            rep, root, batch=batch, slimwork=slimwork,
            profile=lambda schedule: faulted_profile(
                profile_1d(rep, partition, machine, network, slimwork,
                           overlap, schedule),
                injector, ranks=partition.ranks, network=network,
                nwords=rep.N, bytes_per_word=BYTES_PER_WORD),
            method=method, ranks=partition.ranks,
            machine=machine_label(machine),
            network=network.name, overlap=overlap)
    if batch is not None and batch != 1:
        raise ValueError("batch= requires a sequence of roots; "
                         "pass root=[...] for a multi-source sweep")
    if not 0 <= root < rep.n:
        raise ValueError(f"root {root} out of range [0, {rep.n})")

    t0 = time.perf_counter()
    res, levels = run_global_bfs(rep, root, slimwork)
    schedule = [
        (it.k, 1, it.newly,
         active_chunk_mask(levels, rep.nc, rep.C, it.k, slimwork))
        for it in res.iterations
    ]
    iterations = faulted_profile(
        profile_1d(rep, partition, machine, network, slimwork, overlap,
                   schedule),
        injector, ranks=partition.ranks, network=network, nwords=rep.N,
        bytes_per_word=BYTES_PER_WORD)

    return DistBFSResult(
        dist=res.dist, root=root, method=method, ranks=partition.ranks,
        machine=machine_label(machine), network=network.name,
        iterations=iterations, wall_time_s=time.perf_counter() - t0,
    )
