"""Result containers and the shared simulation core of the dist subsystem.

Both decompositions execute the *same global computation* as the single-node
layer engine (the decomposition only changes who computes which chunk and
what travels over the wire), so the simulation runs the real engine once for
ground-truth distances and wall clock, then reconstructs each iteration's
SlimWork chunk-activity analytically from the final BFS levels: a lane is
settled before iteration k iff its level is ≤ k−1 (tropical semantics —
padding lanes stay ∞ and therefore never let their chunk be skipped, exactly
as in :meth:`repro.semirings.tropical.TropicalSemiring.settled_lanes`).
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass, field

from repro.formats.sell import SellCSigma
from repro.semirings.base import SemiringBFS
from repro.vec.machine import Machine

__all__ = ["DistIterationStats", "DistBFSResult"]


@dataclass
class DistIterationStats:
    """Profile of one distributed BFS iteration (frontier expansion).

    Attributes
    ----------
    k:
        Iteration number (1-based), as in :class:`repro.bfs.result.IterationStats`.
    newly:
        Vertices settled this iteration (identical to the single-node run).
    t_local_s:
        Modeled seconds of the slowest rank's local SpMV (the barrier time).
    t_comm_s:
        Modeled seconds of the frontier exchange collectives.
    comm_bytes:
        Bytes of collective result received per rank this iteration.
    imbalance:
        max/mean of per-rank work lanes (1.0 = perfectly balanced).
    rank_lanes:
        int64[P]; padded SpMV lanes (Σ cl·C over processed chunks) per rank.
    chunks_active:
        Chunks processed globally (SlimWork skips fully-settled chunks).
    """

    k: int
    newly: int
    t_local_s: float
    t_comm_s: float
    comm_bytes: int
    imbalance: float
    rank_lanes: np.ndarray
    chunks_active: int = 0

    @property
    def t_total_s(self) -> float:
        """Modeled iteration time: compute barrier + collective."""
        return self.t_local_s + self.t_comm_s


@dataclass
class DistBFSResult:
    """Outcome of one simulated distributed BFS traversal.

    Attributes
    ----------
    dist:
        float64[n]; hop distances in original vertex ids (``inf`` unreached).
    root:
        Traversal root (original ids).
    method:
        Provenance label (``"dist-1d"`` / ``"dist-2d"``, ``+slimwork``).
    ranks:
        Total number of simulated ranks.
    machine / network:
        Names of the node and interconnect descriptors used by the model.
    iterations:
        Per-iteration profiles, in order.
    wall_time_s:
        Wall clock of the simulation itself (the real local computation).
    """

    dist: np.ndarray
    root: int
    method: str
    ranks: int
    machine: str
    network: str
    iterations: list[DistIterationStats] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def n_iterations(self) -> int:
        """Number of frontier expansions executed."""
        return len(self.iterations)

    @property
    def reached(self) -> int:
        """Vertices reached (finite distance)."""
        return int(np.isfinite(self.dist).sum())

    @property
    def modeled_total_s(self) -> float:
        """Modeled end-to-end seconds: Σ per-iteration (local barrier + comm)."""
        return float(sum(it.t_total_s for it in self.iterations))

    @property
    def total_comm_bytes(self) -> int:
        """Total collective bytes received per rank across all iterations."""
        return int(sum(it.comm_bytes for it in self.iterations))

    @property
    def comm_fraction(self) -> float:
        """Communication share of the modeled total (0 when nothing is modeled)."""
        total = self.modeled_total_s
        if total <= 0.0:
            return 0.0
        return float(sum(it.t_comm_s for it in self.iterations)) / total


# ----------------------------------------------------------------------
# Shared simulation core
# ----------------------------------------------------------------------

def run_global_bfs(rep: SellCSigma, root: int, slimwork: bool):
    """Run the real single-node engine once; return ``(result, levels)``.

    ``levels`` is the distance vector in the representation's permuted,
    padded id space (length N; padding lanes are ∞), from which each
    iteration's settled-lane state can be reconstructed exactly.
    """
    from repro.bfs.spmv import BFSSpMV

    res = BFSSpMV(rep, "tropical", slimwork=slimwork, engine="layer",
                  compute_parents=False).run(root)
    levels = np.full(rep.N, np.inf)
    levels[rep.perm] = res.dist
    return res, levels


def active_chunk_mask(levels: np.ndarray, nc: int, C: int, k: int,
                      slimwork: bool) -> np.ndarray:
    """Bool[nc]: chunks processed in iteration ``k`` (1-based).

    Without SlimWork every chunk is processed; with it, a chunk is skipped
    iff all of its lanes settled in iterations < k (level ≤ k−1).
    """
    if not slimwork:
        return np.ones(nc, dtype=bool)
    settled = (levels <= k - 1).reshape(nc, C)
    return ~settled.all(axis=1)


def modeled_local_seconds(machine: Machine, semiring: SemiringBFS, C: int,
                          slim: bool, processed_chunks: int,
                          skipped_chunks: int, processed_layers: int,
                          slimwork: bool) -> float:
    """Model one rank's local SpMV share on ``machine`` via the cost model."""
    from repro.bfs.spmv import synthesize_counters
    from repro.perf.costmodel import model_vector_iteration

    counters = synthesize_counters(semiring, C, slim, processed_chunks,
                                   skipped_chunks, processed_layers, slimwork)
    return model_vector_iteration(machine, counters).t_total


def work_imbalance(rank_lanes: np.ndarray) -> float:
    """max/mean per-rank work; 1.0 for idle iterations (nothing to balance)."""
    total = int(rank_lanes.sum())
    if total == 0:
        return 1.0
    return float(rank_lanes.max()) * rank_lanes.size / total
