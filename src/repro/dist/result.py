"""Result containers and the shared simulation core of the dist subsystem.

Both decompositions execute the *same global computation* as the single-node
layer engine (the decomposition only changes who computes which chunk and
what travels over the wire), so the simulation runs the real engine once for
ground-truth distances and wall clock, then reconstructs each iteration's
SlimWork chunk-activity analytically from the final BFS levels: a lane is
settled before iteration k iff its level is ≤ k−1 (tropical semantics —
padding lanes stay ∞ and therefore never let their chunk be skipped, exactly
as in :meth:`repro.semirings.tropical.TropicalSemiring.settled_lanes`).

Batched traversals generalize both halves: the ground truth comes from one
:class:`repro.bfs.msbfs.MultiSourceBFS` SpMM sweep (bit-identical per column
to the single-source engine), and the per-iteration activity is the *union*
of the per-column reconstructions over the columns still live — the set a
real batched rank would have to process.  :func:`batch_schedule` yields that
union schedule; the decomposition modules map it onto ranks and wires.
"""

from __future__ import annotations

import time

import numpy as np

from dataclasses import dataclass, field

from repro.formats.sell import SellCSigma
from repro.semirings.base import SemiringBFS
from repro.vec.machine import Machine

__all__ = ["DistIterationStats", "DistBFSResult", "DistBatchResult"]


@dataclass
class DistIterationStats:
    """Profile of one distributed BFS iteration (frontier expansion).

    Attributes
    ----------
    k:
        Iteration number (1-based), as in :class:`repro.bfs.result.IterationStats`.
    newly:
        Vertices settled this iteration (identical to the single-node run).
    t_local_s:
        Modeled seconds of the slowest rank's local SpMV (the barrier time).
    t_comm_s:
        Modeled seconds of the frontier exchange collectives.
    comm_bytes:
        Bytes of collective result received per rank this iteration.
    imbalance:
        max/mean of per-rank work lanes (1.0 = perfectly balanced).
    rank_lanes:
        int64[P]; padded SpMV lanes (Σ cl·C over processed chunks) per rank.
    chunks_active:
        Chunks processed globally (SlimWork skips fully-settled chunks).
    width:
        Frontier columns still live this iteration (1 for single-source).
    overlap:
        Fraction of ``t_comm_s`` the runtime may hide behind the local SpMV
        (0 = bulk-synchronous, the seed model; 1 = perfect overlap).
    comm_latency_s:
        The α (per-hop latency) share of ``t_comm_s`` — the term a batch
        amortizes by paying each collective once per layer.
    t_fault_s:
        Modeled resilience overhead charged to this iteration by a
        :class:`~repro.dist.faults.DistFaultModel`: straggler slowdown,
        checkpoint writes, and recovery (checkpoint read-back + replayed
        layers) after a rank failure.  0.0 without a fault model.
    """

    k: int
    newly: int
    t_local_s: float
    t_comm_s: float
    comm_bytes: int
    imbalance: float
    rank_lanes: np.ndarray
    chunks_active: int = 0
    width: int = 1
    overlap: float = 0.0
    comm_latency_s: float = 0.0
    t_fault_s: float = 0.0

    @property
    def t_comm_visible_s(self) -> float:
        """Communication seconds left on the critical path after overlap.

        The ``overlap`` fraction of the collective runs concurrently with
        the local SpMV, so it is hidden only insofar as ``t_local_s`` is
        long enough to cover it; the rest is exposed.  ``overlap=0``
        reproduces the bulk-synchronous seed model exactly.
        """
        hidden = min(self.overlap * self.t_comm_s, self.t_local_s)
        return self.t_comm_s - hidden

    @property
    def t_base_s(self) -> float:
        """Fault-free iteration time: compute barrier + exposed collective.

        The quantity a recovery replays (re-executing a layer repeats its
        compute and collectives, not the one-off fault charge that caused
        the replay).
        """
        return self.t_local_s + self.t_comm_visible_s

    @property
    def t_total_s(self) -> float:
        """Modeled iteration time: compute + exposed comm + fault overhead."""
        return self.t_base_s + self.t_fault_s


@dataclass
class DistBFSResult:
    """Outcome of one simulated distributed BFS traversal.

    Attributes
    ----------
    dist:
        float64[n]; hop distances in original vertex ids (``inf`` unreached).
    root:
        Traversal root (original ids).
    method:
        Provenance label (``"dist-1d"`` / ``"dist-2d"``, ``+slimwork``).
    ranks:
        Total number of simulated ranks.
    machine / network:
        Names of the node and interconnect descriptors used by the model.
    iterations:
        Per-iteration profiles, in order.
    wall_time_s:
        Wall clock of the simulation itself (the real local computation).
    """

    dist: np.ndarray
    root: int
    method: str
    ranks: int
    machine: str
    network: str
    iterations: list[DistIterationStats] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def n_iterations(self) -> int:
        """Number of frontier expansions executed."""
        return len(self.iterations)

    @property
    def reached(self) -> int:
        """Vertices reached (finite distance)."""
        return int(np.isfinite(self.dist).sum())

    @property
    def modeled_total_s(self) -> float:
        """Modeled end-to-end seconds: Σ per-iteration (local barrier + comm)."""
        return float(sum(it.t_total_s for it in self.iterations))

    @property
    def total_comm_bytes(self) -> int:
        """Total collective bytes received per rank across all iterations."""
        return int(sum(it.comm_bytes for it in self.iterations))

    @property
    def comm_fraction(self) -> float:
        """Communication share of the modeled total (0 when nothing is modeled)."""
        total = self.modeled_total_s
        if total <= 0.0:
            return 0.0
        return float(sum(it.t_comm_visible_s for it in self.iterations)) / total

    @property
    def fault_overhead_s(self) -> float:
        """Σ modeled resilience overhead (0.0 without a fault model)."""
        return float(sum(it.t_fault_s for it in self.iterations))


@dataclass
class DistBatchResult:
    """Outcome of one simulated batched (multi-source) distributed sweep.

    One :class:`DistIterationStats` per *union* iteration: the collective is
    charged once per layer for all live columns, and the local term models
    the SpMM over the union of the per-column active chunks.  Groups (when
    ``batch`` caps the sweep width below the root count) run back to back;
    their iteration profiles are concatenated in order.

    Attributes
    ----------
    dists:
        float64[B, n]; per-source hop distances in original vertex ids,
        bit-identical to ``B`` single-source runs.
    roots:
        int64[B]; traversal roots in input order.
    method:
        Provenance label (``"dist-1d"`` / ``"dist-2d"``, ``+slimwork``).
    ranks / machine / network:
        As in :class:`DistBFSResult`.
    batch:
        Maximum sweep width (columns per group); ``B`` when unbounded.
    overlap:
        The communication/computation overlap knob the model was run with.
    groups:
        Number of consecutive sweeps the roots were chopped into.
    iterations:
        Union-iteration profiles of every group, concatenated.
    wall_time_s:
        Wall clock of the simulation itself (the real batched sweeps).
    """

    dists: np.ndarray
    roots: np.ndarray
    method: str
    ranks: int
    machine: str
    network: str
    batch: int
    overlap: float
    groups: int
    iterations: list[DistIterationStats] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def n_sources(self) -> int:
        """Number of traversals simulated (frontier columns)."""
        return int(self.roots.size)

    @property
    def n_iterations(self) -> int:
        """Union iterations executed, summed over groups."""
        return len(self.iterations)

    @property
    def reached(self) -> np.ndarray:
        """int64[B]; vertices reached (finite distance) per source."""
        return np.isfinite(self.dists).sum(axis=1)

    @property
    def modeled_total_s(self) -> float:
        """Modeled end-to-end seconds: Σ per-iteration (local + exposed comm)."""
        return float(sum(it.t_total_s for it in self.iterations))

    @property
    def modeled_per_source_s(self) -> float:
        """Amortized modeled seconds per traversal — the batching headline."""
        return self.modeled_total_s / self.n_sources

    @property
    def total_comm_bytes(self) -> int:
        """Total collective bytes received per rank across all iterations."""
        return int(sum(it.comm_bytes for it in self.iterations))

    @property
    def total_comm_latency_s(self) -> float:
        """Σ α terms — the per-layer latency the batch pays once per sweep."""
        return float(sum(it.comm_latency_s for it in self.iterations))

    @property
    def comm_fraction(self) -> float:
        """Communication share of the modeled total (0 when nothing is modeled)."""
        total = self.modeled_total_s
        if total <= 0.0:
            return 0.0
        return float(sum(it.t_comm_visible_s for it in self.iterations)) / total

    @property
    def fault_overhead_s(self) -> float:
        """Σ modeled resilience overhead (0.0 without a fault model)."""
        return float(sum(it.t_fault_s for it in self.iterations))


# ----------------------------------------------------------------------
# Shared simulation core
# ----------------------------------------------------------------------

def run_global_bfs(rep: SellCSigma, root: int, slimwork: bool):
    """Run the real single-node engine once; return ``(result, levels)``.

    ``levels`` is the distance vector in the representation's permuted,
    padded id space (length N; padding lanes are ∞), from which each
    iteration's settled-lane state can be reconstructed exactly.
    """
    from repro.bfs.spmv import BFSSpMV

    res = BFSSpMV(rep, "tropical", slimwork=slimwork, engine="layer",
                  compute_parents=False).run(root)
    levels = np.full(rep.N, np.inf)
    levels[rep.perm] = res.dist
    return res, levels


def active_chunk_mask(levels: np.ndarray, nc: int, C: int, k: int,
                      slimwork: bool) -> np.ndarray:
    """Bool[nc] (or bool[nc, W]): chunks processed in iteration ``k``.

    Without SlimWork every chunk is processed; with it, a chunk is skipped
    iff all of its lanes settled in iterations < k (level ≤ k−1).  A 2-D
    ``levels`` of shape (N, W) — one column per batched source — yields the
    per-column decision matrix; ``k`` is 1-based either way.
    """
    if not slimwork:
        shape = (nc,) if levels.ndim == 1 else (nc, levels.shape[1])
        return np.ones(shape, dtype=bool)
    if levels.ndim == 1:
        settled = (levels <= k - 1).reshape(nc, C)
        return ~settled.all(axis=1)
    settled = (levels <= k - 1).reshape(nc, C, levels.shape[1])
    return ~settled.all(axis=1)


def modeled_local_seconds(machine: Machine, semiring: SemiringBFS, C: int,
                          slim: bool, processed_chunks: int,
                          skipped_chunks: int, processed_layers: int,
                          slimwork: bool, batch: int = 1) -> float:
    """Model one rank's local SpMV/SpMM share on ``machine`` via the cost model.

    ``batch`` is the number of live frontier columns the rank carries
    through its chunks: the ``col``/``val`` operand streams are charged once
    per layer while gathers and semiring compute scale with the width
    (:func:`repro.bfs.spmv.synthesize_counters`); ``batch=1`` reproduces the
    single-source model exactly.
    """
    from repro.bfs.spmv import synthesize_counters
    from repro.perf.costmodel import model_vector_iteration

    counters = synthesize_counters(semiring, C, slim, processed_chunks,
                                   skipped_chunks, processed_layers, slimwork,
                                   batch=batch)
    return model_vector_iteration(machine, counters).t_total


def check_overlap(overlap: float) -> float:
    """Validate the communication/computation overlap knob (0 ≤ f ≤ 1)."""
    overlap = float(overlap)
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1], got {overlap}")
    return overlap


def group_widths(nroots: int, batch: int | None) -> list[int]:
    """Column counts of the consecutive sweeps ``batch`` chops roots into."""
    if batch is not None and batch < 1:
        raise ValueError(f"batch must be >= 1 or None, got {batch}")
    if batch is None or batch >= nroots:
        return [nroots]
    return [min(batch, nroots - i) for i in range(0, nroots, batch)]


def batch_schedule(rep: SellCSigma, roots, slimwork: bool):
    """Union iteration schedule of one batched sweep: the dist ground truth.

    Runs the real batched engine once (:func:`repro.bfs.msbfs.batched_levels`
    — bit-identical per column to the single-source layer engine), then
    yields, per union iteration ``k`` while any column is live::

        (k, width, newly, active)

    where ``width`` is the number of live columns, ``newly`` the vertices
    settled across them, and ``active`` the bool[nc] union of the per-column
    SlimWork chunk decisions — what a batched rank actually processes.
    Returns ``(dists, schedule)`` with ``dists`` of shape (B, n).
    """
    from repro.bfs.msbfs import batched_levels

    results, levels = batched_levels(rep, roots, slimwork=slimwork)
    n_iters = np.array([len(r.iterations) for r in results], dtype=np.int64)
    schedule = []
    for k in range(1, int(n_iters.max()) + 1):
        live = np.flatnonzero(n_iters >= k)
        per_col = active_chunk_mask(levels[:, live], rep.nc, rep.C, k,
                                    slimwork)
        newly = sum(int(results[b].iterations[k - 1].newly) for b in live)
        schedule.append((k, int(live.size), newly, per_col.any(axis=1)))
    dists = np.stack([r.dist for r in results])
    return dists, schedule


def simulate_batched(rep: SellCSigma, roots, *, batch: int | None,
                     slimwork: bool, profile, method: str, ranks: int,
                     machine: str, network: str,
                     overlap: float) -> DistBatchResult:
    """Shared driver of both decompositions' batched paths.

    Chops ``roots`` into groups of ``batch`` columns, runs one
    :func:`batch_schedule` sweep per group, and hands each group's union
    schedule to the decomposition-specific ``profile`` callback
    (``schedule -> list[DistIterationStats]``); everything else — grouping,
    distance assembly, the result container — is decomposition-independent.
    """
    t0 = time.perf_counter()
    roots = np.asarray(roots, dtype=np.int64)
    widths = group_widths(roots.size, batch)
    iterations: list[DistIterationStats] = []
    dists = []
    start = 0
    for w in widths:
        group = roots[start:start + w]
        start += w
        group_dists, schedule = batch_schedule(rep, group, slimwork)
        dists.append(group_dists)
        iterations.extend(profile(schedule))
    return DistBatchResult(
        dists=np.concatenate(dists), roots=roots, method=method, ranks=ranks,
        machine=machine, network=network, batch=max(widths), overlap=overlap,
        groups=len(widths), iterations=iterations,
        wall_time_s=time.perf_counter() - t0,
    )


def work_imbalance(rank_lanes: np.ndarray) -> float:
    """max/mean per-rank work; 1.0 for idle iterations (nothing to balance)."""
    total = int(rank_lanes.sum())
    if total == 0:
        return 1.0
    return float(rank_lanes.max()) * rank_lanes.size / total
