"""2D-decomposed distributed BFS over SlimSell (cf. Buluç & Madduri, [9]).

The adjacency matrix is mapped onto an (R, C) process grid: the nc chunks
(row bands) are work-balanced across the R grid rows, and the column space
is split into C contiguous vertex blocks.  Rank (i, j) stores the slots of
row-band i whose column index falls in block j, so its local chunk lengths
``cl2d[c, j]`` (max per-row neighbor count inside the block) are computed
from the real layout — the 2D analog of SlimSell's ``cl`` array.

One iteration is the textbook 2D BFS-SpMV:

1. **column allgather** — the R ranks of a grid column assemble their
   frontier segment (N/C words each: the vector entries their matrix
   columns need);
2. **local SpMV** — the column-restricted SlimSell kernel, SlimWork
   skipping decided per row chunk exactly as in 1D;
3. **row merge** — the C ranks of a grid row reduce-scatter their partial
   result segments (N/R words; recursive halving, the ⊕ combine charged to
   the local cost model);
4. optionally a **frontier transpose** (``transpose=True``, the
   direction-optimizing variant): rank (i, j) swaps its merged result
   segment with rank (j, i) so the next iteration can sweep Aᵀ.

Per-iteration traffic is therefore O(N/R + N/C) words instead of the 1D
decomposition's O(N) — [9]'s scalability argument, reproduced by the
``bench_dist_scaling`` benchmark.  Batched traversals exchange the shared
union payload of :func:`repro.dist.network.batched_frontier_bytes` per
segment, paying each collective's α terms once per layer for the whole
batch; ``overlap`` hides that fraction of the wire time behind the local
sweep.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.dist.faults import (
    DistFaultInjector,
    DistFaultModel,
    faulted_profile,
)
from repro.dist.network import (
    Network,
    batched_frontier_bytes,
    model_allgather,
    model_reduce_scatter,
    model_transpose,
)
from repro.dist.partition import Partition1D
from repro.dist.result import (
    DistBatchResult,
    DistBFSResult,
    DistIterationStats,
    active_chunk_mask,
    check_overlap,
    modeled_local_seconds,
    run_global_bfs,
    simulate_batched,
    work_imbalance,
)
from repro.formats.sell import SellCSigma
from repro.perf.costmodel import BYTES_PER_WORD
from repro.semirings.base import get_semiring
from repro.vec.machine import Machine

__all__ = ["bfs_dist_2d", "column_split_lengths"]


def column_split_lengths(rep: SellCSigma, nblocks: int) -> np.ndarray:
    """int64[nc, nblocks]: chunk lengths of the column-restricted layouts.

    ``out[c, j]`` is the number of column layers chunk ``c`` needs when only
    the edges whose target falls in contiguous column block ``j`` are kept —
    the ``cl`` array rank (i, j) would build locally.  Derived from the real
    slot layout, so empty blocks and skewed columns are captured exactly.
    """
    lay = rep._layout  # shared Sell-C-σ/SlimSell geometry (marker col array)
    nc, C = rep.nc, rep.C
    if nc == 0 or nblocks < 1:
        return np.zeros((nc, max(nblocks, 0)), dtype=np.int64)
    sizes = rep.cl * C
    chunk_of = np.repeat(np.arange(nc, dtype=np.int64), sizes)
    offset = np.arange(lay.col.size, dtype=np.int64) - rep.cs[chunk_of]
    row_of = offset % C
    edge = lay.edge_mask()
    block_size = max(1, -(-rep.N // nblocks))  # ceil(N / nblocks)
    block_of = lay.col[edge].astype(np.int64) // block_size
    key = (chunk_of[edge] * C + row_of[edge]) * nblocks + block_of
    counts = np.bincount(key, minlength=nc * C * nblocks)
    return counts.reshape(nc, C, nblocks).max(axis=1).astype(np.int64)


class _Grid2D:
    """Per-grid invariants shared by every iteration of the 2D model."""

    def __init__(self, rep: SellCSigma, grid: tuple[int, int],
                 network: Network, transpose: bool):
        self.R, self.Cg = grid
        self.ranks = self.R * self.Cg
        self.rows = Partition1D.balanced(rep.cl, self.R)  # bands → grid rows
        self.cl2d = column_split_lengths(rep, self.Cg)
        self.owned = self.rows.counts_per_rank()
        self.col_seg = -(-rep.N // self.Cg)  # frontier words per grid column
        self.row_seg = -(-rep.N // self.R)  # partial-result words per row
        self.tr_seg = -(-rep.N // self.ranks)  # merged segment per rank
        self.transpose = transpose
        self.network = network
        hops = (0 if self.R == 1 else math.log2(self.R)) + \
               (0 if self.Cg == 1 else math.log2(self.Cg)) + \
               (1 if transpose else 0)
        self.latency = hops * network.latency_s

    def comm(self, width: int) -> tuple[int, float]:
        """(bytes received per rank, modeled seconds) for one iteration."""
        if self.ranks == 1:
            return 0, 0.0
        net = self.network
        col_bytes = batched_frontier_bytes(self.col_seg, width,
                                           BYTES_PER_WORD)
        row_bytes = batched_frontier_bytes(self.row_seg, width,
                                           BYTES_PER_WORD)
        comm_bytes = col_bytes + row_bytes
        t_comm = (model_allgather(net, self.R, col_bytes)
                  + model_reduce_scatter(net, self.Cg, row_bytes))
        if self.transpose:
            tr_bytes = batched_frontier_bytes(self.tr_seg, width,
                                              BYTES_PER_WORD)
            comm_bytes += tr_bytes
            t_comm += model_transpose(net, tr_bytes)
        return comm_bytes, t_comm


def _profile_2d(rep: SellCSigma, g2d: _Grid2D, machine: Machine,
                slimwork: bool, overlap: float,
                schedule) -> list[DistIterationStats]:
    """Map a union iteration schedule onto the (R, C) grid and the wire."""
    semiring = get_semiring("tropical")
    slim = not rep.has_val
    R, Cg = g2d.R, g2d.Cg
    rowner, owned = g2d.rows.owner, g2d.owned
    iterations: list[DistIterationStats] = []
    for k, width, newly, active in schedule:
        processed = np.bincount(rowner[active], minlength=R)
        # layers[i, j] = Σ cl2d[c, j] over active chunks of grid row i.
        layers = np.zeros((R, Cg), dtype=np.int64)
        np.add.at(layers, rowner[active], g2d.cl2d[active])
        rank_lanes = (layers * rep.C).reshape(g2d.ranks)
        t_local = max(
            modeled_local_seconds(machine, semiring, rep.C, slim,
                                  int(processed[i]),
                                  int(owned[i] - processed[i]),
                                  int(layers[i, j]), slimwork, batch=width)
            for i in range(R) for j in range(Cg))
        comm_bytes, t_comm = g2d.comm(width)
        iterations.append(DistIterationStats(
            k=k, newly=newly, t_local_s=t_local, t_comm_s=t_comm,
            comm_bytes=comm_bytes, imbalance=work_imbalance(rank_lanes),
            rank_lanes=rank_lanes, chunks_active=int(active.sum()),
            width=width, overlap=overlap,
            comm_latency_s=0.0 if g2d.ranks == 1 else g2d.latency,
        ))
    return iterations


def bfs_dist_2d(
    rep: SellCSigma,
    root,
    grid: tuple[int, int],
    machine: Machine,
    network: Network,
    *,
    slimwork: bool = True,
    batch: int | None = None,
    overlap: float = 0.0,
    transpose: bool = False,
    faults: DistFaultModel | DistFaultInjector | None = None,
) -> DistBFSResult | DistBatchResult:
    """Simulate a 2D-distributed BFS-SpMV on an ``(R, C)`` process grid.

    Parameters
    ----------
    rep:
        A built :class:`~repro.formats.slimsell.SlimSell` (or
        :class:`~repro.formats.sell.SellCSigma`) representation.
    root:
        Traversal root in original vertex ids, or a sequence of roots for a
        batched multi-source sweep.
    grid:
        ``(R, C)`` process grid dimensions; both must be ≥ 1.  Grids with
        more cells than chunks are legal (surplus ranks idle).
    machine / network:
        Node and interconnect descriptors for the cost model.
    slimwork:
        Enable §III-C chunk skipping inside each rank's local SpMV.
    batch:
        With a roots sequence: columns per SpMM sweep (``None`` = all roots
        in one sweep); ``batch=1`` reproduces the single-source model per
        root, cost term for cost term.
    overlap:
        Fraction (0..1) of each collective hidden behind the local sweep.
    transpose:
        Charge the direction-optimizing variant's frontier transpose (rank
        (i, j) ↔ (j, i) segment swap) on top of the two collectives.
    faults:
        A :class:`~repro.dist.faults.DistFaultModel` (or a prebuilt
        injector) charging rank failures, stragglers, and
        checkpoint/recovery into ``t_fault_s``; ``None`` charges nothing
        (bit-identical to the fault-free model).

    Returns
    -------
    DistBFSResult | DistBatchResult
        Exact distances plus per-iteration profiles whose iteration count
        and ``newly`` series match the 1D simulation (the global computation
        is identical; only its mapping onto ranks differs).
    """
    R, C_grid = grid
    if R < 1 or C_grid < 1:
        raise ValueError(f"grid dimensions must be >= 1, got {grid!r}")
    overlap = check_overlap(overlap)
    method = "dist-2d" + ("+slimwork" if slimwork else "")
    # One injector for the whole call (see bfs_dist_1d).
    injector = (faults if faults is None or isinstance(faults,
                                                       DistFaultInjector)
                else DistFaultInjector(faults))
    if np.ndim(root) != 0:
        g2d = _Grid2D(rep, grid, network, transpose)
        return simulate_batched(
            rep, root, batch=batch, slimwork=slimwork,
            profile=lambda schedule: faulted_profile(
                _profile_2d(rep, g2d, machine, slimwork, overlap, schedule),
                injector, ranks=g2d.ranks, network=network, nwords=rep.N,
                bytes_per_word=BYTES_PER_WORD),
            method=method, ranks=g2d.ranks, machine=machine.name,
            network=network.name, overlap=overlap)
    if batch is not None and batch != 1:
        raise ValueError("batch= requires a sequence of roots; "
                         "pass root=[...] for a multi-source sweep")
    if not 0 <= root < rep.n:
        raise ValueError(f"root {root} out of range [0, {rep.n})")

    t0 = time.perf_counter()
    res, levels = run_global_bfs(rep, root, slimwork)
    g2d = _Grid2D(rep, grid, network, transpose)
    schedule = [
        (it.k, 1, it.newly,
         active_chunk_mask(levels, rep.nc, rep.C, it.k, slimwork))
        for it in res.iterations
    ]
    iterations = faulted_profile(
        _profile_2d(rep, g2d, machine, slimwork, overlap, schedule),
        injector, ranks=g2d.ranks, network=network, nwords=rep.N,
        bytes_per_word=BYTES_PER_WORD)
    return DistBFSResult(
        dist=res.dist, root=root, method=method, ranks=g2d.ranks,
        machine=machine.name, network=network.name, iterations=iterations,
        wall_time_s=time.perf_counter() - t0,
    )
