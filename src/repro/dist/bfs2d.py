"""2D-decomposed distributed BFS over SlimSell (cf. Buluç & Madduri, [9]).

The adjacency matrix is mapped onto an (R, C) process grid: the nc chunks
(row bands) are work-balanced across the R grid rows, and the column space
is split into C contiguous vertex blocks.  Rank (i, j) stores the slots of
row-band i whose column index falls in block j, so its local chunk lengths
``cl2d[c, j]`` (max per-row neighbor count inside the block) are computed
from the real layout — the 2D analog of SlimSell's ``cl`` array.

One iteration is the textbook 2D BFS-SpMV:

1. **column allgather** — the R ranks of a grid column assemble their
   frontier segment (N/C words each: the vector entries their matrix
   columns need);
2. **local SpMV** — the column-restricted SlimSell kernel, SlimWork
   skipping decided per row chunk exactly as in 1D;
3. **row merge** — the C ranks of a grid row reduce-scatter their partial
   result segments (N/R words).

Per-iteration traffic is therefore O(N/R + N/C) words instead of the 1D
decomposition's O(N) — [9]'s scalability argument, reproduced by the
``bench_dist_scaling`` benchmark.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dist.network import Network, model_allgather
from repro.dist.partition import Partition1D
from repro.dist.result import (
    DistBFSResult,
    DistIterationStats,
    active_chunk_mask,
    modeled_local_seconds,
    run_global_bfs,
    work_imbalance,
)
from repro.formats.sell import SellCSigma
from repro.perf.costmodel import BYTES_PER_WORD
from repro.semirings.base import get_semiring
from repro.vec.machine import Machine

__all__ = ["bfs_dist_2d", "column_split_lengths"]


def column_split_lengths(rep: SellCSigma, nblocks: int) -> np.ndarray:
    """int64[nc, nblocks]: chunk lengths of the column-restricted layouts.

    ``out[c, j]`` is the number of column layers chunk ``c`` needs when only
    the edges whose target falls in contiguous column block ``j`` are kept —
    the ``cl`` array rank (i, j) would build locally.  Derived from the real
    slot layout, so empty blocks and skewed columns are captured exactly.
    """
    lay = rep._layout  # shared Sell-C-σ/SlimSell geometry (marker col array)
    nc, C = rep.nc, rep.C
    if nc == 0 or nblocks < 1:
        return np.zeros((nc, max(nblocks, 0)), dtype=np.int64)
    sizes = rep.cl * C
    chunk_of = np.repeat(np.arange(nc, dtype=np.int64), sizes)
    offset = np.arange(lay.col.size, dtype=np.int64) - rep.cs[chunk_of]
    row_of = offset % C
    edge = lay.edge_mask()
    block_size = max(1, -(-rep.N // nblocks))  # ceil(N / nblocks)
    block_of = lay.col[edge].astype(np.int64) // block_size
    key = (chunk_of[edge] * C + row_of[edge]) * nblocks + block_of
    counts = np.bincount(key, minlength=nc * C * nblocks)
    return counts.reshape(nc, C, nblocks).max(axis=1).astype(np.int64)


def bfs_dist_2d(
    rep: SellCSigma,
    root: int,
    grid: tuple[int, int],
    machine: Machine,
    network: Network,
    *,
    slimwork: bool = True,
) -> DistBFSResult:
    """Simulate a 2D-distributed BFS-SpMV on an ``(R, C)`` process grid.

    Parameters
    ----------
    rep:
        A built :class:`~repro.formats.slimsell.SlimSell` (or
        :class:`~repro.formats.sell.SellCSigma`) representation.
    root:
        Traversal root in original vertex ids.
    grid:
        ``(R, C)`` process grid dimensions; both must be ≥ 1.  Grids with
        more cells than chunks are legal (surplus ranks idle).
    machine / network:
        Node and interconnect descriptors for the cost model.
    slimwork:
        Enable §III-C chunk skipping inside each rank's local SpMV.

    Returns
    -------
    DistBFSResult
        Exact distances plus per-iteration profiles whose iteration count
        and ``newly`` series match the 1D simulation (the global computation
        is identical; only its mapping onto ranks differs).
    """
    R, C_grid = grid
    if R < 1 or C_grid < 1:
        raise ValueError(f"grid dimensions must be >= 1, got {grid!r}")
    if not 0 <= root < rep.n:
        raise ValueError(f"root {root} out of range [0, {rep.n})")

    t0 = time.perf_counter()
    ranks = R * C_grid
    semiring = get_semiring("tropical")
    slim = not rep.has_val
    res, levels = run_global_bfs(rep, root, slimwork)

    rows = Partition1D.balanced(rep.cl, R)  # chunk bands → grid rows
    cl2d = column_split_lengths(rep, C_grid)  # per-chunk per-column-block work
    rowner = rows.owner
    owned = rows.counts_per_rank()
    if ranks == 1:
        comm_bytes = 0
        t_comm = 0.0
    else:
        col_seg = -(-rep.N // C_grid)  # frontier segment assembled per column
        row_seg = -(-rep.N // R)  # partial-result segment merged per row
        comm_bytes = BYTES_PER_WORD * (col_seg + row_seg)
        t_comm = (model_allgather(network, R, BYTES_PER_WORD * col_seg)
                  + model_allgather(network, C_grid, BYTES_PER_WORD * row_seg))

    iterations: list[DistIterationStats] = []
    for it in res.iterations:
        active = active_chunk_mask(levels, rep.nc, rep.C, it.k, slimwork)
        processed = np.bincount(rowner[active], minlength=R)
        # layers[i, j] = Σ cl2d[c, j] over active chunks of grid row i.
        layers = np.zeros((R, C_grid), dtype=np.int64)
        np.add.at(layers, rowner[active], cl2d[active])
        rank_lanes = (layers * rep.C).reshape(ranks)
        t_local = max(
            modeled_local_seconds(machine, semiring, rep.C, slim,
                                  int(processed[i]),
                                  int(owned[i] - processed[i]),
                                  int(layers[i, j]), slimwork)
            for i in range(R) for j in range(C_grid))
        iterations.append(DistIterationStats(
            k=it.k, newly=it.newly, t_local_s=t_local, t_comm_s=t_comm,
            comm_bytes=comm_bytes, imbalance=work_imbalance(rank_lanes),
            rank_lanes=rank_lanes, chunks_active=int(active.sum()),
        ))

    method = "dist-2d" + ("+slimwork" if slimwork else "")
    return DistBFSResult(
        dist=res.dist, root=root, method=method, ranks=ranks,
        machine=machine.name, network=network.name, iterations=iterations,
        wall_time_s=time.perf_counter() - t0,
    )
