"""Calibrate the dist cost model against the executed parallel backend.

The 1D model (:func:`repro.dist.bfs1d.bfs_dist_1d`) charges every union
iteration a slowest-rank local term and an allgather term built from
spec-sheet :class:`~repro.vec.machine.Machine` /
:class:`~repro.dist.network.Network` descriptors.  The executed backend
(:mod:`repro.exec`) *measures* the same two quantities on the same
partition: per-worker band-sweep seconds (critical path = max over
workers, exactly the model's barrier) and leader-side union-exchange
seconds, at the same point of the same union schedule.

:func:`calibrate` runs both over identical roots/partition, aligns the
iteration profiles 1:1, and fits one scale per term::

    compute_scale = Σ measured t_local   / Σ modeled t_local
    comm_scale    = Σ measured exchange  / Σ modeled allgather

Both cost formulas are homogeneous in their descriptors — local time
scales as 1/ghz and 1/bandwidth uniformly, the allgather as α and 1/β —
so dividing the machine's ``ghz``/``bandwidth_gbs`` by ``compute_scale``
(and multiplying the network's α / dividing its β by ``comm_scale``)
yields calibrated descriptors under which the model reproduces the
measured totals *exactly*.  The report carries both descriptor diffs and
the per-iteration measured-vs-modeled table.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

from repro.bfs.msbfs import run_in_batches
from repro.dist.bfs1d import bfs_dist_1d
from repro.dist.network import Network, get_network
from repro.dist.partition import Partition1D
from repro.formats.sell import SellCSigma
from repro.vec.machine import Machine, get_machine

__all__ = ["CalibrationIteration", "CalibrationReport", "calibrate"]


@dataclass(frozen=True)
class CalibrationIteration:
    """One union iteration, measured next to its modeled counterpart."""

    k: int
    width: int
    measured_local_s: float
    modeled_local_s: float
    measured_exchange_s: float
    modeled_comm_s: float


def _diff(before, after) -> dict[str, tuple]:
    """Changed dataclass fields as ``{name: (before, after)}``."""
    out = {}
    for f in fields(before):
        a, b = getattr(before, f.name), getattr(after, f.name)
        if a != b:
            out[f.name] = (a, b)
    return out


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of one :func:`calibrate` run.

    ``machine_calibrated``/``network_calibrated`` are descriptors under
    which the model's Σ t_local (and Σ t_comm, when workers > 1)
    reproduce the measured totals exactly; ``comm_scale`` is ``None``
    when nothing was modeled on the wire (one worker communicates
    nothing), in which case ``network_calibrated`` is the input network
    unchanged.
    """

    workers: int
    backend: str
    compute_scale: float
    comm_scale: float | None
    machine: Machine
    machine_calibrated: Machine
    network: Network
    network_calibrated: Network
    iterations: list[CalibrationIteration]

    @property
    def measured_local_s(self) -> float:
        return float(sum(it.measured_local_s for it in self.iterations))

    @property
    def modeled_local_s(self) -> float:
        return float(sum(it.modeled_local_s for it in self.iterations))

    @property
    def measured_exchange_s(self) -> float:
        return float(sum(it.measured_exchange_s for it in self.iterations))

    @property
    def modeled_comm_s(self) -> float:
        return float(sum(it.modeled_comm_s for it in self.iterations))

    def machine_diff(self) -> dict[str, tuple]:
        """Machine descriptor fields the calibration changed."""
        return _diff(self.machine, self.machine_calibrated)

    def network_diff(self) -> dict[str, tuple]:
        """Network descriptor fields the calibration changed."""
        return _diff(self.network, self.network_calibrated)

    def describe(self) -> str:
        """Human-readable measured-vs-modeled table + descriptor diffs."""
        lines = [
            f"calibration: workers={self.workers} backend={self.backend} "
            f"machine={self.machine.name} network={self.network.name}",
            f"{'k':>3} {'width':>5} {'meas local':>12} {'model local':>12} "
            f"{'meas exch':>12} {'model comm':>12}",
        ]
        for it in self.iterations:
            lines.append(
                f"{it.k:>3} {it.width:>5} {it.measured_local_s:>12.3e} "
                f"{it.modeled_local_s:>12.3e} {it.measured_exchange_s:>12.3e} "
                f"{it.modeled_comm_s:>12.3e}")
        lines.append(
            f"sum {'':>5} {self.measured_local_s:>12.3e} "
            f"{self.modeled_local_s:>12.3e} {self.measured_exchange_s:>12.3e} "
            f"{self.modeled_comm_s:>12.3e}")
        lines.append(f"compute_scale = {self.compute_scale:.4g} "
                     "(measured local / modeled local)")
        if self.comm_scale is not None:
            lines.append(f"comm_scale    = {self.comm_scale:.4g} "
                         "(measured exchange / modeled allgather)")
        else:
            lines.append("comm_scale    = n/a (single worker: "
                         "nothing modeled on the wire)")
        for label, diff in (("machine", self.machine_diff()),
                            ("network", self.network_diff())):
            for name, (old, new) in diff.items():
                lines.append(f"{label}.{name}: {old!r} -> {new!r}")
        return "\n".join(lines)


def calibrate(
    rep: SellCSigma,
    roots,
    *,
    workers: int,
    machine: Machine | str = "knl",
    network: Network | str = "cray-aries",
    backend: str = "serial",
    partition: Partition1D | None = None,
    slimwork: bool = True,
    batch: int | None = None,
    tracer=None,
    metrics=None,
) -> CalibrationReport:
    """Measure the executed backend and fit the dist model's descriptors.

    Runs :class:`~repro.exec.ExecMultiSourceBFS` (``backend="serial"``
    by default — sequential shards give clean per-shard attribution, so
    the max-over-workers critical path is meaningful even on one core)
    and :func:`~repro.dist.bfs1d.bfs_dist_1d` over the same roots,
    partition, grouping, and SlimWork setting, then aligns their union
    iteration profiles position by position (widths must agree — both
    sides derive the schedule from the same batched engine).

    ``tracer`` / ``metrics`` (optional :class:`repro.obs.trace.Tracer` /
    :class:`repro.obs.metrics.MetricsRegistry`) attach to the executed
    engine, so the calibration run exports the same
    ``exec.layer``/``exec.worker``/``exec.exchange`` spans the serving
    tier does — the calibration consumes per-layer profiles either way;
    the spans just make them inspectable in Perfetto.  The fitted scales
    are published as ``dist.calibrate.compute_scale`` /
    ``dist.calibrate.comm_scale`` gauges.
    """
    from repro.exec.engine import ExecMultiSourceBFS

    if isinstance(machine, str):
        machine = get_machine(machine)
    if isinstance(network, str):
        network = get_network(network)
    if partition is None:
        partition = Partition1D.balanced(rep.cl, workers)
    engine = ExecMultiSourceBFS(rep, "tropical", workers=workers,
                                backend=backend, partition=partition,
                                slimwork=slimwork, compute_parents=False)
    engine.tracer = tracer
    engine.metrics = metrics
    try:
        results = run_in_batches(engine, roots, batch)
    finally:
        engine.close()
    measured = engine.layer_profile
    modeled = bfs_dist_1d(rep, roots, partition, machine, network,
                          slimwork=slimwork, batch=batch)
    if len(measured) != len(modeled.iterations):
        raise RuntimeError(
            f"schedule mismatch: executed {len(measured)} union iterations, "
            f"model profiled {len(modeled.iterations)}")
    iterations = []
    for m, d in zip(measured, modeled.iterations):
        if m.width != d.width:
            raise RuntimeError(
                f"width mismatch at iteration {m.k}: executed {m.width}, "
                f"modeled {d.width}")
        iterations.append(CalibrationIteration(
            k=m.k, width=m.width,
            measured_local_s=m.t_local_s, modeled_local_s=d.t_local_s,
            measured_exchange_s=m.t_exchange_s, modeled_comm_s=d.t_comm_s))
    # Sanity: the execution and the model must agree on the answer too.
    dists = np.stack([r.dist for r in results])
    if not np.array_equal(dists, modeled.dists):
        raise RuntimeError("executed and modeled distances diverged")

    meas_local = sum(it.measured_local_s for it in iterations)
    model_local = sum(it.modeled_local_s for it in iterations)
    if model_local <= 0.0:
        raise RuntimeError("model charged zero local seconds; "
                           "nothing to calibrate against")
    compute_scale = meas_local / model_local
    # t_local ~ 1/ghz and 1/bandwidth: dividing both by the scale
    # multiplies every modeled local term by exactly compute_scale.
    machine_cal = replace(machine, name=f"{machine.name}-calibrated",
                          ghz=machine.ghz / compute_scale,
                          bandwidth_gbs=machine.bandwidth_gbs / compute_scale)
    model_comm = sum(it.modeled_comm_s for it in iterations)
    if model_comm > 0.0:
        meas_exch = sum(it.measured_exchange_s for it in iterations)
        comm_scale = meas_exch / model_comm
        # allgather = log2(P)·α + bytes·(P−1)/P/β: α scales up with the
        # factor, β down, so every comm term scales by exactly comm_scale.
        network_cal = replace(
            network, name=f"{network.name}-calibrated",
            latency_s=network.latency_s * comm_scale,
            bandwidth_gbs=network.bandwidth_gbs / comm_scale)
    else:
        comm_scale = None
        network_cal = network
    if metrics is not None:
        metrics.gauge("dist.calibrate.compute_scale").set(compute_scale)
        if comm_scale is not None:
            metrics.gauge("dist.calibrate.comm_scale").set(comm_scale)
    return CalibrationReport(
        workers=workers, backend=backend, compute_scale=compute_scale,
        comm_scale=comm_scale, machine=machine,
        machine_calibrated=machine_cal, network=network,
        network_calibrated=network_cal, iterations=iterations)
