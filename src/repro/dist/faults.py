"""Rank failures, stragglers, and checkpoint/recovery for the dist model.

At the scale the paper's machine descriptors target (hundreds of ranks on
Aries or commodity Ethernet), rank failures and stragglers are the
dominant deviation from the bulk-synchronous ideal — yet the base model
charges zero for them.  This module quantifies resilience overhead the
same way :mod:`repro.dist.network` quantifies collectives: as modeled
seconds charged into the per-iteration profile, seed-deterministically,
so resilience ablations regression-gate exactly.

The model (:class:`DistFaultModel`) is applied per *union iteration* of a
simulated sweep:

* **straggler** — with probability ``straggler_prob`` the slowest rank is
  ``straggler_factor``× slower this iteration: charge
  ``t_local_s · (factor − 1)``;
* **rank failure** — each of the P ranks fails independently with
  probability ``rank_failure_prob`` per iteration, so the iteration is
  hit with probability ``1 − (1 − p)^P`` (the blow-up with P is the
  whole point of planning for failures).  Recovery re-executes every
  layer since the last checkpoint (their fault-free ``t_base_s``), plus
  the checkpoint read-back
  (:func:`~repro.dist.network.model_checkpoint`); with no checkpointing
  (``checkpoint_interval=None``) the sweep recomputes from the root —
  every layer so far is replayed;
* **checkpoint write** — every ``checkpoint_interval`` iterations each
  rank streams its BFS state (the batched frontier payload) to stable
  store: the insurance premium the interval trades against recovery
  depth.

``faults=None`` on ``bfs_dist_1d``/``bfs_dist_2d`` charges nothing and
creates no rng: the fault-free model is bit-identical to one that
predates this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.network import (
    Network,
    batched_frontier_bytes,
    model_checkpoint,
)
from repro.dist.result import DistIterationStats

__all__ = ["DistFaultModel", "DistFaultInjector", "apply_dist_faults",
           "faulted_profile"]


@dataclass(frozen=True)
class DistFaultModel:
    """Declarative, seed-driven failure model for one distributed sweep."""

    #: Per-rank, per-iteration failure probability.
    rank_failure_prob: float = 0.0
    #: P(the iteration's critical-path rank is a straggler).
    straggler_prob: float = 0.0
    #: Local-compute multiplier of a straggler iteration (>= 1).
    straggler_factor: float = 4.0
    #: Checkpoint every this many union iterations; ``None`` = never
    #: checkpoint, recover by recomputing from the root.
    checkpoint_interval: int | None = None
    #: Seed of the rng stream behind every decision.
    seed: int = 0

    def __post_init__(self):
        for name in ("rank_failure_prob", "straggler_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.straggler_factor < 1.0:
            raise ValueError(f"straggler_factor must be >= 1, "
                             f"got {self.straggler_factor}")
        if self.checkpoint_interval is not None \
                and self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1 or None, "
                f"got {self.checkpoint_interval}")


@dataclass
class DistFaultStats:
    """Lifetime counters of one :class:`DistFaultInjector`."""

    #: Straggler iterations charged.
    stragglers: int = 0
    #: Rank-failure recoveries charged.
    failures: int = 0
    #: Checkpoint writes charged.
    checkpoints: int = 0
    #: Union iterations replayed across all recoveries.
    replayed_layers: int = 0


class DistFaultInjector:
    """Stateful sampler of one :class:`DistFaultModel`.

    One rng stream; draw order depends only on the iteration sequence
    (guarded per rate, so zero-rate terms consume no draws), which makes
    the charged overhead an exact, machine-portable function of
    ``(model, sweep schedule)``.  A ``bfs_dist_*`` call creates one
    injector and threads it through every group of a batched sweep, so
    consecutive groups see an evolving stream rather than a replay.
    """

    def __init__(self, model: DistFaultModel):
        self.model = model
        self.rng = np.random.default_rng(model.seed)
        self.stats = DistFaultStats()

    def straggler(self) -> float:
        """Local-compute multiplier of one iteration (1.0 = none)."""
        if self.model.straggler_prob == 0.0:
            return 1.0
        if self.rng.random() < self.model.straggler_prob:
            self.stats.stragglers += 1
            return self.model.straggler_factor
        return 1.0

    def rank_failed(self, ranks: int) -> bool:
        """Whether any of ``ranks`` ranks failed this iteration."""
        p = self.model.rank_failure_prob
        if p == 0.0:
            return False
        if self.rng.random() < 1.0 - (1.0 - p) ** ranks:
            self.stats.failures += 1
            return True
        return False


def apply_dist_faults(iterations: list[DistIterationStats],
                      injector: DistFaultInjector, *, ranks: int,
                      network: Network,
                      state_bytes: int) -> list[DistIterationStats]:
    """Charge one sweep's fault overhead into its iteration profiles.

    Walks the (already profiled, fault-free) ``iterations`` of one group
    in order, accumulating each fault term into ``t_fault_s`` (which
    ``t_total_s`` includes):

    * straggler: ``t_local_s · (factor − 1)``;
    * checkpoint write: :func:`~repro.dist.network.model_checkpoint` of
      ``state_bytes``, every ``checkpoint_interval`` iterations;
    * rank failure: read-back of the last checkpoint (when one exists)
      plus the fault-free ``t_base_s`` of every layer since it — or, with
      ``checkpoint_interval=None``, of every layer of the sweep so far
      (recompute-from-root).

    A failed iteration recovers *before* re-executing, so its own base
    time is charged once (in ``t_base_s``) and the replay covers only
    completed prior layers.  Mutates and returns ``iterations``.
    """
    interval = injector.model.checkpoint_interval
    ckpt_cost = model_checkpoint(network, state_bytes)
    #: Fault-free seconds of completed layers since the last checkpoint.
    since_ckpt = 0.0
    have_ckpt = False
    replay_depth = 0
    for i, it in enumerate(iterations):
        fault = 0.0
        factor = injector.straggler()
        if factor > 1.0:
            fault += it.t_local_s * (factor - 1.0)
        if injector.rank_failed(ranks):
            # Replay everything since the last durable state: checkpoint
            # read-back + the completed layers after it (or the whole
            # sweep so far when nothing was ever checkpointed).
            fault += (ckpt_cost if have_ckpt else 0.0) + since_ckpt
            injector.stats.replayed_layers += replay_depth
        it.t_fault_s += fault
        since_ckpt += it.t_base_s
        replay_depth += 1
        if interval is not None and (i + 1) % interval == 0:
            it.t_fault_s += ckpt_cost
            injector.stats.checkpoints += 1
            since_ckpt = 0.0
            have_ckpt = True
            replay_depth = 0
    return iterations


def faulted_profile(iterations: list[DistIterationStats],
                    injector: DistFaultInjector | None, *, ranks: int,
                    network: Network, nwords: int,
                    bytes_per_word: int = 4) -> list[DistIterationStats]:
    """:func:`apply_dist_faults` with the checkpoint payload derived from
    the sweep itself: each rank's BFS state is the batched frontier
    payload of the sweep's width over ``nwords`` vector words.  The
    no-op seam for ``injector=None`` — both decompositions route every
    profiled sweep through here.
    """
    if injector is None or not iterations:
        return iterations
    state_bytes = batched_frontier_bytes(nwords, iterations[0].width,
                                         bytes_per_word)
    return apply_dist_faults(iterations, injector, ranks=ranks,
                             network=network, state_bytes=state_bytes)
