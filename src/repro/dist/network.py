"""Interconnect descriptors and the collective cost model.

The distributed BFS exchanges one frontier allgather per iteration; its cost
is modeled with the standard recursive-doubling formulation

    T(P, B) = log2(P)·α + B·(P−1)/P / β

where α is the per-hop latency, β the per-link bandwidth, and B the size of
the gathered result.  A single rank communicates nothing.  As with the
:mod:`repro.vec.machine` descriptors, the numbers are public spec-sheet
values: the reproduction targets *shape* (how the communication share grows
with P, why Aries beats commodity Ethernet), not absolute seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Network", "NETWORKS", "CRAY_ARIES", "ETHERNET_10G",
           "model_allgather", "get_network"]


@dataclass(frozen=True)
class Network:
    """An interconnect, as the collective cost model sees it.

    Attributes
    ----------
    name:
        Identifier used by benchmarks (e.g. ``"cray-aries"``).
    latency_s:
        One-hop message latency α in seconds.
    bandwidth_gbs:
        Per-link injection bandwidth β in GB/s (10^9 bytes per second).
    """

    name: str
    latency_s: float
    bandwidth_gbs: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.name} (α={self.latency_s * 1e6:.1f}µs, "
                f"β={self.bandwidth_gbs}GB/s)")


#: Cray Aries dragonfly (Piz Daint / Piz Dora class): ~1.3µs MPI latency,
#: ~10 GB/s injection bandwidth per node.
CRAY_ARIES = Network("cray-aries", latency_s=1.3e-6, bandwidth_gbs=10.2)

#: Commodity 10-Gigabit Ethernet: ~50µs latency, 1.25 GB/s line rate.
ETHERNET_10G = Network("ethernet-10g", latency_s=5e-5, bandwidth_gbs=1.25)

NETWORKS: dict[str, Network] = {n.name: n for n in (CRAY_ARIES, ETHERNET_10G)}


def get_network(name: str) -> Network:
    """Look up a modeled interconnect by name."""
    try:
        return NETWORKS[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; available: {sorted(NETWORKS)}"
        ) from None


def model_allgather(network: Network, ranks: int, nbytes: int | float) -> float:
    """Modeled seconds for an allgather whose result is ``nbytes`` bytes.

    Recursive doubling over ``ranks`` participants: log2(P) latency hops,
    and every rank receives the (P−1)/P fraction of the result it does not
    already hold at line rate.  One rank (or an empty result) is free.
    """
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if ranks == 1:
        return 0.0
    t_latency = math.log2(ranks) * network.latency_s
    t_bandwidth = nbytes * (ranks - 1) / ranks / (network.bandwidth_gbs * 1e9)
    return t_latency + t_bandwidth
