"""Interconnect descriptors and the collective cost model.

The distributed BFS exchanges collectives every iteration; their costs are
modeled with the standard latency/bandwidth formulations

    allgather       T(P, B) = log2(P)·α + B·(P−1)/P / β   (recursive doubling)
    reduce-scatter  T(P, B) = log2(P)·α + B·(P−1)/P / β   (recursive halving)
    transpose       T(B)    = α + B / β                   (pairwise exchange)

where α is the per-hop latency, β the per-link bandwidth, and B the size of
the exchanged result.  A single rank communicates nothing.  As with the
:mod:`repro.vec.machine` descriptors, the numbers are public spec-sheet
values: the reproduction targets *shape* (how the communication share grows
with P, why Aries beats commodity Ethernet), not absolute seconds.

Batched traversals (the (N, B) frontier matrix of :mod:`repro.bfs.msbfs`)
exchange a *shared* payload per layer: one dense union-frontier value vector
— the same word count the single-source exchange ships — plus an N-bit
membership bitmap per live column (:func:`batched_frontier_bytes`).  The α
terms are charged once per layer for the whole batch, which is exactly the
amortization the §VI scaling study measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Network", "NETWORKS", "CRAY_ARIES", "ETHERNET_10G",
           "model_allgather", "model_reduce_scatter", "model_transpose",
           "model_checkpoint", "batched_frontier_bytes", "get_network"]


@dataclass(frozen=True)
class Network:
    """An interconnect, as the collective cost model sees it.

    Attributes
    ----------
    name:
        Identifier used by benchmarks (e.g. ``"cray-aries"``).
    latency_s:
        One-hop message latency α in seconds.
    bandwidth_gbs:
        Per-link injection bandwidth β in GB/s (10^9 bytes per second).
    """

    name: str
    latency_s: float
    bandwidth_gbs: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.name} (α={self.latency_s * 1e6:.1f}µs, "
                f"β={self.bandwidth_gbs}GB/s)")


#: Cray Aries dragonfly (Piz Daint / Piz Dora class): ~1.3µs MPI latency,
#: ~10 GB/s injection bandwidth per node.
CRAY_ARIES = Network("cray-aries", latency_s=1.3e-6, bandwidth_gbs=10.2)

#: Commodity 10-Gigabit Ethernet: ~50µs latency, 1.25 GB/s line rate.
ETHERNET_10G = Network("ethernet-10g", latency_s=5e-5, bandwidth_gbs=1.25)

NETWORKS: dict[str, Network] = {n.name: n for n in (CRAY_ARIES, ETHERNET_10G)}


def get_network(name: str) -> Network:
    """Look up a modeled interconnect by name."""
    try:
        return NETWORKS[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; available: {sorted(NETWORKS)}"
        ) from None


def model_allgather(network: Network, ranks: int, nbytes: int | float) -> float:
    """Modeled seconds for an allgather whose result is ``nbytes`` bytes.

    Recursive doubling over ``ranks`` participants: log2(P) latency hops,
    and every rank receives the (P−1)/P fraction of the result it does not
    already hold at line rate.  One rank (or an empty result) is free.
    """
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if ranks == 1:
        return 0.0
    t_latency = math.log2(ranks) * network.latency_s
    t_bandwidth = nbytes * (ranks - 1) / ranks / (network.bandwidth_gbs * 1e9)
    return t_latency + t_bandwidth


def model_reduce_scatter(network: Network, ranks: int,
                         nbytes: int | float) -> float:
    """Modeled seconds for a reduce-scatter of an ``nbytes``-byte vector.

    Recursive halving over ``ranks`` participants: log2(P) latency hops, and
    every rank sends (and combines) the (P−1)/P fraction of the vector whose
    reduced segments end up elsewhere, at line rate.  The ⊕ combine itself is
    local compute and is charged to the node cost model, not the network.
    This is the proper model for the 2D row merge (each grid-row rank holds a
    *partial* result for the whole row band and keeps only its segment),
    which the seed modeled as an allgather-shaped collective; the volume and
    hop counts coincide, so single-source 2D totals are unchanged.
    """
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if ranks == 1:
        return 0.0
    t_latency = math.log2(ranks) * network.latency_s
    t_bandwidth = nbytes * (ranks - 1) / ranks / (network.bandwidth_gbs * 1e9)
    return t_latency + t_bandwidth


def model_transpose(network: Network, nbytes: int | float) -> float:
    """Modeled seconds for the frontier transpose of direction-optimizing
    2D BFS: rank (i, j) exchanges its ``nbytes``-byte result segment with
    rank (j, i) pairwise (one hop, full segment at line rate) so the merged
    result can serve as the next iteration's column frontier under Aᵀ.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return 0.0
    return network.latency_s + nbytes / (network.bandwidth_gbs * 1e9)


def model_checkpoint(network: Network, nbytes: int | float) -> float:
    """Modeled seconds to write (or read back) an ``nbytes`` checkpoint.

    The resilience model's stable-store term: each rank streams its BFS
    state segment (frontier/levels payload) to a remote checkpoint store
    at NIC line rate, one α to open the channel.  The same cost is
    charged for the read-back during recovery.  Zero bytes are free.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return 0.0
    return network.latency_s + nbytes / (network.bandwidth_gbs * 1e9)


def batched_frontier_bytes(nwords: int, width: int,
                           bytes_per_word: int = 4) -> int:
    """Exchanged bytes for a ``width``-column frontier segment of ``nwords``.

    A single column ships the plain dense value vector (``nwords`` words —
    the seed's single-source payload, bit-for-bit).  A batch instead ships
    one dense *union* value vector (still ``nwords`` words: ⊕ over the live
    columns, which is all the shared SpMM gather needs) plus an
    ``nwords``-bit membership bitmap per column to attribute updates back to
    their sources — the standard MS-BFS compression.  Per-column volume
    therefore falls from ``bytes_per_word·nwords`` toward ``nwords/8`` as
    the batch widens, while the collective's α terms are paid once.
    """
    if nwords < 0:
        raise ValueError(f"nwords must be >= 0, got {nwords}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if width == 1:
        return bytes_per_word * nwords
    return bytes_per_word * nwords + (nwords * width + 7) // 8
