"""Chunk-to-rank partitions for the 1D distributed decomposition.

The distributed unit of work is the Sell-C-σ *chunk* (C consecutive rows of
the permuted matrix), so a 1D decomposition is an assignment of the ``nc``
chunks to ``P`` ranks.  Two constructors mirror the single-node scheduling
story (Fig 5a): :meth:`Partition1D.blocks` hands each rank an equal count of
consecutive chunks — which, after the σ sort packed the heavy rows first, is
maximally skewed — and :meth:`Partition1D.balanced` bands the prefix sum of
the chunk lengths so every rank carries ≈ the same padded work.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Partition1D", "machine_weights"]


def machine_weights(machines, rep, *, slimwork: bool = True) -> np.ndarray:
    """Per-rank placement weights from :class:`~repro.vec.machine.Machine`
    descriptors: each rank's modeled throughput on a reference sweep.

    Weight ``w[r]`` is the reciprocal of the time rank ``r``'s descriptor
    needs for the whole representation (every chunk, single column) under
    the same cost model :func:`~repro.dist.bfs1d.profile_1d` charges — so
    ``Partition1D.balanced(rep.cl, P, weights=machine_weights(...))``
    equalizes per-rank *time* on a mixed cluster by construction, not by
    heuristic.  Identical descriptors produce an exactly uniform vector,
    which ``balanced`` maps to the unweighted bounds bit for bit.
    """
    from repro.dist.result import modeled_local_seconds
    from repro.semirings.base import get_semiring

    machines = list(machines)
    if not machines:
        raise ValueError("machines must be non-empty")
    semiring = get_semiring("tropical")
    slim = not rep.has_val
    layers = int(np.asarray(rep.cl).sum())
    t_ref = np.array([
        modeled_local_seconds(m, semiring, rep.C, slim, rep.nc, 0, layers,
                              slimwork, batch=1)
        for m in machines], dtype=np.float64)
    if not (np.isfinite(t_ref).all() and (t_ref > 0).all()):
        raise ValueError("reference sweep must model positive finite time")
    w = 1.0 / t_ref
    return w / w.max()


class Partition1D:
    """An assignment of chunks to ranks: ``owner[c]`` is the rank of chunk c.

    Parameters
    ----------
    owner:
        int array; ``owner[c]`` = rank owning chunk ``c``.
    ranks:
        Number of ranks (defaults to ``owner.max() + 1``); ranks may own
        zero chunks (more ranks than chunks is legal).
    """

    def __init__(self, owner: np.ndarray, ranks: int | None = None):
        self.owner = np.ascontiguousarray(owner, dtype=np.int64)
        if self.owner.ndim != 1:
            raise ValueError("owner must be a 1D chunk → rank array")
        if self.owner.size and self.owner.min() < 0:
            raise ValueError("owner ranks must be non-negative")
        inferred = int(self.owner.max()) + 1 if self.owner.size else 1
        self.ranks = int(ranks) if ranks is not None else inferred
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.owner.size and inferred > self.ranks:
            raise ValueError(
                f"owner references rank {inferred - 1} but ranks={self.ranks}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def blocks(cls, nchunks: int, ranks: int) -> "Partition1D":
        """Equal-count consecutive blocks of chunks (the naive partition)."""
        if ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {ranks}")
        if nchunks < 0:
            raise ValueError(f"nchunks must be >= 0, got {nchunks}")
        owner = np.zeros(nchunks, dtype=np.int64)
        for r, part in enumerate(np.array_split(np.arange(nchunks), ranks)):
            owner[part] = r
        return cls(owner, ranks)

    @classmethod
    def balanced(cls, cl: np.ndarray, ranks: int,
                 weights: np.ndarray | None = None) -> "Partition1D":
        """Work-balanced contiguous bands over the chunk-length prefix sum.

        Each chunk's SpMV work is ``cl[c]·C`` lanes; banding the cumulative
        work at multiples of ``total/ranks`` equalizes per-rank work the same
        way Fig 5a's guided schedule equalizes per-thread work.  Degenerate
        inputs (zero total work) fall back to :meth:`blocks`.

        ``weights`` models a heterogeneous cluster: one positive relative
        throughput per rank (e.g. ``[2, 1, 1]`` = rank 0 is a node twice as
        fast as the others), and each rank's band carries a work share
        proportional to its weight, so per-rank *time* equalizes instead of
        per-rank work.  ``None`` — and any uniform vector, exactly — keeps
        the equal-share bounds bit-for-bit: the band boundaries are
        ``total·cumsum(w)/sum(w)``, which reduces to ``total·r/ranks`` when
        all weights are equal.
        """
        if ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {ranks}")
        cl = np.asarray(cl, dtype=np.float64)
        total = float(cl.sum())
        if cl.size == 0 or total <= 0.0:
            return cls.blocks(cl.size, ranks)
        if weights is None:
            shares = np.arange(1, ranks) / ranks
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (ranks,):
                raise ValueError(
                    f"weights must have one entry per rank "
                    f"({ranks}), got shape {weights.shape}")
            if not (np.isfinite(weights).all() and (weights > 0).all()):
                raise ValueError("weights must be positive and finite")
            if np.all(weights == weights[0]):
                # Any uniform vector takes the unweighted path so the
                # bit-for-bit guarantee survives cumsum rounding.
                shares = np.arange(1, ranks) / ranks
            else:
                shares = np.cumsum(weights)[:-1] / weights.sum()
        cum = np.cumsum(cl)
        mid = cum - cl / 2.0  # work midpoint of each chunk
        bounds = total * shares
        owner = np.searchsorted(bounds, mid, side="right").astype(np.int64)
        return cls(owner, ranks)

    # ------------------------------------------------------------------
    @property
    def nchunks(self) -> int:
        """Number of chunks covered by this partition."""
        return int(self.owner.size)

    def chunks_of(self, rank: int) -> np.ndarray:
        """Chunk indices owned by ``rank`` (ascending; possibly empty)."""
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.ranks})")
        return np.flatnonzero(self.owner == rank)

    def owner_of(self, chunk: int) -> int:
        """Rank owning ``chunk``."""
        if not 0 <= chunk < self.nchunks:
            raise ValueError(f"chunk {chunk} out of range [0, {self.nchunks})")
        return int(self.owner[chunk])

    def work_per_rank(self, cl: np.ndarray) -> np.ndarray:
        """Σ cl[c] per rank — the static work distribution this partition induces."""
        cl = np.asarray(cl)
        if cl.size != self.nchunks:
            raise ValueError(
                f"cl has {cl.size} chunks, partition covers {self.nchunks}")
        return np.bincount(self.owner, weights=cl,
                           minlength=self.ranks).astype(np.int64)

    def counts_per_rank(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Number of chunks owned by each rank (optionally only those in
        the bool ``mask`` — e.g. the chunks SlimWork left active)."""
        owner = self.owner if mask is None else self.owner[mask]
        return np.bincount(owner, minlength=self.ranks)

    def sum_by_rank(self, weights: np.ndarray,
                    mask: np.ndarray | None = None) -> np.ndarray:
        """int64[P]: Σ ``weights[c]`` over each rank's (masked) chunks.

        The per-iteration accounting primitive of the 1D model: with
        ``weights=cl`` and the active-chunk mask it yields each rank's
        processed column layers.
        """
        weights = np.asarray(weights)
        if weights.size != self.nchunks:
            raise ValueError(
                f"weights has {weights.size} chunks, partition covers "
                f"{self.nchunks}")
        owner = self.owner if mask is None else self.owner[mask]
        w = weights if mask is None else weights[mask]
        return np.bincount(owner, weights=w,
                           minlength=self.ranks).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition1D(ranks={self.ranks}, nchunks={self.nchunks})"
