"""Executed (not just modeled) parallel backend for the SpMM sweep.

Shards the SlimSell chunks by :class:`~repro.dist.partition.Partition1D`,
runs the union layer sweep across real workers, and exchanges real union
frontiers exactly where :func:`repro.dist.bfs1d.bfs_dist_1d` charges its
collectives — turning the §VI simulation into an executed traversal whose
measured layer times calibrate the model's machine/network descriptors
(:func:`repro.dist.calibrate.calibrate`).
"""

from repro.exec.engine import ExecLayerStats, ExecMultiSourceBFS, bfs_exec
from repro.exec.pool import (BACKENDS, ProcessBackend, SerialBackend,
                             ThreadBackend, make_backend)

__all__ = [
    "BACKENDS",
    "ExecLayerStats",
    "ExecMultiSourceBFS",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "bfs_exec",
    "make_backend",
]
