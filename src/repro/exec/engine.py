"""Executed parallel MS-BFS: the SpMM sweep sharded across real workers.

:class:`ExecMultiSourceBFS` subclasses the batched engine and overrides
exactly one step — the union layer sweep — with a sharded execution over a
:class:`~repro.dist.partition.Partition1D`:

1. the iteration's active chunks are split by owner
   (``act[owner[act] == r]``),
2. each worker sweeps its band against the global previous frontier
   (:mod:`repro.exec.pool` backends), and
3. the leader reassembles the union result — the executed counterpart of
   the allgather :func:`repro.dist.bfs1d.bfs_dist_1d` charges at the same
   point of the iteration.

Everything else — SlimWork masks, semiring postprocess, per-source
termination and stats — runs unchanged in the base class, which is why
every worker count and backend is bit-identical to
:func:`repro.bfs.msbfs.bfs_msbfs` (each chunk's accumulator rows depend
only on the fixed ``f_prev``, so who sweeps which chunk cannot change any
value).  ``workers=1`` *is* the base engine with an extra band copy.

Each union iteration appends an :class:`ExecLayerStats` to
``layer_profile`` — measured per-worker compute seconds and leader-side
exchange seconds, the raw material :func:`repro.dist.calibrate.calibrate`
compares against the model's ``t_local``/``t_comm``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bfs.msbfs import MultiSourceBFS, build_rep, run_in_batches
from repro.bfs.result import BFSResult
from repro.dist.partition import Partition1D
from repro.formats.sell import SellCSigma
from repro.graphs.graph import Graph
from repro.semirings.base import SemiringBFS

from .pool import BACKENDS, idle_times, make_backend

__all__ = ["ExecLayerStats", "ExecMultiSourceBFS", "bfs_exec"]


@dataclass(frozen=True)
class ExecLayerStats:
    """Measured profile of one executed union iteration.

    Attributes
    ----------
    k:
        Union iteration number (1-based), aligned with the iteration the
        dist model profiles at the same position.
    width:
        Frontier columns still live this iteration.
    t_workers:
        Measured per-worker compute seconds (band copy-in + layer sweep;
        for the process backend also the band write into shared memory).
    t_exchange_s:
        Leader-side union assembly seconds (process backend: frontier
        broadcast + union gather) — the executed stand-in for the
        modeled allgather.
    chunks_per_worker:
        Active chunks each worker swept this iteration.
    exchanged_bytes:
        Bytes of union frontier gathered by the leader
        (``N · width · itemsize``).
    """

    k: int
    width: int
    t_workers: tuple[float, ...]
    t_exchange_s: float
    chunks_per_worker: tuple[int, ...]
    exchanged_bytes: int

    @property
    def t_local_s(self) -> float:
        """Critical-path compute: the slowest worker (the model's barrier)."""
        return max(self.t_workers, default=0.0)

    @property
    def t_compute_total_s(self) -> float:
        """Σ per-worker compute — the single-worker-equivalent cost."""
        return float(sum(self.t_workers))

    @property
    def t_idle_workers(self) -> tuple[float, ...]:
        """Per-worker seconds spent waiting at the layer barrier."""
        return idle_times(self.t_workers)

    @property
    def t_idle_total_s(self) -> float:
        """Σ barrier idle — compute lost to load imbalance this layer."""
        return float(sum(self.t_idle_workers))


class ExecMultiSourceBFS(MultiSourceBFS):
    """Batched BFS whose union sweep executes across sharded workers.

    Parameters (beyond :class:`~repro.bfs.msbfs.MultiSourceBFS`)
    ----------
    workers:
        Worker count; ``1`` reproduces the base engine exactly (one band
        covering every chunk).
    backend:
        ``"serial"`` (sequential shards, clean per-shard timing — the
        calibration backend), ``"threads"`` (persistent thread pool), or
        ``"process"`` (persistent forked pool over shared memory).
    partition:
        Chunk-to-worker assignment; defaults to
        ``Partition1D.balanced(rep.cl, workers)``.  More workers than
        chunks is legal (the surplus workers own empty bands).

    The backend is created lazily on first sweep and persists across
    :meth:`run` calls; call :meth:`close` (or use the engine as a context
    manager) to release it — mandatory for ``backend="process"``, which
    holds OS resources.
    """

    def __init__(
        self,
        rep: SellCSigma,
        semiring: SemiringBFS | str = "tropical",
        *,
        workers: int = 1,
        backend: str = "serial",
        partition: Partition1D | None = None,
        slimwork: bool = False,
        counting: bool = False,
        compute_parents: bool = True,
        max_iters: int | None = None,
    ):
        super().__init__(rep, semiring, slimwork=slimwork, counting=counting,
                         compute_parents=compute_parents, max_iters=max_iters)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in BACKENDS:
            raise ValueError(f"unknown exec backend {backend!r}; "
                             f"available: {list(BACKENDS)}")
        if partition is None:
            partition = Partition1D.balanced(rep.cl, workers)
        if partition.nchunks != rep.nc:
            raise ValueError(
                f"partition covers {partition.nchunks} chunks, "
                f"representation has {rep.nc}")
        if partition.ranks != workers:
            raise ValueError(
                f"partition has {partition.ranks} ranks, workers={workers}")
        self.workers = workers
        self.backend = backend
        self.partition = partition
        self._shards = [partition.chunks_of(r) for r in range(workers)]
        self._owner = partition.owner
        self._pool = None
        #: Measured per-union-iteration profiles, accumulated across runs
        #: (reset with :meth:`reset_profile`).
        self.layer_profile: list[ExecLayerStats] = []
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` to publish
        #: per-layer compute/exchange/idle figures into (``exec.*``).
        self.metrics = None

    # ------------------------------------------------------------------
    def _ensure_pool(self, f_prev: np.ndarray):
        """Create (or grow) the persistent backend for this frontier."""
        pool = self._pool
        if pool is not None and pool.name == "process" and (
                f_prev.size > pool.capacity_elems
                or f_prev.dtype != pool.dtype):
            pool.close()
            pool = self._pool = None
        if pool is None:
            pool = self._pool = make_backend(
                self.backend, self.semiring, self.rep, self._shards,
                capacity_elems=f_prev.size, dtype=f_prev.dtype)
        return pool

    def _layer_sweep(self, f_prev: np.ndarray, act: np.ndarray,
                     k: int) -> np.ndarray:
        pool = self._ensure_pool(f_prev)
        act_parts = [act[self._owner[act] == r] for r in range(self.workers)]
        tracer = self.tracer
        if tracer is not None:
            t0 = time.perf_counter()
        x_raw, t_workers, t_exchange = pool.run_layer(f_prev, act_parts)
        width = f_prev.shape[1] if f_prev.ndim == 2 else 1
        stats = ExecLayerStats(
            k=k, width=width, t_workers=tuple(t_workers),
            t_exchange_s=t_exchange,
            chunks_per_worker=tuple(int(p.size) for p in act_parts),
            exchanged_bytes=int(f_prev.nbytes))
        self.layer_profile.append(stats)
        if tracer is not None:
            self._trace_layer(stats, act_parts, t0)
        if self.metrics is not None:
            self._publish_layer(stats)
        return x_raw

    def _trace_layer(self, stats: ExecLayerStats, act_parts, t0: float):
        """Emit exec.layer/worker/exchange spans for one union sweep.

        Worker spans carry ``track="w{r}"`` so the Chrome export lays
        each rank on its own row.  The serial backend runs shards back to
        back, so its worker spans are laid out cumulatively; the
        concurrent backends' all start at the sweep's origin.
        """
        tracer = self.tracer
        t1 = time.perf_counter()
        parent = (self._layer_span if self._layer_span is not None
                  else self.trace_parent)
        lspan = tracer.record(
            "exec.layer", t0, t1, parent=parent, k=stats.k,
            width=stats.width, workers=self.workers,
            backend=self.backend)
        serial = self.backend == "serial"
        idle = stats.t_idle_workers
        off = t0
        for r, tw in enumerate(stats.t_workers):
            ws = off if serial else t0
            tracer.record(
                "exec.worker", ws, ws + tw, parent=lspan, track=f"w{r}",
                rank=r, chunks=int(act_parts[r].size), idle_s=idle[r])
            if serial:
                off += tw
        tracer.record("exec.exchange", max(t0, t1 - stats.t_exchange_s), t1,
                      parent=lspan, bytes=stats.exchanged_bytes)

    def _publish_layer(self, stats: ExecLayerStats) -> None:
        """Publish one union sweep's profile into ``self.metrics``."""
        m = self.metrics
        m.counter("exec.layers").inc()
        m.counter("exec.compute_s").inc(stats.t_compute_total_s)
        m.counter("exec.exchange_s").inc(stats.t_exchange_s)
        m.counter("exec.idle_s").inc(stats.t_idle_total_s)
        m.counter("exec.exchanged_bytes").inc(stats.exchanged_bytes)
        m.histogram("exec.layer.local_s").observe(stats.t_local_s)
        m.histogram("exec.layer.exchange_s").observe(stats.t_exchange_s)

    def _finalize(self, finals, roots, per_src, total) -> list[BFSResult]:
        method = f"exec-{self.backend}-w{self.workers}"
        if self.slimwork:
            method += "+slimwork"
        from repro.bfs.msbfs import finalize_batch

        return finalize_batch(self.rep, self.semiring, finals, roots, per_src,
                              total, method, self.compute_parents)

    # ------------------------------------------------------------------
    def reset_profile(self) -> None:
        """Drop accumulated :class:`ExecLayerStats` (e.g. between sweeps)."""
        self.layer_profile = []

    def close(self) -> None:
        """Release the persistent backend (workers, shared memory)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ExecMultiSourceBFS":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def bfs_exec(
    graph_or_rep: Graph | SellCSigma,
    roots,
    semiring: str | SemiringBFS = "tropical",
    *,
    workers: int = 1,
    backend: str = "serial",
    partition: Partition1D | None = None,
    C: int = 8,
    sigma: int | None = None,
    slim: bool = True,
    slimwork: bool = False,
    counting: bool = False,
    compute_parents: bool = True,
    batch: int | None = None,
) -> list[BFSResult]:
    """One-call convenience: executed-parallel batched BFS from ``roots``.

    Mirrors :func:`repro.bfs.msbfs.bfs_msbfs` and is bit-identical to it
    for every ``workers``/``backend`` combination; the backend is torn
    down before returning.
    """
    engine = ExecMultiSourceBFS(
        build_rep(graph_or_rep, C, sigma, slim), semiring,
        workers=workers, backend=backend, partition=partition,
        slimwork=slimwork, counting=counting,
        compute_parents=compute_parents)
    try:
        return run_in_batches(engine, roots, batch)
    finally:
        engine.close()
