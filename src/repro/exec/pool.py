"""Shard-execution backends for the executed parallel SpMM sweep.

A backend owns one worker per :class:`~repro.dist.partition.Partition1D`
rank and runs the layer sweep of each rank's chunk band concurrently,
mirroring the structure :func:`repro.dist.bfs1d.bfs_dist_1d` *models*:

* every worker reads the **global** frontier matrix ``f_prev`` (the state
  after the previous iteration's allgather),
* sweeps only its own chunk band into a **private** band accumulator
  (:func:`repro.bfs.msbfs.sweep_band_layers` with band-local output
  positions), and
* the leader reassembles the union result — the executed stand-in for the
  allgather the dist model charges, and the copy whose time
  :func:`repro.dist.calibrate.calibrate` compares against
  :func:`~repro.dist.network.model_allgather`.

Three implementations share that protocol:

``serial``
    Runs the shards back to back in the calling thread.  This is the
    *measurement* backend: each shard's compute time is attributed cleanly
    (no time-slicing contamination), so ``max`` over the per-worker times
    is exactly the critical-path ``t_local`` of the 1D model — a real
    measurement that is meaningful even on a single-core host, where
    concurrent backends cannot beat wall clock.
``threads``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`; numpy
    releases the GIL for the large gather/compare kernels, so bands
    overlap on multicore hosts.  Per-worker spans include scheduler
    interleaving — use ``serial`` for calibration-grade attribution.
``process``
    A persistent pool of forked workers around two
    :class:`~multiprocessing.shared_memory.SharedMemory` blocks: the
    leader broadcasts ``f_prev`` into one, workers sweep their bands and
    write the disjoint band rows into the other, and the leader gathers
    the union copy out.  Matrix operands are inherited copy-on-write at
    fork time, so nothing but the frontier crosses a process boundary.

``run_layer`` returns ``(x_raw, t_workers, t_exchange_s)``: the union
accumulator (bit-identical to one global sweep), per-worker compute
seconds, and the leader-side exchange seconds.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.bfs.msbfs import sweep_band_layers
from repro.formats.sell import SellCSigma
from repro.semirings.base import SemiringBFS

__all__ = ["BACKENDS", "SerialBackend", "ThreadBackend", "ProcessBackend",
           "idle_times", "make_backend"]

#: Selectable backend names, in documentation order.
BACKENDS = ("serial", "threads", "process")


def idle_times(t_workers) -> tuple[float, ...]:
    """Per-worker barrier idle seconds: slowest worker's time minus own.

    The layer exchange is a barrier — every worker waits for the slowest
    one — so a worker's idle share is exactly that gap.  The profiling
    spans and :class:`repro.exec.engine.ExecLayerStats` both report it.
    """
    t_workers = tuple(t_workers)
    if not t_workers:
        return ()
    slowest = max(t_workers)
    return tuple(slowest - t for t in t_workers)


def _band_rows(chunks: np.ndarray, C: int) -> np.ndarray:
    """Padded row ids (length ``len(chunks)·C``) of a chunk band."""
    lane = np.arange(C, dtype=np.int64)
    return (chunks[:, None] * C + lane).ravel()


def _sweep_shard(sr: SemiringBFS, C: int, col: np.ndarray, val: np.ndarray,
                 cs: np.ndarray, cl: np.ndarray, chunks: np.ndarray,
                 rows: np.ndarray, f_prev: np.ndarray,
                 act_r: np.ndarray) -> np.ndarray:
    """One worker's iteration: copy its band out of ``f_prev``, sweep it.

    Returns the flat band accumulator (``len(rows)`` rows, same trailing
    shape as ``f_prev``).  The fancy-index read is a fresh copy, so the
    sweep never writes through into the shared frontier.
    """
    x_band = f_prev[rows]  # fancy index -> private copy
    nb = chunks.size
    shape = (nb, C) if f_prev.ndim == 1 else (nb, C, f_prev.shape[1])
    act_out = np.searchsorted(chunks, act_r)
    sweep_band_layers(sr, C, col, val, cs, cl, f_prev, x_band.reshape(shape),
                      act_r, act_out)
    return x_band


class _ShardBackend:
    """Shared operand plumbing of the three backends."""

    name = "?"

    def __init__(self, sr: SemiringBFS, rep: SellCSigma,
                 shards: list[np.ndarray]):
        self.sr = sr
        self.C = rep.C
        self.col = rep.col64
        self.val = rep.val_for(sr)
        self.cs = rep.cs
        self.cl = rep.cl
        self.shards = [np.asarray(s, dtype=np.int64) for s in shards]
        self.rows = [_band_rows(s, rep.C) for s in self.shards]

    @property
    def workers(self) -> int:
        return len(self.shards)

    def run_layer(self, f_prev: np.ndarray, act_parts: list[np.ndarray]):
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _gather(self, f_prev: np.ndarray, bands: list[np.ndarray]):
        """Assemble the union accumulator from per-worker bands, timed."""
        t0 = time.perf_counter()
        x_raw = np.empty_like(f_prev)
        for rows, band in zip(self.rows, bands):
            x_raw[rows] = band
        return x_raw, time.perf_counter() - t0


class SerialBackend(_ShardBackend):
    """Shards back to back in the caller — the clean-attribution backend."""

    name = "serial"

    def run_layer(self, f_prev, act_parts):
        bands, t_workers = [], []
        for r in range(self.workers):
            t0 = time.perf_counter()
            bands.append(_sweep_shard(
                self.sr, self.C, self.col, self.val, self.cs, self.cl,
                self.shards[r], self.rows[r], f_prev, act_parts[r]))
            t_workers.append(time.perf_counter() - t0)
        x_raw, t_exchange = self._gather(f_prev, bands)
        return x_raw, t_workers, t_exchange


class ThreadBackend(_ShardBackend):
    """Persistent thread pool over released-GIL numpy band sweeps."""

    name = "threads"

    def __init__(self, sr, rep, shards):
        super().__init__(sr, rep, shards)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.workers),
            thread_name_prefix="repro-exec")

    def _timed_shard(self, r: int, f_prev, act_r):
        t0 = time.perf_counter()
        band = _sweep_shard(self.sr, self.C, self.col, self.val, self.cs,
                            self.cl, self.shards[r], self.rows[r], f_prev,
                            act_r)
        return band, time.perf_counter() - t0

    def run_layer(self, f_prev, act_parts):
        futures = [self._pool.submit(self._timed_shard, r, f_prev,
                                     act_parts[r])
                   for r in range(self.workers)]
        done = [f.result() for f in futures]
        bands = [band for band, _ in done]
        t_workers = [t for _, t in done]
        x_raw, t_exchange = self._gather(f_prev, bands)
        return x_raw, t_workers, t_exchange

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def _worker_main(conn, shm_f, shm_x, sr, C, col, val, cs, cl, chunks, rows):
    """Forked worker loop: sweep one band per message until ``None``.

    Everything heavy (matrix operands, the chunk band) arrived through the
    fork; only ``(shape, dtype, act_r)`` messages and timing floats cross
    the pipe.  The worker reads the global frontier out of ``shm_f`` and
    writes its disjoint band rows into ``shm_x``.
    """
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            shape, dtype_str, act_r = msg
            t0 = time.perf_counter()
            dt = np.dtype(dtype_str)
            f_prev = np.ndarray(shape, dtype=dt, buffer=shm_f.buf)
            band = _sweep_shard(sr, C, col, val, cs, cl, chunks, rows,
                                f_prev, act_r)
            x_out = np.ndarray(shape, dtype=dt, buffer=shm_x.buf)
            x_out[rows] = band
            conn.send(time.perf_counter() - t0)
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class ProcessBackend(_ShardBackend):
    """Persistent forked-worker pool over two shared-memory frontiers.

    ``capacity_elems`` sizes the shared blocks (elements of ``dtype``);
    the owning engine recreates the backend if a later frontier outgrows
    it.  Requires the ``fork`` start method (operands are inherited
    copy-on-write, never pickled).
    """

    name = "process"

    def __init__(self, sr, rep, shards, *, capacity_elems: int,
                 dtype: np.dtype):
        super().__init__(sr, rep, shards)
        self.dtype = np.dtype(dtype)
        self.capacity_elems = int(capacity_elems)
        nbytes = max(1, self.capacity_elems * self.dtype.itemsize)
        try:
            ctx = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            raise ValueError(
                "backend='process' needs the fork start method; "
                "use backend='threads' on this platform") from None
        self._shm_f = shared_memory.SharedMemory(create=True, size=nbytes)
        self._shm_x = shared_memory.SharedMemory(create=True, size=nbytes)
        self._conns = []
        self._procs = []
        try:
            for r in range(self.workers):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child, self._shm_f, self._shm_x, self.sr, self.C,
                          self.col, self.val, self.cs, self.cl,
                          self.shards[r], self.rows[r]),
                    daemon=True)
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    def run_layer(self, f_prev, act_parts):
        if f_prev.size > self.capacity_elems or f_prev.dtype != self.dtype:
            raise ValueError(
                f"frontier ({f_prev.size} x {f_prev.dtype}) exceeds the "
                f"pool capacity ({self.capacity_elems} x {self.dtype}); "
                "the engine must recreate the backend")
        shape = f_prev.shape
        t0 = time.perf_counter()
        fview = np.ndarray(shape, dtype=f_prev.dtype, buffer=self._shm_f.buf)
        fview[...] = f_prev  # broadcast: leader -> every worker's gather
        t_broadcast = time.perf_counter() - t0
        msg_dtype = f_prev.dtype.str
        for r, conn in enumerate(self._conns):
            conn.send((shape, msg_dtype, act_parts[r]))
        t_workers = [conn.recv() for conn in self._conns]
        t0 = time.perf_counter()
        xview = np.ndarray(shape, dtype=f_prev.dtype, buffer=self._shm_x.buf)
        x_raw = xview.copy()  # gather: every worker's band -> leader
        t_exchange = t_broadcast + (time.perf_counter() - t0)
        return x_raw, t_workers, t_exchange

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=10)
        for conn in self._conns:
            conn.close()
        self._conns, self._procs = [], []
        for shm in (self._shm_f, self._shm_x):
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass


def make_backend(name: str, sr: SemiringBFS, rep: SellCSigma,
                 shards: list[np.ndarray], *, capacity_elems: int = 0,
                 dtype=np.float64) -> _ShardBackend:
    """Instantiate a shard backend by name (``BACKENDS``)."""
    if name == "serial":
        return SerialBackend(sr, rep, shards)
    if name == "threads":
        return ThreadBackend(sr, rep, shards)
    if name == "process":
        return ProcessBackend(sr, rep, shards, capacity_elems=capacity_elems,
                              dtype=dtype)
    raise ValueError(f"unknown exec backend {name!r}; "
                     f"available: {list(BACKENDS)}")
