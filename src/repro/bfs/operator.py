"""Generic SpMV operator over chunked representations.

The paper's closing argument (§VI) is that SlimSell generalizes beyond BFS:
any algorithm built on y = A ⊗ x products — betweenness centrality,
PageRank, label propagation — can run on the slim layout.  ``SlimSpMV``
packages the layer-engine sweep as a reusable matrix-free operator so the
application layer (:mod:`repro.apps`) composes with any semiring.
"""

from __future__ import annotations

import numpy as np

from repro.formats.sell import SellCSigma
from repro.semirings.base import SemiringBFS, get_semiring


class SlimSpMV:
    """Matrix-free ``y = A ⊗ x`` over a Sell-C-σ/SlimSell layout.

    Operates in *original* vertex-id space: inputs are permuted in, outputs
    permuted back, so callers never see the σ-sorted order.

    Parameters
    ----------
    rep:
        A built :class:`SellCSigma` or :class:`SlimSell`.
    semiring:
        Semiring instance or name; ⊗ combines matrix entries with gathered
        x values, ⊕ reduces along each row.
    """

    def __init__(self, rep: SellCSigma, semiring: SemiringBFS | str = "real"):
        self.rep = rep
        self.semiring = (get_semiring(semiring)
                         if isinstance(semiring, str) else semiring)
        self._col = rep.col64  # memoized on the representation
        self._val = rep.val_for(self.semiring)
        self._lane_off = np.arange(rep.C, dtype=np.int64)
        # Precompute the shrinking-prefix order of chunks by length.
        order = np.argsort(-rep.cl, kind="stable")
        self._sorted_chunks = order
        self._sorted_cl = rep.cl[order]

    @property
    def n(self) -> int:
        """Number of (real) vertices/rows."""
        return self.rep.n

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """One product ``A ⊗ x`` (length-n in, length-n out)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.rep.n,):
            raise ValueError(
                f"x must have shape ({self.rep.n},), got {x.shape}")
        return self.matmat(x[:, None])[:, 0]

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Batched product ``Y = A ⊗ X`` over an ``(n, B)`` column block.

        The SpMM core shared with :meth:`__call__` (a B=1 column block):
        one fancy-index gather and one semiring ``mul``/``add`` per column
        layer move all ``B`` columns at once, so the ``col``/``val``
        streams are read once per layer regardless of B.  Column ``b`` of
        the result is bit-identical to ``self(X[:, b])``.
        """
        rep, sr = self.rep, self.semiring
        n, N, C = rep.n, rep.N, rep.C
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != n:
            raise ValueError(f"X must have shape ({n}, B), got {X.shape}")
        B = X.shape[1]
        Xp = np.full((N, B), sr.zero)
        Xp[rep.perm] = X
        Y = np.full((N, B), sr.zero)
        y3 = Y.reshape(rep.nc, C, B)
        srt, scl = self._sorted_chunks, self._sorted_cl
        max_l = int(scl[0]) if scl.size else 0
        for j in range(max_l):
            live_count = int(np.searchsorted(-scl, -j, side="left"))
            live = srt[:live_count]
            if live.size == 0:
                break
            idx = (rep.cs[live] + j * C)[:, None] + self._lane_off
            contrib = sr.mul(self._val[idx][..., None], Xp[self._col[idx]])
            y3[live] = sr.add(y3[live], contrib)
        return Y[rep.perm]

    def power_iterate(self, x0: np.ndarray, steps: int) -> np.ndarray:
        """Repeated application: ``A^steps ⊗ x0`` (for diffusion-style uses)."""
        x = np.asarray(x0, dtype=np.float64)
        for _ in range(steps):
            x = self(x)
        return x
