"""Generic SpMV operator over chunked representations.

The paper's closing argument (§VI) is that SlimSell generalizes beyond BFS:
any algorithm built on y = A ⊗ x products — betweenness centrality,
PageRank, label propagation — can run on the slim layout.  ``SlimSpMV``
packages the layer-engine sweep as a reusable matrix-free operator so the
application layer (:mod:`repro.apps`) composes with any semiring.
"""

from __future__ import annotations

import numpy as np

from repro.formats.sell import SellCSigma
from repro.semirings.base import SemiringBFS, get_semiring


class SlimSpMV:
    """Matrix-free ``y = A ⊗ x`` over a Sell-C-σ/SlimSell layout.

    Operates in *original* vertex-id space: inputs are permuted in, outputs
    permuted back, so callers never see the σ-sorted order.

    Parameters
    ----------
    rep:
        A built :class:`SellCSigma` or :class:`SlimSell`.
    semiring:
        Semiring instance or name; ⊗ combines matrix entries with gathered
        x values, ⊕ reduces along each row.
    """

    def __init__(self, rep: SellCSigma, semiring: SemiringBFS | str = "real"):
        self.rep = rep
        self.semiring = (get_semiring(semiring)
                         if isinstance(semiring, str) else semiring)
        self._col = rep.col.astype(np.int64)
        self._val = rep.val_for(self.semiring)
        self._lane_off = np.arange(rep.C, dtype=np.int64)
        # Precompute the shrinking-prefix order of chunks by length.
        order = np.argsort(-rep.cl, kind="stable")
        self._sorted_chunks = order
        self._sorted_cl = rep.cl[order]

    @property
    def n(self) -> int:
        """Number of (real) vertices/rows."""
        return self.rep.n

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """One product ``A ⊗ x`` (length-n in, length-n out)."""
        rep, sr = self.rep, self.semiring
        n, N, C = rep.n, rep.N, rep.C
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise ValueError(f"x must have shape ({n},), got {x.shape}")
        # Into permuted space, padded with the ⊕ identity for virtual rows.
        xp = np.full(N, sr.zero)
        xp[rep.perm] = x
        y = np.full(N, sr.zero)
        y2d = y.reshape(rep.nc, C)
        srt, scl = self._sorted_chunks, self._sorted_cl
        max_l = int(scl[0]) if scl.size else 0
        for j in range(max_l):
            live_count = int(np.searchsorted(-scl, -j, side="left"))
            live = srt[:live_count]
            if live.size == 0:
                break
            idx = (rep.cs[live] + j * C)[:, None] + self._lane_off
            contrib = sr.mul(self._val[idx], xp[self._col[idx]])
            y2d[live] = sr.add(y2d[live], contrib)
        return y[rep.perm]

    def power_iterate(self, x0: np.ndarray, steps: int) -> np.ndarray:
        """Repeated application: ``A^steps ⊗ x0`` (for diffusion-style uses)."""
        x = np.asarray(x0, dtype=np.float64)
        for _ in range(steps):
            x = self(x)
        return x
