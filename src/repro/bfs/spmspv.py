"""BFS via sparse-matrix × *sparse*-vector products (SpMSpV).

The work-optimal algebraic baseline of Table II (rows [39]): instead of a
dense frontier vector, only the frontier's nonzeros drive the product, so
one iteration touches exactly the adjacency of the frontier — O(n + m)
total like traditional BFS, at the price of fine-grained irregular accesses
(the very thing the paper's SpMV formulation avoids in exchange for more
work).  Having it in-tree lets benchmarks place BFS-SpMV between the two
work-optimal extremes.

Three merge strategies mirror Table II's SpMSpV rows:

* ``merge="nosort"``  — bucket/flag-based duplicate elimination, O(n + m).
* ``merge="sort"``    — sort the gathered column indices, O(n + m log m).
* ``merge="radix"``   — numpy's stable integer sort on fixed-width keys,
  O(n + x·m) with x the key width.

All three produce identical frontiers; they differ only in counted work.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bfs.result import BFSResult, IterationStats
from repro.graphs.graph import Graph
from repro.semirings.base import SemiringBFS, get_semiring

__all__ = ["bfs_spmspv", "expand_adjacency"]

_MERGES = ("nosort", "sort", "radix")


def expand_adjacency(graph: Graph, vertices: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated neighbor lists of ``vertices`` (with multiplicity).

    Returns ``(nbrs, seg)``: the flattened neighbor ids (``int64``) and,
    aligned with them, the position in ``vertices`` each neighbor came from
    — the vectorized form of ``[(w, i) for i, v in enumerate(vertices)
    for w in adj[v]]``.  This is the shared "push" primitive: SpMSpV
    products, the hybrid engines' sparse expansion, and the bottom-up
    parent hunt all start from it.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    deg = graph.indptr[vertices + 1] - graph.indptr[vertices]
    total = int(deg.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    starts = np.repeat(graph.indptr[vertices], deg)
    within = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(deg) - deg, deg)
    nbrs = graph.indices[starts + within].astype(np.int64)
    seg = np.repeat(np.arange(vertices.size, dtype=np.int64), deg)
    return nbrs, seg


def _gather_products(graph: Graph, frontier: np.ndarray,
                     fvals: np.ndarray, semiring: SemiringBFS
                     ) -> tuple[np.ndarray, np.ndarray]:
    """All (column, value) contributions of one SpMSpV product.

    For BFS the matrix entries are ``edge_value``; each frontier vertex v
    contributes ``edge_value ⊗ f[v]`` to every neighbor.
    """
    cols, seg = expand_adjacency(graph, frontier)
    if cols.size == 0:
        return cols, np.empty(0)
    vals = semiring.mul(np.full(cols.size, semiring.edge_value), fvals[seg])
    return cols, np.asarray(vals, dtype=np.float64)


def _merge_nosort(cols, vals, n, semiring):
    """Flag-array merge: ⊕-accumulate per column without sorting."""
    acc = np.full(n, semiring.zero)
    # ufunc.at performs unbuffered ⊕ accumulation (the "bucket" merge).
    semiring.add.at(acc, cols, vals)
    touched = np.zeros(n, dtype=bool)
    touched[cols] = True
    idx = np.flatnonzero(touched)
    return idx, acc[idx]


def _merge_sort(cols, vals, n, semiring):
    """Sort-based merge: sort by column, segment-⊕ duplicate runs."""
    order = np.argsort(cols, kind="mergesort")
    cols, vals = cols[order], vals[order]
    boundary = np.concatenate([[True], cols[1:] != cols[:-1]])
    starts = np.flatnonzero(boundary)
    out_cols = cols[starts]
    out_vals = semiring.add.reduceat(vals, starts)
    return out_cols, out_vals


def _merge_radix(cols, vals, n, semiring):
    """Radix-style merge: stable integer sort then segment-⊕."""
    order = np.argsort(cols, kind="stable")  # LSD radix in numpy for ints
    cols, vals = cols[order], vals[order]
    boundary = np.concatenate([[True], cols[1:] != cols[:-1]])
    starts = np.flatnonzero(boundary)
    return cols[starts], semiring.add.reduceat(vals, starts)


def bfs_spmspv(
    graph: Graph,
    root: int,
    semiring: str | SemiringBFS = "tropical",
    merge: str = "nosort",
    max_iters: int | None = None,
) -> BFSResult:
    """Work-optimal algebraic BFS with a sparse frontier vector.

    Parameters
    ----------
    graph, root:
        Traversal input (original vertex ids; no representation needed —
        SpMSpV consumes CSR directly).
    semiring:
        Any of the four BFS semirings; the product/merge honor its ⊕/⊗.
    merge:
        Duplicate-combining strategy: ``nosort`` | ``sort`` | ``radix``
        (Table II's three SpMSpV rows).
    """
    if merge not in _MERGES:
        raise ValueError(f"merge must be one of {_MERGES}, got {merge!r}")
    sr = get_semiring(semiring) if isinstance(semiring, str) else semiring
    n = graph.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    merge_fn = {"nosort": _merge_nosort, "sort": _merge_sort,
                "radix": _merge_radix}[merge]

    dist = np.full(n, np.inf)
    dist[root] = 0.0
    frontier = np.array([root], dtype=np.int64)
    fvals = np.array([1.0 if sr.name != "tropical" else 0.0])
    if sr.name == "sel-max":
        fvals = np.array([float(root + 1)])
    iters: list[IterationStats] = []
    cap = max_iters if max_iters is not None else n + 1
    t0 = time.perf_counter()
    k = 0
    while frontier.size and k < cap:
        k += 1
        t_it = time.perf_counter()
        cols, vals = _gather_products(graph, frontier, fvals, sr)
        edges = int(cols.size)
        if edges:
            cols, vals = merge_fn(cols, vals, n, sr)
            unvisited = ~np.isfinite(dist[cols])
            newly = cols[unvisited]
            dist[newly] = k
            frontier = newly
            if sr.name == "tropical":
                fvals = dist[newly]
            elif sr.name == "sel-max":
                fvals = newly.astype(np.float64) + 1.0
            else:
                fvals = np.minimum(vals[unvisited], 1e100)
        else:
            frontier = np.empty(0, dtype=np.int64)
        iters.append(IterationStats(
            k=k, newly=int(frontier.size),
            time_s=time.perf_counter() - t_it, edges_examined=edges,
            direction="spmspv"))
    parent = None
    from repro.bfs.dp import dp_transform

    parent = dp_transform(graph, dist)
    return BFSResult(
        dist=dist, parent=parent, root=root, method=f"spmspv-{merge}",
        semiring=sr.name, representation="csr", iterations=iters,
        total_time_s=time.perf_counter() - t0)
