"""SlimChunk: vertical chunk splitting for load balance (§III-D).

With a large sorting scope (σ ≈ √n or more), the first chunks hold the
highest-degree rows and cost far more than the rest, starving all but a few
compute units.  SlimChunk splits each chunk *vertically* into work units of
at most ``split`` column-layers; partial results combine through the
semiring's ⊕ (associative, so unit order is free), and the scheduler can
spread a heavy chunk across many units.

The paper enables SlimChunk only on GPUs ("the only architecture that
entailed load imbalance"); here it parameterizes both the engines' work
decomposition and the scheduling simulator that models Fig 6d/6e.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WorkUnit:
    """A slice of one chunk: column layers ``[j0, j1)`` of chunk ``chunk``."""

    chunk: int
    j0: int
    j1: int

    @property
    def layers(self) -> int:
        """Number of column layers this unit covers."""
        return self.j1 - self.j0


def make_work_units(cl: np.ndarray, split: int | None,
                    active: np.ndarray | None = None) -> list[WorkUnit]:
    """Decompose chunks into work units.

    Parameters
    ----------
    cl:
        Chunk lengths (column layers per chunk).
    split:
        Maximum layers per unit; ``None`` disables SlimChunk (one unit per
        non-empty chunk).
    active:
        Optional bool mask of chunks to include (SlimWork's survivors).

    Returns
    -------
    Work units in chunk order (unit order within a chunk is ascending j).
    """
    units: list[WorkUnit] = []
    ids = np.flatnonzero(active) if active is not None else np.arange(cl.size)
    for i in ids:
        length = int(cl[i])
        if length == 0:
            continue
        if split is None or split >= length:
            units.append(WorkUnit(int(i), 0, length))
        else:
            for j0 in range(0, length, split):
                units.append(WorkUnit(int(i), j0, min(j0 + split, length)))
    return units


def unit_costs(units: list[WorkUnit], C: int, per_unit_overhead: float = 1.0) -> np.ndarray:
    """Cost of each unit in vector instructions (≈ layers + fixed overhead).

    Every column layer of a chunk costs a handful of vector instructions
    independent of the semiring; the constant factor cancels in load-balance
    ratios, so layers are the natural unit.  ``per_unit_overhead`` models
    the carry-load/combine cost each extra unit pays.
    """
    return np.array([u.layers + per_unit_overhead for u in units], dtype=np.float64)
