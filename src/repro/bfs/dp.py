"""The DP transformation: distances → parents in O(m + n) work (§II-C).

``p = DP(d)``: for every reached vertex v (other than the root), pick a
neighbor w with d[w] = d[v] − 1; at least one exists by BFS construction.
The paper uses DP for the tropical/real/boolean semirings, whose BFS
produces only distances; sel-max avoids it (§III-A4), which is exactly the
trade-off Figs 5a/6a expose.

Fully vectorized: one gather of neighbor distances, one masked segment-max
over CSR rows.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def dp_transform(graph: Graph, dist: np.ndarray) -> np.ndarray:
    """Derive the parent vector from a distance vector.

    Parameters
    ----------
    graph:
        The traversed graph.
    dist:
        float64[n] hop distances (``inf`` = unreachable).

    Returns
    -------
    int64[n] parents; the root (d=0) maps to itself, unreachable vertices
    map to -1.  When several valid parents exist the highest id wins
    (deterministic, matches the sel-max convention).
    """
    n = graph.n
    dist = np.asarray(dist, dtype=np.float64)
    if dist.shape != (n,):
        raise ValueError(f"dist must have shape ({n},), got {dist.shape}")
    parent = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return parent
    roots = dist == 0
    parent[roots] = np.flatnonzero(roots)
    if graph.indices.size:
        src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
        nbr = graph.indices.astype(np.int64)
        ok = dist[nbr] == dist[src] - 1.0
        cand = np.where(ok, nbr, np.int64(-1))
        lengths = np.diff(graph.indptr)
        nonempty = lengths > 0
        best = np.full(n, -1, dtype=np.int64)
        if nonempty.any():
            starts = graph.indptr[:-1][nonempty]
            best[nonempty] = np.maximum.reduceat(cand, starts)
        settle = np.isfinite(dist) & ~roots
        parent[settle] = best[settle]
    return parent
