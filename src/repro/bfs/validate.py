"""Cross-validation of BFS outputs.

Every BFS variant in this repository — four semirings × two representations
× two engines × SlimWork on/off, plus the three traditional baselines —
must agree on distances and produce a *valid* BFS tree (parents need not be
identical across variants: any neighbor one hop closer is a legal parent).
These helpers implement the two checks; the test suite and the examples use
them, and benchmarks call them in their verification preambles.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.result import BFSResult
from repro.graphs.graph import Graph


def reference_distances(graph: Graph, root: int) -> np.ndarray:
    """Oracle distances via SciPy's BFS on the CSR matrix (``inf`` unreached)."""
    from scipy.sparse.csgraph import breadth_first_order

    n = graph.n
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    if graph.indices.size == 0:
        return dist
    order, pred = breadth_first_order(graph.to_scipy(), root, directed=False,
                                      return_predecessors=True)
    # Walk the predecessor tree in visit order: each vertex is one hop
    # beyond its predecessor (visit order guarantees pred is final).
    for v in order:
        p = pred[v]
        if p >= 0:
            dist[v] = dist[p] + 1.0
    return dist


def check_distances_equal(result: BFSResult, expected: np.ndarray,
                          label: str = "") -> None:
    """Assert a result's distances match the expected vector exactly."""
    got = result.dist
    if got.shape != expected.shape:
        raise AssertionError(
            f"{label or result.method}: distance shape {got.shape} != {expected.shape}")
    same = (got == expected) | (np.isinf(got) & np.isinf(expected))
    if not same.all():
        bad = np.flatnonzero(~same)[:10]
        raise AssertionError(
            f"{label or result.method}: {np.count_nonzero(~same)} distance "
            f"mismatches, first at vertices {bad.tolist()} "
            f"(got {got[bad].tolist()}, want {expected[bad].tolist()})")


def check_parents_valid(graph: Graph, result: BFSResult) -> None:
    """Assert the parent vector encodes a valid BFS tree for its distances.

    Checks: root parents itself; every other reached vertex has a parent
    that is a true neighbor exactly one hop closer; unreached vertices have
    parent -1.
    """
    if result.parent is None:
        raise AssertionError(f"{result.method}: no parent vector to validate")
    dist, parent, root = result.dist, result.parent, result.root
    if parent[root] != root:
        raise AssertionError(f"{result.method}: root parent is {parent[root]}, not itself")
    reached = np.isfinite(dist)
    others = reached.copy()
    others[root] = False
    idx = np.flatnonzero(others)
    p = parent[idx]
    if (p < 0).any():
        bad = idx[p < 0][:10]
        raise AssertionError(f"{result.method}: reached vertices {bad.tolist()} have no parent")
    if not (dist[p] == dist[idx] - 1.0).all():
        bad = idx[dist[p] != dist[idx] - 1.0][:10]
        raise AssertionError(
            f"{result.method}: parents of {bad.tolist()} are not one hop closer")
    # Edge existence (vectorized membership test on sorted neighbor lists).
    for v, w in zip(idx.tolist(), p.tolist()):
        if not graph.has_edge(v, w):
            raise AssertionError(f"{result.method}: parent edge ({v}, {w}) does not exist")
    unreached = np.flatnonzero(~reached)
    if (parent[unreached] != -1).any():
        raise AssertionError(f"{result.method}: unreached vertices have parents")
