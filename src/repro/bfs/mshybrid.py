"""Batched direction-optimizing multi-source BFS: the push/pull SpMM hybrid.

This engine closes the gap between two PR lineages the paper treats as
orthogonal and composable (Fig. 1: direction optimization [3] "can be
implemented on top of SlimSell"):

* :mod:`repro.bfs.msbfs` traverses B sources at once with one SpMM layer
  sweep per iteration — but always in the *pull* direction, paying a full
  SlimWork-masked sweep even when a column's frontier is a handful of
  vertices;
* :mod:`repro.bfs.hybrid` switches push/pull with Beamer's edge-mass
  heuristic — but one source at a time.

:class:`MultiSourceHybridBFS` carries an ``(N, B)`` frontier matrix in
which **each column independently** chooses its direction per layer:

* **push columns** expand their frontiers' adjacency sparsely in one
  vectorized segment pass — a batched SpMSpV: all push columns'
  (column, neighbor, value) contributions are keyed, sorted once, and
  ⊕-reduced with the semiring's ``add.reduceat`` (the algebraic
  generalization of :func:`repro.bfs.hybrid.bfs_hybrid`'s push step);
* **pull columns** share one SlimWork-masked SpMM sweep over the union of
  their active chunks, reusing :func:`repro.bfs.msbfs.spmm_layer_sweep`
  and the representation's memoized ``col64``/``val_for`` operands.

Both directions write into the same carried accumulator ``x_raw``, so one
shape-polymorphic ``postprocess`` per iteration updates the batched state
and per-column termination/compaction work exactly as in the all-pull
engine.  Distances, parents, and roots are **bit-identical** to every
existing engine (per semiring): push contributions are algebraically the
frontier-restricted SpMV product, and — the BFS invariant that makes the
restriction lossless — every visited neighbor of a still-unvisited vertex
lies on the current frontier, so ⊕ over the frontier equals ⊕ over all
visited neighbors.  (The real semiring's carried *path counts* may differ
in summation order between directions; only their nonzeroness reaches
distances/parents, which stay exact.)

Direction heuristic (per column, memoryless like ``bfs_hybrid``): pull
when the frontier's edge mass exceeds the unexplored mass over α —
``m_f > m_u / α``.  α → 0 therefore forces all-push, α → ∞ all-pull.

Iteration-stats contract: see :mod:`repro.bfs.hybrid` — ``direction`` is
``"push"`` or ``"pull"`` per column per iteration; ``work_lanes`` is the
work issued for that column (padded lanes on pull, adjacency entries on
push); chunk counts are pull-only, ``edges_examined`` push-only.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bfs.msbfs import (
    build_rep,
    compact_columns,
    finalize_batch,
    run_in_batches,
    snapshot_column,
    spmm_layer_sweep,
    validate_roots,
)
from repro.bfs.result import BFSResult, IterationStats
from repro.bfs.spmspv import expand_adjacency
from repro.formats.sell import SellCSigma
from repro.graphs.graph import Graph
from repro.semirings.base import BFSState, SemiringBFS, get_semiring

__all__ = ["MultiSourceHybridBFS", "bfs_mshybrid"]


class MultiSourceHybridBFS:
    """Batched push/pull BFS over a chunked representation.

    Parameters
    ----------
    rep:
        A built :class:`SellCSigma` or :class:`SlimSell`.
    semiring:
        A :class:`SemiringBFS` instance or name — all four BFS semirings
        are supported in both directions.
    alpha:
        Beamer threshold (per column): pull when frontier edge mass >
        unexplored mass / α.  Must be positive.
    slimwork:
        §III-C chunk skipping for the pull direction, tracked per column;
        the shared SpMM sweep processes the union of the pull columns'
        active sets.  On (the default) it reproduces ``bfs_hybrid``'s
        pull iterations exactly.
    compute_parents:
        Produce parent vectors (sel-max: native; others: DP transform).
    max_iters:
        Safety cap on iterations (defaults to N + 1).
    """

    def __init__(
        self,
        rep: SellCSigma,
        semiring: SemiringBFS | str = "tropical",
        *,
        alpha: float = 14.0,
        slimwork: bool = True,
        compute_parents: bool = True,
        max_iters: int | None = None,
    ):
        if not alpha > 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.rep = rep
        self.semiring = get_semiring(semiring) if isinstance(semiring, str) else semiring
        self.alpha = float(alpha)
        self.slimwork = bool(slimwork)
        self.compute_parents = bool(compute_parents)
        self.max_iters = max_iters
        #: Optional tracing hooks, same contract as
        #: :class:`~repro.bfs.msbfs.MultiSourceBFS`: an owner attaches a
        #: :class:`repro.obs.trace.Tracer` (and optionally a parent span)
        #: around a run to get one ``bfs.layer`` span per iteration, with
        #: per-direction column counts.
        self.tracer = None
        self.trace_parent = None
        self._layer_span = None

    # ------------------------------------------------------------------
    def run(self, roots) -> list[BFSResult]:
        """Traverse from every root in ``roots`` (original vertex ids).

        Duplicate roots, isolated-vertex roots, and batches wider than the
        graph are all fine — each column is an independent traversal.
        Returns one :class:`BFSResult` per root, in input order.
        """
        rep = self.rep
        roots = validate_roots(rep, roots)
        proots = rep.perm[roots]
        t0 = time.perf_counter()
        finals, per_src = self._sweep(proots)
        total = time.perf_counter() - t0
        method = "spmv-mshybrid"
        if self.slimwork:
            method += "+slimwork"
        return finalize_batch(rep, self.semiring, finals, roots, per_src,
                              total, method, self.compute_parents)

    # ------------------------------------------------------------------
    def _sweep(self, proots: np.ndarray):
        rep, sr = self.rep, self.semiring
        C, nc, N = rep.C, rep.nc, rep.N
        gp = rep.graph  # permuted CSR — push expands in the engine id space
        B = proots.size
        st = sr.init_batch_state(rep.n, N, proots)
        # Degree vector over the padded id space (virtual rows are edgeless)
        # drives both the heuristic's edge-mass terms and push stats.
        deg_N = np.zeros(N, dtype=np.int64)
        deg_N[: rep.n] = gp.degrees
        m2 = int(deg_N.sum())
        frontier = np.zeros((N, B), dtype=bool)
        frontier[proots, np.arange(B)] = True
        m_f = deg_N[proots]        # per-column frontier edge mass
        explored = m_f.copy()      # per-column explored edge mass
        cap = self.max_iters if self.max_iters is not None else N + 1
        per_src: list[list[IterationStats]] = [[] for _ in range(B)]
        col_of = np.arange(B)  # original source of each live state column
        finals: list[BFSState | None] = [None] * B
        k = 0
        while k < cap and col_of.size:
            k += 1
            st.depth = k
            t0 = time.perf_counter()
            width = col_of.size
            tracer = self.tracer
            if tracer is not None:
                self._layer_span = tracer.begin(
                    "bfs.layer", t=t0, parent=self.trace_parent,
                    k=k, width=width)
            # Beamer's rule, evaluated per column exactly as bfs_hybrid does
            # per traversal (memoryless, no hysteresis).  m_f was computed
            # when this frontier was settled (one dense product per layer).
            use_pull = m_f > (m2 - explored) / self.alpha
            pc = np.flatnonzero(use_pull)
            x_raw = st.f.copy()  # carry: untouched lanes keep their columns
            pull_proc = pull_layers = None
            if pc.size:
                pull_proc, pull_layers = self._pull_phase(st, x_raw, pc)
            qc = np.flatnonzero(~use_pull)
            if qc.size:
                self._push_phase(st, x_raw, frontier, qc)
            # The next frontier must be read off before postprocess consumes
            # x_raw (it replaces the carried vector in place); passing it
            # back in skips postprocess's own newly_mask evaluation.
            frontier = sr.newly_mask(st, x_raw)
            newly = sr.postprocess(st, x_raw, frontier)  # int64[width]
            m_next = deg_N @ frontier  # next frontier's edge mass
            explored = explored + m_next
            t1 = time.perf_counter()
            if tracer is not None:
                tracer.end(self._layer_span, t=t1, pull=int(pc.size),
                           push=int(qc.size), settled=int((newly == 0).sum()))
                self._layer_span = None
            share = (t1 - t0) / width
            for j, b in enumerate(col_of):
                if use_pull[j]:
                    jj = int(np.searchsorted(pc, j))
                    proc = int(pull_proc[jj])
                    layers = int(pull_layers[jj])
                    stat = IterationStats(
                        k=k, newly=int(newly[j]), time_s=share,
                        chunks_processed=proc, chunks_skipped=nc - proc,
                        work_lanes=layers * C, direction="pull")
                else:
                    edges = int(m_f[j])
                    stat = IterationStats(
                        k=k, newly=int(newly[j]), time_s=share,
                        work_lanes=edges, edges_examined=edges,
                        direction="push")
                per_src[b].append(stat)
            m_f = m_next
            dead = newly == 0
            if dead.any():
                for j in np.flatnonzero(dead):
                    finals[col_of[j]] = snapshot_column(st, int(j))
                keep = ~dead
                compact_columns(st, keep)
                frontier = frontier[:, keep]
                explored = explored[keep]
                m_f = m_f[keep]
                col_of = col_of[keep]
        for j, b in enumerate(col_of):  # max_iters cap: snapshot leftovers
            finals[b] = snapshot_column(st, int(j))
        return finals, per_src

    # ------------------------------------------------------------------
    def _pull_phase(self, st: BFSState, x_raw: np.ndarray, pc: np.ndarray):
        """One shared SpMM sweep over the pull columns ``pc``.

        Returns per-pull-column ``(chunks_processed, layers)`` footprints
        (the column's own SlimWork active set, matching ``bfs_hybrid``'s
        reported stats; the sweep itself processes the union).
        """
        rep, sr = self.rep, self.semiring
        nc, C = rep.nc, rep.C
        all_pull = pc.size == x_raw.shape[1]
        if self.slimwork:
            settled = sr.settled_lanes(st)                 # (N, width)
            if not all_pull:
                settled = settled[:, pc]                   # (N, P)
            src_active = ~settled.reshape(nc, C, pc.size).all(axis=1)
            act = np.flatnonzero(src_active.any(axis=1))   # union sweep
            proc = src_active.sum(axis=0)
            layers = rep.cl @ src_active
        else:
            act = np.arange(nc, dtype=np.int64)
            proc = np.full(pc.size, nc, dtype=np.int64)
            layers = np.full(pc.size, int(rep.cl.sum()), dtype=np.int64)
        if all_pull:
            # Dense middle layers: every live column pulls — sweep straight
            # into the carried accumulator, no column extraction needed.
            spmm_layer_sweep(rep, sr, st.f, x_raw, act)
        else:
            f_pull = np.ascontiguousarray(st.f[:, pc])
            x_pull = f_pull.copy()
            spmm_layer_sweep(rep, sr, f_pull, x_pull, act)
            x_raw[:, pc] = x_pull
        return proc, layers

    def _push_phase(self, st: BFSState, x_raw: np.ndarray,
                    frontier: np.ndarray, qc: np.ndarray) -> None:
        """Batched sparse push: one segment pass over all push columns.

        Every (frontier vertex, column) pair contributes
        ``edge_value ⊗ f[v, c]`` to each neighbor; contributions are keyed
        by ``column · N + neighbor``, sorted once, ⊕-reduced per key, and
        ⊕-combined into the carried accumulator — exactly the
        frontier-restricted SpMV product, so postprocess sees the same
        values a pull sweep would have produced for those columns.
        """
        rep, sr = self.rep, self.semiring
        N = rep.N
        sub = frontier[:, qc]
        v, c = np.nonzero(sub)  # frontier (vertex, local push column) pairs
        if v.size == 0:
            return
        nbrs, seg = expand_adjacency(rep.graph, v)
        if nbrs.size == 0:
            return
        fvals = st.f[v, qc[c]]
        contrib = sr.mul(sr.edge_value, fvals[seg])
        key = qc[c[seg]] * np.int64(N) + nbrs
        order = np.argsort(key, kind="stable")
        key = key[order]
        contrib = contrib[order]
        starts = np.flatnonzero(
            np.concatenate([[True], key[1:] != key[:-1]]))
        reduced = sr.add.reduceat(contrib, starts)
        rows = key[starts] % N
        cols = key[starts] // N
        x_raw[rows, cols] = sr.add(x_raw[rows, cols], reduced)


def bfs_mshybrid(
    graph_or_rep: Graph | SellCSigma,
    roots,
    semiring: str | SemiringBFS = "tropical",
    *,
    C: int = 8,
    sigma: int | None = None,
    slim: bool = True,
    alpha: float = 14.0,
    slimwork: bool = True,
    compute_parents: bool = True,
    batch: int | None = None,
) -> list[BFSResult]:
    """One-call convenience: direction-optimized batched BFS from ``roots``.

    Mirrors :func:`repro.bfs.msbfs.bfs_msbfs` — a :class:`SlimSell`
    (``slim=True``, default) or :class:`SellCSigma` is built when a raw
    :class:`Graph` is passed.  ``batch`` caps the number of frontier
    columns per sweep (``None`` = all roots at once; values larger than
    ``len(roots)`` simply run one sweep).
    """
    engine = MultiSourceHybridBFS(
        build_rep(graph_or_rep, C, sigma, slim), semiring, alpha=alpha,
        slimwork=slimwork, compute_parents=compute_parents)
    return run_in_batches(engine, roots, batch)
