"""Traditional (combinatorial) BFS — the paper's ``Trad-BFS`` baseline.

Two implementations:

* :func:`bfs_serial` — textbook deque BFS, pure Python.  The oracle for
  correctness tests on small graphs.
* :func:`bfs_top_down` — the work-efficient frontier-expansion BFS in the
  style of the optimized Graph500 OpenMP code [30] the paper compares
  against: per iteration, the adjacency lists of the frontier are gathered,
  unvisited endpoints become the next frontier and receive distances and
  parents.  Fully vectorized; per-iteration edge-examination counts feed
  the cost model's scalar-work term (traditional BFS does fine-grained,
  irregular accesses that do not vectorize — §I).
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.bfs.result import BFSResult, IterationStats
from repro.graphs.graph import Graph


def bfs_serial(graph: Graph, root: int) -> BFSResult:
    """Reference textbook BFS (deque); O(n + m) but Python-speed."""
    n = graph.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    dist[root] = 0.0
    parent[root] = root
    q = deque([root])
    t0 = time.perf_counter()
    while q:
        v = q.popleft()
        for w in graph.neighbors(v):
            if not np.isfinite(dist[w]):
                dist[w] = dist[v] + 1.0
                parent[w] = v
                q.append(int(w))
    return BFSResult(
        dist=dist, parent=parent, root=root, method="serial",
        total_time_s=time.perf_counter() - t0,
    )


def _expand_frontier(graph: Graph, frontier: np.ndarray) -> np.ndarray:
    """All neighbor ids of the frontier vertices, concatenated (with dups)."""
    deg = graph.indptr[frontier + 1] - graph.indptr[frontier]
    total = int(deg.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.repeat(graph.indptr[frontier], deg)
    within = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(deg) - deg, deg)
    return graph.indices[starts + within].astype(np.int64)


def bfs_top_down(graph: Graph, root: int, max_iters: int | None = None) -> BFSResult:
    """Work-efficient top-down BFS with per-iteration statistics.

    Each iteration examines exactly the adjacency entries of the current
    frontier (Σ over the run = 2m on a connected graph), mirroring the
    Graph500 baseline's work profile.
    """
    n = graph.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    dist[root] = 0.0
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    iters: list[IterationStats] = []
    cap = max_iters if max_iters is not None else n + 1
    t_total = time.perf_counter()
    k = 0
    while frontier.size and k < cap:
        k += 1
        t0 = time.perf_counter()
        nbrs = _expand_frontier(graph, frontier)
        src = np.repeat(frontier, graph.indptr[frontier + 1] - graph.indptr[frontier])
        unvisited = ~np.isfinite(dist[nbrs])
        cand, first = np.unique(nbrs[unvisited], return_index=True)
        dist[cand] = k
        parent[cand] = src[unvisited][first]
        frontier = cand
        iters.append(IterationStats(
            k=k, newly=int(cand.size),
            time_s=time.perf_counter() - t0,
            edges_examined=int(nbrs.size),
            direction="top-down",
        ))
    return BFSResult(
        dist=dist, parent=parent, root=root, method="traditional",
        representation="al", iterations=iters,
        total_time_s=time.perf_counter() - t_total,
    )
