"""BFS algorithms: algebraic (SpMV over semirings) and traditional baselines.

The central entry points are:

* :func:`~repro.bfs.spmv.bfs_spmv` / :class:`~repro.bfs.spmv.BFSSpMV` — the
  paper's contribution: BFS as repeated SpMV products over Sell-C-σ or
  SlimSell with a choice of semiring, optional SlimWork chunk skipping and
  SlimChunk splitting, on either the instruction-counted chunk engine or the
  fast layer engine.
* :func:`~repro.bfs.msbfs.bfs_msbfs` /
  :class:`~repro.bfs.msbfs.MultiSourceBFS` — the batched multi-source
  engine: one SpMM layer sweep traverses B sources at once, bit-identical
  to B sequential runs.
* :func:`~repro.bfs.mshybrid.bfs_mshybrid` /
  :class:`~repro.bfs.mshybrid.MultiSourceHybridBFS` — the batched
  direction-optimizing engine: each frontier column independently picks
  push (batched SpMSpV segment pass) or pull (shared SlimWork SpMM sweep)
  per layer via Beamer's heuristic.
* :func:`~repro.bfs.traditional.bfs_top_down` — the Graph500-style
  work-efficient queue BFS (the paper's ``Trad-BFS`` comparison target).
* :func:`~repro.bfs.direction_opt.bfs_direction_optimizing` — Beamer-style
  top-down/bottom-up switching (Fig 1's "direction opt." curve).
* :func:`~repro.bfs.dp.dp_transform` — the d → p parent derivation (§II-C).
"""

from repro.bfs.direction_opt import bfs_direction_optimizing
from repro.bfs.dp import dp_transform
from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.msbfs import MultiSourceBFS, bfs_msbfs
from repro.bfs.mshybrid import MultiSourceHybridBFS, bfs_mshybrid
from repro.bfs.operator import SlimSpMV
from repro.bfs.result import BFSResult, IterationStats
from repro.bfs.spmspv import bfs_spmspv
from repro.bfs.spmv import BFSSpMV, bfs_spmv
from repro.bfs.traditional import bfs_serial, bfs_top_down
from repro.bfs.validate import (
    check_distances_equal,
    check_parents_valid,
    reference_distances,
)

__all__ = [
    "BFSResult",
    "IterationStats",
    "BFSSpMV",
    "MultiSourceBFS",
    "MultiSourceHybridBFS",
    "bfs_spmv",
    "bfs_msbfs",
    "bfs_mshybrid",
    "bfs_spmspv",
    "bfs_hybrid",
    "SlimSpMV",
    "bfs_top_down",
    "bfs_serial",
    "bfs_direction_optimizing",
    "dp_transform",
    "reference_distances",
    "check_distances_equal",
    "check_parents_valid",
]
