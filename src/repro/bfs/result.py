"""Result containers shared by every BFS implementation.

The paper's evaluation is *per-iteration* (Figs 1, 5d, 6c/e, 8, 9, 10), so
results carry one :class:`IterationStats` per frontier expansion, including
instruction counters when produced by the counting chunk engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.vec.counters import OpCounters


@dataclass
class IterationStats:
    """Measurements of one BFS iteration (frontier expansion).

    Counter contract (tested in ``test_mshybrid.py``/``test_hybrid.py``):
    ``chunks_processed``/``chunks_skipped`` are nonzero only on chunked
    SpMV/pull iterations, ``edges_examined`` only on sparse/push/
    traditional iterations, and ``work_lanes`` always reports the total
    work issued — padded lanes on pull, adjacency entries on push — so
    per-iteration work series are comparable across directions.

    Attributes
    ----------
    k:
        Iteration number (1-based; iteration k settles distance-k vertices).
    newly:
        Vertices settled this iteration (frontier size after expansion).
    time_s:
        Wall-clock seconds of this iteration.
    chunks_processed / chunks_skipped:
        SpMV engines and pull iterations: chunk counts (skipped =
        SlimWork); always ``chunks_processed + chunks_skipped == nc``.
    work_lanes:
        Total work issued: Σ cl[i]·C over processed chunks (pull/SpMV,
        a multiple of C) or adjacency entries examined (push/sparse).
    edges_examined:
        Traditional engines and push iterations: adjacency entries touched.
    direction:
        ``"top-down"``/``"bottom-up"`` (combinatorial engines),
        ``"push"``/``"pull"`` (hybrid engines), ``"spmspv"``, or ``""``
        (pure SpMV engines).
    counters:
        Vector-ISA counters for this iteration (chunk engine with
        ``counting=True``), else ``None``.
    """

    k: int
    newly: int
    time_s: float = 0.0
    chunks_processed: int = 0
    chunks_skipped: int = 0
    work_lanes: int = 0
    edges_examined: int = 0
    direction: str = ""
    counters: OpCounters | None = None


@dataclass
class BFSResult:
    """Outcome of one BFS traversal.

    Attributes
    ----------
    dist:
        float64[n]; hop distance from the root, ``inf`` = unreachable.
    parent:
        int64[n] or None; parent in the BFS tree, root maps to itself,
        -1 = unreachable / not computed.
    root:
        The traversal root (original vertex ids).
    method / semiring / representation:
        Provenance labels (e.g. ``"spmv-layer"``, ``"tropical"``,
        ``"slimsell"``).
    iterations:
        Per-iteration statistics, in order.
    preprocess_time_s:
        Representation build time attributable to this run (0 when reused).
    total_time_s:
        Wall clock of the traversal (excluding preprocessing).
    """

    dist: np.ndarray
    parent: np.ndarray | None
    root: int
    method: str
    semiring: str = ""
    representation: str = ""
    iterations: list[IterationStats] = field(default_factory=list)
    preprocess_time_s: float = 0.0
    total_time_s: float = 0.0

    @property
    def n_iterations(self) -> int:
        """Number of frontier expansions executed."""
        return len(self.iterations)

    @property
    def reached(self) -> int:
        """Vertices reached (finite distance)."""
        return int(np.isfinite(self.dist).sum())

    @property
    def eccentricity(self) -> int:
        """Largest finite distance (the BFS depth)."""
        fin = self.dist[np.isfinite(self.dist)]
        return int(fin.max()) if fin.size else 0

    def iteration_times(self) -> np.ndarray:
        """Per-iteration wall-clock series (the y-axis of Figs 1/8/9/10)."""
        return np.array([it.time_s for it in self.iterations])

    def total_counters(self) -> OpCounters | None:
        """Sum of per-iteration counters, if the run counted instructions."""
        parts = [it.counters for it in self.iterations if it.counters is not None]
        if not parts:
            return None
        out = OpCounters()
        for p in parts:
            out += p
        return out
