"""Algebraic BFS as repeated SpMV products — the paper's core contribution.

:class:`BFSSpMV` runs BFS on a :class:`~repro.formats.sell.SellCSigma` or
:class:`~repro.formats.slimsell.SlimSell` representation with any of the
four semirings, with two interchangeable execution engines:

* ``engine="chunk"`` — a faithful transliteration of Listings 5/6/7 onto the
  simulated vector ISA.  One Python-level loop over chunks and column
  layers; every vector instruction and memory word is counted when
  ``counting=True``.  This engine is the ground truth for the cost model.
* ``engine="layer"`` — processes *all* active chunks of one column layer at
  a time in whole-array NumPy (ELLPACK-style).  Bit-identical results,
  orders of magnitude faster wall clock; per-iteration counters are
  synthesized analytically (validated against the chunk engine in tests).

SlimWork (§III-C) is supported by both engines; SlimChunk (§III-D) affects
the work-unit decomposition reported to the scheduling simulator.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bfs.dp import dp_transform
from repro.bfs.result import BFSResult, IterationStats
from repro.bfs.slimchunk import make_work_units
from repro.formats.sell import PAD, SellCSigma
from repro.graphs.graph import Graph
from repro.semirings.base import BFSState, SemiringBFS, get_semiring
from repro.vec.counters import OpCounters
from repro.vec.ops import VectorUnit

__all__ = ["BFSSpMV", "bfs_spmv", "synthesize_counters"]


def synthesize_counters(semiring: SemiringBFS, C: int, slim: bool,
                        processed_chunks: int, skipped_chunks: int,
                        processed_layers: int, slimwork: bool,
                        batch: int = 1) -> OpCounters:
    """Analytic counter model of one iteration of the chunk engine.

    Mirrors exactly what :meth:`BFSSpMV._run_chunk` issues so the layer
    engine can report counters without paying chunk-engine wall clock.
    Validated instruction-for-instruction by the test suite.

    ``batch`` models the SpMM sweep of :mod:`repro.bfs.msbfs`: the streamed
    ``col``/``val`` loads and the SlimSell CMP+BLEND val derivation happen
    *once* per column layer regardless of batch width (the matrix operands
    are shared by all sources), while the gather, the semiring compute
    instructions, and all per-chunk post-processing scale with ``batch``.
    ``batch=1`` reproduces the single-source chunk engine exactly.
    """
    c = OpCounters()
    B = int(batch)
    if B < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    inner_loads = 1 if slim else 2  # col only vs val+col
    # Inner loop per column layer: loads, gather, the val derivation
    # (SlimSell: CMP+BLEND), and the semiring's two compute instructions.
    # The col/val streams (and derived val registers) are batch-shared.
    c.count("LOAD", processed_layers * inner_loads, lanes=processed_layers * inner_loads * C)
    c.load(processed_layers * inner_loads * C)
    c.count("GATHER", processed_layers * B, lanes=processed_layers * B * C)
    c.load(processed_layers * B * C, gather=True)
    if slim:
        c.count("CMP", processed_layers, lanes=processed_layers * C)
        c.count("BLEND", processed_layers, lanes=processed_layers * C)
    kernel = {
        "tropical": ("ADD", "MIN"),
        "real": ("MUL", "ADD"),
        "boolean": ("AND", "OR"),
        "sel-max": ("MUL", "MAX"),
    }[semiring.name]
    for mnem in kernel:
        c.count(mnem, processed_layers * B, lanes=processed_layers * B * C)
    # Per processed chunk: the carry load plus the semiring post-processing,
    # both per source.
    processed_chunks *= B
    skipped_chunks *= B
    c.count("LOAD", processed_chunks, lanes=processed_chunks * C)
    c.load(processed_chunks * C)
    post = {
        # (extra loads, stores, cmp, blend, and_, not_, mul)
        "tropical": dict(loads=0, stores=1, CMP=0, BLEND=0, AND=0, NOT=0, MUL=0),
        "boolean": dict(loads=2, stores=3, CMP=1, BLEND=1, AND=2, NOT=1, MUL=1),
        "real": dict(loads=2, stores=3, CMP=2, BLEND=2, AND=2, NOT=1, MUL=1, MIN=1),
        "sel-max": dict(loads=3, stores=3, CMP=2, BLEND=3, AND=1, NOT=0, MUL=0),
    }[semiring.name]
    k = processed_chunks
    if post["loads"]:
        c.count("LOAD", k * post["loads"], lanes=k * post["loads"] * C)
        c.load(k * post["loads"] * C)
    c.count("STORE", k * post["stores"], lanes=k * post["stores"] * C)
    c.store(k * post["stores"] * C)
    for mnem in ("CMP", "BLEND", "AND", "NOT", "MUL", "MIN"):
        cnt = post.get(mnem, 0)
        if cnt:
            c.count(mnem, k * cnt, lanes=k * cnt * C)
    if slimwork:
        total = processed_chunks + skipped_chunks
        c.count("SKIPCHK", total, lanes=total * C)
        # Skipped chunks carry the old vector over (Listing 7 line 18).
        c.count("LOAD", skipped_chunks, lanes=skipped_chunks * C)
        c.load(skipped_chunks * C)
        c.count("STORE", skipped_chunks, lanes=skipped_chunks * C)
        c.store(skipped_chunks * C)
    return c


class BFSSpMV:
    """BFS via SpMV products over a chunked representation.

    Parameters
    ----------
    rep:
        A built :class:`SellCSigma` or :class:`SlimSell`.
    semiring:
        A :class:`SemiringBFS` instance or name
        (``"tropical" | "real" | "boolean" | "sel-max"``).
    slimwork:
        Enable §III-C chunk skipping.
    slimchunk:
        Maximum column layers per work unit (§III-D); ``None`` disables.
        Affects work-unit stats (and the scheduling model), not results.
    engine:
        ``"layer"`` (fast, default) or ``"chunk"`` (faithful, countable).
    counting:
        Attach per-iteration :class:`OpCounters` (chunk engine counts on
        the simulated ISA; layer engine synthesizes analytically).
    compute_parents:
        Produce the parent vector (sel-max: native; others: DP transform).
    max_iters:
        Safety cap on iterations (defaults to N + 1).
    batch:
        Multi-source batch width used by :meth:`run_many`: ``None``/1 runs
        sources sequentially; B > 1 traverses B sources per SpMM sweep via
        the :mod:`repro.bfs.msbfs` engine (layer engine only).  Results are
        bit-identical to sequential runs.
    """

    def __init__(
        self,
        rep: SellCSigma,
        semiring: SemiringBFS | str = "tropical",
        *,
        slimwork: bool = False,
        slimchunk: int | None = None,
        engine: str = "layer",
        counting: bool = False,
        compute_parents: bool = True,
        max_iters: int | None = None,
        batch: int | None = None,
    ):
        if engine not in ("layer", "chunk"):
            raise ValueError(f"engine must be 'layer' or 'chunk', got {engine!r}")
        if batch is not None and batch < 1:
            raise ValueError(f"batch must be >= 1 or None, got {batch}")
        self.rep = rep
        self.semiring = get_semiring(semiring) if isinstance(semiring, str) else semiring
        self.slimwork = bool(slimwork)
        self.slimchunk = slimchunk
        self.engine = engine
        self.counting = bool(counting)
        self.compute_parents = bool(compute_parents)
        self.max_iters = max_iters
        self.batch = batch
        self.is_slim = not rep.has_val

    # ------------------------------------------------------------------
    def run(self, root: int) -> BFSResult:
        """Execute BFS from ``root`` (original vertex ids)."""
        rep = self.rep
        n = rep.n
        if not 0 <= root < n:
            raise ValueError(f"root {root} out of range [0, {n})")
        proot = int(rep.perm[root])
        t0 = time.perf_counter()
        if self.engine == "layer":
            st, iters = self._run_layer(proot)
        else:
            st, iters = self._run_chunk(proot)
        total = time.perf_counter() - t0
        return self._finalize(st, root, iters, total)

    # ------------------------------------------------------------------
    def run_many(self, roots) -> list:
        """Traverse from every root, batching ``batch`` sources per sweep.

        With ``batch`` unset (or 1, or the chunk engine) this is a plain
        sequential loop over :meth:`run`; otherwise roots are chopped into
        groups of ``batch`` columns and each group is traversed by one
        multi-source SpMM sweep.  Either way the returned
        :class:`BFSResult` list is ordered like ``roots`` and bit-identical
        to sequential execution.
        """
        roots = np.asarray(roots, dtype=np.int64)
        if roots.ndim != 1:
            raise ValueError(f"roots must be 1-D, got shape {roots.shape}")
        if self.batch is None or self.batch <= 1 or self.engine == "chunk":
            return [self.run(int(r)) for r in roots]
        from repro.bfs.msbfs import MultiSourceBFS

        ms = MultiSourceBFS(
            self.rep, self.semiring, slimwork=self.slimwork,
            counting=self.counting, compute_parents=self.compute_parents,
            max_iters=self.max_iters)
        out: list = []
        for i in range(0, roots.size, self.batch):
            out.extend(ms.run(roots[i:i + self.batch]))
        return out

    # ------------------------------------------------------------------
    def _active_chunks(self, st: BFSState) -> np.ndarray:
        """SlimWork chunk mask: process a chunk unless all lanes are settled."""
        rep = self.rep
        if not self.slimwork:
            return np.ones(rep.nc, dtype=bool)
        settled = self.semiring.settled_lanes(st).reshape(rep.nc, rep.C)
        return ~settled.all(axis=1)

    def _run_layer(self, proot: int) -> tuple[BFSState, list[IterationStats]]:
        rep, sr = self.rep, self.semiring
        C, nc, N = rep.C, rep.nc, rep.N
        st = sr.init_state(rep.n, N, proot)
        col = rep.col64  # memoized on the representation across run() calls
        val = rep.val_for(sr)
        cs, cl = rep.cs, rep.cl
        lane_off = np.arange(C, dtype=np.int64)
        cap = self.max_iters if self.max_iters is not None else N + 1
        iters: list[IterationStats] = []
        k = 0
        while k < cap:
            k += 1
            st.depth = k
            t0 = time.perf_counter()
            active = self._active_chunks(st)
            act = np.flatnonzero(active)
            x_raw = st.f.copy()  # carry: skipped chunks keep their old values
            f_prev = st.f
            x2d = x_raw.reshape(nc, C)
            if act.size:
                # Sort active chunks by descending length: the live set of
                # each successive column layer is then a shrinking prefix.
                order = np.argsort(-cl[act], kind="stable")
                srt = act[order]
                scl = cl[srt]
                max_l = int(scl[0]) if scl.size else 0
                for j in range(max_l):
                    live_count = int(np.searchsorted(-scl, -j, side="left"))
                    live = srt[:live_count]
                    if live.size == 0:
                        break
                    idx = (cs[live] + j * C)[:, None] + lane_off
                    rhs = f_prev[col[idx]]
                    contrib = sr.mul(val[idx], rhs)
                    x2d[live] = sr.add(x2d[live], contrib)
            newly = sr.postprocess(st, x_raw)
            stats = IterationStats(
                k=k, newly=newly, time_s=time.perf_counter() - t0,
                chunks_processed=int(act.size),
                chunks_skipped=int(nc - act.size),
                work_lanes=int(cl[act].sum()) * C,
            )
            if self.counting:
                stats.counters = synthesize_counters(
                    sr, C, self.is_slim, int(act.size), int(nc - act.size),
                    int(cl[act].sum()), self.slimwork)
            iters.append(stats)
            if newly == 0:
                break
        return st, iters

    def _run_chunk(self, proot: int) -> tuple[BFSState, list[IterationStats]]:
        rep, sr = self.rep, self.semiring
        C, nc, N = rep.C, rep.nc, rep.N
        vu = VectorUnit(C, counting=self.counting)
        st = sr.init_state(rep.n, N, proot)
        col = rep.col
        val = None if self.is_slim else rep.val_for(sr)
        cs, cl = rep.cs, rep.cl
        # Hoisted constant registers (Listing 6 line 2).
        m_ones = np.full(C, PAD, dtype=np.int32)
        ones = np.full(C, sr.edge_value)
        annih = np.full(C, sr.pad_value)
        cap = self.max_iters if self.max_iters is not None else N + 1
        iters: list[IterationStats] = []
        k = 0
        while k < cap:
            k += 1
            st.depth = k
            t0 = time.perf_counter()
            before = vu.snapshot() if self.counting else None
            f_prev = st.f
            f_next = np.empty_like(f_prev)
            settled = sr.settled_lanes(st).reshape(nc, C) if self.slimwork else None
            newly = 0
            processed = skipped = 0
            work_lanes = 0
            for i in range(nc):
                a = i * C
                if self.slimwork:
                    # Listing 7: a scalar check over the chunk's C entries.
                    if self.counting:
                        vu.counters.count("SKIPCHK", lanes=C)
                    if settled[i].all():
                        vu.store(f_next, a, vu.load(f_prev, a))  # carry over
                        skipped += 1
                        continue
                processed += 1
                x = vu.load(f_prev, a)
                index = int(cs[i])
                layers = int(cl[i])
                work_lanes += layers * C
                for _ in range(layers):
                    if self.is_slim:
                        cols = vu.load(col, index)
                        mask = vu.cmp(cols, m_ones, "EQ")  # padding marker?
                        vals = vu.blend(ones, annih, mask)  # derive val
                    else:
                        vals = vu.load(val, index)
                        cols = vu.load(col, index)
                    rhs = vu.gather(f_prev, cols)
                    x = sr.kernel_step(vu, x, rhs, vals)
                    index += C
                newly += sr.chunk_post(vu, st, f_next, a, x)
            st.f = f_next
            stats = IterationStats(
                k=k, newly=newly, time_s=time.perf_counter() - t0,
                chunks_processed=processed, chunks_skipped=skipped,
                work_lanes=work_lanes,
                counters=vu.counters.diff(before) if self.counting else None,
            )
            iters.append(stats)
            if newly == 0:
                break
        return st, iters

    # ------------------------------------------------------------------
    def work_units(self, st: BFSState | None = None):
        """Current work-unit decomposition (SlimChunk-aware), for scheduling."""
        active = self._active_chunks(st) if st is not None else None
        return make_work_units(self.rep.cl, self.slimchunk, active)

    def _finalize(self, st: BFSState, root: int, iters: list[IterationStats],
                  total: float) -> BFSResult:
        rep, sr = self.rep, self.semiring
        dist_p = sr.finalize_distances(st)
        dist = dist_p[rep.perm]  # back to original ids
        parent = None
        if self.compute_parents:
            pp = sr.finalize_parents(st)
            if pp is not None:
                # sel-max: parents are permuted ids; map both axes back.
                pv = pp[rep.perm]
                parent = np.where(pv >= 0, rep.iperm[np.clip(pv, 0, rep.n - 1)], -1)
                parent[root] = root
            else:
                parent = dp_transform(rep.graph_original, dist)
        method = f"spmv-{self.engine}"
        if self.slimwork:
            method += "+slimwork"
        if self.slimchunk:
            method += "+slimchunk"
        return BFSResult(
            dist=dist, parent=parent, root=root, method=method,
            semiring=sr.name, representation=rep.name, iterations=iters,
            preprocess_time_s=rep.build_time_s, total_time_s=total,
        )


def bfs_spmv(
    graph_or_rep: Graph | SellCSigma,
    root: int,
    semiring: str | SemiringBFS = "tropical",
    *,
    C: int = 8,
    sigma: int | None = None,
    slim: bool = True,
    slimwork: bool = False,
    slimchunk: int | None = None,
    engine: str = "layer",
    counting: bool = False,
    compute_parents: bool = True,
) -> BFSResult:
    """One-call convenience: build the representation (if needed) and run BFS.

    Parameters mirror :class:`BFSSpMV`; when a raw :class:`Graph` is passed,
    a :class:`SlimSell` (``slim=True``, the default) or :class:`SellCSigma`
    is built with the given ``C`` and ``sigma`` (σ defaults to n, full sort).
    """
    if isinstance(graph_or_rep, Graph):
        from repro.formats.slimsell import SlimSell

        rep_cls = SlimSell if slim else SellCSigma
        rep = rep_cls(graph_or_rep, C, sigma)
    else:
        rep = graph_or_rep
    return BFSSpMV(
        rep, semiring, slimwork=slimwork, slimchunk=slimchunk, engine=engine,
        counting=counting, compute_parents=compute_parents,
    ).run(root)
