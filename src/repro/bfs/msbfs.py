"""Batched multi-source BFS: the SpMM layer sweep.

The paper's evaluation protocol (Graph500: 64 roots over one graph) and its
§VI generalization argument (betweenness, connectivity — anything built on
``y = A ⊗ x``) both traverse the *same* SlimSell layout many times.  Running
those traversals one at a time re-pays the per-layer gather indexing and all
Python-level loop overhead once per source.

:class:`MultiSourceBFS` instead carries a frontier **matrix** ``F`` of shape
``(N, B)`` — one column per source — so each column layer of the chunked
layout issues a single fancy-index gather ``f[col[idx]]`` and one semiring
``mul``/``add`` for all ``B`` sources at once: an SpMM sweep instead of B
separate SpMV sweeps.  The matrix operands (``col``, the derived ``val``)
stream once per layer regardless of B, which is exactly the amortization
the batched counter model (:func:`repro.bfs.spmv.synthesize_counters` with
``batch=B``) accounts for.

Semantics are *bit-identical* to the single-source layer engine, per
source:

* SlimWork keeps **per-source active-chunk masks**; a chunk enters the SpMM
  sweep when any still-running source needs it.  Processing a chunk that is
  settled for some source cannot change that source's column (the settled
  predicate of every semiring is a fixed point of its update), so per-source
  results match the per-source skip decisions of the sequential engine.
* Each source **terminates independently**: its ``newly`` count reaching 0
  ends its iteration log, its final state column is snapshotted, and the
  column is compacted out of the frontier matrix — a straggler source only
  drags live columns (not the whole batch) through its extra layers.  The
  sweep stops when every source has terminated.
* Per-source :class:`IterationStats` — processed/skipped chunks, work
  lanes, and synthesized instruction counters — reproduce the sequential
  engine's numbers exactly (validated against the chunk engine in tests).

Wall-clock accounting: one sweep's time is shared equally by the sources
still running, so per-source ``time_s``/``total_time_s`` are amortized
figures (their sum over a batch equals the batch's true wall clock).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bfs.dp import dp_transform
from repro.bfs.result import BFSResult, IterationStats
from repro.bfs.spmv import synthesize_counters
from repro.formats.sell import SellCSigma
from repro.graphs.graph import Graph
from repro.semirings.base import BFSState, SemiringBFS, get_semiring

__all__ = [
    "MultiSourceBFS",
    "batched_levels",
    "bfs_msbfs",
    "build_rep",
    "compact_columns",
    "finalize_batch",
    "run_in_batches",
    "snapshot_column",
    "spmm_layer_sweep",
    "sweep_band_layers",
    "validate_roots",
]


def validate_roots(rep: SellCSigma, roots) -> np.ndarray:
    """Normalize a roots sequence (original vertex ids) to ``int64[B]``.

    Shared by every batched engine: rejects empty/non-1-D input and
    out-of-range ids with one error contract.
    """
    roots = np.asarray(roots, dtype=np.int64)
    if roots.ndim != 1 or roots.size == 0:
        raise ValueError("roots must be a non-empty 1-D sequence")
    bad = (roots < 0) | (roots >= rep.n)
    if bad.any():
        raise ValueError(
            f"root {int(roots[bad][0])} out of range [0, {rep.n})")
    return roots


def build_rep(graph_or_rep: Graph | SellCSigma, C: int, sigma: int | None,
              slim: bool) -> SellCSigma:
    """Pass a built representation through; build one from a raw graph."""
    if isinstance(graph_or_rep, Graph):
        from repro.formats.slimsell import SlimSell

        rep_cls = SlimSell if slim else SellCSigma
        return rep_cls(graph_or_rep, C, sigma)
    return graph_or_rep


def batched_levels(rep: SellCSigma, roots, *,
                   slimwork: bool = True) -> tuple[list[BFSResult], np.ndarray]:
    """One SpMM layer sweep from every root; per-column padded level vectors.

    The distributed model (:mod:`repro.dist`) consumes this as its batched
    ground truth: ``results`` are the per-column traversals (bit-identical
    to the single-source layer engine, including iteration logs), and
    ``levels`` is float64[N, B] — column ``b`` holds root ``b``'s hop levels
    in the representation's permuted, padded id space (padding lanes ∞), the
    exact input of the per-iteration SlimWork reconstruction.  Restricting
    the sweep to one rank's chunk band is :func:`spmm_layer_sweep` with that
    band as ``act`` — the partition-local slice of the same kernel.
    """
    engine = MultiSourceBFS(rep, "tropical", slimwork=slimwork,
                            compute_parents=False)
    results = engine.run(roots)
    levels = np.full((rep.N, len(results)), np.inf)
    for j, res in enumerate(results):
        levels[rep.perm, j] = res.dist
    return results, levels


def run_in_batches(engine, roots, batch: int | None) -> list[BFSResult]:
    """Chop ``roots`` into groups of ``batch`` columns per ``engine.run``.

    ``None`` (or a width >= the root count) runs one sweep; results are
    ordered like ``roots`` either way.
    """
    roots = np.asarray(roots, dtype=np.int64)
    if batch is not None and batch < 1:
        raise ValueError(f"batch must be >= 1 or None, got {batch}")
    if batch is None or batch >= roots.size:
        return engine.run(roots)
    out: list[BFSResult] = []
    for i in range(0, roots.size, batch):
        out.extend(engine.run(roots[i:i + batch]))
    return out


# ----------------------------------------------------------------------
# Shared sweep machinery: the batched engines (this module's all-pull
# SpMM engine, the single-source hybrid in :mod:`repro.bfs.hybrid`, and
# the direction-optimizing batch engine in :mod:`repro.bfs.mshybrid`)
# all drive the same shrinking-prefix column-layer kernel and the same
# per-column state bookkeeping, so those pieces live here as functions.
# ----------------------------------------------------------------------
def sweep_band_layers(sr: SemiringBFS, C: int, col: np.ndarray,
                      val: np.ndarray, cs: np.ndarray, cl: np.ndarray,
                      f_prev: np.ndarray, x_nd: np.ndarray, act: np.ndarray,
                      act_out: np.ndarray | None = None,
                      profile: list | None = None) -> None:
    """Shrinking-prefix layer sweep over ``act``, into an ``x_nd`` view.

    The sharded core of :func:`spmm_layer_sweep`: ``x_nd`` is a chunk-major
    accumulator view of shape ``(nb, C)`` or ``(nb, C, W)`` covering ``nb``
    chunks — the whole representation (``nb = nc``) or one worker's row
    band.  ``act`` holds *global* chunk ids (they index the matrix operands
    ``cs``/``cl``); ``act_out`` holds the matching positions inside
    ``x_nd`` and defaults to ``act`` (band == whole matrix).  ``f_prev``
    always stays global: a chunk's gather may read any vertex's frontier
    value, which is exactly why the executed backend has to exchange union
    frontiers between sharded sweeps.

    Each chunk's rows accumulate only their own layer contributions, in
    ascending layer order, reading nothing but the fixed ``f_prev`` — so
    partitioning ``act`` across bands and sweeping each band separately is
    bit-identical to one global sweep, for any partition.

    ``profile`` (optional) is the per-layer profiling hook: when a list is
    passed, one ``(j, live_n)`` pair is appended per column layer swept —
    layer index and the number of chunks still live at that depth — the
    shape the tracing engines attach to their layer spans.
    """
    if act.size == 0:
        return
    lane_off = np.arange(C, dtype=np.int64)
    order = np.argsort(-cl[act], kind="stable")
    srt = act[order]
    out = srt if act_out is None else act_out[order]
    scl = cl[srt]
    max_l = int(scl[0]) if scl.size else 0
    for j in range(max_l):
        live_n = int(np.searchsorted(-scl, -j, side="left"))
        if live_n == 0:
            break
        if profile is not None:
            profile.append((j, live_n))
        live = srt[:live_n]
        idx = (cs[live] + j * C)[:, None] + lane_off  # (L, C)
        vals = val[idx][..., None] if x_nd.ndim == 3 else val[idx]
        contrib = sr.mul(vals, f_prev[col[idx]])
        x_nd[out[:live_n]] = sr.add(x_nd[out[:live_n]], contrib)


def spmm_layer_sweep(rep: SellCSigma, sr: SemiringBFS, f_prev: np.ndarray,
                     x_out: np.ndarray, act: np.ndarray,
                     profile: list | None = None) -> None:
    """One semiring layer sweep over the active chunks, in place.

    ``f_prev`` is the gathered operand — ``(N,)`` for a single source or
    ``(N, W)`` for a batch of W frontier columns; ``x_out`` is a contiguous
    accumulator of the same shape that already carries ``f_prev``'s values
    (inactive chunks keep their columns untouched).  ``act`` holds the
    indices of the chunks to process.  The matrix operands come from the
    representation's memoized ``col64``/``val_for`` caches, so repeated
    sweeps stream the same arrays.

    Active chunks are sorted by descending length so the live set of each
    successive column layer is a shrinking prefix; every gather/mul/add of
    a layer then moves all W columns at once (the SpMM amortization).
    The inner loop is :func:`sweep_band_layers` over the whole chunk range;
    the executed parallel backend (:mod:`repro.exec`) drives the same core
    over per-worker row bands.
    """
    if act.size == 0:
        return
    if not x_out.flags["C_CONTIGUOUS"]:
        # reshape() on a non-contiguous accumulator would return a copy and
        # silently discard every chunk update — fail loudly instead.
        raise ValueError("x_out must be C-contiguous (pass a materialized "
                         "column block, not a sliced view)")
    batched = f_prev.ndim == 2
    x_nd = x_out.reshape((rep.nc, rep.C, -1) if batched else (rep.nc, rep.C))
    sweep_band_layers(sr, rep.C, rep.col64, rep.val_for(sr), rep.cs, rep.cl,
                      f_prev, x_nd, act, profile=profile)


def snapshot_column(st: BFSState, j: int) -> BFSState:
    """Snapshot column ``j`` of a batched state as a single-source state."""
    def pick(a):
        return None if a is None else np.ascontiguousarray(a[:, j])

    return BFSState(f=pick(st.f), d=pick(st.d), n=st.n, N=st.N,
                    root=st.root, g=pick(st.g), p=pick(st.p))


def compact_columns(st: BFSState, keep: np.ndarray) -> None:
    """Drop terminated columns so later sweeps cost O(live sources)."""
    st.f = st.f[:, keep]
    st.d = st.d[:, keep]
    if st.g is not None:
        st.g = st.g[:, keep]
    if st.p is not None:
        st.p = st.p[:, keep]


def finalize_batch(rep: SellCSigma, sr: SemiringBFS,
                   finals: list[BFSState], roots: np.ndarray,
                   per_src: list[list[IterationStats]], total: float,
                   method: str, compute_parents: bool) -> list[BFSResult]:
    """Turn per-column terminal state snapshots into :class:`BFSResult`\\ s.

    Distances and (sel-max) parents are mapped back to original vertex ids;
    other semirings derive parents with the DP transformation.  The batch's
    wall clock ``total`` is shared equally by the sources.
    """
    B = roots.size
    share = total / B
    results = []
    for b in range(B):
        root = int(roots[b])
        stc = finals[b]
        dist = sr.finalize_distances(stc)[rep.perm]  # back to orig ids
        parent = None
        if compute_parents:
            pp = sr.finalize_parents(stc)
            if pp is not None:
                pv = pp[rep.perm]
                parent = np.where(
                    pv >= 0, rep.iperm[np.clip(pv, 0, rep.n - 1)], -1)
                parent[root] = root
            else:
                parent = dp_transform(rep.graph_original, dist)
        results.append(BFSResult(
            dist=dist, parent=parent, root=root, method=method,
            semiring=sr.name, representation=rep.name,
            iterations=per_src[b], preprocess_time_s=rep.build_time_s,
            total_time_s=share))
    return results


class MultiSourceBFS:
    """Batched BFS-SpMV over a chunked representation (layer engine only).

    Parameters
    ----------
    rep:
        A built :class:`SellCSigma` or :class:`SlimSell`.
    semiring:
        A :class:`SemiringBFS` instance or name
        (``"tropical" | "real" | "boolean" | "sel-max"``).
    slimwork:
        §III-C chunk skipping, tracked per source; the SpMM sweep processes
        the union of the per-source active sets.
    counting:
        Synthesize per-source :class:`OpCounters` analytically (identical
        to the single-source chunk engine's counts).
    compute_parents:
        Produce parent vectors (sel-max: native; others: DP transform).
    max_iters:
        Safety cap on iterations (defaults to N + 1).
    """

    def __init__(
        self,
        rep: SellCSigma,
        semiring: SemiringBFS | str = "tropical",
        *,
        slimwork: bool = False,
        counting: bool = False,
        compute_parents: bool = True,
        max_iters: int | None = None,
    ):
        self.rep = rep
        self.semiring = get_semiring(semiring) if isinstance(semiring, str) else semiring
        self.slimwork = bool(slimwork)
        self.counting = bool(counting)
        self.compute_parents = bool(compute_parents)
        self.max_iters = max_iters
        self.is_slim = not rep.has_val
        #: (B, per-iteration union sweep stats) of the most recent run().
        self._last_sweep: tuple[int, list[tuple[int, int, int]]] | None = None
        #: Optional :class:`repro.obs.trace.Tracer` an owner (the serving
        #: tier, or a direct caller) attaches around a run; ``None`` keeps
        #: the sweep loop free of any tracing branches' side effects.
        self.tracer = None
        #: Parent span for the per-iteration ``bfs.layer`` spans (``None``
        #: = each run's layers start a fresh trace the owner re-bases).
        self.trace_parent = None
        #: The open ``bfs.layer`` span of the current iteration — the
        #: parent subclasses (the executed backend) hang worker spans off.
        self._layer_span = None

    # ------------------------------------------------------------------
    def run(self, roots) -> list[BFSResult]:
        """Traverse from every root in ``roots`` (original vertex ids).

        Duplicate roots, isolated-vertex roots, and batches wider than the
        graph are all fine — each column is an independent traversal.
        Returns one :class:`BFSResult` per root, in input order.
        """
        rep = self.rep
        roots = validate_roots(rep, roots)
        proots = rep.perm[roots]
        t0 = time.perf_counter()
        finals, per_src = self._sweep(proots)
        total = time.perf_counter() - t0
        return self._finalize(finals, roots, per_src, total)

    def _sweep(self, proots: np.ndarray):
        rep, sr = self.rep, self.semiring
        C, nc, N = rep.C, rep.nc, rep.N
        B = proots.size
        st = sr.init_batch_state(rep.n, N, proots)
        cl = rep.cl
        cap = self.max_iters if self.max_iters is not None else N + 1
        per_src: list[list[IterationStats]] = [[] for _ in range(B)]
        all_layers = int(cl.sum())
        col_of = np.arange(B)  # original source of each live state column
        finals: list[BFSState | None] = [None] * B  # terminal snapshots
        union_stats: list[tuple[int, int, int]] = []
        k = 0
        while k < cap and col_of.size:
            k += 1
            st.depth = k
            t0 = time.perf_counter()
            width = col_of.size
            tracer = self.tracer
            if tracer is not None:
                self._layer_span = tracer.begin(
                    "bfs.layer", t=t0, parent=self.trace_parent,
                    k=k, width=width)
            if self.slimwork:
                settled = sr.settled_lanes(st)                  # (N, width)
                src_active = ~settled.reshape(nc, C, width).all(axis=1)
                active = src_active.any(axis=1)  # union over live sources
            else:
                src_active = None
                active = np.ones(nc, dtype=bool)
            act = np.flatnonzero(active)
            x_raw = self._layer_sweep(st.f, act, k)
            newly = sr.postprocess(st, x_raw)  # int64[width]
            union_stats.append((int(act.size), int(cl[act].sum()), width))
            if src_active is not None:
                # All sources' footprints in two vectorized reductions.
                proc_all = src_active.sum(axis=0)
                layers_all = cl @ src_active
            t1 = time.perf_counter()
            if tracer is not None:
                tracer.end(self._layer_span, t=t1, chunks=int(act.size),
                           settled=int((newly == 0).sum()))
                self._layer_span = None
            share = (t1 - t0) / width
            for j, b in enumerate(col_of):
                if src_active is not None:
                    proc = int(proc_all[j])
                    layers = int(layers_all[j])
                else:
                    proc, layers = nc, all_layers
                stat = IterationStats(
                    k=k, newly=int(newly[j]), time_s=share,
                    chunks_processed=proc, chunks_skipped=nc - proc,
                    work_lanes=layers * C)
                if self.counting:
                    stat.counters = synthesize_counters(
                        sr, C, self.is_slim, proc, nc - proc, layers,
                        self.slimwork)
                per_src[b].append(stat)
            dead = newly == 0
            if dead.any():
                # A terminated column is a fixed point of the sweep:
                # snapshot it for finalize and drop it from the state so
                # stragglers don't drag dead columns through every layer.
                for j in np.flatnonzero(dead):
                    finals[col_of[j]] = snapshot_column(st, int(j))
                keep = ~dead
                compact_columns(st, keep)
                col_of = col_of[keep]
        for j, b in enumerate(col_of):  # max_iters cap: snapshot leftovers
            finals[b] = snapshot_column(st, int(j))
        self._last_sweep = (B, union_stats)
        return finals, per_src

    def _layer_sweep(self, f_prev: np.ndarray, act: np.ndarray,
                     k: int) -> np.ndarray:
        """Run one union layer sweep; return the raw accumulator.

        The single extension point the executed parallel backend
        (:mod:`repro.exec`) overrides: it shards ``act`` across workers,
        sweeps each row band concurrently, and reassembles the union
        result here — everything else in :meth:`_sweep` (SlimWork masks,
        postprocess, termination, stats) is shared verbatim.
        """
        # Carry: inactive chunks keep their columns.  The sweep is a
        # shrinking-prefix pass moving all live columns per gather.
        x_raw = f_prev.copy()
        profile = [] if self._layer_span is not None else None
        spmm_layer_sweep(self.rep, self.semiring, f_prev, x_raw, act,
                         profile=profile)
        if profile is not None:
            self._layer_span.attrs["column_layers"] = len(profile)
            self._layer_span.attrs["live_chunk_layers"] = sum(
                n for _, n in profile)
        return x_raw

    # ------------------------------------------------------------------
    def batch_counters(self):
        """Aggregate SpMM-level counters of the most recent :meth:`run`.

        Per-source counters model B independent SpMV runs; this re-costs
        the *actual* union sweep of each iteration — the shared
        ``col``/``val`` streams over the union of the per-source active
        chunks, charged once, with gathers/compute scaled by the number of
        columns still live (``synthesize_counters(..., batch=width)``) —
        quantifying the operand-streaming amortization of the batched
        engine.
        """
        from repro.vec.counters import OpCounters

        if self._last_sweep is None:
            raise RuntimeError("batch_counters() requires a prior run()")
        _, union_stats = self._last_sweep
        out = OpCounters()
        for proc, layers, width in union_stats:
            out += synthesize_counters(
                self.semiring, self.rep.C, self.is_slim, proc,
                self.rep.nc - proc, layers, self.slimwork, batch=width)
        return out

    def _finalize(self, finals: list[BFSState], roots: np.ndarray, per_src,
                  total: float):
        method = "spmv-msbfs"
        if self.slimwork:
            method += "+slimwork"
        return finalize_batch(self.rep, self.semiring, finals, roots, per_src,
                              total, method, self.compute_parents)


def bfs_msbfs(
    graph_or_rep: Graph | SellCSigma,
    roots,
    semiring: str | SemiringBFS = "tropical",
    *,
    C: int = 8,
    sigma: int | None = None,
    slim: bool = True,
    slimwork: bool = False,
    counting: bool = False,
    compute_parents: bool = True,
    batch: int | None = None,
) -> list[BFSResult]:
    """One-call convenience: batched BFS from every root in ``roots``.

    Mirrors :func:`repro.bfs.spmv.bfs_spmv` — a :class:`SlimSell`
    (``slim=True``, default) or :class:`SellCSigma` is built when a raw
    :class:`Graph` is passed.  ``batch`` caps the number of frontier
    columns per SpMM sweep (``None`` = all roots in one sweep).
    """
    engine = MultiSourceBFS(
        build_rep(graph_or_rep, C, sigma, slim), semiring,
        slimwork=slimwork, counting=counting,
        compute_parents=compute_parents)
    return run_in_batches(engine, roots, batch)
