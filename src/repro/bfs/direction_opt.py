"""Direction-optimizing BFS (Beamer et al. [3]) — Fig 1's "direction opt.".

The paper positions direction optimization as *orthogonal* to SlimSell
("can be implemented on top of SlimSell"); Fig 1 plots an algebraic BFS
with direction optimization next to SlimSell and traditional BFS.  This
module provides the combinatorial variant: switch from top-down frontier
expansion to bottom-up parent hunting when the frontier's edge mass exceeds
a fraction of the unexplored edge mass, and back when the frontier shrinks.

Heuristic (Beamer's α/β): go bottom-up when ``m_f > m_u / alpha``; return
top-down when ``n_f < n / beta``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bfs.result import BFSResult, IterationStats
from repro.bfs.spmspv import expand_adjacency
from repro.bfs.traditional import _expand_frontier
from repro.graphs.graph import Graph


def _bottom_up_step(graph: Graph, dist: np.ndarray, parent: np.ndarray,
                    in_frontier: np.ndarray, k: int) -> tuple[np.ndarray, int]:
    """One bottom-up sweep: every unvisited vertex scans for a frontier parent.

    Returns the new frontier (vertex ids) and the number of adjacency
    entries examined (a full scan of unvisited adjacency; the real code
    stops at the first hit — we report full-scan counts and note the
    modeled early exit via the ``/ 2`` expectation in the cost model).
    """
    unvisited = np.flatnonzero(~np.isfinite(dist))
    if unvisited.size == 0:
        return np.empty(0, dtype=np.int64), 0
    nbrs, _ = expand_adjacency(graph, unvisited)
    total = int(nbrs.size)
    if total == 0:
        return np.empty(0, dtype=np.int64), 0
    deg = graph.indptr[unvisited + 1] - graph.indptr[unvisited]
    hit = in_frontier[nbrs]
    # Segment-max picks one frontier parent per vertex (−1 = none found).
    cand = np.where(hit, nbrs, np.int64(-1))
    best = np.full(unvisited.size, -1, dtype=np.int64)
    nonempty = deg > 0
    offsets = np.concatenate([[0], np.cumsum(deg)])[:-1]
    best[nonempty] = np.maximum.reduceat(cand, offsets[nonempty])
    found = best >= 0
    newly = unvisited[found]
    dist[newly] = k
    parent[newly] = best[found]
    return newly, total


def bfs_direction_optimizing(
    graph: Graph,
    root: int,
    alpha: float = 14.0,
    beta: float = 24.0,
    max_iters: int | None = None,
) -> BFSResult:
    """BFS with Beamer-style top-down / bottom-up switching.

    Parameters
    ----------
    graph, root:
        The traversal input.
    alpha:
        Switch to bottom-up when frontier edge mass > unexplored mass / α.
    beta:
        Switch back to top-down when frontier size < n / β.
    """
    n = graph.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    dist[root] = 0.0
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    in_frontier = np.zeros(n, dtype=bool)
    degrees = graph.degrees
    m2 = int(degrees.sum())
    explored_mass = int(degrees[root])
    bottom_up = False
    iters: list[IterationStats] = []
    cap = max_iters if max_iters is not None else n + 1
    t_total = time.perf_counter()
    k = 0
    while frontier.size and k < cap:
        k += 1
        t0 = time.perf_counter()
        m_f = int(degrees[frontier].sum())
        m_u = m2 - explored_mass
        # Beamer's rule, with the frontier-size guard so a tiny tail
        # frontier never ping-pongs into bottom-up sweeps.
        if not bottom_up and m_f > m_u / alpha and frontier.size >= n / beta:
            bottom_up = True
        elif bottom_up and frontier.size < n / beta:
            bottom_up = False
        if bottom_up:
            in_frontier[:] = False
            in_frontier[frontier] = True
            newly, examined = _bottom_up_step(graph, dist, parent, in_frontier, k)
            direction = "bottom-up"
        else:
            nbrs = _expand_frontier(graph, frontier)
            src = np.repeat(frontier,
                            graph.indptr[frontier + 1] - graph.indptr[frontier])
            unvisited = ~np.isfinite(dist[nbrs])
            newly, first = np.unique(nbrs[unvisited], return_index=True)
            dist[newly] = k
            parent[newly] = src[unvisited][first]
            examined = int(nbrs.size)
            direction = "top-down"
        explored_mass += int(degrees[newly].sum())
        frontier = newly
        iters.append(IterationStats(
            k=k, newly=int(newly.size), time_s=time.perf_counter() - t0,
            edges_examined=examined, direction=direction,
        ))
    return BFSResult(
        dist=dist, parent=parent, root=root, method="direction-optimizing",
        representation="al", iterations=iters,
        total_time_s=time.perf_counter() - t_total,
    )
