"""Direction-optimized *algebraic* BFS: push (SpMSpV) / pull (SpMV) hybrid.

Figure 1 of the paper plots "Algebraic BFS with SlimSell (direction opt.)"
— the well-known direction optimization [3] expressed algebraically, which
the paper calls orthogonal to SlimSell ("can be implemented on top of
SlimSell").  In algebraic terms the two directions are:

* **push** — a sparse product: only the frontier's columns contribute
  (SpMSpV), work ∝ adjacency of the frontier.  Optimal for small frontiers.
* **pull** — the dense SlimSell SpMV sweep restricted by SlimWork's chunk
  mask, work ∝ surviving chunks.  Optimal for huge frontiers, where it
  vectorizes perfectly and touches each output lane once.

The switch uses Beamer's edge-mass heuristic, exactly like the
combinatorial :mod:`repro.bfs.direction_opt`.

Iteration-stats contract (shared with :mod:`repro.bfs.mshybrid`): every
iteration is labeled ``direction`` ``"push"`` or ``"pull"``;
``work_lanes`` always holds the total work issued — padded lanes
``Σ cl[active]·C`` on pull iterations, adjacency entries examined on push
iterations — so per-iteration work series are comparable across
directions.  ``chunks_processed``/``chunks_skipped`` are nonzero only on
pull iterations, ``edges_examined`` only on push iterations.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bfs.msbfs import spmm_layer_sweep
from repro.bfs.result import BFSResult, IterationStats
from repro.bfs.spmspv import expand_adjacency
from repro.bfs.spmv import BFSSpMV
from repro.formats.sell import SellCSigma
from repro.semirings.base import get_semiring


def bfs_hybrid(
    rep: SellCSigma,
    root: int,
    alpha: float = 14.0,
    max_iters: int | None = None,
) -> BFSResult:
    """Push/pull algebraic BFS over a chunked representation.

    Runs the tropical semiring in both directions: push iterations expand
    the frontier's adjacency sparsely; pull iterations run the SlimWork
    SpMV sweep.  Distances (and DP parents) are identical to every other
    BFS in the library.

    Parameters
    ----------
    rep:
        Built :class:`SellCSigma`/:class:`SlimSell` (pull direction).
    root:
        Start vertex, original ids.
    alpha:
        Beamer threshold: pull when frontier edge mass > unexplored / α.
    """
    graph = rep.graph_original
    n = graph.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    sr = get_semiring("tropical")
    # Pull engine state lives in permuted space; we keep the canonical
    # distance vector in original space and mirror it into the engine's
    # state on direction changes.
    pull = BFSSpMV(rep, sr, slimwork=True, compute_parents=False)
    st = sr.init_state(rep.n, rep.N, int(rep.perm[root]))

    dist = np.full(n, np.inf)
    dist[root] = 0.0
    frontier = np.array([root], dtype=np.int64)
    degrees = graph.degrees
    m2 = int(degrees.sum())
    explored = int(degrees[root])
    iters: list[IterationStats] = []
    cap = max_iters if max_iters is not None else n + 1
    t0 = time.perf_counter()
    k = 0
    while frontier.size and k < cap:
        k += 1
        t_it = time.perf_counter()
        m_f = int(degrees[frontier].sum())
        use_pull = m_f > (m2 - explored) / alpha
        if use_pull:
            # One SlimWork SpMV sweep (state mirrors current distances).
            st.f = np.full(rep.N, np.inf)
            st.f[rep.perm] = dist
            st.depth = k
            active = pull._active_chunks(st)
            x_raw = st.f.copy()
            spmm_layer_sweep(rep, sr, st.f, x_raw, np.flatnonzero(active))
            st.f = x_raw
            dist_new = x_raw[rep.perm]
            newly = np.flatnonzero(dist_new < dist)
            dist = dist_new
            stats = IterationStats(
                k=k, newly=int(newly.size),
                time_s=time.perf_counter() - t_it,
                chunks_processed=int(active.sum()),
                chunks_skipped=int(rep.nc - active.sum()),
                work_lanes=int(rep.cl[active].sum()) * rep.C,
                direction="pull")
        else:
            # Sparse push: expand the frontier's adjacency lists.
            nbrs, _ = expand_adjacency(graph, frontier)
            total = int(nbrs.size)
            if total:
                cand = np.unique(nbrs[~np.isfinite(dist[nbrs])])
            else:
                cand = np.empty(0, dtype=np.int64)
            dist[cand] = k
            newly = cand
            stats = IterationStats(
                k=k, newly=int(cand.size),
                time_s=time.perf_counter() - t_it,
                work_lanes=total,  # push work = adjacency entries examined
                edges_examined=total, direction="push")
        explored += int(degrees[newly].sum())
        frontier = newly
        iters.append(stats)

    from repro.bfs.dp import dp_transform

    return BFSResult(
        dist=dist, parent=dp_transform(graph, dist), root=root,
        method="spmv-hybrid", semiring="tropical",
        representation=rep.name, iterations=iters,
        preprocess_time_s=rep.build_time_s,
        total_time_s=time.perf_counter() - t0)
