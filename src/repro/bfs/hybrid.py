"""Direction-optimized *algebraic* BFS: push (SpMSpV) / pull (SpMV) hybrid.

Figure 1 of the paper plots "Algebraic BFS with SlimSell (direction opt.)"
— the well-known direction optimization [3] expressed algebraically, which
the paper calls orthogonal to SlimSell ("can be implemented on top of
SlimSell").  In algebraic terms the two directions are:

* **push** — a sparse product: only the frontier's columns contribute
  (SpMSpV), work ∝ adjacency of the frontier.  Optimal for small frontiers.
* **pull** — the dense SlimSell SpMV sweep restricted by SlimWork's chunk
  mask, work ∝ surviving chunks.  Optimal for huge frontiers, where it
  vectorizes perfectly and touches each output lane once.

The switch uses Beamer's edge-mass heuristic, exactly like the
combinatorial :mod:`repro.bfs.direction_opt`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bfs.result import BFSResult, IterationStats
from repro.bfs.spmv import BFSSpMV
from repro.formats.sell import SellCSigma
from repro.graphs.graph import Graph
from repro.semirings.base import get_semiring


def bfs_hybrid(
    rep: SellCSigma,
    root: int,
    alpha: float = 14.0,
    max_iters: int | None = None,
) -> BFSResult:
    """Push/pull algebraic BFS over a chunked representation.

    Runs the tropical semiring in both directions: push iterations expand
    the frontier's adjacency sparsely; pull iterations run the SlimWork
    SpMV sweep.  Distances (and DP parents) are identical to every other
    BFS in the library.

    Parameters
    ----------
    rep:
        Built :class:`SellCSigma`/:class:`SlimSell` (pull direction).
    root:
        Start vertex, original ids.
    alpha:
        Beamer threshold: pull when frontier edge mass > unexplored / α.
    """
    graph = rep.graph_original
    n = graph.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    sr = get_semiring("tropical")
    # Pull engine state lives in permuted space; we keep the canonical
    # distance vector in original space and mirror it into the engine's
    # state on direction changes.
    pull = BFSSpMV(rep, sr, slimwork=True, compute_parents=False)
    st = sr.init_state(rep.n, rep.N, int(rep.perm[root]))

    dist = np.full(n, np.inf)
    dist[root] = 0.0
    frontier = np.array([root], dtype=np.int64)
    degrees = graph.degrees
    m2 = int(degrees.sum())
    explored = int(degrees[root])
    iters: list[IterationStats] = []
    cap = max_iters if max_iters is not None else n + 1
    t0 = time.perf_counter()
    k = 0
    while frontier.size and k < cap:
        k += 1
        t_it = time.perf_counter()
        m_f = int(degrees[frontier].sum())
        use_pull = m_f > (m2 - explored) / alpha
        if use_pull:
            # One SlimWork SpMV sweep (state mirrors current distances).
            st.f = np.full(rep.N, np.inf)
            st.f[rep.perm] = dist
            st.depth = k
            active = pull._active_chunks(st)
            x_raw = st.f.copy()
            _pull_sweep(rep, sr, st.f, x_raw, active)
            st.f = x_raw
            dist_new = x_raw[rep.perm]
            newly = np.flatnonzero(dist_new < dist)
            dist = dist_new
            stats = IterationStats(
                k=k, newly=int(newly.size),
                time_s=time.perf_counter() - t_it,
                chunks_processed=int(active.sum()),
                chunks_skipped=int(rep.nc - active.sum()),
                work_lanes=int(rep.cl[active].sum()) * rep.C,
                direction="pull")
        else:
            # Sparse push: expand the frontier's adjacency lists.
            deg = graph.indptr[frontier + 1] - graph.indptr[frontier]
            total = int(deg.sum())
            if total:
                starts = np.repeat(graph.indptr[frontier], deg)
                within = (np.arange(total, dtype=np.int64)
                          - np.repeat(np.cumsum(deg) - deg, deg))
                nbrs = graph.indices[starts + within].astype(np.int64)
                cand = np.unique(nbrs[~np.isfinite(dist[nbrs])])
            else:
                cand = np.empty(0, dtype=np.int64)
            dist[cand] = k
            newly = cand
            stats = IterationStats(
                k=k, newly=int(cand.size),
                time_s=time.perf_counter() - t_it,
                edges_examined=total, direction="push")
        explored += int(degrees[newly].sum())
        frontier = newly
        iters.append(stats)

    from repro.bfs.dp import dp_transform

    return BFSResult(
        dist=dist, parent=dp_transform(graph, dist), root=root,
        method="spmv-hybrid", semiring="tropical",
        representation=rep.name, iterations=iters,
        preprocess_time_s=rep.build_time_s,
        total_time_s=time.perf_counter() - t0)


def _pull_sweep(rep: SellCSigma, sr, f_prev: np.ndarray, x_raw: np.ndarray,
                active: np.ndarray) -> None:
    """One layer-engine tropical sweep over the active chunks (in place)."""
    C = rep.C
    col = rep.col64  # memoized on the representation across sweeps
    val = rep.val_for(sr)
    lane_off = np.arange(C, dtype=np.int64)
    act = np.flatnonzero(active)
    if act.size == 0:
        return
    order = np.argsort(-rep.cl[act], kind="stable")
    srt = act[order]
    scl = rep.cl[srt]
    x2d = x_raw.reshape(rep.nc, C)
    for j in range(int(scl[0]) if scl.size else 0):
        live = srt[: int(np.searchsorted(-scl, -j, side="left"))]
        if live.size == 0:
            break
        idx = (rep.cs[live] + j * C)[:, None] + lane_off
        contrib = sr.mul(val[idx], f_prev[col[idx]])
        x2d[live] = sr.add(x2d[live], contrib)
