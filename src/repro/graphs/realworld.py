"""Synthetic proxies for the paper's Table IV real-world corpus.

The paper evaluates ten SNAP graphs (orc, pok, epi, ljn, brk, gog, sta, ndm,
amz, rca).  The raw datasets are not available offline, so each graph is
substituted with a synthetic proxy that matches the published structural
parameters that SlimSell's behaviour depends on:

* **n, m, ρ̄ = m/n** — matched directly (scaled down by ``downscale``);
* **degree distribution shape** — heavy-tailed (Chung–Lu with the measured
  exponent) for social/web/purchase networks, near-uniform grid for the road
  network;
* **diameter regime** — low (≈10–20) for social networks, high (hundreds)
  for web crawls and road networks.  High-diameter proxies are built as a
  path of power-law communities whose length sets D, which reproduces the
  paper's "high D, low ρ̄ ⇒ little SlimWork gain" finding (§IV-A5).

Note the paper's ρ̄ column is m/n (directed-edge-per-vertex convention),
not 2m/n; this module follows the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph


@dataclass(frozen=True)
class RealWorldSpec:
    """Published statistics of one Table IV graph plus proxy parameters."""

    id: str
    name: str
    kind: str  # social | community | web | purchase | road
    n: int
    m: int
    rho: float  # paper's ρ̄ = m/n
    diameter: int
    powerlaw_beta: float = 2.3  # degree exponent used by the proxy
    communities: int = 1  # >1 → path-of-communities (high-D proxy)


#: Table IV of the paper, verbatim published statistics.
REALWORLD_REGISTRY: dict[str, RealWorldSpec] = {
    s.id: s
    for s in (
        RealWorldSpec("orc", "Orkut social network", "social", 3_070_000, 117_000_000, 39.0, 9, 2.2),
        RealWorldSpec("pok", "Pokec social network", "social", 1_630_000, 30_600_000, 18.75, 11, 2.3),
        RealWorldSpec("epi", "Epinions trust network", "social", 75_000, 508_000, 6.7, 15, 2.0),
        RealWorldSpec("ljn", "LiveJournal communities", "community", 3_990_000, 34_600_000, 8.67, 17, 2.35),
        RealWorldSpec("brk", "Berkeley-Stanford web", "web", 685_000, 7_600_000, 11.09, 514, 2.1, communities=48),
        RealWorldSpec("gog", "Google web graph", "web", 875_000, 5_100_000, 5.82, 21, 2.3, communities=3),
        RealWorldSpec("sta", "Stanford web graph", "web", 281_000, 2_310_000, 8.2, 46, 2.1, communities=6),
        RealWorldSpec("ndm", "Notre Dame web graph", "web", 325_000, 1_490_000, 4.59, 674, 2.1, communities=64),
        RealWorldSpec("amz", "Amazon purchase network", "purchase", 262_000, 1_230_000, 4.71, 32, 2.6, communities=4),
        RealWorldSpec("rca", "California road network", "road", 1_960_000, 2_760_000, 1.4, 849),
    )
}


# --------------------------------------------------------------------------
# Proxy generators
# --------------------------------------------------------------------------
def chung_lu(n: int, m: int, beta: float, seed: int = 0) -> Graph:
    """Chung–Lu graph: P(u~v) ∝ w_u w_v with power-law weights w_i ∝ i^{-1/(β-1)}.

    Produces a heavy-tailed simple graph with ≈``m`` edges.  Endpoints are
    drawn from the weight distribution and duplicates removed; we oversample
    to compensate for the removal.
    """
    if n < 2:
        return Graph.empty(max(n, 0))
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-1.0 / (beta - 1.0))
    p = w / w.sum()
    target = min(m, n * (n - 1) // 2)
    edges = np.empty((0, 2), dtype=np.int64)
    attempts = 0
    need = target
    while need > 0 and attempts < 12:
        draw = int(need * 1.35) + 16
        u = rng.choice(n, size=draw, p=p)
        v = rng.choice(n, size=draw, p=p)
        cand = np.stack([u, v], axis=1)
        cand = cand[cand[:, 0] != cand[:, 1]]
        lo = cand.min(axis=1)
        hi = cand.max(axis=1)
        key = lo * np.int64(n) + hi
        if edges.size:
            key_old = edges[:, 0] * np.int64(n) + edges[:, 1]
            key = np.concatenate([key_old, key])
        key = np.unique(key)
        edges = np.stack([key // n, key % n], axis=1)
        if edges.shape[0] >= target:
            edges = edges[rng.permutation(edges.shape[0])[:target]]
            break
        need = target - edges.shape[0]
        attempts += 1
    return Graph.from_edges(n, edges)


def grid_road(n: int, rho: float, seed: int = 0) -> Graph:
    """Road-network proxy: 2D grid with random edge deletions down to m ≈ ρ·n.

    Grids have near-uniform degree ≤ 4 and diameter Θ(√n) — the same regime
    as the paper's California road network (ρ̄=1.4, D=849).
    """
    side = max(2, int(round(np.sqrt(n))))
    nn = side * side
    ids = np.arange(nn, dtype=np.int64).reshape(side, side)
    right = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    down = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    edges = np.concatenate([right, down])
    target_m = int(rho * nn)
    rng = np.random.default_rng(seed)
    if target_m < edges.shape[0]:
        keep = rng.permutation(edges.shape[0])[:target_m]
        edges = edges[keep]
    return Graph.from_edges(nn, edges)


def community_path(n: int, m: int, beta: float, communities: int, seed: int = 0) -> Graph:
    """High-diameter proxy: a path of Chung–Lu communities plus bridges.

    The diameter is ≈ ``communities`` × (per-community diameter), which lets
    web-crawl proxies (brk D=514, ndm D=674) land in the paper's regime
    while keeping the heavy-tailed local structure.
    """
    communities = max(1, min(communities, n // 4 if n >= 8 else 1))
    if communities == 1:
        return chung_lu(n, m, beta, seed=seed)
    sizes = np.full(communities, n // communities, dtype=np.int64)
    sizes[: n % communities] += 1
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    m_per = max(1, (m - (communities - 1)) // communities)
    rng = np.random.default_rng(seed)
    all_edges = []
    for c in range(communities):
        sub = chung_lu(int(sizes[c]), m_per, beta, seed=seed + 101 * c + 1)
        e = sub.edges() + offsets[c]
        all_edges.append(e)
    # One bridge edge between consecutive communities keeps D ≈ sum of hops.
    for c in range(communities - 1):
        u = offsets[c] + rng.integers(0, sizes[c])
        v = offsets[c + 1] + rng.integers(0, sizes[c + 1])
        all_edges.append(np.array([[u, v]], dtype=np.int64))
    return Graph.from_edges(int(offsets[-1]), np.concatenate(all_edges))


def realworld_proxy(graph_id: str, downscale: int = 64, seed: int = 0) -> Graph:
    """Generate the synthetic proxy for a Table IV graph.

    Parameters
    ----------
    graph_id:
        One of the Table IV ids (``orc``, ``pok``, ``epi``, ``ljn``, ``brk``,
        ``gog``, ``sta``, ``ndm``, ``amz``, ``rca``).
    downscale:
        Divide published n and m by this factor (degree ratio m/n is kept).
        ``downscale=1`` reproduces the published size.
    seed:
        RNG seed.
    """
    try:
        spec = REALWORLD_REGISTRY[graph_id]
    except KeyError:
        raise KeyError(
            f"unknown real-world graph {graph_id!r}; available: {sorted(REALWORLD_REGISTRY)}"
        ) from None
    n = max(16, spec.n // downscale)
    m = max(n, spec.m // downscale)
    if spec.kind == "road":
        return grid_road(n, spec.rho, seed=seed)
    if spec.communities > 1:
        return community_path(n, m, spec.powerlaw_beta, spec.communities, seed=seed)
    return chung_lu(n, m, spec.powerlaw_beta, seed=seed)
