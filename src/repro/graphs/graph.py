"""Core undirected graph structure (CSR-backed, NumPy-native).

``Graph`` is the single in-memory graph type every representation and BFS in
this repository builds from.  It stores the symmetric adjacency in CSR form
(``indptr``/``indices``, both ``int32`` per the paper's 32-bit vertex-id
convention of §IV-A) and exposes vectorized degree queries, symmetric
relabeling (needed for Sell-C-σ's σ-scoped sort), and edge-list round trips.

The graph is simple (no self-loops, no parallel edges) and unweighted —
exactly the setting SlimSell targets: entries of A only indicate presence or
absence of an edge (§III-B).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

VERTEX_DTYPE = np.int32
INDPTR_DTYPE = np.int64


class Graph:
    """Undirected, unweighted, simple graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n+1``; row pointers of the symmetric CSR.
    indices:
        ``int32`` array of length ``2m``; concatenated sorted neighbor lists.

    Use :meth:`from_edges` to construct from an arbitrary (possibly
    duplicated, possibly self-looped) edge list.
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        indptr = np.asarray(indptr, dtype=INDPTR_DTYPE)
        indices = np.asarray(indices, dtype=VERTEX_DTYPE)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if indptr.size == 0 or indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("malformed CSR: indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("malformed CSR: indptr must be non-decreasing")
        self.indptr = indptr
        self.indices = indices

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: np.ndarray | Iterable[tuple[int, int]]) -> "Graph":
        """Build a simple undirected graph from an edge list.

        Self-loops are dropped; duplicate and reverse-duplicate edges are
        merged.  ``edges`` is an ``(E, 2)`` array (or iterable of pairs) of
        vertex ids in ``[0, n)``.
        """
        e = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                       dtype=np.int64)
        if e.size == 0:
            e = e.reshape(0, 2)
        if e.ndim != 2 or e.shape[1] != 2:
            raise ValueError(f"edges must have shape (E, 2), got {e.shape}")
        if e.size and (e.min() < 0 or e.max() >= n):
            raise ValueError("edge endpoint out of range")
        u, v = e[:, 0], e[:, 1]
        keep = u != v
        u, v = u[keep], v[keep]
        # Canonicalize (min, max) and deduplicate via a packed 64-bit key.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        key = lo * np.int64(n) + hi
        key = np.unique(key)
        lo = (key // n).astype(np.int64)
        hi = (key % n).astype(np.int64)
        # Symmetrize.
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=INDPTR_DTYPE)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst.astype(VERTEX_DTYPE))

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """Graph with ``n`` vertices and no edges."""
        return cls(np.zeros(n + 1, dtype=INDPTR_DTYPE), np.empty(0, dtype=VERTEX_DTYPE))

    # ------------------------------------------------------------------
    # Basic properties (paper notation: n, m, rho, D)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices |V|."""
        return self.indptr.size - 1

    @property
    def m(self) -> int:
        """Number of undirected edges |E| (each counted once)."""
        return self.indices.size // 2

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex (``int64`` array of length n)."""
        return np.diff(self.indptr)

    @property
    def avg_degree(self) -> float:
        """Average degree ρ̄ = 2m/n (0 for the empty graph)."""
        return float(self.indices.size) / self.n if self.n else 0.0

    @property
    def max_degree(self) -> int:
        """Maximum degree ρ̂ (0 for an edgeless graph)."""
        d = self.degrees
        return int(d.max()) if d.size else 0

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of vertex ``v`` (a CSR view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search in u's sorted neighbor list."""
        nb = self.neighbors(u)
        i = np.searchsorted(nb, v)
        return bool(i < nb.size and nb[i] == v)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def permute(self, perm: np.ndarray) -> "Graph":
        """Symmetric relabeling: new id of old vertex ``v`` is ``perm[v]``.

        Used by Sell-C-σ/SlimSell construction to apply the σ-scoped degree
        sort as a vertex relabeling, so frontier vectors live in the sorted
        order (§II-D2).
        """
        perm = np.asarray(perm, dtype=np.int64)
        n = self.n
        if perm.shape != (n,):
            raise ValueError(f"perm must have shape ({n},)")
        inv = np.empty(n, dtype=np.int64)
        inv[perm] = np.arange(n)
        if not np.array_equal(np.sort(perm), np.arange(n)):
            raise ValueError("perm is not a permutation of range(n)")
        deg = self.degrees
        new_deg = deg[inv]
        indptr = np.zeros(n + 1, dtype=INDPTR_DTYPE)
        np.cumsum(new_deg, out=indptr[1:])
        # Neighbor list of new vertex i is the relabeled list of old vertex
        # inv[i]: gather each old list into its new flat position, relabel.
        starts = np.repeat(self.indptr[inv], new_deg)
        within = np.arange(self.indices.size) - np.repeat(indptr[:-1], new_deg)
        gathered = self.indices[starts + within]
        indices = perm[gathered].astype(VERTEX_DTYPE)
        # Re-sort each neighbor list (relabeling breaks sortedness).
        row_of = np.repeat(np.arange(n, dtype=np.int64), new_deg)
        order = np.lexsort((indices, row_of))
        return Graph(indptr, indices[order])

    def edges(self) -> np.ndarray:
        """Canonical edge list ``(m, 2)`` with ``u < v`` per row."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
        dst = self.indices.astype(np.int64)
        keep = src < dst
        return np.stack([src[keep], dst[keep]], axis=1)

    def to_scipy(self):
        """Symmetric ``scipy.sparse.csr_matrix`` with unit values."""
        from scipy.sparse import csr_matrix

        data = np.ones(self.indices.size, dtype=np.float64)
        return csr_matrix((data, self.indices, self.indptr), shape=(self.n, self.n))

    # ------------------------------------------------------------------
    # Dunder sugar
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.m}, avg_degree={self.avg_degree:.2f})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return np.array_equal(self.indptr, other.indptr) and np.array_equal(
            self.indices, other.indices
        )

    def __hash__(self):  # pragma: no cover - mutable arrays, identity hash
        return id(self)
