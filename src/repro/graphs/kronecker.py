"""Graph500-style Kronecker (R-MAT) generator — the paper's power-law inputs.

The paper evaluates synthetic power-law Kronecker graphs [22] with
n ∈ {2^20, ..., 2^28} and average degree ρ ∈ {2^1, ..., 2^10}.  This module
implements the Graph500 reference sampler: each edge picks its endpoint bits
level by level with the (A, B, C, D) = (0.57, 0.19, 0.19, 0.05) quadrant
probabilities, with the noise term of the reference implementation so the
degree distribution is a smooth power law rather than a rigid Kronecker
product.

Fully vectorized: all ``scale`` levels of all edges are sampled as one
``(edges, scale)`` boolean matrix per endpoint.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

#: Graph500 reference initiator matrix.
GRAPH500_INITIATOR = (0.57, 0.19, 0.19, 0.05)


def kronecker_edges(
    scale: int,
    edgefactor: float,
    seed: int = 0,
    initiator: tuple[float, float, float, float] = GRAPH500_INITIATOR,
) -> np.ndarray:
    """Sample a raw R-MAT edge list (may contain duplicates/self-loops).

    Parameters
    ----------
    scale:
        log2 of the number of vertices (n = 2**scale).
    edgefactor:
        Requested edges per vertex (the paper's ρ); m = round(edgefactor * n)
        directed samples are drawn.
    seed:
        RNG seed for reproducibility.
    initiator:
        Quadrant probabilities (A, B, C, D); must sum to 1.

    Returns
    -------
    ``(m, 2)`` int64 edge array, unfiltered.
    """
    a, b, c, d = initiator
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("initiator probabilities must sum to 1")
    if scale < 0:
        raise ValueError("scale must be >= 0")
    n = 1 << scale
    m = int(round(edgefactor * n))
    rng = np.random.default_rng(seed)
    ij = np.zeros((2, m), dtype=np.int64)
    ab = a + b
    c_norm = c / (c + d)
    a_norm = a / (a + b)
    for lvl in range(scale):
        # Graph500 reference: re-draw quadrant per level with noise-free probs.
        ii_bit = rng.random(m) > ab
        cn = np.where(ii_bit, c_norm, a_norm)
        jj_bit = rng.random(m) > cn
        ij[0] += (ii_bit.astype(np.int64)) << lvl
        ij[1] += (jj_bit.astype(np.int64)) << lvl
    # Permute vertex labels so vertex id does not encode degree (Graph500 spec).
    perm = rng.permutation(n)
    return perm[ij].T.copy()


def kronecker(
    scale: int,
    edgefactor: float,
    seed: int = 0,
    initiator: tuple[float, float, float, float] = GRAPH500_INITIATOR,
) -> Graph:
    """Generate a simple undirected Kronecker/R-MAT graph.

    Self-loops and duplicate edges are removed (so the realized average
    degree is slightly below ``2 * edgefactor``, as in Graph500 practice).
    """
    e = kronecker_edges(scale, edgefactor, seed=seed, initiator=initiator)
    return Graph.from_edges(1 << scale, e)
