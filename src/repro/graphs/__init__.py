"""Graph substrate: core structure, generators, and utilities.

Provides the undirected CSR-backed :class:`~repro.graphs.graph.Graph`, the
two synthetic families the paper evaluates (Graph500-style Kronecker
power-law graphs and Erdős–Rényi uniform graphs), synthetic proxies for the
paper's Table IV real-world corpus, and BFS-level utilities (pseudo-diameter,
connected components, degree statistics).
"""

from repro.graphs.erdos_renyi import erdos_renyi, erdos_renyi_nm
from repro.graphs.graph import Graph
from repro.graphs.kronecker import kronecker
from repro.graphs.realworld import (
    REALWORLD_REGISTRY,
    RealWorldSpec,
    realworld_proxy,
)
from repro.graphs.utils import (
    connected_components,
    degree_stats,
    largest_component,
    pseudo_diameter,
)

__all__ = [
    "Graph",
    "kronecker",
    "erdos_renyi",
    "erdos_renyi_nm",
    "REALWORLD_REGISTRY",
    "RealWorldSpec",
    "realworld_proxy",
    "pseudo_diameter",
    "connected_components",
    "largest_component",
    "degree_stats",
]
