"""Graph I/O: edge-list text files and a compact binary CSR container.

Covers the two interchange needs of a BFS benchmark suite: SNAP-style text
edge lists (one ``u v`` pair per line, ``#`` comments — the format the
paper's Table IV graphs ship in) and a zero-parse binary `.npz` container
for fast reload of preprocessed graphs.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np

from repro.graphs.graph import Graph


def save_edgelist(graph: Graph, path: str | Path, header: bool = True) -> None:
    """Write a SNAP-style text edge list (canonical u < v rows)."""
    path = Path(path)
    e = graph.edges()
    with path.open("w") as fh:
        if header:
            fh.write(f"# Undirected graph: n={graph.n} m={graph.m}\n")
            fh.write("# FromNodeId\tToNodeId\n")
        np.savetxt(fh, e, fmt="%d", delimiter="\t")


def load_edgelist(path: str | Path, n: int | None = None) -> Graph:
    """Read a SNAP-style edge list (``#`` comment lines ignored).

    ``n`` defaults to ``max vertex id + 1``; pass it explicitly to keep
    trailing isolated vertices.
    """
    path = Path(path)
    with warnings.catch_warnings():
        # An edge-less file is a valid (empty) graph, not a user error.
        warnings.filterwarnings("ignore", message=".*no data.*")
        e = np.loadtxt(path, comments="#", dtype=np.int64, ndmin=2)
    if e.size == 0:
        return Graph.empty(n if n is not None else 0)
    if e.shape[1] != 2:
        raise ValueError(f"{path}: expected two columns, got {e.shape[1]}")
    inferred = int(e.max()) + 1
    if n is None:
        n = inferred
    elif n < inferred:
        raise ValueError(f"{path}: n={n} smaller than max vertex id {inferred - 1}")
    return Graph.from_edges(n, e)


def save_npz(graph: Graph, path: str | Path) -> None:
    """Write the CSR arrays to a compressed ``.npz`` container."""
    np.savez_compressed(Path(path), indptr=graph.indptr, indices=graph.indices)


def load_npz(path: str | Path) -> Graph:
    """Load a graph written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        return Graph(data["indptr"], data["indices"])
