"""Graph utilities: components, pseudo-diameter, degree statistics.

These back the Table IV corpus reproduction (n, m, ρ̄, D columns) and are
used by generators and tests.  All routines are vectorized frontier sweeps
on the CSR structure — no per-vertex Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.obs.metrics import percentile


def _bfs_levels(g: Graph, root: int) -> np.ndarray:
    """Distance (in hops) from ``root`` to every vertex; -1 if unreachable."""
    n = g.n
    dist = np.full(n, -1, dtype=np.int64)
    dist[root] = 0
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        deg = g.indptr[frontier + 1] - g.indptr[frontier]
        starts = np.repeat(g.indptr[frontier], deg)
        within = np.arange(int(deg.sum())) - np.repeat(np.cumsum(deg) - deg, deg)
        nbrs = g.indices[starts + within]
        cand = np.unique(nbrs[dist[nbrs] < 0])
        cand = cand[dist[cand] < 0]
        dist[cand] = level
        frontier = cand
    return dist


def connected_components(g: Graph) -> np.ndarray:
    """Component label of every vertex (labels are arbitrary 0..k-1)."""
    n = g.n
    label = np.full(n, -1, dtype=np.int64)
    next_label = 0
    for start in range(n):
        if label[start] >= 0:
            continue
        d = _bfs_levels(g, start)
        label[d >= 0] = next_label
        next_label += 1
        if (label >= 0).all():
            break
    return label


def largest_component(g: Graph) -> Graph:
    """Induced subgraph on the largest connected component (relabeled 0..k-1)."""
    lab = connected_components(g)
    counts = np.bincount(lab)
    keep = lab == counts.argmax()
    newid = np.cumsum(keep) - 1
    e = g.edges()
    e_keep = e[keep[e[:, 0]] & keep[e[:, 1]]]
    remapped = np.stack([newid[e_keep[:, 0]], newid[e_keep[:, 1]]], axis=1)
    return Graph.from_edges(int(keep.sum()), remapped)


def pseudo_diameter(g: Graph, sweeps: int = 4, seed: int = 0) -> int:
    """Lower-bound estimate of the diameter D by repeated double sweeps.

    Standard heuristic: BFS from a start vertex, move to the farthest vertex
    found, repeat.  Exact for trees, a tight lower bound in practice; the
    paper reports diameters at this fidelity (Table IV).
    Operates on the component of the start vertex (highest-degree vertex).
    """
    if g.n == 0:
        return 0
    rng = np.random.default_rng(seed)
    start = int(np.argmax(g.degrees))
    best = 0
    for _ in range(max(1, sweeps)):
        dist = _bfs_levels(g, start)
        reach = dist >= 0
        if not reach.any():
            break
        ecc = int(dist[reach].max())
        best = max(best, ecc)
        far = np.flatnonzero(dist == ecc)
        start = int(rng.choice(far))
    return best


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution (used by Table IV verification)."""

    n: int
    m: int
    avg: float
    max: int
    median: float
    p99: float


def degree_stats(g: Graph) -> DegreeStats:
    """Compute n, m, ρ̄, ρ̂ and quantiles of the degree distribution."""
    d = g.degrees
    if d.size == 0:
        return DegreeStats(0, 0, 0.0, 0, 0.0, 0.0)
    return DegreeStats(
        n=g.n,
        m=g.m,
        avg=g.avg_degree,
        max=int(d.max()),
        median=float(np.median(d)),
        p99=percentile(d, 99),
    )
