"""Erdős–Rényi generators — the paper's uniform-degree inputs (§IV).

Two variants are provided:

* :func:`erdos_renyi` — G(n, p): every unordered pair independently with
  probability ``p``.  For the sparse regime the paper uses (p ≈ ρ/n) we
  sample the *number* of edges binomially and then the edges uniformly,
  which is exact for G(n, p) restricted to simple graphs and avoids the
  O(n²) dense loop.
* :func:`erdos_renyi_nm` — G(n, m): exactly m distinct uniform edges.

Both are fully vectorized with rejection-free unranking of unordered pairs.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def _pairs_from_ranks(ranks: np.ndarray, n: int) -> np.ndarray:
    """Unrank unordered pairs: rank r in [0, n(n-1)/2) → (u, v), u < v.

    Uses the row-major enumeration (0,1),(0,2),...,(0,n-1),(1,2),...  The
    inverse is computed in closed form with float64 then fixed up exactly in
    integer arithmetic (float rounding can be off by one row at large n).
    """
    r = ranks.astype(np.int64)
    # Solve u(2n - u - 1)/2 <= r for the largest u.
    nn = np.float64(2 * n - 1)
    u = np.floor((nn - np.sqrt(nn * nn - 8.0 * r)) / 2.0).astype(np.int64)
    # Integer fix-up for float error: row start of u is u*(2n-u-1)/2.
    def row_start(x):
        return x * (2 * n - x - 1) // 2

    u = np.maximum(u, 0)
    # Step back/forward at most once.
    too_big = row_start(u) > r
    u[too_big] -= 1
    too_small = row_start(u + 1) <= r
    u[too_small] += 1
    v = r - row_start(u) + u + 1
    return np.stack([u, v], axis=1)


def erdos_renyi_nm(n: int, m: int, seed: int = 0) -> Graph:
    """G(n, m): a uniform simple graph with exactly ``m`` edges."""
    total = n * (n - 1) // 2
    if m > total:
        raise ValueError(f"m={m} exceeds the {total} possible edges on n={n} vertices")
    rng = np.random.default_rng(seed)
    if m == 0:
        return Graph.empty(n)
    # Sample distinct ranks; for sparse graphs oversample + unique is fast.
    if m < total // 8:
        ranks = np.empty(0, dtype=np.int64)
        need = m
        while need > 0:
            cand = rng.integers(0, total, size=int(need * 1.2) + 8, dtype=np.int64)
            ranks = np.unique(np.concatenate([ranks, cand]))
            need = m - ranks.size
        ranks = rng.permutation(ranks)[:m]
    else:
        ranks = rng.choice(total, size=m, replace=False)
    return Graph.from_edges(n, _pairs_from_ranks(ranks, n))


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p): each unordered pair is an edge independently with prob ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    total = n * (n - 1) // 2
    rng = np.random.default_rng(seed)
    m = int(rng.binomial(total, p)) if total else 0
    return erdos_renyi_nm(n, m, seed=seed + 1)
