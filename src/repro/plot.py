"""Terminal plotting: ASCII line/bar charts for per-iteration series.

The paper's evaluation is all line charts (time vs iteration, time vs
log σ).  This renderer draws those shapes directly in the terminal so
examples and bench output remain self-contained — no matplotlib required
(none is installed in the offline environment).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ascii_plot", "ascii_bars"]

_MARKERS = "*o+x#@%&"


def ascii_plot(series: dict[str, list[float]], width: int = 64,
               height: int = 16, title: str = "", logy: bool = False,
               xlabel: str = "") -> str:
    """Render named series as an ASCII line chart.

    Parameters
    ----------
    series:
        Mapping of label → y values (x is the 1-based index).
    width / height:
        Canvas size in characters.
    title / xlabel:
        Optional decorations.
    logy:
        Log-scale the y axis (values must be positive).
    """
    pts = {k: np.asarray(v, dtype=float) for k, v in series.items() if len(v)}
    if not pts:
        return "(empty plot)"
    ys = np.concatenate(list(pts.values()))
    ys = ys[np.isfinite(ys)]
    if ys.size == 0:
        return "(no finite data)"
    if logy:
        if (ys <= 0).any():
            raise ValueError("logy requires positive values")
        lo, hi = math.log10(ys.min()), math.log10(ys.max())
    else:
        lo, hi = float(ys.min()), float(ys.max())
    if hi == lo:
        hi = lo + 1.0
    xmax = max(len(v) for v in pts.values())
    grid = [[" "] * width for _ in range(height)]

    def ycoord(v: float) -> int | None:
        if not np.isfinite(v):
            return None
        vv = math.log10(v) if logy else v
        frac = (vv - lo) / (hi - lo)
        return height - 1 - int(round(frac * (height - 1)))

    for si, (label, v) in enumerate(pts.items()):
        mark = _MARKERS[si % len(_MARKERS)]
        for i, y in enumerate(v):
            r = ycoord(float(y))
            if r is None:
                continue
            c = int(round(i * (width - 1) / max(xmax - 1, 1)))
            grid[r][c] = mark
    lines = []
    if title:
        lines.append(title)
    fmt = (lambda x: f"1e{x:.1f}") if logy else (lambda x: f"{x:.3g}")
    for r, row in enumerate(grid):
        tick = ""
        if r == 0:
            tick = fmt(hi)
        elif r == height - 1:
            tick = fmt(lo)
        lines.append(f"{tick:>9s} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    if xlabel:
        lines.append(" " * 12 + xlabel)
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {k}"
                        for i, k in enumerate(pts))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def ascii_bars(values: dict[str, float], width: int = 50,
               title: str = "") -> str:
    """Render a labeled horizontal bar chart."""
    if not values:
        return "(empty chart)"
    vmax = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for k, v in values.items():
        bar = "#" * (int(round(width * v / vmax)) if vmax > 0 else 0)
        lines.append(f"{k:>{label_w}s} | {bar} {v:.4g}")
    return "\n".join(lines)
