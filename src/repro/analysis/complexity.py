"""Work-complexity analysis of BFS schemes (§III-A, Table II, Eqs. (1)–(2)).

The paper's central theoretical results, implemented as evaluatable bounds:

* **Sell-C-σ storage/work bound** — with full sorting, total padded storage
  (= per-SpMV work) is at most ``m + ρ̂·C`` slots over the 2m stored
  entries... precisely: Σ C·ρ_{iC-1} ≤ 2m + ρ̂·C where ρ̂ is the maximum
  degree (Fig 3).  :func:`sell_storage_upper_bound` evaluates it, and the
  test suite verifies measured layouts respect it.
* **General work bound** — W = O(D·n + D·m + D·C·ρ̂) for BFS-SpMV.
* **Eq. (1)** — Erdős–Rényi: ρ̂ = O(np) when np = Ω(log n), else O(log n),
  giving W = O(Dn + Dm + DC·log n) in the sparse regime.
* **Eq. (2)** — power-law with exponent β: ρ̂ = O((αn log n)^{1/(β−1)}).

Table II's scheme-by-scheme work expressions are provided as evaluatable
entries in :data:`TABLE_II`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class WorkBound:
    """An asymptotic work bound: human-readable formula + evaluator."""

    scheme: str
    formula: str
    evaluate_args: tuple[str, ...]

    def __call__(self, **kw) -> float:
        return _EVALUATORS[self.scheme](**kw)


def _need(kw, *names):
    missing = [x for x in names if x not in kw]
    if missing:
        raise TypeError(f"missing parameters: {missing}")
    return [kw[x] for x in names]


_EVALUATORS = {
    "traditional-textbook": lambda **kw: sum(_need(kw, "n", "m")),
    "traditional-bag": lambda **kw: sum(_need(kw, "n", "m")),
    "traditional-direction-inversion": lambda **kw: (
        kw["D"] * (kw["n"] + kw["m"])),
    "spmv-textbook": lambda **kw: kw["D"] * kw["n"] ** 2,
    "spmv-csr": lambda **kw: kw["D"] * (kw["n"] + kw["m"]),
    "spmspv-merge": lambda **kw: kw["n"] + kw["m"] * max(1.0, math.log2(max(kw["m"], 2))),
    "spmspv-radix": lambda **kw: kw["n"] + kw["x"] * kw["m"],
    "spmspv-nosort": lambda **kw: kw["n"] + kw["m"],
    "this-work": lambda **kw: kw["D"] * (kw["n"] + kw["m"] + kw["C"] * kw["rho_max"]),
}

#: Table II of the paper: work complexity W of BFS schemes.
TABLE_II: list[WorkBound] = [
    WorkBound("traditional-textbook", "O(n + m)", ("n", "m")),
    WorkBound("traditional-bag", "O(n + m)", ("n", "m")),
    WorkBound("traditional-direction-inversion", "O(Dn + Dm)", ("n", "m", "D")),
    WorkBound("spmv-textbook", "O(D n^2)", ("n", "D")),
    WorkBound("spmv-csr", "O(Dn + Dm)", ("n", "m", "D")),
    WorkBound("spmspv-merge", "O(n + m log m)", ("n", "m")),
    WorkBound("spmspv-radix", "O(n + x m)", ("n", "m", "x")),
    WorkBound("spmspv-nosort", "O(n + m)", ("n", "m")),
    WorkBound("this-work", "O(Dn + Dm + D C rho_max)", ("n", "m", "D", "C", "rho_max")),
]


def work_table(n: int, m: int, D: int, C: int, rho_max: int,
               x: int = 32) -> dict[str, float]:
    """Evaluate every Table II bound at concrete parameters."""
    kw = dict(n=n, m=m, D=D, C=C, rho_max=rho_max, x=x)
    out = {}
    for wb in TABLE_II:
        out[wb.scheme] = wb(**{k: kw[k] for k in wb.evaluate_args})
    return out


# --------------------------------------------------------------------------
# The Sell-C-σ storage/work bound (Fig 3) and the per-model corollaries
# --------------------------------------------------------------------------
def sell_storage_upper_bound(m_directed: int, rho_max: int, C: int) -> int:
    """Upper bound on total slots with full sorting: 2m + ρ̂·C.

    ``m_directed`` is the number of *stored* entries (2m for undirected
    graphs); the padding can add at most C·ρ̂ cells in total (§III-A: "the
    size of the largest block is ρ̂·C; the size of each [other] block is
    smaller than the number of [entries] in the previous block").
    """
    return m_directed + rho_max * C


def work_bound_general(n: int, m: int, D: int, C: int, rho_max: int) -> float:
    """W = O(Dn + Dm + D·C·ρ̂) — the paper's general bound (constant 1)."""
    return D * (n + m + C * rho_max)


def er_max_degree_bound(n: int, p: float, safety: float = 4.0) -> float:
    """High-probability max degree of G(n, p) (balls-into-bins, §III-A).

    ``np = Ω(log n)`` regime → O(np); very sparse regime → O(log n).
    ``safety`` is the hidden constant used when evaluating numerically.
    """
    if n < 2:
        return 0.0
    mean = n * p
    logn = math.log(max(n, 2))
    if mean >= logn:
        return safety * mean
    return safety * logn


def powerlaw_max_degree_bound(n: int, alpha: float, beta: float,
                              safety: float = 2.0) -> float:
    """High-probability max degree of a power-law graph: O((αn log n)^{1/(β−1)}).

    Derived in §III-A by integrating the tail P[ρ > ρ̂] = α·ρ̂^{1−β}/(β−1)
    and applying Bernoulli's inequality.
    """
    if beta <= 1:
        raise ValueError(f"power-law exponent beta must be > 1, got {beta}")
    if n < 2:
        return 0.0
    return safety * (alpha * n * math.log(max(n, 2))) ** (1.0 / (beta - 1.0))


def work_bound_er(n: int, m: int, D: int, C: int, p: float) -> float:
    """Eq. (1): W = O(Dn + Dm + D·C·log n) for sparse Erdős–Rényi graphs."""
    return D * (n + m + C * er_max_degree_bound(n, p))


def work_bound_powerlaw(n: int, m: int, D: int, C: int,
                        alpha: float, beta: float) -> float:
    """Eq. (2): W = O(Dn + Dm + D·C·(αn log n)^{1/(β−1)}) for power-law graphs."""
    return D * (n + m + C * powerlaw_max_degree_bound(n, alpha, beta))
