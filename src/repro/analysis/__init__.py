"""Theoretical work/storage complexity (§III-A "Work Complexity", Table II).

Closed-form work bounds for BFS schemes, the Sell-C-σ padded-storage bound
m + ρ̂·C, and the high-probability maximum-degree bounds behind Eq. (1)
(Erdős–Rényi) and Eq. (2) (power-law).
"""

from repro.analysis.complexity import (
    TABLE_II,
    WorkBound,
    er_max_degree_bound,
    powerlaw_max_degree_bound,
    sell_storage_upper_bound,
    work_bound_er,
    work_bound_general,
    work_bound_powerlaw,
    work_table,
)

__all__ = [
    "TABLE_II",
    "WorkBound",
    "work_bound_general",
    "work_bound_er",
    "work_bound_powerlaw",
    "er_max_degree_bound",
    "powerlaw_max_degree_bound",
    "sell_storage_upper_bound",
    "work_table",
]
